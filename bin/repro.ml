(* Command-line driver: regenerate any table or figure of the paper, run
   the ablation studies, inspect the benchmark circuits, or operate the
   model-serving registry.

     repro table 1..6     a paper table
     repro fig 1..8       a paper figure
     repro all            everything, in paper order
     repro ablation NAME  prior-quality | sampling | missing-prior |
                          early-fit | solver | all
     repro info           circuit and configuration summary
     repro fit            fit a model and persist it as an artifact
     repro predict        serve predictions from a stored artifact
     repro update         fold new samples in without a full refit
     repro models         list and verify the artifact registry
     repro ensemble       create/extend/inspect BMA ensembles over the
                          registry; later members join as near-zero-
                          weight canaries moved by accumulated evidence
     repro recover        crash recovery: verify, replay journal, sweep
     repro serve          micro-batching prediction daemon (lib/server);
                          --follow ADDR replicates from a leader
     repro promote        flip a follower daemon to leader (failover)
     repro client         one-shot wire-protocol client for serve
     repro loadgen        closed-loop load generator against serve
                          (repeatable --endpoint fans reads out;
                          --update-every/--stats-every mix opcodes)
     repro events         dump a daemon's structured event ring
     repro trace-merge    stitch per-process Chrome traces into one
                          timeline (client + leader + follower)
     repro stats          instrumented fit: numerical health + metrics

   `fit`, `predict` and `update` accept --trace FILE (Chrome
   trace-event JSON, opens in chrome://tracing or Perfetto) and
   --metrics FILE (Prometheus text exposition); without the flags the
   observability layer stays off and records nothing. `serve` adds
   --http ADDR (GET /metrics, /health, /ready, /events scrape
   endpoint), --events (structured event ring) and --trace; `client`
   and `loadgen` accept --trace too, and their spans' trace context
   rides the wire into the daemon (protocol v2). *)

open Cmdliner

let scale_conv =
  let parse s =
    match Experiments.Config.of_scale_name s with
    | Some cfg -> Ok (s, cfg)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scale %S (want %s)" s
               (String.concat "|" Experiments.Config.scale_names)))
  in
  Arg.conv (parse, fun fmt (name, _) -> Format.pp_print_string fmt name)

let scale_arg =
  Arg.(
    value
    & opt scale_conv ("default", Experiments.Config.default)
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Problem scale: $(b,quick), $(b,default) or $(b,paper).")

let repeats_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "repeats" ] ~docv:"N" ~doc:"Override the number of repeated runs.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Override the master seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print progress to stderr.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallel lanes (worker domains + the main one) for the CV fold \
           sweep, design-matrix construction and batch prediction. 0 (the \
           default) selects automatically: \\$BMF_JOBS if set, else the \
           recommended domain count capped at 8. Results are bit-identical \
           at any $(docv).")

let build_config (scale_name, scale) repeats seed jobs =
  let cfg = match repeats with
    | Some r -> Experiments.Config.with_repeats scale r
    | None -> scale
  in
  let cfg = match seed with
    | Some s -> Experiments.Config.with_seed cfg s
    | None -> cfg
  in
  Parallel.Pool.set_default_jobs (Stdlib.max 0 jobs);
  (scale_name, cfg)

let progress_of verbose =
  if verbose then fun msg -> Printf.eprintf "  .. %s\n%!" msg
  else fun (_ : string) -> ()

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event JSON trace of this run to $(docv) \
           (open in chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a Prometheus text-format metrics dump of this run to \
           $(docv).")

(* Turn the observability sinks on for the duration of one command and
   write the requested files on the way out — also when the command
   raises, so a failing run still leaves its trace behind. With neither
   flag this is exactly [f ()]: the sinks stay off and the instrumented
   libraries record nothing. *)
let with_obs ~trace ~metrics name f =
  if trace = None && metrics = None then f ()
  else begin
    if trace <> None then Obs.Trace.start ();
    if metrics <> None then Obs.Metrics.enable ();
    let finish () =
      Obs.Trace.stop ();
      Obs.Metrics.disable ();
      Option.iter
        (fun file ->
          Obs.Trace.write_file file;
          let spans, instants =
            List.fold_left
              (fun (s, i) ev ->
                match ev with
                | Obs.Trace.Complete _ -> (s + 1, i)
                | Obs.Trace.Instant _ -> (s, i + 1))
              (0, 0) (Obs.Trace.events ())
          in
          Printf.eprintf "trace: %d spans, %d instants -> %s\n%!" spans
            instants file)
        trace;
      Option.iter
        (fun file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Obs.Metrics.to_prometheus ()));
          Printf.eprintf "metrics: -> %s\n%!" file)
        metrics
    in
    Fun.protect ~finally:finish (fun () ->
        Obs.Trace.with_span ~cat:"cli" name (fun _ -> f ()))
  end

let common_named =
  Term.(const build_config $ scale_arg $ repeats_arg $ seed_arg $ jobs_arg)

let common = Term.(const snd $ common_named)

let table_num =
  Arg.(
    required
    & pos 0 (some int) None
    & info [] ~docv:"N" ~doc:"Table number, 1-6.")

let csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ]
        ~doc:
          "Print machine-readable CSV instead of the formatted table \
           (accuracy tables 1, 2, 3 and 5 only).")

let run_table cfg verbose csv n =
  let progress = progress_of verbose in
  if csv then begin
    let acc =
      match n with
      | 1 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.power_index
      | 2 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.phase_noise_index
      | 3 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.frequency_index
      | 5 -> Experiments.Tables.sram_accuracy ~progress cfg
      | _ ->
          prerr_endline "--csv supports accuracy tables 1, 2, 3 and 5";
          exit 2
    in
    print_string (Experiments.Report.accuracy_csv acc)
  end
  else begin
    let render =
      match n with
      | 1 -> Experiments.Tables.table1 ~progress
      | 2 -> Experiments.Tables.table2 ~progress
      | 3 -> Experiments.Tables.table3 ~progress
      | 4 -> Experiments.Tables.table4 ~progress
      | 5 -> Experiments.Tables.table5 ~progress
      | 6 -> Experiments.Tables.table6 ~progress
      | _ ->
          prerr_endline "table number must be 1-6";
          exit 2
    in
    print_string (render cfg)
  end

let table_cmd =
  let doc = "Regenerate one of the paper's tables (I-VI)." in
  Cmd.v
    (Cmd.info "table" ~doc)
    Term.(const run_table $ common $ verbose_arg $ csv_arg $ table_num)

let fig_num =
  Arg.(
    required
    & pos 0 (some int) None
    & info [] ~docv:"N" ~doc:"Figure number, 1-8.")

let run_fig cfg _verbose n =
  let render =
    match n with
    | 1 -> fun _ -> Experiments.Figures.fig1 ()
    | 2 -> fun _ -> Experiments.Figures.fig2 ()
    | 3 -> Experiments.Figures.fig3
    | 4 -> Experiments.Figures.fig4 ?samples:None
    | 5 -> Experiments.Figures.fig5 ?with_direct:None
    | 6 -> Experiments.Figures.fig6
    | 7 -> Experiments.Figures.fig7 ?samples:None
    | 8 -> Experiments.Figures.fig8
    | _ ->
        prerr_endline "figure number must be 1-8";
        exit 2
  in
  print_string (render cfg)

let fig_cmd =
  let doc = "Regenerate one of the paper's figures (1-8)." in
  Cmd.v (Cmd.info "fig" ~doc) Term.(const run_fig $ common $ verbose_arg $ fig_num)

let run_all cfg verbose =
  let progress = progress_of verbose in
  let banner title =
    Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title
      (String.make 72 '=')
  in
  banner "Figures 1-4";
  print_string (Experiments.Figures.fig1 ());
  print_string (Experiments.Figures.fig2 ());
  print_string (Experiments.Figures.fig3 cfg);
  print_string (Experiments.Figures.fig4 cfg);
  banner "Tables I-IV (ring oscillator)";
  print_string (Experiments.Tables.table1 ~progress cfg);
  print_string (Experiments.Tables.table2 ~progress cfg);
  print_string (Experiments.Tables.table3 ~progress cfg);
  print_string (Experiments.Figures.fig5 cfg);
  print_string (Experiments.Tables.table4 ~progress cfg);
  banner "Figures 6-8 and Tables V-VI (SRAM read path)";
  print_string (Experiments.Figures.fig6 cfg);
  print_string (Experiments.Figures.fig7 cfg);
  print_string (Experiments.Tables.table5 ~progress cfg);
  print_string (Experiments.Figures.fig8 cfg);
  print_string (Experiments.Tables.table6 ~progress cfg)

let all_cmd =
  let doc = "Regenerate every table and figure, in paper order." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run_all $ common $ verbose_arg)

let ablation_name =
  Arg.(
    value
    & pos 0 string "all"
    & info [] ~docv:"NAME"
        ~doc:
          "prior-quality | sampling | missing-prior | early-fit | \
           nonlinear | baselines | hyper-selection | solver | all")

let run_ablation cfg verbose name =
  let progress = progress_of verbose in
  let render =
    match name with
    | "prior-quality" -> Experiments.Ablation.prior_quality ~progress
    | "sampling" -> Experiments.Ablation.sampling_scheme ~progress
    | "missing-prior" -> Experiments.Ablation.missing_prior ~progress
    | "early-fit" -> Experiments.Ablation.early_fit ~progress
    | "nonlinear" -> Experiments.Ablation.nonlinear_basis ~progress
    | "baselines" -> Experiments.Ablation.baselines ~progress
    | "hyper-selection" -> Experiments.Ablation.hyper_selection ~progress
    | "solver" -> Experiments.Ablation.solver_exactness ~progress
    | "all" -> Experiments.Ablation.all ~progress
    | s ->
        Printf.eprintf "unknown ablation %S\n" s;
        exit 2
  in
  print_string (render cfg)

let ablation_cmd =
  let doc = "Run an ablation study (DESIGN.md Sec. 6)." in
  Cmd.v
    (Cmd.info "ablation" ~doc)
    Term.(const run_ablation $ common $ verbose_arg $ ablation_name)

let run_info (cfg : Experiments.Config.t) _verbose =
  Format.printf "configuration: %a@." Experiments.Config.pp cfg;
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let ro_tb = Circuit.Ring_oscillator.testbench ro in
  let sram = Circuit.Sram.create ~config:cfg.sram cfg.seed in
  let sram_tb = Circuit.Sram.testbench sram in
  let show (tb : Circuit.Testbench.t) =
    Format.printf "@.%a@." Circuit.Netlist.summary tb.netlist;
    Format.printf
      "  variables: %d schematic -> %d post-layout; metrics: %s@."
      tb.schematic_dim tb.layout_dim
      (String.concat ", " (Array.to_list tb.metrics));
    Format.printf "  simulated cost/sample: %.1f s (schematic), %.1f s \
                   (post-layout)@."
      (tb.sim_cost_seconds Circuit.Stage.Schematic)
      (tb.sim_cost_seconds Circuit.Stage.Layout)
  in
  let amp = Circuit.Amplifier.create cfg.seed in
  show ro_tb;
  show sram_tb;
  show (Circuit.Amplifier.testbench amp)

let info_cmd =
  let doc = "Print the benchmark circuits and configuration." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ common $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* Model serving: fit / predict / update / models over the artifact
   registry (lib/serving). *)

let circuit_arg =
  Arg.(
    value
    & opt string "ro"
    & info [ "circuit" ] ~docv:"NAME"
        ~doc:"Benchmark circuit: $(b,ro), $(b,sram) or $(b,amp).")

let metric_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metric" ] ~docv:"NAME"
        ~doc:"Performance metric name (default: the circuit's first).")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Model registry directory (default: \\$BMF_MODEL_DIR or \
           $(b,models)).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Store the artifact as JSON instead of the compact binary.")

let testbench_of (cfg : Experiments.Config.t) name =
  match name with
  | "ro" ->
      Circuit.Ring_oscillator.testbench
        (Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed)
  | "sram" ->
      Circuit.Sram.testbench (Circuit.Sram.create ~config:cfg.sram cfg.seed)
  | "amp" | "opamp" ->
      Circuit.Amplifier.testbench (Circuit.Amplifier.create cfg.seed)
  | s ->
      Printf.eprintf "unknown circuit %S (want ro|sram|amp)\n" s;
      exit 2

let resolve_metric (tb : Circuit.Testbench.t) = function
  | None -> 0
  | Some name -> (
      try Circuit.Testbench.metric_index tb name
      with Not_found ->
        Printf.eprintf "unknown metric %S for %s (have: %s)\n" name tb.name
          (String.concat ", " (Array.to_list tb.metrics));
        exit 2)

let root_of dir =
  match dir with Some d -> d | None -> Serving.Store.default_root ()

(* Deterministic verification queries, a pure function of the artifact
   key: `fit` prints them right after saving and `predict` recomputes
   them from the loaded artifact, so matching fingerprints prove the
   round-trip is exact. *)
let query_count = 64

let query_points (a : Serving.Artifact.t) =
  let dim = a.basis_dim in
  let rng = Stats.Rng.create (a.meta.seed + 8191) in
  Linalg.Mat.of_rows
    (List.init query_count (fun _ -> Stats.Rng.gaussian_vec rng dim))

let print_predictions ?(show = 5) a =
  let pred = Serving.Predictor.of_artifact a in
  let means, stds = Serving.Predictor.predict_with_std pred (query_points a) in
  Printf.printf "verification queries (seed %d):\n" (a.meta.seed + 8191);
  for i = 0 to Stdlib.min show query_count - 1 do
    Printf.printf "  q%-2d  %+.10g  (+/- %.4g)\n" i means.(i) stds.(i)
  done;
  Printf.printf "prediction fingerprint (%d queries): %s\n" query_count
    (Serving.Artifact.fingerprint means)

let describe (a : Serving.Artifact.t) =
  Printf.sprintf "%s/%s scale=%s seed=%d K=%d M=%d rev=%d %s hyper=%.3g"
    a.meta.circuit a.meta.metric a.meta.scale a.meta.seed
    (Serving.Artifact.num_samples a)
    (Serving.Artifact.num_terms a)
    a.rev
    (Serving.Artifact.method_name a)
    a.hyper

let fit_samples_arg =
  Arg.(
    value
    & opt int 100
    & info [ "k"; "samples" ] ~docv:"K"
        ~doc:"Number of late-stage training samples.")

(* One master stream per (seed, metric): data sampling and CV fold
   shuffling consume independent splits of it, so the shuffle stream no
   longer depends on how many draws sampling happened to make — the same
   [--seed] pins the artifact bytes regardless of [-k]. *)
let fit_rngs (cfg : Experiments.Config.t) ~metric =
  let master = Stats.Rng.create (cfg.seed + 211 + (metric * 613)) in
  let data = Stats.Rng.split master in
  let shuffle = Stats.Rng.split master in
  (data, shuffle)

let durability_arg ~default =
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("durable", `Durable) ]) default
    & info [ "durability" ] ~docv:"MODE"
        ~doc:
          "$(b,durable) fsyncs the artifact (and journal) before \
           acknowledging — survives SIGKILL and power loss; $(b,fast) \
           leaves flushing to the kernel (atomic visibility only).")

let run_fit (scale_name, (cfg : Experiments.Config.t)) verbose circuit
    metric_opt k dir json durability trace metrics =
  with_obs ~trace ~metrics "repro_fit" @@ fun () ->
  let progress = progress_of verbose in
  let tb = testbench_of cfg circuit in
  let metric = resolve_metric tb metric_opt in
  progress "fitting early-stage model (prior)";
  let prep = Experiments.Runner.prepare cfg tb ~metric in
  let data_rng, cv_rng = fit_rngs cfg ~metric in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
      ~rng:data_rng ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  progress (Printf.sprintf "fusing %d late-stage samples (BMF-PS)" k);
  let config = { Bmf.Fusion.default_config with cv_folds = cfg.cv_folds } in
  let fitted =
    Bmf.Fusion.fit_design ~rng:cv_rng ~config ~early:prep.early ~g ~f
      Bmf.Fusion.Bmf_ps
  in
  let meta =
    {
      Serving.Artifact.circuit;
      metric = tb.metrics.(metric);
      scale = scale_name;
      seed = cfg.seed;
    }
  in
  let artifact =
    Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior:fitted.prior
      ~hyper:fitted.hyper ~cv_error:fitted.cv_error ~g ~f ()
  in
  let format = if json then Serving.Artifact.Json else Serving.Artifact.Binary in
  let file =
    Serving.Store.save ~format ~durability ~root:(root_of dir) artifact
  in
  Printf.printf "saved %s\n  %s\n" file (describe artifact);
  print_predictions artifact

let fit_cmd =
  let doc = "Fit a BMF-PS model and persist it as a serving artifact." in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(
      const run_fit $ common_named $ verbose_arg $ circuit_arg $ metric_arg
      $ fit_samples_arg $ dir_arg $ json_arg $ durability_arg ~default:`Fast
      $ trace_arg $ metrics_arg)

let run_predict (scale_name, (cfg : Experiments.Config.t)) _verbose circuit
    metric_opt dir trace metrics =
  with_obs ~trace ~metrics "repro_predict" @@ fun () ->
  let tb = testbench_of cfg circuit in
  let metric = resolve_metric tb metric_opt in
  let meta =
    {
      Serving.Artifact.circuit;
      metric = tb.metrics.(metric);
      scale = scale_name;
      seed = cfg.seed;
    }
  in
  match Serving.Store.load ~root:(root_of dir) meta with
  | Error e ->
      Printf.eprintf "%s\n(fit one first: repro fit --circuit %s --scale %s)\n"
        e circuit scale_name;
      exit 1
  | Ok artifact ->
      Printf.printf "loaded %s\n" (describe artifact);
      print_predictions artifact

let predict_cmd =
  let doc =
    "Serve predictions from a stored artifact. Prints the same \
     deterministic verification queries as $(b,repro fit), so matching \
     fingerprints prove the persisted model reproduces the in-process \
     one exactly."
  in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(
      const run_predict $ common_named $ verbose_arg $ circuit_arg
      $ metric_arg $ dir_arg $ trace_arg $ metrics_arg)

let update_samples_arg =
  Arg.(
    value
    & opt int 25
    & info [ "k"; "samples" ] ~docv:"K'"
        ~doc:"Number of new late-stage samples to fold in.")

let no_check_arg =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:"Skip the cold-refit cross-check (and its timing).")

let run_update (scale_name, (cfg : Experiments.Config.t)) verbose circuit
    metric_opt k_new dir no_check durability trace metrics =
  with_obs ~trace ~metrics "repro_update" @@ fun () ->
  let progress = progress_of verbose in
  let tb = testbench_of cfg circuit in
  let metric = resolve_metric tb metric_opt in
  let meta =
    {
      Serving.Artifact.circuit;
      metric = tb.metrics.(metric);
      scale = scale_name;
      seed = cfg.seed;
    }
  in
  let root = root_of dir in
  match Serving.Store.load ~root meta with
  | Error e ->
      Printf.eprintf "%s\n(fit one first: repro fit --circuit %s --scale %s)\n"
        e circuit scale_name;
      exit 1
  | Ok artifact ->
      let k0 = Serving.Artifact.num_samples artifact in
      Printf.printf "loaded %s\n" (describe artifact);
      (* fresh samples: the stream advances with the stored revision, so
         successive updates fold in genuinely new data *)
      let master =
        Stats.Rng.create (cfg.seed + 1511 + (metric * 97) + (artifact.rev * 7919))
      in
      let rng = Stats.Rng.split master in
      let xs, f =
        Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
          ~rng ~k:k_new ()
      in
      progress (Printf.sprintf "folding in %d new samples" k_new);
      let upd = Serving.Incremental.of_artifact artifact in
      let t0 = Unix.gettimeofday () in
      Serving.Incremental.add_batch upd ~xs ~f;
      let coeffs = Serving.Incremental.coeffs upd in
      let incremental_s = Unix.gettimeofday () -. t0 in
      Printf.printf
        "incremental update: K %d -> %d in %.4f s (rank-1 bordering, no M x \
         M solve)\n"
        k0 (k0 + k_new) incremental_s;
      if not no_check then begin
        let m = Serving.Artifact.num_terms artifact in
        let t1 = Unix.gettimeofday () in
        let g_new = Polybasis.Basis.design_matrix (Serving.Artifact.basis artifact) xs in
        let g_full =
          Linalg.Mat.init (k0 + k_new) m (fun i j ->
              if i < k0 then Linalg.Mat.get artifact.g i j
              else Linalg.Mat.get g_new (i - k0) j)
        in
        let f_full = Array.append artifact.f f in
        let cold =
          Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g:g_full
            ~f:f_full ~prior:artifact.prior ~hyper:artifact.hyper ()
        in
        let refit_s = Unix.gettimeofday () -. t1 in
        let max_diff =
          Linalg.Vec.norm_inf (Linalg.Vec.sub coeffs cold)
        in
        Printf.printf
          "cold refit on %d samples: %.4f s  (speedup %.1fx)\n\
           max |incremental - refit| coefficient error: %.3g\n"
          (k0 + k_new) refit_s
          (refit_s /. Float.max 1e-9 incremental_s)
          max_diff;
        if max_diff > 1e-8 then begin
          Printf.eprintf "update check FAILED (tolerance 1e-8)\n";
          exit 1
        end
      end;
      let updated = Serving.Incremental.to_artifact upd in
      let format =
        match Serving.Store.find ~root meta with
        | Some file when Filename.check_suffix file ".json" ->
            Serving.Artifact.Json
        | _ -> Serving.Artifact.Binary
      in
      let file = Serving.Store.save ~format ~durability ~root updated in
      Printf.printf "saved %s\n  %s\n" file (describe updated);
      print_predictions updated

let update_cmd =
  let doc =
    "Fold newly arrived late-stage samples into a stored model via exact \
     rank-1 Sherman-Morrison/bordering updates of its K x K posterior \
     core — no full refit, verified against one."
  in
  Cmd.v (Cmd.info "update" ~doc)
    Term.(
      const run_update $ common_named $ verbose_arg $ circuit_arg $ metric_arg
      $ update_samples_arg $ dir_arg $ no_check_arg
      $ durability_arg ~default:`Fast $ trace_arg $ metrics_arg)

let human_bytes n =
  if n >= 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1048576.)
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%d B" n

let models_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the registry listing as one JSON object (root, per-entry \
           status and metadata) instead of the formatted table.")

let models_to_json root entries =
  let entry_json (e : Serving.Store.entry) =
    let base =
      [
        ("file", Serving.Json.Str (Filename.basename e.file));
        ("bytes", Serving.Json.Num (float_of_int e.bytes));
      ]
    in
    match e.status with
    | Ok a ->
        Serving.Json.Obj
          (base
          @ [
              ("status", Serving.Json.Str "ok");
              ("circuit", Serving.Json.Str a.meta.circuit);
              ("metric", Serving.Json.Str a.meta.metric);
              ("scale", Serving.Json.Str a.meta.scale);
              ("seed", Serving.Json.Num (float_of_int a.meta.seed));
              ("rev", Serving.Json.Num (float_of_int a.rev));
              ( "samples",
                Serving.Json.Num
                  (float_of_int (Serving.Artifact.num_samples a)) );
              ( "terms",
                Serving.Json.Num (float_of_int (Serving.Artifact.num_terms a))
              );
              ("method", Serving.Json.Str (Serving.Artifact.method_name a));
              ("hyper", Serving.Json.Num a.hyper);
              ("verify_ms", Serving.Json.Num (1e3 *. e.verify_seconds));
            ])
    | Error msg ->
        Serving.Json.Obj
          (base
          @ [
              ("status", Serving.Json.Str "corrupt");
              ("error", Serving.Json.Str msg);
            ])
  in
  Serving.Json.to_string
    (Serving.Json.Obj
       [
         ("root", Serving.Json.Str root);
         ("artifacts", Serving.Json.Arr (List.map entry_json entries));
       ])

let run_models dir json =
  let root = root_of dir in
  (* collection on: the listing's store reads feed the bmf_store_*
     counters that produce the summary line *)
  Obs.Metrics.enable ();
  let entries = Serving.Store.list ~root in
  Obs.Metrics.disable ();
  if json then print_endline (models_to_json root entries)
  else
  match entries with
  | [] -> Printf.printf "no artifacts under %s\n" root
  | entries ->
      Printf.printf "artifacts under %s:\n" root;
      List.iter
        (fun (e : Serving.Store.entry) ->
          match e.status with
          | Ok a ->
              Printf.printf "  %-48s %9s  verified %6.2f ms  %s\n"
                (Filename.basename e.file) (human_bytes e.bytes)
                (1e3 *. e.verify_seconds) (describe a)
          | Error msg ->
              Printf.printf "  %-48s %9s  CORRUPT  %s\n"
                (Filename.basename e.file) (human_bytes e.bytes) msg)
        entries;
      let counter_total name =
        match Obs.Metrics.find_counter name with
        | Some c -> Obs.Metrics.counter_value c
        | None -> 0.
      in
      Printf.printf "%d artifact(s), %s read, %.0f load(s), %.0f corrupt\n"
        (List.length entries)
        (human_bytes (int_of_float (counter_total "bmf_store_bytes_read_total")))
        (counter_total "bmf_store_loads_total")
        (counter_total "bmf_store_corrupt_total")

let models_cmd =
  let doc =
    "List the artifact registry: per-entry on-disk size, checksum \
     verification status and verification time, plus store I/O totals. \
     $(b,--json) emits the same listing machine-readably."
  in
  Cmd.v (Cmd.info "models" ~doc)
    Term.(const run_models $ dir_arg $ models_json_arg)

let run_recover dir durability =
  let root = root_of dir in
  let report = Serving.Recovery.recover ~durability ~root () in
  print_endline (Serving.Recovery.summary report);
  if not (Serving.Recovery.clean report) then exit 1

let recover_cmd =
  let doc =
    "Recover the artifact registry after a crash: sweep interrupted-save \
     temp files, checksum-verify every artifact, replay the write-ahead \
     journal tail for updates whose artifact save did not complete, and \
     reset the journal. Exits 1 when any artifact is corrupt or a replay \
     fails — the same pass $(b,repro serve) runs on startup."
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(const run_recover $ dir_arg $ durability_arg ~default:`Durable)

(* ------------------------------------------------------------------ *)
(* Serving daemon: `repro serve` / `repro client` / `repro loadgen`
   (lib/server — Wire protocol over TCP or a Unix-domain socket). *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on (or connect to) a Unix-domain socket at $(docv) instead \
           of TCP.")

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"TCP address to bind/connect.")

let port_arg =
  Arg.(
    value
    & opt int 4617
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 binds an ephemeral port and prints it).")

let address_of socket host port =
  match socket with
  | Some path -> Server.Daemon.Unix_socket path
  | None -> Server.Daemon.Tcp (host, port)

let queue_arg =
  Arg.(
    value
    & opt int Server.Daemon.default_config.Server.Daemon.queue_capacity
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Bounded request-queue capacity; a full queue answers an \
           immediate $(b,busy) error frame (explicit backpressure, never \
           unbounded buffering).")

let max_batch_arg =
  Arg.(
    value
    & opt int Server.Daemon.default_config.Server.Daemon.max_batch
    & info [ "max-batch" ] ~docv:"N"
        ~doc:
          "Maximum query points fused into one blocked predictor call per \
           micro-batch window.")

let cache_arg =
  Arg.(
    value
    & opt int Server.Daemon.default_config.Server.Daemon.cache_capacity
    & info [ "cache" ] ~docv:"N" ~doc:"Resident models (LRU eviction).")

let parse_addr_or_die what s =
  match Server.Daemon.parse_address s with
  | Some a -> a
  | None ->
      Printf.eprintf
        "bad %s address %S (want tcp://host:port or unix://path)\n" what s;
      exit 2

let follow_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "follow" ] ~docv:"ADDR"
        ~doc:
          "Start as a read-only $(b,follower) replicating from the leader \
           at $(docv) (tcp://host:port or unix://path): catch up via \
           snapshot, then apply the leader's streamed update journal with \
           the same durability contract as local updates. Serves predict \
           traffic; refuses update with $(b,not_leader) until $(b,repro \
           promote).")

let http_addr_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "http" ] ~docv:"ADDR"
        ~doc:
          "Serve a scrape endpoint at $(docv) (tcp://host:port or \
           unix://path) from the same event loop: $(b,GET /metrics) \
           (Prometheus text exposition), $(b,/health)/$(b,/healthz) \
           (role, recovery, replication lag, queue depth as JSON), \
           $(b,/ready) (503 until a follower finished catch-up) and \
           $(b,/events).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Serving shards. $(docv) = 1 (the default) runs the classic \
           single-domain loop. $(docv) >= 2 spawns $(docv) worker domains \
           that serve predict traffic from immutable model snapshots while \
           the accept/journal/replication/scrape plane stays on the main \
           domain; updates remain serialized through the single \
           write-ahead journal and responses stay bit-identical to \
           $(b,--shards 1).")

let serve_events_arg =
  Arg.(
    value & flag
    & info [ "events" ]
        ~doc:
          "Record the bounded structured event ring (promotion, recovery, \
           subscriber churn, slow requests). Dump it with $(b,repro \
           events), the $(b,events) wire opcode, or $(b,GET /events).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record server-side spans (decode, queue wait, fused kernel, \
           reply, replication apply) and write a Chrome trace-event JSON \
           file to $(docv) on drain. Spans join the distributed trace ids \
           that traced clients stamp on their frames; merge per-process \
           files with $(b,repro trace-merge).")

let run_serve verbose dir socket host port queue max_batch cache jobs
    durability metrics follow http shards events trace =
  Parallel.Pool.set_default_jobs (Stdlib.max 0 jobs);
  let _ = verbose in
  if shards < 1 then begin
    Printf.eprintf "--shards must be at least 1 (got %d)\n" shards;
    exit 2
  end;
  (* metrics collection is always on for the daemon: the `stats` opcode
     reports the live registry; --metrics additionally dumps it on exit *)
  Obs.Metrics.enable ();
  if events then Obs.Events.enable ();
  if trace <> None then Obs.Trace.start ();
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.queue_capacity = queue;
      max_batch;
      cache_capacity = Stdlib.max 1 cache;
      durability;
      http = Option.map (parse_addr_or_die "--http") http;
      shards;
    }
  in
  let follow = Option.map (parse_addr_or_die "--follow") follow in
  let t =
    Server.Daemon.create ~config ?follow ~root:(root_of dir)
      (address_of socket host port)
  in
  Server.Daemon.install_signal_handlers t;
  print_endline (Serving.Recovery.summary (Server.Daemon.recovery t));
  Format.printf
    "serving %s at %a  (queue %d, max batch %d, cache %d, -j %d, %s, \
     shards %d)@."
    (root_of dir) Server.Daemon.pp_address (Server.Daemon.address t)
    queue max_batch cache
    (Parallel.Pool.default_jobs ())
    (match durability with `Fast -> "fast" | `Durable -> "durable")
    shards;
  Option.iter
    (fun a ->
      Format.printf "scrape endpoint at %a (/metrics /health /ready /events)@."
        Server.Daemon.pp_address a)
    (Server.Daemon.http_address t);
  (match Server.Daemon.role t with
  | `Leader -> ()
  | `Follower leader ->
      Format.printf
        "follower of %a (read-only; flip with: repro promote)@."
        Server.Daemon.pp_address leader);
  Format.printf "ready; SIGTERM/SIGINT drains and exits@.";
  Server.Daemon.run t;
  Obs.Metrics.disable ();
  Option.iter
    (fun file ->
      Obs.Trace.stop ();
      Obs.Trace.write_file file;
      Printf.eprintf "trace: -> %s\n%!" file)
    trace;
  Option.iter
    (fun file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Obs.Metrics.to_prometheus ()));
      Printf.eprintf "metrics: -> %s\n%!" file)
    metrics;
  Format.printf "drained cleanly@."

let serve_cmd =
  let doc =
    "Run the micro-batching prediction daemon over the artifact registry. \
     Length-prefixed binary wire protocol (opcodes: ping, predict, \
     predict_with_variance, update, list_models, stats, subscribe, \
     promote, predict_ensemble, ensemble_stats), bounded request queue \
     with immediate $(b,busy) \
     backpressure, per-request deadlines, LRU model cache, graceful \
     drain on SIGTERM/SIGINT. $(b,--shards N) spreads serving over N \
     worker domains (one core each) with bit-identical responses. With \
     $(b,--follow) the daemon runs as a read-only replication follower. \
     $(b,--http) adds a scrape endpoint (Prometheus /metrics, /health, \
     /ready, /events), $(b,--trace) records distributed-trace spans, \
     $(b,--events) the structured event ring."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ verbose_arg $ dir_arg $ socket_arg $ host_arg
      $ port_arg $ queue_arg $ max_batch_arg $ cache_arg $ jobs_arg
      $ durability_arg ~default:`Durable $ metrics_arg $ follow_arg
      $ http_addr_arg $ shards_arg $ serve_events_arg $ serve_trace_arg)

let meta_of (scale_name, (cfg : Experiments.Config.t)) circuit metric_opt =
  let tb = testbench_of cfg circuit in
  let metric = resolve_metric tb metric_opt in
  ( tb,
    metric,
    {
      Serving.Artifact.circuit;
      metric = tb.metrics.(metric);
      scale = scale_name;
      seed = cfg.seed;
    } )

(* ------------------------------------------------------------------ *)
(* `repro ensemble`: manage BMA ensembles over the registry
   (lib/ensemble — .bmfe state files sharing the model root). *)

let ensemble_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME" ~doc:"Ensemble name.")

let occam_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "occam" ] ~docv:"R"
        ~doc:
          "Occam's-window ratio in [0, 1): members whose posterior weight \
           falls below $(docv) times the best member's are pruned to \
           weight 0 before renormalising. 0 (the default) disables the \
           window.")

let need_ensemble_name = function
  | Some n -> n
  | None ->
      prerr_endline "missing --name NAME";
      exit 2

let ensemble_resolve root (m : Serving.Artifact.meta) =
  match Serving.Store.load ~root m with
  | Ok a -> Some (a.Serving.Artifact.rev, a.Serving.Artifact.basis_dim)
  | Error _ -> None

let print_ensemble_predictions name ~seed ~members ~means ~within ~between =
  Printf.printf "ensemble %S: %d member(s), verification queries (seed %d):\n"
    name members (seed + 8191);
  Array.iteri
    (fun i v ->
      if i < 5 then
        Printf.printf "  q%-2d  %+.10g  (within %.4g, between %.4g)\n" i v
          within.(i) between.(i))
    means;
  Printf.printf "mean fingerprint (%d queries): %s\n" query_count
    (Serving.Artifact.fingerprint means);
  Printf.printf "within-variance fingerprint:  %s\n"
    (Serving.Artifact.fingerprint within);
  Printf.printf "between-variance fingerprint: %s\n"
    (Serving.Artifact.fingerprint between)

let run_ensemble common circuit metric_opt dir durability name_opt occam
    action =
  let root = root_of dir in
  match action with
  | "create" -> (
      let name = need_ensemble_name name_opt in
      match Ensemble.Store.find ~root name with
      | Some file ->
          Printf.eprintf "ensemble %S already exists (%s)\n" name file;
          exit 1
      | None -> (
          match Ensemble.State.create ~occam name with
          | state ->
              let file = Ensemble.Store.save ~durability ~root state in
              Printf.printf "created ensemble %S (occam %g) -> %s\n" name
                occam file
          | exception Invalid_argument msg ->
              Printf.eprintf "%s\n" msg;
              exit 2))
  | "add" -> (
      let name = need_ensemble_name name_opt in
      match Ensemble.Store.load ~root name with
      | Error e ->
          Printf.eprintf "%s\n(create it first: repro ensemble create --name %s)\n"
            e name;
          exit 1
      | Ok state -> (
          let _tb, _metric, meta = meta_of common circuit metric_opt in
          match Serving.Store.find ~root meta with
          | None ->
              Printf.eprintf
                "no artifact for %s/%s scale=%s seed=%d under %s\n\
                 (fit one first: repro fit --circuit %s --scale %s --seed %d)\n"
                meta.circuit meta.metric meta.scale meta.seed root
                meta.circuit meta.scale meta.seed;
              exit 1
          | Some _ -> (
              match Ensemble.State.add state meta with
              | Error e ->
                  Printf.eprintf "%s\n" e;
                  exit 1
              | Ok state ->
                  let file = Ensemble.Store.save ~durability ~root state in
                  let n = Array.length state.Ensemble.State.members in
                  Printf.printf
                    "added %s/%s scale=%s seed=%d to %S (%d member(s), \
                     evidence reset) -> %s\n"
                    meta.circuit meta.metric meta.scale meta.seed name n file;
                  if n > 1 then
                    Printf.printf
                      "canary: joins at log prior %.4g (weight ~%.2g); \
                       served updates accumulate the evidence that moves \
                       it\n"
                      Ensemble.State.canary_log_prior
                      (exp Ensemble.State.canary_log_prior))))
  | "list" -> (
      match Ensemble.Store.list ~root with
      | [] -> Printf.printf "no ensembles under %s\n" root
      | l ->
          Printf.printf "ensembles under %s:\n" root;
          List.iter
            (fun (file, status) ->
              match status with
              | Ok (s : Ensemble.State.t) ->
                  let w = Ensemble.State.weights s in
                  Printf.printf "  %-28s %S: %d member(s), occam %g\n"
                    (Filename.basename file) s.name (Array.length s.members)
                    s.occam;
                  Array.iteri
                    (fun i (m : Ensemble.State.member) ->
                      Printf.printf
                        "    w=%-8.6f ev=%+-12.6g over %6d pt(s)  \
                         %s/%s scale=%s seed=%d\n"
                        w.(i) m.log_ev m.count m.meta.circuit m.meta.metric
                        m.meta.scale m.meta.seed)
                    s.members
              | Error msg ->
                  Printf.printf "  %-28s CORRUPT  %s\n"
                    (Filename.basename file) msg)
            l)
  | "show" -> (
      let name = need_ensemble_name name_opt in
      match Ensemble.Store.load ~root name with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok s ->
          print_endline
            (Serving.Json.to_string
               (Ensemble.State.to_json ~resolve:(ensemble_resolve root) s)))
  | "predict" -> (
      let name = need_ensemble_name name_opt in
      match Ensemble.Store.load ~root name with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok s ->
          if Array.length s.Ensemble.State.members = 0 then begin
            Printf.eprintf "ensemble %S has no members\n" name;
            exit 1
          end;
          let artifacts =
            Array.map
              (fun (m : Ensemble.State.member) ->
                match Serving.Store.load ~root m.meta with
                | Ok a -> a
                | Error e ->
                    prerr_endline e;
                    exit 1)
              s.members
          in
          let first = artifacts.(0) in
          Array.iter
            (fun (a : Serving.Artifact.t) ->
              if a.basis_dim <> first.Serving.Artifact.basis_dim then begin
                Printf.eprintf
                  "member %s/%s has basis dim %d, ensemble head has %d\n"
                  a.meta.circuit a.meta.metric a.basis_dim
                  first.Serving.Artifact.basis_dim;
                exit 1
              end)
            artifacts;
          (* the same deterministic query block the daemon's
             predict_ensemble answers for: first member's key seeds it *)
          let points = query_points first in
          let predictors =
            Array.map
              (fun a -> Some (Serving.Predictor.of_artifact a))
              artifacts
          in
          let means, within, between =
            Ensemble.Predictor.predict s predictors points
          in
          print_ensemble_predictions name
            ~seed:first.Serving.Artifact.meta.seed
            ~members:(Array.length s.members) ~means ~within ~between)
  | s ->
      Printf.eprintf
        "unknown action %S (want create|add|list|show|predict)\n" s;
      exit 2

let ensemble_action_arg =
  Arg.(
    value
    & pos 0 string "list"
    & info [] ~docv:"ACTION" ~doc:"create | add | list | show | predict")

let ensemble_cmd =
  let doc =
    "Manage Bayesian-model-averaging ensembles over the artifact \
     registry. $(b,create) a named ensemble, $(b,add) a member artifact \
     — the founding member starts at full weight, later ones join as \
     near-zero-weight canaries and every add resets the accumulated \
     evidence so weights stay likelihood ratios over shared data. \
     $(b,list)/$(b,show) print the weight and evidence state (show as \
     JSON), and $(b,predict) computes the offline BMA reference — \
     weighted mean plus decomposed within/between variance — whose \
     fingerprints the daemon's $(b,predict_ensemble) opcode must \
     reproduce bit-for-bit."
  in
  Cmd.v (Cmd.info "ensemble" ~doc)
    Term.(
      const run_ensemble $ common_named $ circuit_arg $ metric_arg $ dir_arg
      $ durability_arg ~default:`Fast $ ensemble_name_arg $ occam_arg
      $ ensemble_action_arg)

let client_action_arg =
  Arg.(
    value
    & pos 0 string "ping"
    & info [] ~docv:"ACTION"
        ~doc:
          "ping | models | stats | events | predict | predict-std | update \
           | predict-ensemble | ensemble-stats")

let die_error what (e : Server.Wire.error) =
  Printf.eprintf "%s: %s: %s\n" what
    (Server.Wire.error_code_name e.Server.Wire.code)
    e.Server.Wire.message;
  exit 1

let client_queries (info : Server.Wire.model_info) =
  let rng = Stats.Rng.create (info.Server.Wire.meta.Serving.Artifact.seed + 8191) in
  Linalg.Mat.of_rows
    (List.init query_count (fun _ ->
         Stats.Rng.gaussian_vec rng info.Server.Wire.dim))

let find_model c (meta : Serving.Artifact.meta) =
  match Server.Client.list_models c with
  | Error e -> die_error "list_models" e
  | Ok infos -> (
      match
        List.find_opt
          (fun (i : Server.Wire.model_info) -> i.Server.Wire.meta = meta)
          infos
      with
      | Some i -> i
      | None ->
          Printf.eprintf
            "daemon serves no model %s/%s scale=%s seed=%d (try: repro \
             client models)\n"
            meta.circuit meta.metric meta.scale meta.seed;
          exit 1)

let die_transport msg =
  Printf.eprintf "%s\n(is the daemon running? start one: repro serve)\n" msg;
  exit 1

let rec run_client common _verbose socket host port deadline_ms trace ename
    action =
  (* --trace wraps the call in a cli span and stamps its (trace, span)
     context on the wire frame — the daemon's spans join this trace *)
  with_obs ~trace ~metrics:None "repro_client" @@ fun () ->
  try run_client_exn common socket host port deadline_ms ename action
  with Server.Client.Transport msg -> die_transport msg

and run_client_exn common socket host port deadline_ms ename action =
  let addr = address_of socket host port in
  let c = Server.Client.connect ~retries:0 addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  match action with
  | "ping" -> (
      let t0 = Unix.gettimeofday () in
      match Server.Client.ping c with
      | Ok () ->
          Printf.printf "pong (%.2f ms)\n"
            (1e3 *. (Unix.gettimeofday () -. t0))
      | Error e -> die_error "ping" e)
  | "models" -> (
      match Server.Client.list_models c with
      | Error e -> die_error "list_models" e
      | Ok [] -> print_endline "no models served"
      | Ok infos ->
          List.iter
            (fun (i : Server.Wire.model_info) ->
              Printf.printf
                "%-32s %s/%s scale=%s seed=%d rev=%d K=%d M=%d dim=%d (%s)\n"
                i.Server.Wire.file i.Server.Wire.meta.Serving.Artifact.circuit
                i.Server.Wire.meta.Serving.Artifact.metric
                i.Server.Wire.meta.Serving.Artifact.scale
                i.Server.Wire.meta.Serving.Artifact.seed i.Server.Wire.rev
                i.Server.Wire.samples i.Server.Wire.terms i.Server.Wire.dim
                (human_bytes i.Server.Wire.bytes))
            infos)
  | "events" -> (
      match Server.Client.events c with
      | Error e -> die_error "events" e
      | Ok json -> print_endline json)
  | "stats" -> (
      match Server.Client.stats c with
      | Error e -> die_error "stats" e
      | Ok s ->
          Printf.printf
            "uptime: %.1f s, requests served: %.0f, updates replayed by \
             recovery: %.0f\nrole: %s, journal offset: %d, shards: %d\n%s\n"
            s.Server.Client.uptime_s s.Server.Client.requests
            s.Server.Client.recovered_updates s.Server.Client.role
            s.Server.Client.journal_seq s.Server.Client.shards
            s.Server.Client.metrics_json)
  | "predict" | "predict-std" -> (
      let _, _, meta = common in
      let info = find_model c meta in
      let queries = client_queries info in
      let means, stds =
        if action = "predict" then
          match Server.Client.predict c ?deadline_ms meta queries with
          | Error e -> die_error "predict" e
          | Ok means -> (means, None)
        else
          match Server.Client.predict_with_std c ?deadline_ms meta queries with
          | Error e -> die_error "predict_with_variance" e
          | Ok (means, stds) -> (means, Some stds)
      in
      Printf.printf "verification queries (seed %d):\n"
        (meta.Serving.Artifact.seed + 8191);
      Array.iteri
        (fun i v ->
          if i < 5 then
            match stds with
            | None -> Printf.printf "  q%-2d  %+.10g\n" i v
            | Some s -> Printf.printf "  q%-2d  %+.10g  (+/- %.4g)\n" i v s.(i))
        means;
      Printf.printf "prediction fingerprint (%d queries): %s\n" query_count
        (Serving.Artifact.fingerprint means))
  | "update" -> (
      let tb, metric, meta = common in
      let info = find_model c meta in
      (* same revision-keyed sample stream as `repro update`, so daemon-
         side updates fold in the same fresh data a local update would *)
      let master =
        Stats.Rng.create
          (meta.Serving.Artifact.seed + 1511 + (metric * 97)
          + (info.Server.Wire.rev * 7919))
      in
      let rng = Stats.Rng.split master in
      let xs, f =
        Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
          ~rng ~k:25 ()
      in
      match Server.Client.update c ?deadline_ms meta ~xs ~f with
      | Error e -> die_error "update" e
      | Ok (rev, samples) ->
          Printf.printf "updated: rev %d -> %d, K -> %d\n"
            info.Server.Wire.rev rev samples)
  | "ensemble-stats" -> (
      match
        Server.Client.ensemble_stats c
          ~name:(Option.value ename ~default:"")
          ()
      with
      | Error e -> die_error "ensemble_stats" e
      | Ok json -> print_endline json)
  | "predict-ensemble" -> (
      let name = need_ensemble_name ename in
      (* the daemon's stats payload names the first member's (seed, dim),
         enough to regenerate the same deterministic query block the
         offline `repro ensemble predict` reference uses — matching
         fingerprints prove the served BMA path is bit-exact *)
      match Server.Client.ensemble_stats c ~name () with
      | Error e -> die_error "ensemble_stats" e
      | Ok json ->
          let doc =
            match Serving.Json.of_string json with
            | Ok d -> d
            | Error msg ->
                Printf.eprintf "bad ensemble_stats payload: %s\n" msg;
                exit 1
          in
          let first =
            match Serving.Json.member "members" doc with
            | Some (Serving.Json.Arr (m :: _)) -> m
            | _ ->
                Printf.eprintf "ensemble %S has no members\n" name;
                exit 1
          in
          let num key =
            match Serving.Json.member key first with
            | Some (Serving.Json.Num v) -> int_of_float v
            | _ ->
                Printf.eprintf
                  "ensemble %S: first member lacks %S (is its artifact \
                   loadable daemon-side?)\n"
                  name key;
                exit 1
          in
          let seed = num "seed" and dim = num "dim" in
          let rng = Stats.Rng.create (seed + 8191) in
          let queries =
            Linalg.Mat.of_rows
              (List.init query_count (fun _ ->
                   Stats.Rng.gaussian_vec rng dim))
          in
          let members =
            match Serving.Json.member "members" doc with
            | Some (Serving.Json.Arr l) -> List.length l
            | _ -> 0
          in
          (match
             Server.Client.predict_ensemble c ?deadline_ms ~name queries
           with
          | Error e -> die_error "predict_ensemble" e
          | Ok (means, within, between) ->
              print_ensemble_predictions name ~seed ~members ~means ~within
                ~between))
  | s ->
      Printf.eprintf
        "unknown action %S (want ping|models|stats|events|predict|\
         predict-std|update|predict-ensemble|ensemble-stats)\n"
        s;
      exit 2

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline; requests still queued when it expires get \
           a $(b,deadline_exceeded) error frame.")

let client_common =
  Term.(
    const (fun common circuit metric -> meta_of common circuit metric)
    $ common_named $ circuit_arg $ metric_arg)

let client_cmd =
  let doc =
    "One-shot wire-protocol client for $(b,repro serve). $(b,predict) \
     sends the same deterministic verification queries as $(b,repro \
     fit)/$(b,repro predict) — matching fingerprints prove the daemon \
     serves the exact artifact bits. $(b,predict-ensemble) does the same \
     against the BMA path: its fingerprints must match $(b,repro \
     ensemble predict --name) offline; $(b,ensemble-stats) dumps (and \
     refreshes from disk) the daemon's weight/evidence state."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run_client $ client_common $ verbose_arg $ socket_arg $ host_arg
      $ port_arg $ deadline_arg $ trace_arg $ ensemble_name_arg
      $ client_action_arg)

let run_promote socket host port =
  let addr = address_of socket host port in
  try
    let c = Server.Client.connect ~retries:0 addr in
    Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
    match Server.Client.promote c with
    | Error e -> die_error "promote" e
    | Ok (was_follower, seq) ->
        if was_follower then
          Printf.printf
            "promoted to leader at journal sequence %d; updates are \
             accepted here now\n"
            seq
        else Printf.printf "already the leader (journal sequence %d)\n" seq
  with Server.Client.Transport msg -> die_transport msg

let promote_cmd =
  let doc =
    "Promote the daemon at the given address to replication leader. On a \
     follower this finishes applying the buffered leader stream, drops \
     the leader link and starts accepting $(b,update) requests — the \
     failover move after the old leader died. On a leader it is a no-op."
  in
  Cmd.v (Cmd.info "promote" ~doc)
    Term.(const run_promote $ socket_arg $ host_arg $ port_arg)

let connections_arg =
  Arg.(
    value
    & opt int 4
    & info [ "connections"; "c" ] ~docv:"N"
        ~doc:"Closed-loop connections (one domain each).")

let duration_arg =
  Arg.(
    value
    & opt float 5.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Measurement window.")

let batch_arg =
  Arg.(
    value
    & opt int 64
    & info [ "batch" ] ~docv:"N" ~doc:"Query points per request.")

let with_std_arg =
  Arg.(
    value & flag
    & info [ "with-std" ]
        ~doc:"Request predictive standard deviations too.")

let loadgen_json_arg =
  Arg.(
    value
    & opt string "loadgen.json"
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the throughput/latency record as JSON to $(docv).")

let endpoint_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "endpoint" ] ~docv:"ADDR"
        ~doc:
          "Additional replica endpoint (tcp://host:port or unix://path); \
           repeatable. Connections round-robin over the primary address \
           and every $(docv) — point them at a leader and its followers \
           to measure replicated read fan-out.")

let update_every_arg =
  Arg.(
    value
    & opt int 0
    & info [ "update-every" ] ~docv:"N"
        ~doc:
          "Turn every $(docv)-th request of each connection into an \
           $(b,update) carrying a few random observation rows (mutates \
           the served model — scratch stores only; updates must reach \
           the leader). 0 disables. The report then breaks latency down \
           per opcode.")

let stats_every_arg =
  Arg.(
    value
    & opt int 0
    & info [ "stats-every" ] ~docv:"N"
        ~doc:
          "Mix one $(b,stats) request into every $(docv) requests of \
           each connection. 0 disables.")

let loadgen_ensemble_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ensemble" ] ~docv:"NAME"
        ~doc:
          "Route every second predict slot through $(b,predict_ensemble) \
           against the ensemble $(docv) (same points matrix) — contrasts \
           single-model and BMA serving latency under one load; the \
           report gains a $(b,predict_ensemble) breakdown.")

let run_loadgen common _verbose socket host port connections duration batch
    with_std deadline_ms update_every stats_every ensemble trace json_file
    endpoints =
  let _, _, meta = common in
  with_obs ~trace ~metrics:None "repro_loadgen" @@ fun () ->
  let addrs =
    address_of socket host port
    :: List.map (parse_addr_or_die "--endpoint") endpoints
  in
  let summary =
    try
      Server.Loadgen.run ~connections ~duration_s:duration ~batch ~with_std
        ?deadline_ms ~update_every ~stats_every ?ensemble ~meta addrs
    with
    | Server.Client.Transport msg -> die_transport msg
    | Failure msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  Format.printf "%a@." Server.Loadgen.pp summary;
  let oc = open_out json_file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Server.Loadgen.to_json summary);
      output_char oc '\n');
  Printf.printf "loadgen record -> %s\n" json_file

let loadgen_cmd =
  let doc =
    "Closed-loop multi-connection load generator against $(b,repro serve): \
     measures sustained throughput and latency percentiles and records \
     them as a bench-style JSON file. $(b,--update-every)/\
     $(b,--stats-every) mix write and admin traffic into the predict \
     load and report per-opcode latency; $(b,--ensemble) interleaves \
     BMA predictions; $(b,--trace) records client spans whose context \
     propagates into the daemon's trace."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run_loadgen $ client_common $ verbose_arg $ socket_arg $ host_arg
      $ port_arg $ connections_arg $ duration_arg $ batch_arg $ with_std_arg
      $ deadline_arg $ update_every_arg $ stats_every_arg
      $ loadgen_ensemble_arg $ trace_arg $ loadgen_json_arg $ endpoint_arg)

(* ------------------------------------------------------------------ *)
(* `repro events`: dump a daemon's structured event ring.              *)

let events_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the event dump to $(docv) instead of stdout.")

let run_events socket host port json_file =
  let addr = address_of socket host port in
  try
    let c = Server.Client.connect ~retries:0 addr in
    Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
    match Server.Client.events c with
    | Error e -> die_error "events" e
    | Ok json -> (
        match json_file with
        | None -> print_endline json
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc json;
                output_char oc '\n');
            Printf.printf "events -> %s\n" file)
  with Server.Client.Transport msg -> die_transport msg

let events_cmd =
  let doc =
    "Dump the structured event ring of the daemon at the given address \
     (start it with $(b,repro serve --events)): promotions, recovery, \
     subscriber connect/drop, link up/down, snapshot installs and slow \
     requests, as JSON with a total-emitted counter and drop count."
  in
  Cmd.v (Cmd.info "events" ~doc)
    Term.(
      const run_events $ socket_arg $ host_arg $ port_arg $ events_json_arg)

(* ------------------------------------------------------------------ *)
(* `repro trace-merge`: stitch per-process Chrome traces into one
   timeline. Every process of a fleet runs on the same host clock
   (CLOCK_MONOTONIC via Obs.Clock), so timestamps are directly
   comparable and no shifting is needed — each input file just becomes
   its own pid row, and the shared trace_id args let the viewer (and
   greps) follow one request across client, leader and follower.       *)

let merge_out_arg =
  Arg.(
    value
    & opt string "merged-trace.json"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the merged Chrome trace to $(docv).")

let merge_inputs_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"TRACE.json"
        ~doc:
          "Per-process trace files (from $(b,--trace) on repro \
           serve/client/loadgen), in any order.")

let run_trace_merge out inputs =
  let read_file f = In_channel.with_open_bin f In_channel.input_all in
  let merged = ref [] (* reverse order *) in
  let spans = ref 0 in
  List.iteri
    (fun i file ->
      let pid = i + 1 in
      let doc =
        match Serving.Json.of_string (read_file file) with
        | Ok d -> d
        | Error msg ->
            Printf.eprintf "%s: parse error: %s\n" file msg;
            exit 1
      in
      let evs =
        match Serving.Json.member "traceEvents" doc with
        | Some (Serving.Json.Arr l) -> l
        | _ ->
            Printf.eprintf "%s: no traceEvents array\n" file;
            exit 1
      in
      (* label the row with the source file *)
      merged :=
        Serving.Json.Obj
          [
            ("name", Serving.Json.Str "process_name");
            ("ph", Serving.Json.Str "M");
            ("pid", Serving.Json.Num (float_of_int pid));
            ( "args",
              Serving.Json.Obj
                [ ("name", Serving.Json.Str (Filename.basename file)) ] );
          ]
        :: !merged;
      List.iter
        (fun ev ->
          incr spans;
          let retagged =
            match ev with
            | Serving.Json.Obj fields ->
                Serving.Json.Obj
                  (List.map
                     (fun (k, v) ->
                       if k = "pid" then
                         (k, Serving.Json.Num (float_of_int pid))
                       else (k, v))
                     fields)
            | v -> v
          in
          merged := retagged :: !merged)
        evs)
    inputs;
  let doc =
    Serving.Json.Obj
      [
        ("displayTimeUnit", Serving.Json.Str "ms");
        ("traceEvents", Serving.Json.Arr (List.rev !merged));
      ]
  in
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Serving.Json.to_string doc));
  Printf.printf "merged %d event(s) from %d trace(s) -> %s\n" !spans
    (List.length inputs) out

let trace_merge_cmd =
  let doc =
    "Merge per-process Chrome trace files (client, leader, follower) \
     into one timeline: each input becomes its own process row; the \
     $(b,trace_id) args stamped by wire-level trace propagation let \
     chrome://tracing or Perfetto follow one update from the client \
     span through the daemon's queue/kernel spans to the follower's \
     replication apply. All processes must share a host (one monotonic \
     clock)."
  in
  Cmd.v (Cmd.info "trace-merge" ~doc)
    Term.(const run_trace_merge $ merge_out_arg $ merge_inputs_arg)

(* ------------------------------------------------------------------ *)
(* `repro stats`: one fully instrumented fit + batch predict, followed
   by the numerical-health readout and the metrics exposition. *)

let gauge_line label name =
  match Obs.Metrics.find_gauge name with
  | Some g when Obs.Metrics.gauge_is_set g ->
      Printf.printf "  %-28s %.6g\n" label (Obs.Metrics.gauge_value g)
  | _ -> Printf.printf "  %-28s (not recorded)\n" label

let run_stats (scale_name, (cfg : Experiments.Config.t)) verbose circuit
    metric_opt k trace metrics =
  let progress = progress_of verbose in
  let tb = testbench_of cfg circuit in
  let metric = resolve_metric tb metric_opt in
  Obs.Trace.start ();
  Obs.Metrics.enable ();
  let artifact =
    Obs.Trace.with_span ~cat:"cli" "repro_stats" @@ fun _ ->
    progress "fitting early-stage model (prior)";
    let prep = Experiments.Runner.prepare cfg tb ~metric in
    let data_rng, cv_rng = fit_rngs cfg ~metric in
    let xs, f =
      Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
        ~rng:data_rng ~k ()
    in
    let g = Polybasis.Basis.design_matrix prep.late_basis xs in
    progress (Printf.sprintf "fusing %d late-stage samples (BMF-PS)" k);
    let config = { Bmf.Fusion.default_config with cv_folds = cfg.cv_folds } in
    let fitted =
      Bmf.Fusion.fit_design ~rng:cv_rng ~config ~early:prep.early ~g ~f
        Bmf.Fusion.Bmf_ps
    in
    let meta =
      {
        Serving.Artifact.circuit;
        metric = tb.metrics.(metric);
        scale = scale_name;
        seed = cfg.seed;
      }
    in
    let artifact =
      Serving.Artifact.of_fit ~meta ~basis:prep.late_basis ~prior:fitted.prior
        ~hyper:fitted.hyper ~cv_error:fitted.cv_error ~g ~f ()
    in
    let pred = Serving.Predictor.of_artifact artifact in
    ignore (Serving.Predictor.predict_with_std pred (query_points artifact));
    artifact
  in
  Obs.Trace.stop ();
  Obs.Metrics.disable ();
  Printf.printf "instrumented fit: %s\n\n" (describe artifact);
  Printf.printf "numerical health:\n";
  gauge_line "samples (K)" "bmf_fit_samples";
  gauge_line "basis terms (M)" "bmf_fit_terms";
  gauge_line "prior nonzero mean" "bmf_fit_prior_nonzero_mean";
  gauge_line "selected hyper" "bmf_fit_hyper";
  gauge_line "cv error" "bmf_fit_cv_error";
  gauge_line "cv residual norm" "bmf_cv_residual_norm";
  gauge_line "woodbury core cond est" "bmf_fit_woodbury_cond";
  gauge_line "cholesky cond est" "bmf_fit_cholesky_cond";
  gauge_line "min cholesky pivot" "bmf_map_solve_pivot_min";
  gauge_line "train residual norm" "bmf_fit_train_residual_norm";
  gauge_line "train residual (rel)" "bmf_fit_train_residual_rel";
  let spans, instants =
    List.fold_left
      (fun (s, i) ev ->
        match ev with
        | Obs.Trace.Complete _ -> (s + 1, i)
        | Obs.Trace.Instant _ -> (s, i + 1))
      (0, 0) (Obs.Trace.events ())
  in
  Printf.printf "\ntrace: %d spans, %d instants recorded\n" spans instants;
  Option.iter
    (fun file ->
      Obs.Trace.write_file file;
      Printf.printf "trace written to %s\n" file)
    trace;
  let exposition = Obs.Metrics.to_prometheus () in
  Option.iter
    (fun file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc exposition);
      Printf.printf "metrics written to %s\n" file)
    metrics;
  Printf.printf "\nmetrics:\n%s" exposition

let stats_cmd =
  let doc =
    "Run one fully instrumented BMF-PS fit and batch predict (nothing is \
     persisted), then print the numerical-health telemetry — condition \
     estimates, Cholesky pivots, residual norms, prior-selection outcome \
     — and the full Prometheus metrics exposition."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run_stats $ common_named $ verbose_arg $ circuit_arg $ metric_arg
      $ fit_samples_arg $ trace_arg $ metrics_arg)

let () =
  let doc =
    "Reproduction of 'Bayesian Model Fusion: Large-Scale Performance \
     Modeling of Analog and Mixed-Signal Circuits by Reusing Early-Stage \
     Data' (DAC 2013 / TCAD 2016)."
  in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table_cmd;
            fig_cmd;
            all_cmd;
            ablation_cmd;
            info_cmd;
            fit_cmd;
            predict_cmd;
            update_cmd;
            models_cmd;
            ensemble_cmd;
            recover_cmd;
            serve_cmd;
            promote_cmd;
            client_cmd;
            loadgen_cmd;
            events_cmd;
            trace_merge_cmd;
            stats_cmd;
          ]))
