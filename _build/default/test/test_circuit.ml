(* Unit tests for the circuit substrate: MNA, RC networks, process/
   device models, netlists, and the two benchmark circuits. *)

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Mna *)

let test_mna_voltage_divider () =
  (* 10V source over two 1k resistors: midpoint at 5V *)
  let c = Circuit.Mna.create ~nodes:3 in
  Circuit.Mna.add c (Circuit.Mna.Voltage_source { plus = 1; minus = 0; volts = 10. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 1; b = 2; ohms = 1000. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 2; b = 0; ohms = 1000. });
  let s = Circuit.Mna.solve c in
  check_float "midpoint" 5. (Circuit.Mna.voltage s 2);
  check_float "top" 10. (Circuit.Mna.voltage s 1);
  (* source current: 10V / 2k = 5 mA flowing out of + through circuit *)
  Alcotest.(check (float 1e-9)) "branch current" (-0.005)
    (Circuit.Mna.source_current s 0)

let test_mna_current_source () =
  (* 1A into a 2-ohm resistor to ground: 2V *)
  let c = Circuit.Mna.create ~nodes:2 in
  Circuit.Mna.add c
    (Circuit.Mna.Current_source { from_node = 0; to_node = 1; amps = 1. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 1; b = 0; ohms = 2. });
  let s = Circuit.Mna.solve c in
  check_float "ohm's law" 2. (Circuit.Mna.voltage s 1)

let test_mna_parallel_resistors () =
  let c = Circuit.Mna.create ~nodes:2 in
  Circuit.Mna.add c
    (Circuit.Mna.Current_source { from_node = 0; to_node = 1; amps = 3. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 1; b = 0; ohms = 6. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 1; b = 0; ohms = 3. });
  let s = Circuit.Mna.solve c in
  (* parallel 6 || 3 = 2 ohm, so 6V *)
  check_float "parallel" 6. (Circuit.Mna.voltage s 1)

let test_mna_resistance_between () =
  let c = Circuit.Mna.create ~nodes:3 in
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 0; b = 1; ohms = 100. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 1; b = 2; ohms = 50. });
  Alcotest.(check (float 1e-6)) "series" 150.
    (Circuit.Mna.resistance_between c 0 2);
  Alcotest.(check (float 1e-6)) "self" 0. (Circuit.Mna.resistance_between c 1 1)

let test_mna_kcl_conservation () =
  (* net current out of every non-source node is zero *)
  let rng = Stats.Rng.create 4 in
  let c = Circuit.Mna.create ~nodes:5 in
  for a = 0 to 4 do
    for b = a + 1 to 4 do
      Circuit.Mna.add c
        (Circuit.Mna.Resistor
           { a; b; ohms = 10. +. (90. *. Stats.Rng.float rng) })
    done
  done;
  Circuit.Mna.add c
    (Circuit.Mna.Current_source { from_node = 0; to_node = 3; amps = 2. });
  let s = Circuit.Mna.solve c in
  (* check KCL at node 1 (no source attached): sum of currents = 0 *)
  let v n = Circuit.Mna.voltage s n in
  (* reconstruct currents through the resistors built above *)
  let total = ref 0. in
  let rng = Stats.Rng.create 4 in
  for a = 0 to 4 do
    for b = a + 1 to 4 do
      let ohms = 10. +. (90. *. Stats.Rng.float rng) in
      if a = 1 then total := !total +. ((v 1 -. v b) /. ohms)
      else if b = 1 then total := !total +. ((v 1 -. v a) /. ohms)
    done
  done;
  Alcotest.(check (float 1e-9)) "KCL at node 1" 0. !total

let test_mna_validation () =
  let c = Circuit.Mna.create ~nodes:2 in
  Alcotest.check_raises "node range" (Invalid_argument "Mna: node 5 out of range")
    (fun () ->
      Circuit.Mna.add c (Circuit.Mna.Resistor { a = 0; b = 5; ohms = 1. }));
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Mna.add: resistance must be positive") (fun () ->
      Circuit.Mna.add c (Circuit.Mna.Resistor { a = 0; b = 1; ohms = 0. }))

let test_mna_floating_node_fails () =
  let c = Circuit.Mna.create ~nodes:3 in
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 0; b = 1; ohms = 1. });
  (* node 2 floats *)
  check_bool "fails" true
    (try
       ignore (Circuit.Mna.solve c);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Rc_network *)

let test_rc_chain_structure () =
  let t = Circuit.Rc_network.chain ~segments:4 ~r_per_segment:10. ~c_per_segment:2. in
  check_int "nodes" 5 (Circuit.Rc_network.node_count t);
  check_int "edges" 4 (Circuit.Rc_network.edge_count t);
  check_float "total cap" 8. (Circuit.Rc_network.total_capacitance t);
  check_float "path to end" 40. (Circuit.Rc_network.path_resistance t 4)

let test_rc_chain_elmore_closed_form () =
  (* uniform ladder: elmore at node n = sum_k C r min(n,k)... for the
     far end with equal R, C: sum_{k=1..n} C * (R * k) = R C n(n+1)/2 *)
  let n = 5 in
  let t = Circuit.Rc_network.chain ~segments:n ~r_per_segment:2. ~c_per_segment:3. in
  let expected = 2. *. 3. *. float_of_int (n * (n + 1) / 2) in
  check_float "ladder elmore" expected (Circuit.Rc_network.elmore_delay t n)

let test_rc_elmore_monotone_along_chain () =
  let t = Circuit.Rc_network.chain ~segments:6 ~r_per_segment:1. ~c_per_segment:1. in
  for node = 1 to 5 do
    check_bool "monotone" true
      (Circuit.Rc_network.elmore_delay t node
      < Circuit.Rc_network.elmore_delay t (node + 1))
  done;
  check_float "worst is far end"
    (Circuit.Rc_network.elmore_delay t 6)
    (Circuit.Rc_network.worst_elmore t)

let test_rc_scaling_hooks () =
  let t = Circuit.Rc_network.chain ~segments:3 ~r_per_segment:1. ~c_per_segment:1. in
  let doubled = Circuit.Rc_network.elmore_delay ~r_scale:(fun _ -> 2.) t 3 in
  check_float "r scale doubles" (2. *. Circuit.Rc_network.elmore_delay t 3) doubled;
  let cap = Circuit.Rc_network.total_capacitance ~c_scale:(fun _ -> 0.5) t in
  check_float "c scale halves" 1.5 cap

let test_rc_mna_path_resistance_agrees () =
  (* in a tree, MNA effective resistance = path resistance *)
  let rng = Stats.Rng.create 6 in
  let t = Circuit.Rc_network.random_tree rng ~nodes:9 ~r_nominal:100. ~c_nominal:1. in
  let circuit = Circuit.Rc_network.to_mna t in
  for node = 1 to 8 do
    let path = Circuit.Rc_network.path_resistance t node in
    let eff = Circuit.Mna.resistance_between circuit 0 node in
    check_bool "tree resistance" true (Float.abs (path -. eff) /. path < 1e-6)
  done

let test_rc_effective_rc_positive_and_scales () =
  let rng = Stats.Rng.create 8 in
  let t = Circuit.Rc_network.random_tree rng ~nodes:6 ~r_nominal:50. ~c_nominal:0.5 in
  let base = Circuit.Rc_network.effective_rc t in
  check_bool "positive" true (base > 0.);
  let bigger = Circuit.Rc_network.effective_rc ~c_scale:(fun _ -> 2.) t in
  Alcotest.(check (float 1e-6)) "cap doubling doubles rc" (2. *. base) bigger

let test_rc_validation () =
  Alcotest.check_raises "tiny tree"
    (Invalid_argument "Rc_network.random_tree: need >= 2 nodes") (fun () ->
      ignore
        (Circuit.Rc_network.random_tree (Stats.Rng.create 0) ~nodes:1
           ~r_nominal:1. ~c_nominal:1.))

(* ------------------------------------------------------------------ *)
(* Process / Device *)

let test_process_allocation () =
  let p = Circuit.Process.create ~interdie:3 in
  check_int "initial" 3 (Circuit.Process.total_vars p);
  Alcotest.(check (array int)) "interdie" [| 0; 1; 2 |]
    (Circuit.Process.interdie_vars p);
  let a = Circuit.Process.alloc_device p ~count:4 in
  Alcotest.(check (array int)) "first block" [| 3; 4; 5; 6 |] a;
  let b = Circuit.Process.alloc_device p ~count:2 in
  Alcotest.(check (array int)) "second block" [| 7; 8 |] b;
  check_int "total" 9 (Circuit.Process.total_vars p)

let test_device_schematic_shift_linear () =
  let rng = Stats.Rng.create 10 in
  let p = Circuit.Process.create ~interdie:1 in
  let d =
    Circuit.Device.make ~rng ~process:p ~name:"M1" ~fingers:1
      ~vars_per_device:4
      ~interdie_sens:[ (0, 0.01) ]
      Circuit.Device.default_profile
  in
  let n = Circuit.Process.total_vars p in
  (* shift is exactly the linear form given by schematic_coefficients *)
  let x = Stats.Rng.gaussian_vec rng n in
  let expected =
    List.fold_left
      (fun acc (v, s) -> acc +. (s *. x.(v)))
      0.
      (Circuit.Device.schematic_coefficients d)
  in
  Alcotest.(check (float 1e-12)) "linear form" expected
    (Circuit.Device.schematic_shift d x);
  check_float "zero at nominal" 0.
    (Circuit.Device.schematic_shift d (Array.make n 0.))

let test_device_layout_variance_preserved () =
  (* with no discrepancy and no imbalance, the layout shift over the
     finger-expanded standard normals has the same variance as the
     schematic shift: check via the exact coefficient algebra on a
     probe basis *)
  let rng = Stats.Rng.create 11 in
  let p = Circuit.Process.create ~interdie:0 in
  let profile =
    { Circuit.Device.mismatch_sigma = 0.05;
      layout_discrepancy = 0.;
      finger_imbalance = 0. }
  in
  let fingers = 3 in
  let d =
    Circuit.Device.make ~rng ~process:p ~name:"M" ~fingers ~vars_per_device:5
      profile
  in
  let n_sch = Circuit.Process.total_vars p in
  let spec = Array.make n_sch fingers in
  let pm = Bmf.Prior_mapping.create spec in
  let n_lay = Bmf.Prior_mapping.late_dim pm in
  (* probe each layout variable: coefficient = sens / sqrt(fingers) *)
  let coeffs = Circuit.Device.schematic_coefficients d in
  Array.iteri
    (fun _ _ -> ())
    (Circuit.Device.vars d);
  List.iter
    (fun (v, s) ->
      for finger = 0 to fingers - 1 do
        let probe = Array.make n_lay 0. in
        probe.(Bmf.Prior_mapping.late_var pm ~sch:v ~finger) <- 1.;
        Alcotest.(check (float 1e-12))
          "per-finger coefficient = s/sqrt(w)"
          (s /. sqrt (float_of_int fingers))
          (Circuit.Device.layout_shift d pm probe)
      done)
    coeffs

let test_device_layout_discrepancy_changes_coeffs () =
  let rng = Stats.Rng.create 12 in
  let p = Circuit.Process.create ~interdie:0 in
  let profile =
    { Circuit.Device.mismatch_sigma = 0.05;
      layout_discrepancy = 0.5;
      finger_imbalance = 0. }
  in
  let d =
    Circuit.Device.make ~rng ~process:p ~name:"M" ~fingers:1 ~vars_per_device:3
      profile
  in
  let pm = Bmf.Prior_mapping.identity (Circuit.Process.total_vars p) in
  let probe = [| 1.; 0.; 0. |] in
  let sch = Circuit.Device.schematic_shift d probe in
  let lay = Circuit.Device.layout_shift d pm probe in
  check_bool "perturbed" true (Float.abs (sch -. lay) > 1e-6)

(* ------------------------------------------------------------------ *)
(* Netlist *)

let test_netlist_counts () =
  let n = Circuit.Netlist.create ~name:"test" in
  Circuit.Netlist.add n
    { Circuit.Netlist.ref_name = "M1"; kind = "nmos"; ports = []; params = [] };
  Circuit.Netlist.add n
    { Circuit.Netlist.ref_name = "M2"; kind = "nmos"; ports = []; params = [] };
  Circuit.Netlist.add n
    { Circuit.Netlist.ref_name = "R1"; kind = "res"; ports = []; params = [] };
  check_int "nmos" 2 (Circuit.Netlist.count_kind n "nmos");
  check_int "res" 1 (Circuit.Netlist.count_kind n "res");
  check_int "absent" 0 (Circuit.Netlist.count_kind n "pmos");
  Alcotest.(check (list (pair string int))) "kinds" [ ("nmos", 2); ("res", 1) ]
    (Circuit.Netlist.kinds n);
  check_int "entries ordered" 3 (List.length (Circuit.Netlist.entries n))

(* ------------------------------------------------------------------ *)
(* Ring oscillator *)

let small_ro_config =
  { Circuit.Ring_oscillator.default_config with stages = 5; vars_per_device = 6 }

let test_ro_dimensions () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 1 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let cfg = small_ro_config in
  let expected_sch = cfg.interdie + (cfg.stages * 2 * cfg.vars_per_device) in
  check_int "schematic dim" expected_sch tb.Circuit.Testbench.schematic_dim;
  let expected_lay =
    cfg.interdie
    + (cfg.stages * 2 * cfg.vars_per_device * cfg.fingers)
    + (cfg.stages * 2 * (cfg.parasitic_nodes - 1))
  in
  check_int "layout dim" expected_lay tb.Circuit.Testbench.layout_dim;
  check_int "metrics" 3 (Array.length tb.metrics)

let test_ro_deterministic () =
  let ro1 = Circuit.Ring_oscillator.create ~config:small_ro_config 5 in
  let ro2 = Circuit.Ring_oscillator.create ~config:small_ro_config 5 in
  let tb1 = Circuit.Ring_oscillator.testbench ro1 in
  let tb2 = Circuit.Ring_oscillator.testbench ro2 in
  let x = Stats.Rng.gaussian_vec (Stats.Rng.create 1) tb1.Circuit.Testbench.layout_dim in
  List.iter
    (fun metric ->
      check_float "same circuit"
        (tb1.simulate ~stage:Circuit.Stage.Layout ~metric ~noise:None x)
        (tb2.simulate ~stage:Circuit.Stage.Layout ~metric ~noise:None x))
    [ 0; 1; 2 ]

let test_ro_sensible_nominal_values () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 2 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let x0 = Array.make tb.Circuit.Testbench.layout_dim 0. in
  let freq =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Ring_oscillator.frequency_index ~noise:None x0
  in
  check_bool "GHz range" true (freq > 1. && freq < 50.);
  let power =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Ring_oscillator.power_index ~noise:None x0
  in
  check_bool "mW range" true (power > 0.001 && power < 10.);
  let pn =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Ring_oscillator.phase_noise_index ~noise:None x0
  in
  check_bool "dBc range" true (pn < -60. && pn > -120.)

let test_ro_layout_slower_than_schematic () =
  (* parasitics slow the ring: post-layout frequency < schematic *)
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 3 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let sch =
    tb.simulate ~stage:Circuit.Stage.Schematic
      ~metric:Circuit.Ring_oscillator.frequency_index ~noise:None
      (Array.make tb.Circuit.Testbench.schematic_dim 0.)
  in
  let lay =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Ring_oscillator.frequency_index ~noise:None
      (Array.make tb.Circuit.Testbench.layout_dim 0.)
  in
  check_bool "slower" true (lay < sch)

let test_ro_faster_devices_raise_frequency () =
  (* a uniform positive drive shift must raise frequency: push the first
     (threshold) variable of every device *)
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 4 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let x0 = Array.make tb.Circuit.Testbench.schematic_dim 0. in
  let f0 = tb.simulate ~stage:Circuit.Stage.Schematic ~metric ~noise:None x0 in
  (* the response is smooth and near-linear; an average over random draws
     of +-delta must stay near f0 (sanity of scale) *)
  let rng = Stats.Rng.create 14 in
  let deviations = ref 0. in
  for _ = 1 to 50 do
    let x = Stats.Rng.gaussian_vec rng tb.schematic_dim in
    let f = tb.simulate ~stage:Circuit.Stage.Schematic ~metric ~noise:None x in
    deviations := !deviations +. Float.abs (f -. f0)
  done;
  let mean_dev = !deviations /. 50. in
  check_bool "variation is a few percent" true
    (mean_dev > 0.001 *. f0 && mean_dev < 0.2 *. f0)

let test_ro_noise_is_optional_and_small () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 6 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let x = Array.make tb.Circuit.Testbench.layout_dim 0. in
  let clean = tb.simulate ~stage:Circuit.Stage.Layout ~metric ~noise:None x in
  let clean2 = tb.simulate ~stage:Circuit.Stage.Layout ~metric ~noise:None x in
  check_float "deterministic without noise" clean clean2;
  let noisy =
    tb.simulate ~stage:Circuit.Stage.Layout ~metric
      ~noise:(Some (Stats.Rng.create 3))
      x
  in
  check_bool "noise moves value slightly" true
    (noisy <> clean && Float.abs (noisy -. clean) /. clean < 0.05)

let test_ro_wrong_dimension_rejected () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 7 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  check_bool "raises" true
    (try
       ignore
         (tb.simulate ~stage:Circuit.Stage.Layout ~metric:0 ~noise:None
            (Array.make 3 0.));
       false
     with Invalid_argument _ -> true)

let test_ro_parasitic_terms_cover_tail () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 8 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let n_par = List.length tb.Circuit.Testbench.parasitic_terms in
  check_int "parasitic count"
    (small_ro_config.stages * 2 * (small_ro_config.parasitic_nodes - 1))
    n_par;
  (* every parasitic term is linear in a distinct tail variable *)
  let vars =
    List.map
      (fun t ->
        match Polybasis.Multi_index.variables t with
        | [ v ] -> v
        | _ -> Alcotest.fail "parasitic term not linear")
      tb.parasitic_terms
  in
  let sorted = List.sort_uniq compare vars in
  check_int "distinct" n_par (List.length sorted);
  check_bool "tail range" true
    (List.for_all
       (fun v ->
         v >= Bmf.Prior_mapping.late_dim tb.mapping
         && v < tb.layout_dim)
       vars)

(* ------------------------------------------------------------------ *)
(* SRAM *)

let small_sram_config =
  { Circuit.Sram.default_config with cells = 12; vars_per_cell = 4 }

let test_sram_dimensions () =
  let sram = Circuit.Sram.create ~config:small_sram_config 1 in
  let tb = Circuit.Sram.testbench sram in
  let cfg = small_sram_config in
  let expected_sch =
    cfg.interdie
    + (cfg.cells * cfg.vars_per_cell)
    + ((cfg.sa_devices + cfg.wl_devices) * cfg.vars_per_periph_device)
  in
  check_int "schematic dim" expected_sch tb.Circuit.Testbench.schematic_dim;
  check_int "one metric" 1 (Array.length tb.metrics);
  Alcotest.(check string) "metric name" "read_delay" tb.metrics.(0)

let test_sram_nominal_delay_positive () =
  let sram = Circuit.Sram.create ~config:small_sram_config 2 in
  let tb = Circuit.Sram.testbench sram in
  let d =
    tb.simulate ~stage:Circuit.Stage.Layout ~metric:0 ~noise:None
      (Array.make tb.Circuit.Testbench.layout_dim 0.)
  in
  check_bool "positive ps" true (d > 10. && d < 1000.)

let test_sram_layout_slower () =
  let sram = Circuit.Sram.create ~config:small_sram_config 3 in
  let tb = Circuit.Sram.testbench sram in
  let sch =
    tb.simulate ~stage:Circuit.Stage.Schematic ~metric:0 ~noise:None
      (Array.make tb.Circuit.Testbench.schematic_dim 0.)
  in
  let lay =
    tb.simulate ~stage:Circuit.Stage.Layout ~metric:0 ~noise:None
      (Array.make tb.Circuit.Testbench.layout_dim 0.)
  in
  check_bool "extraction adds delay" true (lay > sch)

let test_sram_accessed_cell_dominates () =
  (* perturbing the accessed cell moves the delay far more than
     perturbing a random unaccessed cell by the same amount *)
  let sram = Circuit.Sram.create ~config:small_sram_config 4 in
  let tb = Circuit.Sram.testbench sram in
  let n = tb.Circuit.Testbench.schematic_dim in
  let base = Array.make n 0. in
  let d0 = tb.simulate ~stage:Circuit.Stage.Schematic ~metric:0 ~noise:None base in
  (* cell 0's variables start right after the interdie block *)
  let cell0_var = small_sram_config.interdie in
  let cell5_var =
    small_sram_config.interdie + (5 * small_sram_config.vars_per_cell)
  in
  let probe var =
    let x = Array.make n 0. in
    x.(var) <- 1.;
    Float.abs (tb.simulate ~stage:Circuit.Stage.Schematic ~metric:0 ~noise:None x -. d0)
  in
  check_bool "accessed >> unaccessed" true
    (probe cell0_var > 5. *. probe cell5_var)

let test_sram_cost_model () =
  let sram = Circuit.Sram.create ~config:small_sram_config 5 in
  let tb = Circuit.Sram.testbench sram in
  Alcotest.(check (float 1e-6)) "table VI simulation cost" 38.77
    (Float.round
       (Circuit.Testbench.simulation_hours tb ~stage:Circuit.Stage.Layout
          ~samples:400
       *. 100.)
    /. 100.)



let test_mna_index_errors () =
  let c = Circuit.Mna.create ~nodes:2 in
  Circuit.Mna.add c
    (Circuit.Mna.Current_source { from_node = 0; to_node = 1; amps = 1. });
  Circuit.Mna.add c (Circuit.Mna.Resistor { a = 0; b = 1; ohms = 1. });
  let s = Circuit.Mna.solve c in
  Alcotest.check_raises "voltage range"
    (Invalid_argument "Mna.voltage: node out of range") (fun () ->
      ignore (Circuit.Mna.voltage s 9));
  Alcotest.check_raises "current range"
    (Invalid_argument "Mna.source_current: index out of range") (fun () ->
      ignore (Circuit.Mna.source_current s 0))

let test_rc_chain_validation () =
  Alcotest.check_raises "segments"
    (Invalid_argument "Rc_network.chain: need >= 1 segment") (fun () ->
      ignore (Circuit.Rc_network.chain ~segments:0 ~r_per_segment:1. ~c_per_segment:1.));
  Alcotest.check_raises "values"
    (Invalid_argument "Rc_network.chain: values must be positive") (fun () ->
      ignore (Circuit.Rc_network.chain ~segments:2 ~r_per_segment:0. ~c_per_segment:1.))

let test_netlist_pp_smoke () =
  let n = Circuit.Netlist.create ~name:"x" in
  Circuit.Netlist.add n
    { Circuit.Netlist.ref_name = "M1"; kind = "nmos"; ports = [ "a"; "b" ];
      params = [ ("w", 2.) ] };
  let s = Format.asprintf "%a" Circuit.Netlist.pp n in
  check_bool "mentions instance" true
    (try ignore (Str.search_forward (Str.regexp_string "M1") s 0); true
     with Not_found -> false);
  let s2 = Format.asprintf "%a" Circuit.Netlist.summary n in
  check_bool "summary counts" true
    (try ignore (Str.search_forward (Str.regexp_string "x1") s2 0); true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Amplifier *)

let small_amp_config =
  { Circuit.Amplifier.default_config with vars_per_device = 8; interdie = 4 }

let test_amp_dimensions () =
  let amp = Circuit.Amplifier.create ~config:small_amp_config 1 in
  let tb = Circuit.Amplifier.testbench amp in
  let cfg = small_amp_config in
  (* 7 devices *)
  check_int "schematic dim"
    (cfg.interdie + (7 * cfg.vars_per_device))
    tb.Circuit.Testbench.schematic_dim;
  (* only the input pair is multifinger *)
  check_int "layout dim"
    (cfg.interdie
    + (7 * cfg.vars_per_device)
    + (2 * cfg.vars_per_device * (cfg.input_pair_fingers - 1))
    + (2 * (cfg.compensation_nodes - 1)))
    tb.layout_dim;
  check_int "metrics" 3 (Array.length tb.metrics)

let test_amp_nominal_values () =
  let amp = Circuit.Amplifier.create ~config:small_amp_config 2 in
  let tb = Circuit.Amplifier.testbench amp in
  let x0 = Array.make tb.Circuit.Testbench.layout_dim 0. in
  let gain =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Amplifier.gain_index ~noise:None x0
  in
  check_bool "gain dB plausible" true (gain > 40. && gain < 90.);
  let bw =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Amplifier.bandwidth_index ~noise:None x0
  in
  check_bool "bandwidth MHz plausible" true (bw > 10. && bw < 1000.);
  let offset =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Amplifier.offset_index ~noise:None x0
  in
  Alcotest.(check (float 1e-9)) "offset zero at nominal" 0. offset

let test_amp_offset_is_pair_difference () =
  (* eq. 36 structure: the offset responds antisymmetrically to the two
     input devices' dominant variables *)
  let amp = Circuit.Amplifier.create ~config:small_amp_config 3 in
  let tb = Circuit.Amplifier.testbench amp in
  let n = tb.Circuit.Testbench.schematic_dim in
  let m1_var = small_amp_config.interdie in
  let m2_var = small_amp_config.interdie + small_amp_config.vars_per_device in
  let probe var =
    let x = Array.make n 0. in
    x.(var) <- 1.;
    tb.simulate ~stage:Circuit.Stage.Schematic
      ~metric:Circuit.Amplifier.offset_index ~noise:None x
  in
  let o1 = probe m1_var and o2 = probe m2_var in
  check_bool "pair moves offset" true
    (Float.abs o1 > 0.01 && Float.abs o2 > 0.01)

let test_amp_layout_bandwidth_lower () =
  (* compensation extraction adds loading, slowing the amp at nominal *)
  let amp = Circuit.Amplifier.create ~config:small_amp_config 4 in
  let tb = Circuit.Amplifier.testbench amp in
  let bw_sch =
    tb.simulate ~stage:Circuit.Stage.Schematic
      ~metric:Circuit.Amplifier.bandwidth_index ~noise:None
      (Array.make tb.Circuit.Testbench.schematic_dim 0.)
  in
  let bw_lay =
    tb.simulate ~stage:Circuit.Stage.Layout
      ~metric:Circuit.Amplifier.bandwidth_index ~noise:None
      (Array.make tb.Circuit.Testbench.layout_dim 0.)
  in
  check_bool "layout slower" true (bw_lay < bw_sch)

let test_amp_bmf_pipeline () =
  (* the full fusion pipeline works on the third circuit too *)
  let amp = Circuit.Amplifier.create ~config:small_amp_config 5 in
  let tb = Circuit.Amplifier.testbench amp in
  let metric = Circuit.Amplifier.offset_index in
  let rng = Stats.Rng.create 5 in
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:400 ()
  in
  let eb = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix eb xs_e in
  let early_coeffs = Regression.Least_squares.fit_design ~g:g_e ~f:f_e in
  let lb, early = Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:40 ()
  in
  let g = Polybasis.Basis.design_matrix lb xs in
  let ps = Bmf.Fusion.fit_design ~rng ~early ~g ~f Bmf.Fusion.Bmf_ps in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:150 ()
  in
  let g_t = Polybasis.Basis.design_matrix lb xs_t in
  (* offset is zero-mean, so eq. 59 relative error is tougher; just ask
     for most of the variance *)
  check_bool "fits offset" true
    (Linalg.Vec.rel_error (Linalg.Mat.gemv g_t ps.coeffs) f_t < 0.35)

(* ------------------------------------------------------------------ *)
(* Testbench glue *)

let test_testbench_dataset_shapes () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 9 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let rng = Stats.Rng.create 5 in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric:0
      ~rng ~k:17 ()
  in
  Alcotest.(check (pair int int)) "xs shape"
    (17, tb.Circuit.Testbench.layout_dim)
    (Linalg.Mat.dims xs);
  check_int "f length" 17 (Array.length f)

let test_testbench_dataset_noise_flag () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 9 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let draw noisy =
    let rng = Stats.Rng.create 5 in
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric:0
      ~rng ~k:5 ~noisy ()
  in
  let _, f_clean = draw false in
  let _, f_noisy = draw true in
  (* same samples (same rng), so differences are pure noise *)
  check_bool "noise changes values" true (not (f_clean = f_noisy))

let test_testbench_metric_index () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 9 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  check_int "frequency" 2 (Circuit.Testbench.metric_index tb "frequency");
  check_bool "unknown raises" true
    (try
       ignore (Circuit.Testbench.metric_index tb "zap");
       false
     with Not_found -> true)

let test_testbench_layout_prior_shapes () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 9 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let m_sch = tb.Circuit.Testbench.schematic_dim + 1 in
  let early_coeffs = Array.make m_sch 1. in
  let basis, early = Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs in
  check_int "basis spans layout space" tb.layout_dim (Polybasis.Basis.dim basis);
  check_int "aligned" (Polybasis.Basis.size basis) (Array.length early);
  let missing = Array.fold_left (fun a e -> if e = None then a + 1 else a) 0 early in
  check_int "missing = parasitics" (List.length tb.parasitic_terms) missing

(* ------------------------------------------------------------------ *)
(* End-to-end: the paper's pipeline beats OMP on the real substrate *)

let test_end_to_end_bmf_beats_omp () =
  let ro = Circuit.Ring_oscillator.create ~config:small_ro_config 33 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let rng = Stats.Rng.create 33 in
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:1200 ()
  in
  let eb = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix eb xs_e in
  let early_coeffs = Regression.Least_squares.fit_design ~g:g_e ~f:f_e in
  let lb, early = Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:80 ()
  in
  let g = Polybasis.Basis.design_matrix lb xs in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:200 ()
  in
  let g_t = Polybasis.Basis.design_matrix lb xs_t in
  let ps = Bmf.Fusion.fit_design ~rng ~early ~g ~f Bmf.Fusion.Bmf_ps in
  let omp =
    Regression.Omp.fit_design ~rng ~g ~f
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 30 })
  in
  let e c = Linalg.Vec.rel_error (Linalg.Mat.gemv g_t c) f_t in
  check_bool
    (Printf.sprintf "bmf %.4f < omp %.4f" (e ps.coeffs) (e omp.coeffs))
    true
    (e ps.coeffs < e omp.coeffs)

let () =
  Alcotest.run "circuit"
    [
      ( "mna",
        [
          Alcotest.test_case "voltage divider" `Quick test_mna_voltage_divider;
          Alcotest.test_case "current source" `Quick test_mna_current_source;
          Alcotest.test_case "parallel" `Quick test_mna_parallel_resistors;
          Alcotest.test_case "resistance between" `Quick
            test_mna_resistance_between;
          Alcotest.test_case "KCL" `Quick test_mna_kcl_conservation;
          Alcotest.test_case "validation" `Quick test_mna_validation;
          Alcotest.test_case "floating node" `Quick test_mna_floating_node_fails;
        ] );
      ( "rc_network",
        [
          Alcotest.test_case "chain structure" `Quick test_rc_chain_structure;
          Alcotest.test_case "ladder elmore" `Quick
            test_rc_chain_elmore_closed_form;
          Alcotest.test_case "elmore monotone" `Quick
            test_rc_elmore_monotone_along_chain;
          Alcotest.test_case "scaling hooks" `Quick test_rc_scaling_hooks;
          Alcotest.test_case "mna agrees" `Quick
            test_rc_mna_path_resistance_agrees;
          Alcotest.test_case "effective rc" `Quick
            test_rc_effective_rc_positive_and_scales;
          Alcotest.test_case "validation" `Quick test_rc_validation;
        ] );
      ( "process_device",
        [
          Alcotest.test_case "allocation" `Quick test_process_allocation;
          Alcotest.test_case "schematic shift" `Quick
            test_device_schematic_shift_linear;
          Alcotest.test_case "layout variance" `Quick
            test_device_layout_variance_preserved;
          Alcotest.test_case "layout discrepancy" `Quick
            test_device_layout_discrepancy_changes_coeffs;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "counts" `Quick test_netlist_counts;
          Alcotest.test_case "pp" `Quick test_netlist_pp_smoke;
        ] );
      ( "error_paths",
        [
          Alcotest.test_case "mna indices" `Quick test_mna_index_errors;
          Alcotest.test_case "rc chain" `Quick test_rc_chain_validation;
        ] );
      ( "ring_oscillator",
        [
          Alcotest.test_case "dimensions" `Quick test_ro_dimensions;
          Alcotest.test_case "deterministic" `Quick test_ro_deterministic;
          Alcotest.test_case "nominal values" `Quick
            test_ro_sensible_nominal_values;
          Alcotest.test_case "layout slower" `Quick
            test_ro_layout_slower_than_schematic;
          Alcotest.test_case "variation scale" `Quick
            test_ro_faster_devices_raise_frequency;
          Alcotest.test_case "noise optional" `Quick
            test_ro_noise_is_optional_and_small;
          Alcotest.test_case "dimension check" `Quick
            test_ro_wrong_dimension_rejected;
          Alcotest.test_case "parasitic terms" `Quick
            test_ro_parasitic_terms_cover_tail;
        ] );
      ( "sram",
        [
          Alcotest.test_case "dimensions" `Quick test_sram_dimensions;
          Alcotest.test_case "nominal delay" `Quick
            test_sram_nominal_delay_positive;
          Alcotest.test_case "layout slower" `Quick test_sram_layout_slower;
          Alcotest.test_case "accessed cell dominates" `Quick
            test_sram_accessed_cell_dominates;
          Alcotest.test_case "cost model" `Quick test_sram_cost_model;
        ] );
      ( "amplifier",
        [
          Alcotest.test_case "dimensions" `Quick test_amp_dimensions;
          Alcotest.test_case "nominal values" `Quick test_amp_nominal_values;
          Alcotest.test_case "offset pair" `Quick
            test_amp_offset_is_pair_difference;
          Alcotest.test_case "layout slower" `Quick
            test_amp_layout_bandwidth_lower;
          Alcotest.test_case "bmf pipeline" `Quick test_amp_bmf_pipeline;
        ] );
      ( "testbench",
        [
          Alcotest.test_case "dataset shapes" `Quick test_testbench_dataset_shapes;
          Alcotest.test_case "noise flag" `Quick test_testbench_dataset_noise_flag;
          Alcotest.test_case "metric index" `Quick test_testbench_metric_index;
          Alcotest.test_case "layout prior shapes" `Quick
            test_testbench_layout_prior_shapes;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "bmf beats omp" `Slow test_end_to_end_bmf_beats_omp;
        ] );
    ]
