(* Unit and property tests for the orthonormal polynomial basis layer. *)

open Polybasis

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Hermite *)

let test_hermite_low_degrees () =
  (* He_0 = 1, He_1 = x, He_2 = x^2 - 1, He_3 = x^3 - 3x *)
  List.iter
    (fun x ->
      check_float "He0" 1. (Hermite.probabilists 0 x);
      check_float "He1" x (Hermite.probabilists 1 x);
      check_float "He2" ((x *. x) -. 1.) (Hermite.probabilists 2 x);
      check_float "He3" ((x ** 3.) -. (3. *. x)) (Hermite.probabilists 3 x))
    [ -2.3; -1.; 0.; 0.7; 1.9 ]

let test_hermite_normalization_eq4 () =
  (* the paper's eq. 4: g1 = 1, g2 = x, g3 = (x^2 - 1)/sqrt 2 *)
  let x = 1.37 in
  check_float "g1" 1. (Hermite.normalized 0 x);
  check_float "g2" x (Hermite.normalized 1 x);
  check_float "g3" (((x *. x) -. 1.) /. sqrt 2.) (Hermite.normalized 2 x)

let test_hermite_recurrence () =
  (* He_{n+1} = x He_n - n He_{n-1} *)
  let x = 0.83 in
  for n = 1 to 10 do
    check_float "recurrence"
      ((x *. Hermite.probabilists n x)
      -. (float_of_int n *. Hermite.probabilists (n - 1) x))
      (Hermite.probabilists (n + 1) x)
  done

let test_hermite_upto_consistent () =
  let x = -1.4 in
  let batch = Hermite.normalized_upto 8 x in
  for n = 0 to 8 do
    Alcotest.(check (float 1e-10))
      "batch vs single" (Hermite.normalized n x) batch.(n)
  done

let test_hermite_orthonormal_mc () =
  (* E[g_i(X) g_j(X)] = delta_ij by Monte Carlo, degrees 0..4 *)
  let rng = Stats.Rng.create 99 in
  let n = 200000 in
  let acc = Array.make_matrix 5 5 0. in
  for _ = 1 to n do
    let x = Stats.Rng.gaussian rng in
    let g = Hermite.normalized_upto 4 x in
    for i = 0 to 4 do
      for j = 0 to 4 do
        acc.(i).(j) <- acc.(i).(j) +. (g.(i) *. g.(j))
      done
    done
  done;
  for i = 0 to 4 do
    for j = 0 to 4 do
      let v = acc.(i).(j) /. float_of_int n in
      let target = if i = j then 1. else 0. in
      check_bool
        (Printf.sprintf "orthonormal (%d,%d)" i j)
        true
        (Float.abs (v -. target) < 0.05)
    done
  done

let test_hermite_negative_degree () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Hermite.probabilists: negative degree") (fun () ->
      ignore (Hermite.probabilists (-1) 0.))

let test_log_factorial () =
  check_float "0!" 0. (Hermite.log_factorial 0);
  check_float "5!" (log 120.) (Hermite.log_factorial 5)

(* ------------------------------------------------------------------ *)
(* Multi_index *)

let test_multi_index_of_pairs () =
  let t = Multi_index.of_pairs [ (3, 1); (1, 2); (3, 1) ] in
  (* duplicates merge, sorted by variable *)
  Alcotest.(check (list (pair int int))) "normalized" [ (1, 2); (3, 2) ]
    (Array.to_list t);
  check_int "degree" 4 (Multi_index.total_degree t);
  Alcotest.(check (list int)) "variables" [ 1; 3 ] (Multi_index.variables t)

let test_multi_index_constant () =
  check_int "degree 0" 0 (Multi_index.total_degree Multi_index.constant);
  check_int "max var" (-1) (Multi_index.max_variable Multi_index.constant);
  check_bool "zero degrees dropped" true
    (Multi_index.equal Multi_index.constant (Multi_index.of_pairs [ (2, 0) ]))

let test_multi_index_order () =
  (* graded order: degree first, then lexicographic *)
  let c = Multi_index.constant in
  let x0 = Multi_index.linear 0 in
  let x1 = Multi_index.linear 1 in
  let x0sq = Multi_index.pure 0 2 in
  check_bool "c < x0" true (Multi_index.compare c x0 < 0);
  check_bool "x0 < x1" true (Multi_index.compare x0 x1 < 0);
  check_bool "x1 < x0^2" true (Multi_index.compare x1 x0sq < 0);
  check_bool "equal" true (Multi_index.equal x0 (Multi_index.linear 0))

let test_multi_index_remap () =
  let t = Multi_index.of_pairs [ (0, 1); (2, 2) ] in
  let mapped = Multi_index.remap (fun v -> v + 10) t in
  Alcotest.(check (list (pair int int))) "shifted" [ (10, 1); (12, 2) ]
    (Array.to_list mapped);
  Alcotest.check_raises "non-injective"
    (Invalid_argument "Multi_index.remap: map is not injective on this term")
    (fun () -> ignore (Multi_index.remap (fun _ -> 0) t))

let test_multi_index_enumerate () =
  (* C(r + d, d) terms *)
  check_int "r=2 d=2" 6 (List.length (Multi_index.all_up_to_degree ~r:2 ~d:2));
  check_int "r=3 d=3" 20 (List.length (Multi_index.all_up_to_degree ~r:3 ~d:3));
  let all = Multi_index.all_up_to_degree ~r:2 ~d:2 in
  check_bool "starts with constant" true
    (Multi_index.equal (List.hd all) Multi_index.constant);
  (* all distinct *)
  let distinct = List.sort_uniq Multi_index.compare all in
  check_int "distinct" (List.length all) (List.length distinct)

let test_multi_index_pp () =
  let show t = Format.asprintf "%a" Multi_index.pp t in
  Alcotest.(check string) "constant" "1" (show Multi_index.constant);
  Alcotest.(check string) "linear" "x4" (show (Multi_index.linear 4));
  Alcotest.(check string) "product" "x1^2*x3"
    (show (Multi_index.of_pairs [ (3, 1); (1, 2) ]))

(* ------------------------------------------------------------------ *)
(* Basis *)

let test_basis_linear_layout () =
  let b = Basis.linear 4 in
  check_int "size" 5 (Basis.size b);
  check_int "dim" 4 (Basis.dim b);
  let x = [| 1.; 2.; 3.; 4. |] in
  let row = Basis.eval_row b x in
  Alcotest.(check (array (float 1e-12))) "row = 1 :: x" [| 1.; 1.; 2.; 3.; 4. |]
    row

let test_basis_quadratic_diagonal () =
  let b = Basis.quadratic_diagonal 3 in
  check_int "size" 7 (Basis.size b);
  let x = [| 2.; 0.; -1. |] in
  let row = Basis.eval_row b x in
  check_float "constant" 1. row.(0);
  check_float "x0" 2. row.(1);
  check_float "g2(x0)" (((2. *. 2.) -. 1.) /. sqrt 2.) row.(4)

let test_basis_total_degree_matches_enumeration () =
  let b = Basis.total_degree ~r:2 ~d:3 in
  check_int "size C(5,3)" 10 (Basis.size b)

let test_basis_design_matrix () =
  let b = Basis.linear 2 in
  let xs = Linalg.Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let g = Basis.design_matrix b xs in
  Alcotest.(check (pair int int)) "dims" (2, 3) (Linalg.Mat.dims g);
  check_float "g00" 1. (Linalg.Mat.get g 0 0);
  check_float "g01" 1. (Linalg.Mat.get g 0 1);
  check_float "g12" 4. (Linalg.Mat.get g 1 2)

let test_basis_predict () =
  let b = Basis.linear 2 in
  let coeffs = [| 0.5; 2.; -1. |] in
  check_float "predict" (0.5 +. (2. *. 3.) -. 4.)
    (Basis.predict b ~coeffs [| 3.; 4. |]);
  let xs = Linalg.Mat.of_arrays [| [| 3.; 4. |]; [| 0.; 0. |] |] in
  let preds = Basis.predict_many b ~coeffs xs in
  check_float "vectorized" 2.5 preds.(0);
  check_float "at origin" 0.5 preds.(1)

let test_basis_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Basis.of_terms: duplicate term") (fun () ->
      ignore
        (Basis.of_terms ~dim:2 [ Multi_index.linear 0; Multi_index.linear 0 ]))

let test_basis_out_of_range_rejected () =
  Alcotest.check_raises "range"
    (Invalid_argument "Basis.of_terms: term references variable out of range")
    (fun () -> ignore (Basis.of_terms ~dim:2 [ Multi_index.linear 5 ]))

let test_basis_extend () =
  let b = Basis.linear 2 in
  let b2 = Basis.extend b [ Multi_index.linear 5 ] in
  check_int "grown size" 4 (Basis.size b2);
  check_int "grown dim" 6 (Basis.dim b2);
  (* old positions stable *)
  check_bool "position 1 unchanged" true
    (Multi_index.equal (Basis.term b2 1) (Basis.term b 1));
  Alcotest.(check (option int)) "find new" (Some 3)
    (Basis.index_of_term b2 (Multi_index.linear 5));
  Alcotest.check_raises "duplicate extend"
    (Invalid_argument "Basis.extend: term already present") (fun () ->
      ignore (Basis.extend b [ Multi_index.linear 0 ]))

let test_basis_index_of_term () =
  let b = Basis.linear 3 in
  Alcotest.(check (option int)) "constant" (Some 0)
    (Basis.index_of_term b Multi_index.constant);
  Alcotest.(check (option int)) "x2" (Some 3)
    (Basis.index_of_term b (Multi_index.linear 2));
  Alcotest.(check (option int)) "absent" None
    (Basis.index_of_term b (Multi_index.pure 0 2))

let test_basis_orthonormality_quadratic_mc () =
  (* design-matrix columns are empirically orthonormal for a full
     quadratic basis in 2 variables *)
  let b = Basis.total_degree ~r:2 ~d:2 in
  let rng = Stats.Rng.create 123 in
  let k = 150000 in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r:2 in
  let g = Basis.design_matrix b xs in
  let gram = Linalg.Mat.gram g in
  let m = Basis.size b in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let v = Linalg.Mat.get gram i j /. float_of_int k in
      let target = if i = j then 1. else 0. in
      check_bool "column orthonormality" true (Float.abs (v -. target) < 0.06)
    done
  done

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hermite-parity" ~count:200
      (make Gen.(pair (int_range 0 10) (float_range (-3.) 3.)))
      (fun (n, x) ->
        let sign = if n mod 2 = 0 then 1. else -1. in
        Float.abs
          (Hermite.probabilists n (-.x) -. (sign *. Hermite.probabilists n x))
        < 1e-6 *. Float.max 1. (Float.abs (Hermite.probabilists n x)));
    Test.make ~name:"of-pairs-idempotent" ~count:100
      (make Gen.(small_list (pair (int_range 0 5) (int_range 0 3))))
      (fun pairs ->
        let t = Multi_index.of_pairs pairs in
        Multi_index.equal t (Multi_index.of_pairs (Array.to_list t)));
    Test.make ~name:"degree-additive-under-merge" ~count:100
      (make Gen.(small_list (pair (int_range 0 5) (int_range 1 3))))
      (fun pairs ->
        let t = Multi_index.of_pairs pairs in
        Multi_index.total_degree t
        = List.fold_left (fun a (_, d) -> a + d) 0 pairs);
    Test.make ~name:"eval-row-head-is-one" ~count:50
      (make Gen.(array_size (return 4) (float_range (-3.) 3.)))
      (fun x ->
        let b = Basis.linear 4 in
        (Basis.eval_row b x).(0) = 1.);
  ]

let () =
  Alcotest.run "polybasis"
    [
      ( "hermite",
        [
          Alcotest.test_case "low degrees" `Quick test_hermite_low_degrees;
          Alcotest.test_case "eq 4 normalization" `Quick
            test_hermite_normalization_eq4;
          Alcotest.test_case "recurrence" `Quick test_hermite_recurrence;
          Alcotest.test_case "batch" `Quick test_hermite_upto_consistent;
          Alcotest.test_case "orthonormal (MC)" `Slow
            test_hermite_orthonormal_mc;
          Alcotest.test_case "negative degree" `Quick
            test_hermite_negative_degree;
          Alcotest.test_case "log factorial" `Quick test_log_factorial;
        ] );
      ( "multi_index",
        [
          Alcotest.test_case "of_pairs" `Quick test_multi_index_of_pairs;
          Alcotest.test_case "constant" `Quick test_multi_index_constant;
          Alcotest.test_case "graded order" `Quick test_multi_index_order;
          Alcotest.test_case "remap" `Quick test_multi_index_remap;
          Alcotest.test_case "enumerate" `Quick test_multi_index_enumerate;
          Alcotest.test_case "pp" `Quick test_multi_index_pp;
        ] );
      ( "basis",
        [
          Alcotest.test_case "linear layout" `Quick test_basis_linear_layout;
          Alcotest.test_case "quadratic diagonal" `Quick
            test_basis_quadratic_diagonal;
          Alcotest.test_case "total degree" `Quick
            test_basis_total_degree_matches_enumeration;
          Alcotest.test_case "design matrix" `Quick test_basis_design_matrix;
          Alcotest.test_case "predict" `Quick test_basis_predict;
          Alcotest.test_case "duplicate rejected" `Quick
            test_basis_duplicate_rejected;
          Alcotest.test_case "range rejected" `Quick
            test_basis_out_of_range_rejected;
          Alcotest.test_case "extend" `Quick test_basis_extend;
          Alcotest.test_case "index_of_term" `Quick test_basis_index_of_term;
          Alcotest.test_case "orthonormality (MC)" `Slow
            test_basis_orthonormality_quadratic_mc;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
