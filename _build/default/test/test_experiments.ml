(* Unit tests for the experiment harness: configuration, methods,
   runner, reporting, plotting, tables and ablations (at tiny scale). *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

(* A tiny configuration so harness tests stay fast. *)
let tiny : Experiments.Config.t =
  {
    Experiments.Config.seed = 7;
    repeats = 1;
    sample_sizes = [ 40; 80 ];
    test_samples = 60;
    early_samples = 400;
    cv_folds = 3;
    omp_max_terms_fraction = 0.4;
    ro =
      {
        Circuit.Ring_oscillator.default_config with
        stages = 5;
        vars_per_device = 6;
        interdie = 6;
      };
    sram = { Circuit.Sram.default_config with cells = 10; vars_per_cell = 4 };
  }

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_presets () =
  check_int "paper repeats" 50 Experiments.Config.paper.repeats;
  check_int "paper sweep" 9 (List.length Experiments.Config.paper.sample_sizes);
  check_bool "quick smaller" true
    (Experiments.Config.quick.early_samples
    < Experiments.Config.default.early_samples)

let test_config_overrides () =
  let c = Experiments.Config.with_repeats Experiments.Config.default 11 in
  check_int "repeats" 11 c.repeats;
  let c = Experiments.Config.with_seed c 99 in
  check_int "seed" 99 c.seed;
  Alcotest.check_raises "bad repeats"
    (Invalid_argument "Config.with_repeats: need at least 1") (fun () ->
      ignore (Experiments.Config.with_repeats Experiments.Config.default 0))

let test_config_omp_cap () =
  check_int "fraction" 40
    (Experiments.Config.omp_max_terms Experiments.Config.default ~k:100);
  check_int "floor" 5
    (Experiments.Config.omp_max_terms Experiments.Config.default ~k:3)

(* ------------------------------------------------------------------ *)
(* Methods *)

let test_methods_names_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        "roundtrip" true
        (Experiments.Methods.of_name (Experiments.Methods.name m) = m))
    Experiments.Methods.paper_methods;
  check_bool "case insensitive" true
    (Experiments.Methods.of_name "bmf-ps" = Experiments.Methods.Bmf_ps);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Methods.of_name: unknown method \"nope\"") (fun () ->
      ignore (Experiments.Methods.of_name "nope"))

let make_problem () =
  let rng = Stats.Rng.create 55 in
  let r = 30 and k = 25 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth = Array.init m (fun i -> 1. /. float_of_int (i + 1)) in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f = Array.init k (fun i -> Linalg.Vec.dot (Linalg.Mat.row g i) truth) in
  let early = Array.map (fun c -> Some c) truth in
  {
    Experiments.Methods.g;
    f;
    early;
    cv_folds = 3;
    omp_max_terms = 10;
  }

let test_methods_all_fit () =
  let p = make_problem () in
  List.iter
    (fun m ->
      let coeffs = Experiments.Methods.fit m p in
      check_int
        (Experiments.Methods.name m)
        31 (Array.length coeffs))
    [
      Experiments.Methods.Omp;
      Experiments.Methods.Bmf_zm;
      Experiments.Methods.Bmf_nzm;
      Experiments.Methods.Bmf_ps;
      Experiments.Methods.Ridge_cv;
      Experiments.Methods.Lasso;
    ]

let test_methods_fit_timed () =
  let p = make_problem () in
  let coeffs, seconds = Experiments.Methods.fit_timed Experiments.Methods.Omp p in
  check_int "coeffs" 31 (Array.length coeffs);
  check_bool "nonnegative time" true (seconds >= 0.)

(* ------------------------------------------------------------------ *)
(* Runner *)

let ro_tb () =
  Circuit.Ring_oscillator.testbench
    (Circuit.Ring_oscillator.create ~config:tiny.ro tiny.seed)

let test_runner_prepare () =
  let tb = ro_tb () in
  let prep =
    Experiments.Runner.prepare tiny tb
      ~metric:Circuit.Ring_oscillator.frequency_index
  in
  check_int "prior aligned"
    (Polybasis.Basis.size prep.late_basis)
    (Array.length prep.early);
  check_bool "early model decent" true (prep.early_error_pct < 5.);
  check_bool "terms recorded" true (prep.early_terms > 0)

let test_runner_prepare_ls_variant () =
  let tb = ro_tb () in
  let prep =
    Experiments.Runner.prepare ~early_fit:Experiments.Runner.Least_squares_early
      tiny tb ~metric:0
  in
  (* least squares keeps every coefficient *)
  check_int "dense early model"
    (tb.Circuit.Testbench.schematic_dim + 1)
    prep.early_terms

let test_runner_accuracy_structure () =
  let tb = ro_tb () in
  let prep = Experiments.Runner.prepare tiny tb ~metric:2 in
  let acc = Experiments.Runner.accuracy tiny prep in
  check_int "rows" 2 (Array.length acc.cells);
  check_int "cols" 4 (Array.length acc.cells.(0));
  Alcotest.(check string) "circuit" "ring-oscillator" acc.circuit;
  Alcotest.(check string) "metric" "frequency" acc.metric;
  Array.iter
    (Array.iter (fun (c : Experiments.Runner.cell) ->
         check_bool "errors positive and sane" true
           (c.mean_pct > 0. && c.mean_pct < 100.)))
    acc.cells;
  (* BMF-PS at the largest K should beat OMP at the smallest *)
  let omp_small = acc.cells.(0).(0).mean_pct in
  let ps_large = acc.cells.(1).(3).mean_pct in
  check_bool "learning happens" true (ps_large < omp_small)

let test_runner_accuracy_deterministic () =
  let tb = ro_tb () in
  let prep = Experiments.Runner.prepare tiny tb ~metric:2 in
  let a1 = Experiments.Runner.accuracy tiny prep in
  let a2 = Experiments.Runner.accuracy tiny prep in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j (c : Experiments.Runner.cell) ->
          check_float "same mean" c.mean_pct a2.cells.(i).(j).mean_pct)
        row)
    a1.cells

let test_runner_cost_comparison () =
  let tb = ro_tb () in
  let entries =
    Experiments.Runner.cost_comparison tiny tb ~metrics:[ 2 ] ~omp_samples:80
      ~bmf_samples:40
  in
  match entries with
  | [ omp; bmf ] ->
      check_int "omp samples" 80 omp.samples;
      check_int "bmf samples" 40 bmf.samples;
      check_bool "sim cost scales with samples" true
        (omp.sim_hours = 2. *. bmf.sim_hours);
      check_bool "total includes fitting" true
        (omp.total_hours >= omp.sim_hours);
      check_int "errors per metric" 1 (List.length omp.errors_pct)
  | _ -> Alcotest.fail "expected two entries"

let test_runner_solver_timings () =
  let tb = ro_tb () in
  let prep = Experiments.Runner.prepare tiny tb ~metric:2 in
  let timings = Experiments.Runner.solver_timings ~with_direct:true tiny prep in
  check_int "one per K" 2 (List.length timings);
  List.iter
    (fun (t : Experiments.Runner.solver_timing) ->
      check_bool "positive" true
        (t.omp_seconds > 0. && t.bmf_fast_seconds > 0.
        && t.bmf_direct_seconds > 0.))
    timings;
  let no_direct =
    Experiments.Runner.solver_timings ~with_direct:false tiny prep
  in
  List.iter
    (fun (t : Experiments.Runner.solver_timing) ->
      check_bool "nan direct" true (Float.is_nan t.bmf_direct_seconds))
    no_direct

(* ------------------------------------------------------------------ *)
(* Report / Ascii_plot *)

let test_report_accuracy_table_renders () =
  let tb = ro_tb () in
  let prep = Experiments.Runner.prepare tiny tb ~metric:2 in
  let acc = Experiments.Runner.accuracy tiny prep in
  let s = Format.asprintf "%a" Experiments.Report.accuracy_table acc in
  check_bool "mentions methods" true
    (List.for_all
       (fun m ->
         let sub = Experiments.Methods.name m in
         let re = Str.regexp_string sub in
         (try ignore (Str.search_forward re s 0); true with Not_found -> false))
       acc.methods)

let test_report_accuracy_csv () =
  let tb = ro_tb () in
  let prep = Experiments.Runner.prepare tiny tb ~metric:2 in
  let acc = Experiments.Runner.accuracy tiny prep in
  let csv = Experiments.Report.accuracy_csv acc in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + sizes x methods rows *)
  check_int "rows" (1 + (2 * 4)) (List.length lines);
  check_bool "header" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 7 = "circuit")

let test_ascii_histogram () =
  let h = Stats.Histogram.build ~bins:5 [| 1.; 2.; 2.; 3.; 4.; 5. |] in
  let s = Experiments.Ascii_plot.histogram ~title:"t" h in
  check_bool "has title" true (String.length s > 0 && s.[0] = 't');
  check_bool "has bars" true (String.contains s '#')

let test_ascii_xy () =
  let s =
    Experiments.Ascii_plot.xy
      [
        { Experiments.Ascii_plot.label = "a"; points = [ (1., 1.); (2., 4.) ] };
        { Experiments.Ascii_plot.label = "b"; points = [ (1., 2.); (2., 3.) ] };
      ]
  in
  check_bool "marker a" true (String.contains s '*');
  check_bool "marker b" true (String.contains s 'o');
  check_bool "legend" true (String.contains s 'a')

let test_ascii_xy_log_drops_nonpositive () =
  let s =
    Experiments.Ascii_plot.xy ~log_y:true
      [
        {
          Experiments.Ascii_plot.label = "a";
          points = [ (1., 0.); (2., 10.); (3., 100.) ];
        };
      ]
  in
  check_bool "renders" true (String.length s > 0)

let test_ascii_xy_empty () =
  Alcotest.(check string) "no data" "(no data)\n" (Experiments.Ascii_plot.xy [])

(* ------------------------------------------------------------------ *)
(* Figures / Tables at tiny scale *)

let test_figures_static () =
  check_bool "fig1 mentions sigma" true
    (String.length (Experiments.Figures.fig1 ()) > 100);
  check_bool "fig2 mentions lambda" true
    (String.length (Experiments.Figures.fig2 ()) > 100);
  check_bool "fig3 netlist" true
    (String.length (Experiments.Figures.fig3 tiny) > 50);
  check_bool "fig6 netlist" true
    (String.length (Experiments.Figures.fig6 tiny) > 50)

let test_figures_histograms () =
  let s = Experiments.Figures.fig4 ~samples:300 tiny in
  check_bool "three histograms" true (String.length s > 400);
  let s7 = Experiments.Figures.fig7 ~samples:300 tiny in
  check_bool "one histogram" true (String.length s7 > 100)

let test_table_renders () =
  let s = Experiments.Tables.table3 tiny in
  check_bool "has header" true
    (try
       ignore (Str.search_forward (Str.regexp_string "Table III") s 0);
       true
     with Not_found -> false);
  check_bool "has OMP column" true
    (try
       ignore (Str.search_forward (Str.regexp_string "OMP") s 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Ablations at tiny scale *)

let test_ablation_solver_exactness () =
  let s = Experiments.Ablation.solver_exactness tiny in
  check_bool "reports exactness" true
    (try
       ignore (Str.search_forward (Str.regexp_string "exact to roundoff") s 0);
       true
     with Not_found -> false)

let test_ablation_nonlinear () =
  let s = Experiments.Ablation.nonlinear_basis tiny in
  check_bool "quadratic line" true
    (try
       ignore (Str.search_forward (Str.regexp_string "quadratic basis") s 0);
       true
     with Not_found -> false)

let test_ablation_baselines () =
  let s = Experiments.Ablation.baselines tiny in
  check_bool "has ridge and lasso" true
    (try
       ignore (Str.search_forward (Str.regexp_string "Ridge") s 0);
       ignore (Str.search_forward (Str.regexp_string "Lasso") s 0);
       true
     with Not_found -> false)

let test_ablation_early_fit () =
  let s = Experiments.Ablation.early_fit tiny in
  check_bool "compares both" true
    (try
       ignore (Str.search_forward (Str.regexp_string "least squares") s 0);
       ignore (Str.search_forward (Str.regexp_string "OMP") s 0);
       true
     with Not_found -> false)

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "presets" `Quick test_config_presets;
          Alcotest.test_case "overrides" `Quick test_config_overrides;
          Alcotest.test_case "omp cap" `Quick test_config_omp_cap;
        ] );
      ( "methods",
        [
          Alcotest.test_case "names" `Quick test_methods_names_roundtrip;
          Alcotest.test_case "all fit" `Quick test_methods_all_fit;
          Alcotest.test_case "timed" `Quick test_methods_fit_timed;
        ] );
      ( "runner",
        [
          Alcotest.test_case "prepare" `Quick test_runner_prepare;
          Alcotest.test_case "prepare LS" `Quick test_runner_prepare_ls_variant;
          Alcotest.test_case "accuracy structure" `Slow
            test_runner_accuracy_structure;
          Alcotest.test_case "deterministic" `Slow
            test_runner_accuracy_deterministic;
          Alcotest.test_case "cost comparison" `Slow test_runner_cost_comparison;
          Alcotest.test_case "solver timings" `Slow test_runner_solver_timings;
        ] );
      ( "report",
        [
          Alcotest.test_case "accuracy table" `Slow
            test_report_accuracy_table_renders;
          Alcotest.test_case "csv" `Slow test_report_accuracy_csv;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "histogram" `Quick test_ascii_histogram;
          Alcotest.test_case "xy" `Quick test_ascii_xy;
          Alcotest.test_case "log scale" `Quick test_ascii_xy_log_drops_nonpositive;
          Alcotest.test_case "empty" `Quick test_ascii_xy_empty;
        ] );
      ( "figures_tables",
        [
          Alcotest.test_case "static figures" `Quick test_figures_static;
          Alcotest.test_case "histogram figures" `Slow test_figures_histograms;
          Alcotest.test_case "table renders" `Slow test_table_renders;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "solver exactness" `Slow
            test_ablation_solver_exactness;
          Alcotest.test_case "early fit" `Slow test_ablation_early_fit;
          Alcotest.test_case "nonlinear" `Slow test_ablation_nonlinear;
          Alcotest.test_case "baselines" `Slow test_ablation_baselines;
        ] );
    ]
