(* Unit and property tests for the baseline regression methods. *)

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let rng = Stats.Rng.create 777

(* A reproducible sparse linear problem: k samples, m features (linear
   basis columns), sparse truth, optional noise. *)
let make_problem ?(noise = 0.) ~k ~r ~truth () =
  let basis = Polybasis.Basis.linear r in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (noise *. Stats.Rng.gaussian rng))
  in
  (basis, xs, g, f)

let sparse_truth m =
  let t = Array.make m 0. in
  t.(0) <- 3.;
  t.(2) <- 1.5;
  t.(7) <- -2.;
  t.(11) <- 0.75;
  t

(* ------------------------------------------------------------------ *)
(* Model *)

let test_model_create_and_predict () =
  let basis = Polybasis.Basis.linear 2 in
  let model = Regression.Model.create basis [| 1.; 2.; 3. |] in
  check_int "terms" 3 (Regression.Model.num_terms model);
  check_float "predict" (1. +. 2. +. 3.)
    (Regression.Model.predict model [| 1.; 1. |]);
  Alcotest.check_raises "length"
    (Invalid_argument "Model.create: coefficient length mismatch") (fun () ->
      ignore (Regression.Model.create basis [| 1. |]))

let test_model_sparsity_and_dominant () =
  let basis = Polybasis.Basis.linear 4 in
  let model = Regression.Model.create basis [| 0.; 5.; 0.; -7.; 1e-15 |] in
  check_int "sparsity" 2 (Regression.Model.sparsity model);
  match Regression.Model.dominant_terms ~count:2 model with
  | [ (i1, v1); (i2, v2) ] ->
      check_int "largest" 3 i1;
      check_float "value" (-7.) v1;
      check_int "second" 1 i2;
      check_float "value2" 5. v2
  | _ -> Alcotest.fail "expected two terms"

let test_model_relative_test_error () =
  let truth = sparse_truth 13 in
  let basis, xs, _, f = make_problem ~k:50 ~r:12 ~truth () in
  let model = Regression.Model.create basis truth in
  check_float "zero error on clean data" 0.
    (Regression.Model.relative_test_error model ~xs ~f)

(* ------------------------------------------------------------------ *)
(* Least squares *)

let test_ls_exact_recovery () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:60 ~r:12 ~truth () in
  let coeffs = Regression.Least_squares.fit_design ~g ~f in
  check_bool "recovered" true (Linalg.Vec.approx_equal ~tol:1e-8 coeffs truth)

let test_ls_underdetermined_rejected () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:8 ~r:12 ~truth () in
  Alcotest.check_raises "underdetermined"
    (Invalid_argument
       "Least_squares.fit_design: underdetermined (8 samples, 13 bases)")
    (fun () -> ignore (Regression.Least_squares.fit_design ~g ~f))

let test_ls_noise_attenuation () =
  (* with many samples the LS estimate converges to the truth *)
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~noise:0.5 ~k:4000 ~r:12 ~truth () in
  let coeffs = Regression.Least_squares.fit_design ~g ~f in
  check_bool "close" true (Linalg.Vec.dist2 coeffs truth < 0.1)

(* ------------------------------------------------------------------ *)
(* OMP *)

let test_omp_exact_support_recovery () =
  let truth = sparse_truth 41 in
  let _, _, g, f = make_problem ~k:60 ~r:40 ~truth () in
  let result = Regression.Omp.fit_design ~g ~f (Regression.Omp.Max_terms 4) in
  let support = List.sort compare (Array.to_list result.support) in
  Alcotest.(check (list int)) "support" [ 0; 2; 7; 11 ] support;
  check_bool "coefficients" true
    (Linalg.Vec.approx_equal ~tol:1e-8 result.coeffs truth);
  check_int "iterations" 4 result.iterations

let test_omp_residual_stop () =
  let truth = sparse_truth 41 in
  let _, _, g, f = make_problem ~k:60 ~r:40 ~truth () in
  let result = Regression.Omp.fit_design ~g ~f (Regression.Omp.Residual 1e-10) in
  check_bool "small residual" true (result.residual_norm < 1e-8);
  check_bool "few terms" true (result.iterations <= 6)

let test_omp_underdetermined () =
  (* OMP works with far fewer samples than features *)
  let truth = sparse_truth 201 in
  let _, _, g, f = make_problem ~k:40 ~r:200 ~truth () in
  let result = Regression.Omp.fit_design ~g ~f (Regression.Omp.Max_terms 4) in
  check_bool "recovered" true
    (Linalg.Vec.approx_equal ~tol:1e-6 result.coeffs truth)

let test_omp_cv_picks_reasonable_size () =
  let truth = sparse_truth 41 in
  let _, _, g, f = make_problem ~noise:0.05 ~k:80 ~r:40 ~truth () in
  let result =
    Regression.Omp.fit_design ~rng ~g ~f
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 30 })
  in
  check_bool "between 3 and 12 terms" true
    (result.iterations >= 3 && result.iterations <= 12);
  check_bool "error small" true (Linalg.Vec.rel_error result.coeffs truth < 0.05)

let test_omp_max_terms_capped_by_samples () =
  let truth = sparse_truth 31 in
  let _, _, g, f = make_problem ~k:10 ~r:30 ~truth () in
  let result = Regression.Omp.fit_design ~g ~f (Regression.Omp.Max_terms 50) in
  check_bool "at most k terms" true (result.iterations <= 10)

let test_omp_validation () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:20 ~r:12 ~truth () in
  Alcotest.check_raises "bad max terms"
    (Invalid_argument "Omp: Max_terms must be positive") (fun () ->
      ignore (Regression.Omp.fit_design ~g ~f (Regression.Omp.Max_terms 0)));
  Alcotest.check_raises "bad folds"
    (Invalid_argument "Omp: need at least 2 folds") (fun () ->
      ignore
        (Regression.Omp.fit_design ~g ~f
           (Regression.Omp.Cross_validation { folds = 1; max_terms = 3 })))

let test_omp_fit_wrapper () =
  let truth = sparse_truth 21 in
  let basis, xs, _, f = make_problem ~k:40 ~r:20 ~truth () in
  let model =
    Regression.Omp.fit ~basis ~xs ~f (Regression.Omp.Max_terms 4)
  in
  check_bool "model coeffs" true
    (Linalg.Vec.approx_equal ~tol:1e-7 (Regression.Model.coeffs model) truth)

(* ------------------------------------------------------------------ *)
(* Ridge *)

let test_ridge_shrinks_toward_zero () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:60 ~r:12 ~truth () in
  let small = Regression.Ridge.fit_design ~lambda:1e-8 ~g ~f in
  let large = Regression.Ridge.fit_design ~lambda:1e6 ~g ~f in
  check_bool "tiny lambda ~ LS" true
    (Linalg.Vec.approx_equal ~tol:1e-4 small truth);
  check_bool "huge lambda ~ 0" true (Linalg.Vec.nrm2 large < 0.05)

let test_ridge_overdetermined_equals_underdetermined_path () =
  (* same answer whether solved via normal equations or Woodbury *)
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:20 ~r:12 ~truth () in
  let direct = Regression.Ridge.fit_design ~lambda:0.3 ~g ~f in
  (* drop rows to force k < m and compare against explicit normal eqs *)
  let g_small = Linalg.Mat.init 9 13 (fun i j -> Linalg.Mat.get g i j) in
  let f_small = Array.sub f 0 9 in
  let wood = Regression.Ridge.fit_design ~lambda:0.3 ~g:g_small ~f:f_small in
  let gram = Linalg.Mat.add_diag (Linalg.Mat.gram g_small) (Array.make 13 0.3) in
  let expected =
    Linalg.Cholesky.solve_system gram (Linalg.Mat.gemv_t g_small f_small)
  in
  check_bool "paths agree (overdetermined run sane)" true
    (Array.length direct = 13);
  check_bool "woodbury = normal equations" true
    (Linalg.Vec.approx_equal ~tol:1e-8 wood expected)

let test_ridge_cv () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~noise:0.1 ~k:60 ~r:12 ~truth () in
  let coeffs, lambda = Regression.Ridge.fit_cv ~rng ~g ~f () in
  check_bool "lambda from grid" true (lambda > 0.);
  check_bool "decent fit" true (Linalg.Vec.rel_error coeffs truth < 0.2)

let test_ridge_validation () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:20 ~r:12 ~truth () in
  Alcotest.check_raises "lambda"
    (Invalid_argument "Ridge.fit_design: lambda must be > 0") (fun () ->
      ignore (Regression.Ridge.fit_design ~lambda:0. ~g ~f))

(* ------------------------------------------------------------------ *)
(* Lasso *)

let test_lasso_sparse_recovery () =
  let truth = sparse_truth 41 in
  let _, _, g, f = make_problem ~noise:0.01 ~k:100 ~r:40 ~truth () in
  let lmax = Regression.Lasso.lambda_max ~g ~f in
  let result =
    Regression.Lasso.fit_design
      (Regression.Lasso.default_options ~lambda:(0.005 *. lmax))
      ~g ~f
  in
  check_bool "converged" true result.converged;
  check_bool "close" true (Linalg.Vec.rel_error result.coeffs truth < 0.05);
  let nonzero =
    Array.fold_left
      (fun acc c -> if Float.abs c > 1e-6 then acc + 1 else acc)
      0 result.coeffs
  in
  check_bool "sparse-ish" true (nonzero <= 15)

let test_lasso_lambda_max_kills_everything () =
  let truth = sparse_truth 21 in
  let _, _, g, f = make_problem ~k:50 ~r:20 ~truth () in
  let lmax = Regression.Lasso.lambda_max ~g ~f in
  let result =
    Regression.Lasso.fit_design
      (Regression.Lasso.default_options ~lambda:(lmax *. 1.001))
      ~g ~f
  in
  check_float "all zero" 0. (Linalg.Vec.nrm2 result.coeffs)

let test_lasso_elastic_net_between () =
  (* l1_ratio = 0 behaves like ridge: dense, shrunk *)
  let truth = sparse_truth 21 in
  let _, _, g, f = make_problem ~k:50 ~r:20 ~truth () in
  let opts =
    { (Regression.Lasso.default_options ~lambda:0.1) with l1_ratio = 0. }
  in
  let result = Regression.Lasso.fit_design opts ~g ~f in
  check_bool "converged" true result.converged;
  let nonzero =
    Array.fold_left
      (fun acc c -> if Float.abs c > 1e-9 then acc + 1 else acc)
      0 result.coeffs
  in
  check_bool "dense" true (nonzero >= 18)

let test_lasso_validation () =
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:20 ~r:12 ~truth () in
  Alcotest.check_raises "lambda"
    (Invalid_argument "Lasso.fit_design: lambda must be > 0") (fun () ->
      ignore
        (Regression.Lasso.fit_design
           (Regression.Lasso.default_options ~lambda:0.)
           ~g ~f));
  Alcotest.check_raises "l1 ratio"
    (Invalid_argument "Lasso.fit_design: l1_ratio outside [0, 1]") (fun () ->
      ignore
        (Regression.Lasso.fit_design
           { (Regression.Lasso.default_options ~lambda:1.) with l1_ratio = 2. }
           ~g ~f))

(* ------------------------------------------------------------------ *)
(* Cross-method consistency *)

let test_methods_agree_on_easy_problem () =
  (* noiseless, overdetermined: LS, OMP (full), and ridge (tiny lambda)
     all land on the truth *)
  let truth = sparse_truth 13 in
  let _, _, g, f = make_problem ~k:100 ~r:12 ~truth () in
  let ls = Regression.Least_squares.fit_design ~g ~f in
  let omp =
    (Regression.Omp.fit_design ~g ~f (Regression.Omp.Residual 1e-12)).coeffs
  in
  let ridge = Regression.Ridge.fit_design ~lambda:1e-10 ~g ~f in
  check_bool "ls = omp" true (Linalg.Vec.approx_equal ~tol:1e-6 ls omp);
  check_bool "ls = ridge" true (Linalg.Vec.approx_equal ~tol:1e-5 ls ridge)

(* ------------------------------------------------------------------ *)
(* Properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"omp-residual-decreases-with-terms" ~count:20
      (make (Gen.int_range 0 1000))
      (fun seed ->
        let rng = Stats.Rng.create seed in
        let r = 15 and k = 25 in
        let xs = Stats.Sampling.monte_carlo rng ~k ~r in
        let basis = Polybasis.Basis.linear r in
        let g = Polybasis.Basis.design_matrix basis xs in
        let f = Stats.Rng.gaussian_vec rng k in
        let res n =
          (Regression.Omp.fit_design ~g ~f (Regression.Omp.Max_terms n))
            .residual_norm
        in
        res 2 >= res 4 -. 1e-9 && res 4 >= res 8 -. 1e-9);
    Test.make ~name:"ridge-norm-decreases-with-lambda" ~count:20
      (make (Gen.int_range 0 1000))
      (fun seed ->
        let rng = Stats.Rng.create seed in
        let r = 10 and k = 30 in
        let xs = Stats.Sampling.monte_carlo rng ~k ~r in
        let basis = Polybasis.Basis.linear r in
        let g = Polybasis.Basis.design_matrix basis xs in
        let f = Stats.Rng.gaussian_vec rng k in
        let norm lambda =
          Linalg.Vec.nrm2 (Regression.Ridge.fit_design ~lambda ~g ~f)
        in
        norm 0.01 >= norm 1. -. 1e-9 && norm 1. >= norm 100. -. 1e-9);
    Test.make ~name:"soft-threshold-behaviour-via-lasso" ~count:20
      (make (Gen.int_range 0 1000))
      (fun seed ->
        (* larger lambda never yields more nonzeros on the same data *)
        let rng = Stats.Rng.create seed in
        let r = 12 and k = 40 in
        let xs = Stats.Sampling.monte_carlo rng ~k ~r in
        let basis = Polybasis.Basis.linear r in
        let g = Polybasis.Basis.design_matrix basis xs in
        let f = Stats.Rng.gaussian_vec rng k in
        let nnz lambda =
          let res =
            Regression.Lasso.fit_design
              (Regression.Lasso.default_options ~lambda)
              ~g ~f
          in
          Array.fold_left
            (fun acc c -> if Float.abs c > 1e-9 then acc + 1 else acc)
            0 res.coeffs
        in
        nnz 0.01 >= nnz 0.3);
  ]

let () =
  Alcotest.run "regression"
    [
      ( "model",
        [
          Alcotest.test_case "create/predict" `Quick
            test_model_create_and_predict;
          Alcotest.test_case "sparsity/dominant" `Quick
            test_model_sparsity_and_dominant;
          Alcotest.test_case "test error" `Quick test_model_relative_test_error;
        ] );
      ( "least_squares",
        [
          Alcotest.test_case "exact recovery" `Quick test_ls_exact_recovery;
          Alcotest.test_case "underdetermined" `Quick
            test_ls_underdetermined_rejected;
          Alcotest.test_case "noise attenuation" `Quick
            test_ls_noise_attenuation;
        ] );
      ( "omp",
        [
          Alcotest.test_case "support recovery" `Quick
            test_omp_exact_support_recovery;
          Alcotest.test_case "residual stop" `Quick test_omp_residual_stop;
          Alcotest.test_case "underdetermined" `Quick test_omp_underdetermined;
          Alcotest.test_case "cv size" `Quick test_omp_cv_picks_reasonable_size;
          Alcotest.test_case "cap by samples" `Quick
            test_omp_max_terms_capped_by_samples;
          Alcotest.test_case "validation" `Quick test_omp_validation;
          Alcotest.test_case "fit wrapper" `Quick test_omp_fit_wrapper;
        ] );
      ( "ridge",
        [
          Alcotest.test_case "shrinkage" `Quick test_ridge_shrinks_toward_zero;
          Alcotest.test_case "solver paths" `Quick
            test_ridge_overdetermined_equals_underdetermined_path;
          Alcotest.test_case "cv" `Quick test_ridge_cv;
          Alcotest.test_case "validation" `Quick test_ridge_validation;
        ] );
      ( "lasso",
        [
          Alcotest.test_case "sparse recovery" `Quick test_lasso_sparse_recovery;
          Alcotest.test_case "lambda max" `Quick
            test_lasso_lambda_max_kills_everything;
          Alcotest.test_case "elastic net" `Quick test_lasso_elastic_net_between;
          Alcotest.test_case "validation" `Quick test_lasso_validation;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "methods agree" `Quick
            test_methods_agree_on_easy_problem;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
