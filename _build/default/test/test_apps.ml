(* Unit tests for the model-application layer: analytic moments, yield
   estimation, and worst-case corner extraction. *)

let check_float = Alcotest.(check (float 1e-9))

let check_bool = Alcotest.(check bool)

let rng = Stats.Rng.create 909

(* ------------------------------------------------------------------ *)
(* Moments *)

let linear_model coeffs =
  Regression.Model.create (Polybasis.Basis.linear (Array.length coeffs - 1)) coeffs

let test_moments_linear () =
  let model = linear_model [| 5.; 3.; -4. |] in
  check_float "mean = constant" 5. (Apps.Moments.mean model);
  check_float "variance = sum sq" 25. (Apps.Moments.variance model);
  check_float "std" 5. (Apps.Moments.std model)

let test_moments_match_monte_carlo () =
  let basis = Polybasis.Basis.quadratic_diagonal 4 in
  let m = Polybasis.Basis.size basis in
  let coeffs = Array.init m (fun i -> 0.5 /. float_of_int (i + 1)) in
  let model = Regression.Model.create basis coeffs in
  let n = 200000 in
  let values =
    Array.init n (fun _ ->
        Regression.Model.predict model (Stats.Rng.gaussian_vec rng 4))
  in
  check_bool "mean matches MC" true
    (Float.abs (Stats.Describe.mean values -. Apps.Moments.mean model) < 0.01);
  check_bool "std matches MC" true
    (Float.abs (Stats.Describe.std values -. Apps.Moments.std model) < 0.01)

let test_moments_contributions_sum () =
  let model = linear_model [| 1.; 2.; 3.; 4. |] in
  let contributions = Apps.Moments.term_contributions model in
  Alcotest.(check int) "non-constant terms" 3 (List.length contributions);
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0. contributions in
  check_float "sum to variance" (Apps.Moments.variance model) total;
  (* decreasing order *)
  (match contributions with
  | (_, a) :: (_, b) :: _ -> check_bool "sorted" true (a >= b)
  | _ -> Alcotest.fail "expected contributions")

let test_moments_variance_share () =
  let model = linear_model [| 0.; 3.; 4. |] in
  let shares = Apps.Moments.variance_share_by_variable model in
  Alcotest.(check int) "two variables" 2 (Array.length shares);
  (* x1 has coefficient 4 -> share 16/25 *)
  let v, s = shares.(0) in
  Alcotest.(check int) "dominant variable" 1 v;
  check_float "dominant share" (16. /. 25.) s;
  let total = Array.fold_left (fun acc (_, s) -> acc +. s) 0. shares in
  check_float "linear shares sum to 1" 1. total

let test_moments_zero_variance () =
  let model = linear_model [| 2.; 0.; 0. |] in
  Alcotest.(check int) "empty shares" 0
    (Array.length (Apps.Moments.variance_share_by_variable model))

(* ------------------------------------------------------------------ *)
(* Yield *)

let test_yield_closed_form_linear () =
  (* f = 1 + 2 x: P(f <= 3) = Phi(1) *)
  let model = linear_model [| 1.; 2. |] in
  let est =
    Apps.Yield.estimate ~samples:200000 ~rng ~spec:(Apps.Yield.At_most 3.) model
  in
  let expected = Stats.Special.norm_cdf 1. in
  check_bool "matches Phi(1)" true (Float.abs (est.yield -. expected) < 0.005);
  let lo, hi = est.ci95 in
  check_bool "ci contains truth" true (lo <= expected && expected <= hi);
  check_bool "std error sane" true (est.std_error < 0.002);
  (* Gaussian approximation is exact for a linear model *)
  Alcotest.(check (float 1e-12)) "gaussian approx" expected
    (Apps.Yield.gaussian_approximation ~spec:(Apps.Yield.At_most 3.) model)

let test_yield_at_least () =
  let model = linear_model [| 0.; 1. |] in
  let est =
    Apps.Yield.estimate ~samples:100000 ~rng ~spec:(Apps.Yield.At_least 0.) model
  in
  check_bool "symmetric spec" true (Float.abs (est.yield -. 0.5) < 0.01)

let test_yield_extremes () =
  let model = linear_model [| 0.; 1. |] in
  let est =
    Apps.Yield.estimate ~samples:2000 ~rng ~spec:(Apps.Yield.At_most 100.) model
  in
  check_float "always passes" 1. est.yield;
  let lo, hi = est.ci95 in
  Alcotest.(check bool) "wilson lower" true (lo > 0.99);
  Alcotest.(check (float 1e-9)) "wilson upper" 1. hi

let test_yield_spec_for_target () =
  let model = linear_model [| 10.; 2. |] in
  let spec = Apps.Yield.spec_for_yield ~samples:100000 ~rng ~target:0.9 `Upper model in
  (* 0.9 quantile of N(10, 4): 10 + 2 * 1.2816 *)
  check_bool "quantile" true
    (Float.abs (spec -. (10. +. (2. *. 1.2815515655446004))) < 0.05);
  Alcotest.check_raises "target range"
    (Invalid_argument "Yield.spec_for_yield: target must be in (0, 1)")
    (fun () ->
      ignore (Apps.Yield.spec_for_yield ~rng ~target:1.5 `Upper model))

let test_yield_passes () =
  check_bool "at most passes" true (Apps.Yield.passes (Apps.Yield.At_most 2.) 1.5);
  check_bool "at most fails" false (Apps.Yield.passes (Apps.Yield.At_most 2.) 2.5);
  check_bool "at least" true (Apps.Yield.passes (Apps.Yield.At_least 2.) 2.)


let test_yield_estimate_validation () =
  let model = linear_model [| 0.; 1. |] in
  Alcotest.check_raises "samples"
    (Invalid_argument "Yield.estimate: samples must be positive") (fun () ->
      ignore
        (Apps.Yield.estimate ~samples:0 ~rng ~spec:(Apps.Yield.At_most 0.) model))

let test_gaussian_approx_degenerate () =
  (* constant-only model: yield is 0 or 1 depending on the spec *)
  let model = linear_model [| 3.; 0. |] in
  check_float "passes" 1.
    (Apps.Yield.gaussian_approximation ~spec:(Apps.Yield.At_most 5.) model);
  check_float "fails" 0.
    (Apps.Yield.gaussian_approximation ~spec:(Apps.Yield.At_most 2.) model)

(* ------------------------------------------------------------------ *)
(* Corner *)

let test_corner_linear_closed_form () =
  let model = linear_model [| 1.; 3.; 4. |] in
  let result = Apps.Corner.linear ~beta:3. Apps.Corner.Maximize model in
  (* direction (3,4)/5, radius 3 *)
  check_bool "corner point" true
    (Linalg.Vec.approx_equal ~tol:1e-9 result.corner [| 1.8; 2.4 |]);
  check_float "value = mu + 3 sigma" (1. +. (3. *. 5.)) result.value;
  let mini = Apps.Corner.linear ~beta:3. Apps.Corner.Minimize model in
  check_float "min value" (1. -. 15.) mini.value

let test_corner_linear_coefficients_extraction () =
  let basis = Polybasis.Basis.quadratic_diagonal 3 in
  let coeffs = Array.make (Polybasis.Basis.size basis) 0. in
  coeffs.(0) <- 1.;
  coeffs.(2) <- 5.;
  (* x1 linear *)
  coeffs.(4) <- 9.;
  (* quadratic term: must not leak into the linear part *)
  let model = Regression.Model.create basis coeffs in
  Alcotest.(check (array (float 1e-12))) "linear part" [| 0.; 5.; 0. |]
    (Apps.Corner.linear_coefficients model)

let test_corner_search_matches_linear () =
  let model = linear_model [| 0.; 1.; 2.; -2. |] in
  let exact = Apps.Corner.linear ~beta:3. Apps.Corner.Maximize model in
  let found = Apps.Corner.search ~beta:3. ~rng Apps.Corner.Maximize model in
  check_bool "value close" true
    (Float.abs (found.value -. exact.value) /. exact.value < 0.01)

let test_corner_search_on_sphere () =
  let model = linear_model [| 0.; 1.; 1. |] in
  let result = Apps.Corner.search ~beta:2.5 ~rng Apps.Corner.Maximize model in
  Alcotest.(check (float 1e-6)) "on sphere" 2.5 (Linalg.Vec.nrm2 result.corner)

let test_corner_search_handles_nonlinear () =
  (* pure quadratic bowl: max on the sphere is beta^2-ish along any axis;
     just require the search to find something at least as good as a
     random probe *)
  let basis = Polybasis.Basis.quadratic_diagonal 2 in
  let coeffs = Array.make (Polybasis.Basis.size basis) 0. in
  coeffs.(3) <- 1.;
  (* g2(x0) *)
  let model = Regression.Model.create basis coeffs in
  let result = Apps.Corner.search ~beta:3. ~rng Apps.Corner.Maximize model in
  (* best on sphere: all radius in x0 -> g2(3) = (9-1)/sqrt2 *)
  check_bool "near optimum" true
    (result.value > 0.9 *. ((9. -. 1.) /. sqrt 2.))

let test_corner_no_linear_part_rejected () =
  let basis = Polybasis.Basis.quadratic_diagonal 2 in
  let coeffs = Array.make (Polybasis.Basis.size basis) 0. in
  coeffs.(3) <- 1.;
  let model = Regression.Model.create basis coeffs in
  Alcotest.check_raises "no linear part"
    (Invalid_argument "Corner.linear: model has no linear part") (fun () ->
      ignore (Apps.Corner.linear Apps.Corner.Maximize model))

(* ------------------------------------------------------------------ *)
(* Integration: BMF model -> applications *)

let test_apps_on_fused_model () =
  (* fuse a model, then check its applications are self-consistent *)
  let r = 60 and k = 50 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth = Array.init m (fun i -> if i = 0 then 10. else 1. /. float_of_int (i + 3)) in
  let early = Array.map (fun c -> Some (c *. 1.05)) truth in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f = Array.init k (fun i -> Linalg.Vec.dot (Linalg.Mat.row g i) truth) in
  let model, _ = Bmf.Fusion.fit ~rng ~early ~basis ~xs ~f Bmf.Fusion.Bmf_ps in
  (* spec at the Gaussian 3-sigma point: yield should be ~99.85% *)
  let spec =
    Apps.Yield.At_most (Apps.Moments.mean model +. (3. *. Apps.Moments.std model))
  in
  let est = Apps.Yield.estimate ~samples:50000 ~rng ~spec model in
  check_bool "about 99.87%" true (Float.abs (est.yield -. 0.99865) < 0.003);
  (* corner prediction equals mean + 3 sigma of the linear model *)
  let corner = Apps.Corner.linear ~beta:3. Apps.Corner.Maximize model in
  check_bool "corner = mu + 3 sigma" true
    (Float.abs
       (corner.value
       -. (Apps.Moments.mean model +. (3. *. Apps.Moments.std model)))
    /. corner.value
    < 1e-6)

let () =
  Alcotest.run "apps"
    [
      ( "moments",
        [
          Alcotest.test_case "linear" `Quick test_moments_linear;
          Alcotest.test_case "matches MC" `Slow test_moments_match_monte_carlo;
          Alcotest.test_case "contributions" `Quick
            test_moments_contributions_sum;
          Alcotest.test_case "variance shares" `Quick
            test_moments_variance_share;
          Alcotest.test_case "zero variance" `Quick test_moments_zero_variance;
        ] );
      ( "yield",
        [
          Alcotest.test_case "closed form" `Quick test_yield_closed_form_linear;
          Alcotest.test_case "at least" `Quick test_yield_at_least;
          Alcotest.test_case "extremes" `Quick test_yield_extremes;
          Alcotest.test_case "spec for target" `Quick test_yield_spec_for_target;
          Alcotest.test_case "passes" `Quick test_yield_passes;
          Alcotest.test_case "validation" `Quick test_yield_estimate_validation;
          Alcotest.test_case "degenerate gaussian" `Quick
            test_gaussian_approx_degenerate;
        ] );
      ( "corner",
        [
          Alcotest.test_case "linear closed form" `Quick
            test_corner_linear_closed_form;
          Alcotest.test_case "coefficient extraction" `Quick
            test_corner_linear_coefficients_extraction;
          Alcotest.test_case "search = linear" `Quick
            test_corner_search_matches_linear;
          Alcotest.test_case "on sphere" `Quick test_corner_search_on_sphere;
          Alcotest.test_case "nonlinear" `Quick
            test_corner_search_handles_nonlinear;
          Alcotest.test_case "no linear part" `Quick
            test_corner_no_linear_part_rejected;
        ] );
      ( "integration",
        [ Alcotest.test_case "fused model" `Quick test_apps_on_fused_model ] );
    ]
