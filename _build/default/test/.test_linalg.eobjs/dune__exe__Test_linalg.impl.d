test/test_linalg.ml: Alcotest Array Cholesky Conj_grad Eigen_sym Float Format Gen Linalg List Lu Mat QCheck QCheck_alcotest Qr Sparse Stats Str String Svd Test Vec Woodbury
