test/test_apps.ml: Alcotest Apps Array Bmf Float Linalg List Polybasis Regression Stats
