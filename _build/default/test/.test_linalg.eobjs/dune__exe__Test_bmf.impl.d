test/test_bmf.ml: Alcotest Array Bmf Float Fun Gen Linalg List Polybasis Printf QCheck QCheck_alcotest Regression Stats Test
