test/test_bmf.mli:
