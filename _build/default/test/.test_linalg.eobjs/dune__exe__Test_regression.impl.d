test/test_regression.ml: Alcotest Array Float Gen Linalg List Polybasis QCheck QCheck_alcotest Regression Stats Test
