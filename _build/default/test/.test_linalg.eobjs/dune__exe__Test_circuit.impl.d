test/test_circuit.ml: Alcotest Array Bmf Circuit Float Format Linalg List Polybasis Printf Regression Stats Str
