test/test_polybasis.mli:
