test/test_polybasis.ml: Alcotest Array Basis Float Format Gen Hermite Linalg List Multi_index Polybasis Printf QCheck QCheck_alcotest Stats Test
