test/test_regression.mli:
