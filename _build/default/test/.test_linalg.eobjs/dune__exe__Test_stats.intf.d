test/test_stats.mli:
