test/test_stats.ml: Alcotest Array Crossval Describe Distribution Float Fun Gen Histogram Linalg List Metrics QCheck QCheck_alcotest Rng Sampling Special Stats Test
