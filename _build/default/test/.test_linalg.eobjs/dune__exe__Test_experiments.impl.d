test/test_experiments.ml: Alcotest Array Circuit Experiments Float Format Linalg List Polybasis Stats Str String
