(** Sparse multi-indices for multivariate polynomial terms.

    A term like [g(x) = g_2(x_3) * g_1(x_7)] is represented sparsely as
    [[| (3, 2); (7, 1) |]]: pairs (variable, degree) sorted by variable
    with strictly positive degrees. The empty array is the constant
    term 1. Sparse storage is essential: the paper's variation spaces have
    up to 66117 variables, but each term touches only a few of them. *)

type t = (int * int) array

val constant : t

val linear : int -> t
(** [linear i] is the term [x_i]. *)

val pure : int -> int -> t
(** [pure i d] is the degree-[d] polynomial in variable [i] alone. *)

val of_pairs : (int * int) list -> t
(** Normalizes: merges duplicate variables (degrees add), drops zero
    degrees, sorts by variable.
    @raise Invalid_argument on negative variables or degrees. *)

val total_degree : t -> int

val variables : t -> int list
(** Variables appearing in the term, ascending. *)

val max_variable : t -> int
(** Largest variable index; [-1] for the constant term. *)

val compare : t -> t -> int
(** Graded order: by total degree, then lexicographic. *)

val equal : t -> t -> bool

val remap : (int -> int) -> t -> t
(** Renames variables through an injective map (used by stage mapping);
    re-sorts the result. *)

val all_up_to_degree : r:int -> d:int -> t list
(** Every multi-index over [r] variables with total degree [<= d], in
    graded order with the constant first. Intended for small [r]; the
    count is C(r + d, d).
    @raise Invalid_argument if the basis would exceed [2^22] terms. *)

val pp : Format.formatter -> t -> unit
(** Prints like [x3^2*x7] (or [1] for the constant). *)
