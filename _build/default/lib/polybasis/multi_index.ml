type t = (int * int) array

let constant = [||]

let linear i =
  if i < 0 then invalid_arg "Multi_index.linear: negative variable";
  [| (i, 1) |]

let pure i d =
  if i < 0 then invalid_arg "Multi_index.pure: negative variable";
  if d < 0 then invalid_arg "Multi_index.pure: negative degree";
  if d = 0 then constant else [| (i, d) |]

let of_pairs pairs =
  List.iter
    (fun (v, d) ->
      if v < 0 then invalid_arg "Multi_index.of_pairs: negative variable";
      if d < 0 then invalid_arg "Multi_index.of_pairs: negative degree")
    pairs;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, d) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0 in
      Hashtbl.replace tbl v (cur + d))
    pairs;
  let entries =
    Hashtbl.fold (fun v d acc -> if d > 0 then (v, d) :: acc else acc) tbl []
  in
  let arr = Array.of_list entries in
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) arr;
  arr

let total_degree t = Array.fold_left (fun acc (_, d) -> acc + d) 0 t

let variables t = Array.to_list (Array.map fst t)

let max_variable t =
  Array.fold_left (fun acc (v, _) -> Stdlib.max acc v) (-1) t

let lex_compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      match Stdlib.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let compare a b =
  match Stdlib.compare (total_degree a) (total_degree b) with
  | 0 -> lex_compare a b
  | c -> c

let equal a b = compare a b = 0

let remap f t =
  let mapped = Array.map (fun (v, d) -> (f v, d)) t in
  Array.iter
    (fun (v, _) ->
      if v < 0 then invalid_arg "Multi_index.remap: negative image")
    mapped;
  Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) mapped;
  (* injectivity check: no duplicate variables after mapping *)
  for i = 1 to Array.length mapped - 1 do
    if fst mapped.(i) = fst mapped.(i - 1) then
      invalid_arg "Multi_index.remap: map is not injective on this term"
  done;
  mapped

let all_up_to_degree ~r ~d =
  if r < 0 || d < 0 then invalid_arg "Multi_index.all_up_to_degree: negative";
  (* count = C(r + d, d); guard against explosions *)
  let count =
    let acc = ref 1. in
    for i = 1 to d do
      acc := !acc *. float_of_int (r + i) /. float_of_int i
    done;
    !acc
  in
  if count > 4194304. then
    invalid_arg "Multi_index.all_up_to_degree: basis too large";
  (* enumerate exponent vectors recursively, sparsely *)
  let results = ref [] in
  let rec go var budget acc =
    if var = r then results := of_pairs acc :: !results
    else
      for e = 0 to budget do
        go (var + 1) (budget - e) (if e > 0 then (var, e) :: acc else acc)
      done
  in
  go 0 d [];
  List.sort compare !results

let pp fmt t =
  if Array.length t = 0 then Format.fprintf fmt "1"
  else
    Array.iteri
      (fun i (v, d) ->
        if i > 0 then Format.fprintf fmt "*";
        if d = 1 then Format.fprintf fmt "x%d" v
        else Format.fprintf fmt "x%d^%d" v d)
      t
