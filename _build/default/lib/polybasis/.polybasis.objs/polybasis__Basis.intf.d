lib/polybasis/basis.mli: Linalg Multi_index
