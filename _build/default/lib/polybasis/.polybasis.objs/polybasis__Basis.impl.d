lib/polybasis/basis.ml: Array Hashtbl Hermite Linalg List Multi_index Stdlib
