lib/polybasis/hermite.ml: Array
