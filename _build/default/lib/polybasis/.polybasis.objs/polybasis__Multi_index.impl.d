lib/polybasis/multi_index.ml: Array Format Hashtbl List Stdlib
