lib/polybasis/multi_index.mli: Format
