lib/polybasis/hermite.mli:
