(** LU factorization with partial pivoting, for general square systems.

    Used for the MNA solves of small parasitic networks in the circuit
    substrate and as a reference solver in tests. *)

exception Singular of int
(** Raised with the offending column when no usable pivot exists. *)

type t
(** A factorization [p * a = l * u] with a permutation [p]. *)

val factorize : Mat.t -> t
(** @raise Singular when the matrix is numerically singular. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [a * x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t

val inverse : t -> Mat.t

val det : t -> float
(** Determinant of [a] (sign includes the permutation parity). *)

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot convenience: factorize then solve. *)
