type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows + 1 *)
  col_idx : int array; (* length nnz *)
  values : float array; (* length nnz *)
}

type triplet = { row : int; col : int; value : float }

let of_triplets ~rows ~cols triplets =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative dims";
  List.iter
    (fun { row; col; _ } ->
      if row < 0 || row >= rows || col < 0 || col >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: index (%d, %d) out of %dx%d"
             row col rows cols))
    triplets;
  (* Sort by (row, col) and sum duplicates. *)
  let arr = Array.of_list triplets in
  Array.sort
    (fun a b ->
      match compare a.row b.row with 0 -> compare a.col b.col | c -> c)
    arr;
  let merged = ref [] and count = ref 0 in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let { row; col; value } = arr.(!i) in
    let acc = ref value in
    incr i;
    while !i < n && arr.(!i).row = row && arr.(!i).col = col do
      acc := !acc +. arr.(!i).value;
      incr i
    done;
    merged := { row; col; value = !acc } :: !merged;
    incr count
  done;
  let entries = Array.of_list (List.rev !merged) in
  let nnz = Array.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iter (fun e -> row_ptr.(e.row + 1) <- row_ptr.(e.row + 1) + 1) entries;
  for r = 0 to rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  let col_idx = Array.make nnz 0 and values = Array.make nnz 0. in
  Array.iteri
    (fun k e ->
      col_idx.(k) <- e.col;
      values.(k) <- e.value)
    entries;
  { rows; cols; row_ptr; col_idx; values }

let dims a = (a.rows, a.cols)

let nnz a = Array.length a.values

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Sparse.get: index out of bounds";
  let res = ref 0. in
  for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
    if a.col_idx.(k) = j then res := a.values.(k)
  done;
  !res

let mv a x =
  if Array.length x <> a.cols then invalid_arg "Sparse.mv: length mismatch";
  let y = Array.make a.rows 0. in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      acc :=
        !acc
        +. Array.unsafe_get a.values k
           *. Array.unsafe_get x (Array.unsafe_get a.col_idx k)
    done;
    Array.unsafe_set y i !acc
  done;
  y

let mv_t a x =
  if Array.length x <> a.rows then invalid_arg "Sparse.mv_t: length mismatch";
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then
      for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        let j = Array.unsafe_get a.col_idx k in
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. Array.unsafe_get a.values k))
      done
  done;
  y

let to_dense a =
  let m = Mat.create a.rows a.cols in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Mat.set m i a.col_idx.(k) a.values.(k)
    done
  done;
  m

let of_dense ?(tol = 0.) m =
  let rows, cols = Mat.dims m in
  let triplets = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Mat.get m i j in
      if Float.abs v > tol then triplets := { row = i; col = j; value = v } :: !triplets
    done
  done;
  of_triplets ~rows ~cols !triplets

let diag a =
  if a.rows <> a.cols then invalid_arg "Sparse.diag: not square";
  Array.init a.rows (fun i -> get a i i)

let scale s a = { a with values = Array.map (fun v -> s *. v) a.values }

let iter f a =
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      f i a.col_idx.(k) a.values.(k)
    done
  done

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  iter
    (fun i j v ->
      let w = get a j i in
      let scale = Float.max 1. (Float.max (Float.abs v) (Float.abs w)) in
      if Float.abs (v -. w) > tol *. scale then ok := false)
    a;
  !ok
