(** Conjugate-gradient solver for sparse symmetric positive-definite
    systems, with optional Jacobi (diagonal) preconditioning.

    Used to solve the MNA conductance systems of parasitic RC networks in
    the circuit substrate. *)

type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?precondition:bool ->
  Sparse.t ->
  Vec.t ->
  result
(** [solve a b] iterates until [||a x - b|| <= tol * ||b||] (default
    [tol = 1e-10]) or [max_iter] (default [4 * n]) iterations. [precondition]
    (default [true]) enables Jacobi preconditioning; it requires a strictly
    positive diagonal and falls back to the unpreconditioned iteration
    otherwise. *)
