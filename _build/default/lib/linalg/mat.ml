type t = { rows : int; cols : int; data : float array }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Mat: negative dimension"

let create r c =
  check_dims r c;
  { rows = r; cols = c; data = Array.make (r * c) 0. }

let init r c f =
  check_dims r c;
  let data = Array.make (r * c) 0. in
  for i = 0 to r - 1 do
    let base = i * c in
    for j = 0 to c - 1 do
      Array.unsafe_set data (base + j) (f i j)
    done
  done;
  { rows = r; cols = c; data }

let make r c v =
  check_dims r c;
  { rows = r; cols = c; data = Array.make (r * c) v }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let c = Array.length rows_arr.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init r c (fun i j -> rows_arr.(i).(j))
  end

let to_arrays a =
  Array.init a.rows (fun i -> Array.sub a.data (i * a.cols) a.cols)

let of_rows rows_list = of_arrays (Array.of_list rows_list)

let copy a = { a with data = Array.copy a.data }

let dims a = (a.rows, a.cols)

let rows a = a.rows

let cols a = a.cols

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.get: index out of bounds";
  Array.unsafe_get a.data ((i * a.cols) + j)

let set a i j v =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.set: index out of bounds";
  Array.unsafe_set a.data ((i * a.cols) + j) v

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: index out of bounds";
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: index out of bounds";
  Array.init a.rows (fun i -> Array.unsafe_get a.data ((i * a.cols) + j))

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: index out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: index out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  for i = 0 to a.rows - 1 do
    Array.unsafe_set a.data ((i * a.cols) + j) (Array.unsafe_get v i)
  done

let transpose a =
  let b = create a.cols a.rows in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      Array.unsafe_set b.data ((j * b.cols) + i)
        (Array.unsafe_get a.data (base + j))
    done
  done;
  b

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name
         a.rows a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Vec.add a.data b.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Vec.sub a.data b.data }

let scale s a = { a with data = Vec.scale s a.data }

let add_diag a d =
  if a.rows <> a.cols then invalid_arg "Mat.add_diag: not square";
  if Array.length d <> a.rows then invalid_arg "Mat.add_diag: length mismatch";
  let b = copy a in
  for i = 0 to a.rows - 1 do
    let k = (i * a.cols) + i in
    Array.unsafe_set b.data k (Array.unsafe_get b.data k +. d.(i))
  done;
  b

let diag a =
  if a.rows <> a.cols then invalid_arg "Mat.diag: not square";
  Array.init a.rows (fun i -> Array.unsafe_get a.data ((i * a.cols) + i))

let of_diag d =
  let n = Array.length d in
  init n n (fun i j -> if i = j then d.(i) else 0.)

let gemv a x =
  if Array.length x <> a.cols then invalid_arg "Mat.gemv: length mismatch";
  let y = Array.make a.rows 0. in
  let data = a.data and c = a.cols in
  for i = 0 to a.rows - 1 do
    let base = i * c in
    let acc = ref 0. in
    for j = 0 to c - 1 do
      acc := !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done;
  y

let gemv_t a x =
  if Array.length x <> a.rows then invalid_arg "Mat.gemv_t: length mismatch";
  let y = Array.make a.cols 0. in
  let data = a.data and c = a.cols in
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let base = i * c in
      for j = 0 to c - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. Array.unsafe_get data (base + j)))
      done
    end
  done;
  y

(* ikj loop order: the inner loop walks both [b] and [c] rows contiguously. *)
let gemm a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.gemm: dimension mismatch (%dx%d * %dx%d)" a.rows
         a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  let n = b.cols in
  for i = 0 to a.rows - 1 do
    let abase = i * a.cols and cbase = i * n in
    for k = 0 to a.cols - 1 do
      let aik = Array.unsafe_get a.data (abase + k) in
      if aik <> 0. then begin
        let bbase = k * n in
        for j = 0 to n - 1 do
          Array.unsafe_set c.data (cbase + j)
            (Array.unsafe_get c.data (cbase + j)
            +. (aik *. Array.unsafe_get b.data (bbase + j)))
        done
      end
    done
  done;
  c

let sym_mirror_upper a =
  if a.rows <> a.cols then invalid_arg "Mat.sym_mirror_upper: not square";
  let n = a.rows in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Array.unsafe_set a.data ((j * n) + i)
        (Array.unsafe_get a.data ((i * n) + j))
    done
  done

(* a^T a via accumulated rank-1 updates of the rows: upper triangle only,
   then mirrored. Every access is contiguous in the row. *)
let weighted_gram a w =
  if Array.length w <> a.rows then
    invalid_arg "Mat.weighted_gram: weight length mismatch";
  let m = a.cols in
  let c = create m m in
  for k = 0 to a.rows - 1 do
    let base = k * m in
    let wk = Array.unsafe_get w k in
    if wk <> 0. then
      for i = 0 to m - 1 do
        let v = wk *. Array.unsafe_get a.data (base + i) in
        if v <> 0. then begin
          let cbase = i * m in
          for j = i to m - 1 do
            Array.unsafe_set c.data (cbase + j)
              (Array.unsafe_get c.data (cbase + j)
              +. (v *. Array.unsafe_get a.data (base + j)))
          done
        end
      done
  done;
  sym_mirror_upper c;
  c

let gram a = weighted_gram a (Array.make a.rows 1.)

(* a diag(w) a^T: rows are contiguous so the triple loop is fully
   sequential; upper triangle then mirror. *)
let weighted_outer_gram a w =
  if Array.length w <> a.cols then
    invalid_arg "Mat.weighted_outer_gram: weight length mismatch";
  let k = a.rows and m = a.cols in
  let c = create k k in
  for i = 0 to k - 1 do
    let ibase = i * m in
    for j = i to k - 1 do
      let jbase = j * m in
      let acc = ref 0. in
      for t = 0 to m - 1 do
        acc :=
          !acc
          +. Array.unsafe_get a.data (ibase + t)
             *. Array.unsafe_get w t
             *. Array.unsafe_get a.data (jbase + t)
      done;
      Array.unsafe_set c.data ((i * k) + j) !acc
    done
  done;
  sym_mirror_upper c;
  c

let outer_gram a = weighted_outer_gram a (Array.make a.cols 1.)

let mul_cols a w =
  if Array.length w <> a.cols then
    invalid_arg "Mat.mul_cols: weight length mismatch";
  let b = copy a in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      Array.unsafe_set b.data (base + j)
        (Array.unsafe_get b.data (base + j) *. Array.unsafe_get w j)
    done
  done;
  b

let frobenius a = Vec.nrm2 a.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && Vec.approx_equal ~tol a.data b.data

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      let x = get a i j and y = get a j i in
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      if Float.abs (x -. y) > tol *. scale then ok := false
    done
  done;
  !ok

let swap_rows a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.rows then
    invalid_arg "Mat.swap_rows: index out of bounds";
  if i <> j then begin
    let c = a.cols in
    for t = 0 to c - 1 do
      let x = Array.unsafe_get a.data ((i * c) + t) in
      Array.unsafe_set a.data ((i * c) + t)
        (Array.unsafe_get a.data ((j * c) + t));
      Array.unsafe_set a.data ((j * c) + t) x
    done
  end

let map f a = { a with data = Array.map f a.data }

let pp fmt a =
  Format.fprintf fmt "@[<v>matrix %dx%d" a.rows a.cols;
  let rmax = Stdlib.min a.rows 6 and cmax = Stdlib.min a.cols 6 in
  for i = 0 to rmax - 1 do
    Format.fprintf fmt "@,| ";
    for j = 0 to cmax - 1 do
      Format.fprintf fmt "%10.4g " (get a i j)
    done;
    if a.cols > cmax then Format.fprintf fmt "..."
  done;
  if a.rows > rmax then Format.fprintf fmt "@,| ...";
  Format.fprintf fmt "@]"
