(** QR factorization by Householder reflections, and least-squares solves.

    This is the workhorse behind ordinary least-squares fitting (Sec. II-B
    of the paper) and the small dense solves inside OMP. *)

exception Rank_deficient of int
(** Raised with the offending column when a zero pivot appears during the
    least-squares back substitution. *)

type t
(** A factorization [a = q * r] of an [m] x [n] matrix with [m >= n],
    stored in compact Householder form. *)

val factorize : Mat.t -> t
(** Factorizes a matrix with at least as many rows as columns.
    @raise Invalid_argument when [rows < cols]. *)

val r : t -> Mat.t
(** The upper-triangular [n] x [n] factor. *)

val q_thin : t -> Mat.t
(** The thin orthonormal factor ([m] x [n]). *)

val apply_qt : t -> Vec.t -> Vec.t
(** [apply_qt f b] is [q^T * b] (length [m]), without forming [q]. *)

val solve_ls : t -> Vec.t -> Vec.t
(** Least-squares solution of [a * x ~= b].
    @raise Rank_deficient on numerically rank-deficient [a]. *)

val least_squares : Mat.t -> Vec.t -> Vec.t
(** One-shot convenience: factorize then {!solve_ls}. *)

val residual_norm : t -> Vec.t -> float
(** Norm of the least-squares residual [||a x - b||_2], read off the tail
    of [q^T b] without computing [x]. *)
