lib/linalg/mat.mli: Format Vec
