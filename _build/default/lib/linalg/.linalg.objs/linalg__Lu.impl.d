lib/linalg/lu.ml: Array Float Mat
