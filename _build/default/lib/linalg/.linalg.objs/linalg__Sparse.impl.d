lib/linalg/sparse.ml: Array Float List Mat Printf
