lib/linalg/eigen_sym.ml: Array Float Mat Vec
