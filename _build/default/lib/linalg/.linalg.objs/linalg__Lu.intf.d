lib/linalg/lu.mli: Mat Vec
