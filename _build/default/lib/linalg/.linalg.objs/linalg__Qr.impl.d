lib/linalg/qr.ml: Array Float Mat
