lib/linalg/woodbury.ml: Array Cholesky Float List Mat Printf Vec
