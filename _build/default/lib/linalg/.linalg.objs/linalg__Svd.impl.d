lib/linalg/svd.ml: Array Float Mat Vec
