lib/linalg/woodbury.mli: Mat Vec
