lib/linalg/conj_grad.mli: Sparse Vec
