lib/linalg/svd.mli: Mat Vec
