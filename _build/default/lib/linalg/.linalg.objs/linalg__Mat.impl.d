lib/linalg/mat.ml: Array Float Format Printf Stdlib Vec
