lib/linalg/vec.ml: Array Float Format Printf Stdlib
