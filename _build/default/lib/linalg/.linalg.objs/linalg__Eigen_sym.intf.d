lib/linalg/eigen_sym.mli: Mat Vec
