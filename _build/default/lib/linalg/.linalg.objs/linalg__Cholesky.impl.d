lib/linalg/cholesky.ml: Array Float Mat
