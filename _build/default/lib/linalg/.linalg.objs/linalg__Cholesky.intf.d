lib/linalg/cholesky.mli: Mat Vec
