lib/linalg/conj_grad.ml: Array Float Sparse Vec
