lib/linalg/sparse.mli: Mat Vec
