(** Sparse matrices in compressed-sparse-row (CSR) form.

    Built from coordinate (COO) triplets with duplicate summation — the
    natural form produced by stamping circuit elements into an MNA matrix
    (see [Circuit.Mna]). *)

type t

type triplet = { row : int; col : int; value : float }

val of_triplets : rows:int -> cols:int -> triplet list -> t
(** Builds a CSR matrix; duplicate (row, col) entries are summed (the MNA
    "stamping" convention) and explicit zeros produced by cancellation are
    kept. Out-of-range indices raise [Invalid_argument]. *)

val dims : t -> int * int

val nnz : t -> int
(** Number of stored entries. *)

val get : t -> int -> int -> float
(** Entry lookup; zero for entries not stored. *)

val mv : t -> Vec.t -> Vec.t
(** Sparse matrix-vector product. *)

val mv_t : t -> Vec.t -> Vec.t
(** Transposed product [a^T x]. *)

val to_dense : t -> Mat.t

val of_dense : ?tol:float -> Mat.t -> t
(** Drops entries with magnitude [<= tol] (default [0.]). *)

val diag : t -> Vec.t
(** Main diagonal (zeros where absent); requires a square matrix. *)

val scale : float -> t -> t

val iter : (int -> int -> float -> unit) -> t -> unit
(** Iterates over stored entries in row order. *)

val is_symmetric : ?tol:float -> t -> bool
