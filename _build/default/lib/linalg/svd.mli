(** Singular value decomposition by the one-sided Jacobi method.

    Produces [a = u * diag(s) * v^T] with orthonormal [u] (thin, m x n),
    orthonormal [v] (n x n) and non-negative singular values in
    descending order. Used for rank/conditioning diagnostics of design
    matrices and for minimum-norm least squares. Intended for m >= n. *)

type t = { u : Mat.t; s : Vec.t; v : Mat.t }

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] for [a] with at least as many rows as columns
    (transpose first otherwise). [tol] (default [1e-12]) is the relative
    off-orthogonality threshold; [max_sweeps] defaults to 60.
    @raise Invalid_argument when [rows < cols]. *)

val reconstruct : t -> Mat.t
(** [u * diag(s) * v^T]. *)

val rank : ?tol:float -> t -> int
(** Number of singular values above [tol * s_max] (default [1e-10]). *)

val condition_number : t -> float
(** [s_max / s_min]; [infinity] when [s_min = 0]. *)

val pseudo_inverse : ?tol:float -> t -> Mat.t
(** Moore-Penrose inverse ([n] x [m]); singular values below
    [tol * s_max] are treated as zero. *)

val solve_min_norm : ?tol:float -> t -> Vec.t -> Vec.t
(** Minimum-norm least-squares solution of [a x ~= b]. *)
