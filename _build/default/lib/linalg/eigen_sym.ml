type t = { values : Vec.t; vectors : Mat.t }

let off_diag_norm a =
  let n = Mat.rows a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

let decompose ?(max_sweeps = 50) ?(tol = 1e-12) a0 =
  let n, c = Mat.dims a0 in
  if n <> c then invalid_arg "Eigen_sym.decompose: not square";
  if not (Mat.is_symmetric ~tol:1e-8 a0) then
    invalid_arg "Eigen_sym.decompose: not symmetric";
  let a = Mat.copy a0 in
  let v = Mat.identity n in
  let anorm = Float.max 1e-300 (Mat.frobenius a) in
  let sweeps = ref 0 in
  while off_diag_norm a > tol *. anorm && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let cs = 1. /. sqrt ((t *. t) +. 1.) in
          let sn = t *. cs in
          (* Rotate rows/columns p and q of a. *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((cs *. akp) -. (sn *. akq));
            Mat.set a k q ((sn *. akp) +. (cs *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((cs *. apk) -. (sn *. aqk));
            Mat.set a q k ((sn *. apk) +. (cs *. aqk))
          done;
          (* Accumulate the rotation into the eigenvector matrix. *)
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((cs *. vkp) -. (sn *. vkq));
            Mat.set v k q ((sn *. vkp) +. (cs *. vkq))
          done
        end
      done
    done
  done;
  (* Sort ascending by eigenvalue, permuting eigenvector columns. *)
  let order = Array.init n (fun i -> i) in
  let values = Mat.diag a in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors =
    Mat.init n n (fun i j -> Mat.get v i order.(j))
  in
  { values = sorted_values; vectors = sorted_vectors }

let reconstruct { values; vectors } =
  let n = Array.length values in
  let scaled = Mat.mul_cols vectors values in
  Mat.gemm scaled (Mat.transpose vectors)
  |> fun m -> Mat.init n n (fun i j -> Mat.get m i j)

let condition_number { values; _ } =
  let n = Array.length values in
  if n = 0 then invalid_arg "Eigen_sym.condition_number: empty";
  let amin = ref infinity and amax = ref 0. in
  Array.iter
    (fun v ->
      let a = Float.abs v in
      if a < !amin then amin := a;
      if a > !amax then amax := a)
    values;
  if !amin = 0. then infinity else !amax /. !amin
