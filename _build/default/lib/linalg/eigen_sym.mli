(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Used for posterior-covariance analysis (credible regions) and for
    condition-number diagnostics in tests. Intended for moderate sizes. *)

type t = { values : Vec.t; vectors : Mat.t }
(** Eigenvalues in ascending order; [vectors] holds the corresponding
    orthonormal eigenvectors as columns. *)

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] diagonalizes symmetric [a]. [tol] (default [1e-12])
    bounds the final off-diagonal Frobenius mass relative to the matrix
    norm; [max_sweeps] defaults to 50.
    @raise Invalid_argument if [a] is not square or not symmetric. *)

val reconstruct : t -> Mat.t
(** [v * diag(values) * v^T]; inverse of {!decompose} up to roundoff. *)

val condition_number : t -> float
(** Ratio of extreme absolute eigenvalues; [infinity] when the smallest
    is zero. *)
