(** Dense row-major matrices of unboxed floats.

    The representation is a flat [float array] of length [rows * cols];
    entry (i, j) lives at index [i * cols + j]. Rows are therefore
    contiguous, and all hot kernels below iterate row-wise. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at (i, j). *)

val make : int -> int -> float -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Builds from an array of rows; all rows must have equal length. *)

val to_arrays : t -> float array array

val of_rows : Vec.t list -> t

val copy : t -> t

val dims : t -> int * int

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** Copy of row [i]. *)

val col : t -> int -> Vec.t
(** Copy of column [j]. *)

val set_row : t -> int -> Vec.t -> unit

val set_col : t -> int -> Vec.t -> unit

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_diag : t -> Vec.t -> t
(** [add_diag a d] adds [d] to the main diagonal of square [a] (fresh). *)

val diag : t -> Vec.t
(** Main diagonal of a square matrix. *)

val of_diag : Vec.t -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

val gemv : t -> Vec.t -> Vec.t
(** [gemv a x] is [a * x]. *)

val gemv_t : t -> Vec.t -> Vec.t
(** [gemv_t a x] is [a^T * x], computed without materializing [a^T]. *)

val gemm : t -> t -> t
(** [gemm a b] is [a * b], cache-blocked (ikj loop order). *)

val gram : t -> t
(** [gram a] is [a^T * a] ([cols] x [cols]), symmetric, built from rank-1
    row updates so access stays contiguous. *)

val weighted_gram : t -> Vec.t -> t
(** [weighted_gram a w] is [a^T * diag(w) * a]. *)

val outer_gram : t -> t
(** [outer_gram a] is [a * a^T] ([rows] x [rows]). *)

val weighted_outer_gram : t -> Vec.t -> t
(** [weighted_outer_gram a w] is [a * diag(w) * a^T]; the kernel at the
    heart of the Sherman-Morrison-Woodbury fast solver (eq. 55/58). *)

val mul_cols : t -> Vec.t -> t
(** [mul_cols a w] scales column [j] of [a] by [w.(j)] (fresh matrix),
    i.e. [a * diag(w)]. *)

val sym_mirror_upper : t -> unit
(** Copies the strict upper triangle onto the lower one in place. *)

val frobenius : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val is_symmetric : ?tol:float -> t -> bool

val swap_rows : t -> int -> int -> unit

val map : (float -> float) -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a small corner of the matrix with its dimensions. *)
