let rule fmt title =
  let bar = String.make 72 '=' in
  Format.fprintf fmt "%s@.%s@.%s@." bar title bar

let accuracy_table fmt (a : Runner.accuracy) =
  Format.fprintf fmt "Relative modeling error (%%) of %s for %s — %d repeat%s@."
    a.metric a.circuit a.repeats
    (if a.repeats = 1 then "" else "s");
  Format.fprintf fmt "%-10s" "samples";
  List.iter
    (fun m -> Format.fprintf fmt "%18s" (Methods.name m))
    a.methods;
  Format.fprintf fmt "@.";
  List.iteri
    (fun ki k ->
      Format.fprintf fmt "%-10d" k;
      List.iteri
        (fun mi _ ->
          let c = a.cells.(ki).(mi) in
          if a.repeats > 1 then
            Format.fprintf fmt "%11.4f (%4.2f)" c.Runner.mean_pct
              c.Runner.std_pct
          else Format.fprintf fmt "%18.4f" c.Runner.mean_pct)
        a.methods;
      Format.fprintf fmt "@.")
    a.sample_sizes

let accuracy_csv (a : Runner.accuracy) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "circuit,metric,samples,method,mean_pct,std_pct\n";
  List.iteri
    (fun ki k ->
      List.iteri
        (fun mi m ->
          let c = a.cells.(ki).(mi) in
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%d,%s,%.6f,%.6f\n" a.circuit a.metric k
               (Methods.name m) c.Runner.mean_pct c.Runner.std_pct))
        a.methods)
    a.sample_sizes;
  Buffer.contents buf

let cost_table fmt ~circuit entries =
  Format.fprintf fmt "Relative modeling error and cost for %s@." circuit;
  Format.fprintf fmt "%-34s" "";
  List.iter
    (fun (e : Runner.cost_entry) ->
      Format.fprintf fmt "%20s" (Methods.name e.method_))
    entries;
  Format.fprintf fmt "@.";
  Format.fprintf fmt "%-34s" "# of post-layout training samples";
  List.iter
    (fun (e : Runner.cost_entry) -> Format.fprintf fmt "%20d" e.samples)
    entries;
  Format.fprintf fmt "@.";
  (match entries with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun (metric, _) ->
          Format.fprintf fmt "%-34s" ("Modeling error for " ^ metric);
          List.iter
            (fun (e : Runner.cost_entry) ->
              let v = List.assoc metric e.errors_pct in
              Format.fprintf fmt "%19.4f%%" v)
            entries;
          Format.fprintf fmt "@.")
        first.errors_pct);
  Format.fprintf fmt "%-34s" "Simulation cost (Hour)";
  List.iter
    (fun (e : Runner.cost_entry) -> Format.fprintf fmt "%20.2f" e.sim_hours)
    entries;
  Format.fprintf fmt "@.";
  Format.fprintf fmt "%-34s" "Fitting cost (Second)";
  List.iter
    (fun (e : Runner.cost_entry) -> Format.fprintf fmt "%20.2f" e.fit_seconds)
    entries;
  Format.fprintf fmt "@.";
  Format.fprintf fmt "%-34s" "Total modeling cost (Hour)";
  List.iter
    (fun (e : Runner.cost_entry) -> Format.fprintf fmt "%20.2f" e.total_hours)
    entries;
  Format.fprintf fmt "@.";
  (match entries with
  | [ omp; bmf ] when omp.Runner.total_hours > 0. && bmf.Runner.total_hours > 0.
    ->
      Format.fprintf fmt "%-34s%20s%19.1fx@." "Speedup over OMP" ""
        (omp.Runner.total_hours /. bmf.Runner.total_hours)
  | _ -> ())

let solver_table fmt timings =
  Format.fprintf fmt "%-10s%18s%24s%22s%12s@." "samples" "OMP (s)"
    "BMF-PS Cholesky (s)" "BMF-PS fast (s)" "speedup";
  List.iter
    (fun (t : Runner.solver_timing) ->
      let speedup =
        if Float.is_nan t.bmf_direct_seconds then nan
        else t.bmf_direct_seconds /. t.bmf_fast_seconds
      in
      Format.fprintf fmt "%-10d%18.4f%24.4f%22.4f%11.1fx@." t.samples
        t.omp_seconds t.bmf_direct_seconds t.bmf_fast_seconds speedup)
    timings
