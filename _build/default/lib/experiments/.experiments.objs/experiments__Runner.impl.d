lib/experiments/runner.ml: Array Bmf Circuit Config Float Linalg List Methods Polybasis Printf Regression Stats Stdlib Unix
