lib/experiments/config.ml: Circuit Format List Stdlib String
