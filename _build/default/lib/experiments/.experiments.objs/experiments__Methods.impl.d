lib/experiments/methods.ml: Array Bmf Linalg Printf Regression String Unix
