lib/experiments/report.ml: Array Buffer Float Format List Methods Printf Runner String
