lib/experiments/config.mli: Circuit Format
