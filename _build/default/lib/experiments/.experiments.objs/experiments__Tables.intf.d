lib/experiments/tables.mli: Config Runner
