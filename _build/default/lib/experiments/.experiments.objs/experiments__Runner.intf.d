lib/experiments/runner.mli: Circuit Config Methods Polybasis
