lib/experiments/figures.mli: Config
