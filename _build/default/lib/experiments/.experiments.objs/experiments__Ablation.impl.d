lib/experiments/ablation.ml: Array Bmf Buffer Circuit Config Float Linalg List Methods Polybasis Printf Regression Runner Stats Stdlib String
