lib/experiments/report.mli: Format Runner
