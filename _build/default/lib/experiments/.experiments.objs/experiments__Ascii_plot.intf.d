lib/experiments/ascii_plot.mli: Stats
