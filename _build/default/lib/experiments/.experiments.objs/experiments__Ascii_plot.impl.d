lib/experiments/ascii_plot.ml: Array Buffer Float List Printf Stats Stdlib String
