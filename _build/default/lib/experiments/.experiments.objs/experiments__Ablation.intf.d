lib/experiments/ablation.mli: Config
