lib/experiments/methods.mli: Linalg Stats
