lib/experiments/figures.ml: Array Ascii_plot Buffer Circuit Config Format List Printf Report Runner Stats
