lib/experiments/tables.ml: Buffer Circuit Config Format List Report Runner Stdlib
