(** Terminal rendering of the paper's figures: histograms, x/y series
    and function curves, drawn on a character grid. *)

val histogram :
  ?width:int -> ?title:string -> ?unit_label:string -> Stats.Histogram.t -> string
(** Horizontal-bar histogram, one row per bin ([width] characters for
    the largest bin, default 50). *)

type series = { label : string; points : (float * float) list }

val xy :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Scatter plot of several series on one grid (markers [*], [o], [+],
    [x], ...). [log_y] plots the y axis in log10 (non-positive values
    are dropped). *)

val curve :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?samples:int ->
  lo:float ->
  hi:float ->
  (string * (float -> float)) list ->
  string
(** Function plot over [lo, hi] (default 120 samples per curve). *)
