(** Rendering of experiment results in the paper's table layouts. *)

val accuracy_table : Format.formatter -> Runner.accuracy -> unit
(** The Tables I-III / V layout: one row per training-set size, one
    column per method, mean relative error in percent (std in
    parentheses when more than one repeat ran). *)

val accuracy_csv : Runner.accuracy -> string
(** Machine-readable form: header row then
    [samples,method,mean_pct,std_pct] rows. *)

val cost_table :
  Format.formatter -> circuit:string -> Runner.cost_entry list -> unit
(** The Tables IV / VI layout: per-method sample counts, per-metric
    errors, simulation / fitting / total cost. *)

val solver_table : Format.formatter -> Runner.solver_timing list -> unit
(** Numeric companion of Fig. 5 / Fig. 8: fitting seconds per method and
    training-set size, with the speedup of the fast solver over the
    conventional one. *)

val rule : Format.formatter -> string -> unit
(** A titled horizontal separator. *)
