(** Ablation studies of the design choices DESIGN.md calls out; each
    returns a rendered report. All run on the ring-oscillator benchmark
    at the configured scale. *)

val prior_quality : ?progress:(string -> unit) -> Config.t -> string
(** Degrades the early/late agreement (the layout discrepancy of the
    device sensitivities) and tracks BMF-PS against OMP at the smallest
    sample size: BMF's advantage should shrink gracefully as the prior
    gets stale. *)

val sampling_scheme : ?progress:(string -> unit) -> Config.t -> string
(** Monte Carlo vs Latin hypercube training samples, for OMP and
    BMF-PS. *)

val missing_prior : ?progress:(string -> unit) -> Config.t -> string
(** Blanks a growing fraction of the early coefficients (as if those
    basis functions were late-stage-only) and tracks the BMF-PS error:
    the cost of missing prior knowledge (Sec. IV-B). *)

val early_fit : ?progress:(string -> unit) -> Config.t -> string
(** Early-stage model fitted by OMP (the paper's choice) vs least
    squares, and the downstream effect on BMF-PS. *)

val nonlinear_basis : ?progress:(string -> unit) -> Config.t -> string
(** Exercises BMF with second-order orthonormal bases (the paper's
    closing remark in Sec. V): a synthetic response with genuine
    quadratic content, fitted with a diagonal-quadratic Hermite basis
    versus a linear one. *)

val baselines : ?progress:(string -> unit) -> Config.t -> string
(** Widens the method comparison beyond the paper's four columns with
    ridge and lasso baselines (RO frequency, smallest K). *)

val hyper_selection : ?progress:(string -> unit) -> Config.t -> string
(** Compares the paper's N-fold cross-validation against closed-form
    marginal-likelihood (evidence) maximization for choosing the
    hyper-parameter — an empirical-Bayes extension. *)

val solver_exactness : ?progress:(string -> unit) -> Config.t -> string
(** Verifies on live data that the fast solver (eq. 53-58) returns the
    direct solver's answer to roundoff, across priors and
    hyper-parameters. *)

val all : ?progress:(string -> unit) -> Config.t -> string
