type t = Omp | Bmf_zm | Bmf_nzm | Bmf_ps | Ridge_cv | Lasso

let paper_methods = [ Omp; Bmf_zm; Bmf_nzm; Bmf_ps ]

let name = function
  | Omp -> "OMP"
  | Bmf_zm -> "BMF-ZM"
  | Bmf_nzm -> "BMF-NZM"
  | Bmf_ps -> "BMF-PS"
  | Ridge_cv -> "Ridge"
  | Lasso -> "Lasso"

let of_name s =
  match String.lowercase_ascii s with
  | "omp" -> Omp
  | "bmf-zm" | "zm" -> Bmf_zm
  | "bmf-nzm" | "nzm" -> Bmf_nzm
  | "bmf-ps" | "ps" | "bmf" -> Bmf_ps
  | "ridge" -> Ridge_cv
  | "lasso" -> Lasso
  | _ -> invalid_arg (Printf.sprintf "Methods.of_name: unknown method %S" s)

type problem = {
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  early : float option array;
  cv_folds : int;
  omp_max_terms : int;
}

let bmf_config p =
  {
    Bmf.Fusion.default_config with
    cv_folds = p.cv_folds;
  }

let fit ?rng method_ p =
  match method_ with
  | Omp ->
      let result =
        Regression.Omp.fit_design ?rng ~g:p.g ~f:p.f
          (Regression.Omp.Cross_validation
             { folds = p.cv_folds; max_terms = p.omp_max_terms })
      in
      result.Regression.Omp.coeffs
  | Bmf_zm | Bmf_nzm | Bmf_ps ->
      let m =
        match method_ with
        | Bmf_zm -> Bmf.Fusion.Bmf_zm
        | Bmf_nzm -> Bmf.Fusion.Bmf_nzm
        | _ -> Bmf.Fusion.Bmf_ps
      in
      let fitted =
        Bmf.Fusion.fit_design ?rng ~config:(bmf_config p) ~early:p.early
          ~g:p.g ~f:p.f m
      in
      fitted.Bmf.Fusion.coeffs
  | Ridge_cv ->
      (* center the response so the L2 penalty does not fight the
         intercept; every basis in this harness has the constant term in
         column 0, which absorbs the mean back *)
      let mu = Linalg.Vec.mean p.f in
      let centered = Array.map (fun v -> v -. mu) p.f in
      let coeffs, _ =
        Regression.Ridge.fit_cv ?rng ~folds:p.cv_folds ~g:p.g ~f:centered ()
      in
      coeffs.(0) <- coeffs.(0) +. mu;
      coeffs
  | Lasso ->
      let lmax = Regression.Lasso.lambda_max ~g:p.g ~f:p.f in
      let opts = Regression.Lasso.default_options ~lambda:(0.01 *. lmax) in
      (Regression.Lasso.fit_design opts ~g:p.g ~f:p.f).Regression.Lasso.coeffs

let fit_timed ?rng method_ p =
  let t0 = Unix.gettimeofday () in
  let coeffs = fit ?rng method_ p in
  (coeffs, Unix.gettimeofday () -. t0)
