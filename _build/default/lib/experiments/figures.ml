let fig1 () =
  let pdf sigma x = Stats.Special.norm_pdf (x /. sigma) /. sigma in
  "Fig. 1 — zero-mean prior distributions (eq. 12): sigma_m = |alpha_E,m|\n"
  ^ Ascii_plot.curve ~lo:(-3.) ~hi:3.
      ~title:"pdf(alpha_L,m), sigma_1 = 0.25 (peaked) vs sigma_2 = 1.0 (wide)"
      [
        ("alpha_L,1 ~ N(0, 0.25^2)", pdf 0.25);
        ("alpha_L,2 ~ N(0, 1.0^2)", pdf 1.0);
      ]

let fig2 () =
  let pdf mu sigma x = Stats.Special.norm_pdf ((x -. mu) /. sigma) /. sigma in
  "Fig. 2 — nonzero-mean prior distributions (eq. 19): N(alpha_E,m, \
   lambda^2 alpha_E,m^2), lambda = 0.4\n"
  ^ Ascii_plot.curve ~lo:(-1.) ~hi:4.
      ~title:"pdf(alpha_L,m) for alpha_E,1 = 0.4 (small) vs alpha_E,2 = 2.0 (large)"
      [
        ("alpha_L,1 ~ N(0.4, 0.16^2)", pdf 0.4 (0.4 *. 0.4));
        ("alpha_L,2 ~ N(2.0, 0.80^2)", pdf 2.0 (0.4 *. 2.0));
      ]

let netlist_summary tb header =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ^ "\n");
  let fmt = Format.formatter_of_buffer buf in
  Circuit.Netlist.summary fmt tb.Circuit.Testbench.netlist;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt
    "variation variables: %d (schematic) -> %d (post-layout)@."
    tb.Circuit.Testbench.schematic_dim tb.Circuit.Testbench.layout_dim;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let fig3 (cfg : Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  netlist_summary
    (Circuit.Ring_oscillator.testbench ro)
    "Fig. 3 — ring oscillator (32 nm SOI in the paper; behavioral here)"

let fig6 (cfg : Config.t) =
  let sram = Circuit.Sram.create ~config:cfg.Config.sram cfg.seed in
  netlist_summary (Circuit.Sram.testbench sram)
    "Fig. 6 — SRAM read path (wordline driver, 1-column cell array, sense amp)"

let metric_histogram tb ~metric ~samples ~seed ~unit_label =
  let rng = Stats.Rng.create (seed + 101 + metric) in
  let _, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:samples ()
  in
  let h = Stats.Histogram.build ~bins:24 f in
  Ascii_plot.histogram ~unit_label
    ~title:
      (Printf.sprintf "%s (%d post-layout MC samples)"
         tb.Circuit.Testbench.metrics.(metric) samples)
    h

let fig4 ?(samples = 3000) (cfg : Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  "Fig. 4 — histograms of post-layout RO simulation samples\n"
  ^ metric_histogram tb ~metric:Circuit.Ring_oscillator.power_index ~samples
      ~seed:cfg.seed ~unit_label:"mW"
  ^ "\n"
  ^ metric_histogram tb ~metric:Circuit.Ring_oscillator.phase_noise_index
      ~samples ~seed:cfg.seed ~unit_label:"dBc/Hz"
  ^ "\n"
  ^ metric_histogram tb ~metric:Circuit.Ring_oscillator.frequency_index
      ~samples ~seed:cfg.seed ~unit_label:"GHz"

let fig7 ?(samples = 3000) (cfg : Config.t) =
  let sram = Circuit.Sram.create ~config:cfg.Config.sram cfg.seed in
  let tb = Circuit.Sram.testbench sram in
  "Fig. 7 — histogram of post-layout SRAM read-delay samples\n"
  ^ metric_histogram tb ~metric:Circuit.Sram.read_delay_index ~samples
      ~seed:cfg.seed ~unit_label:"ps"

let timing_figure ~title ~with_direct cfg prep =
  let timings = Runner.solver_timings ~with_direct cfg prep in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  let series =
    [
      {
        Ascii_plot.label = "OMP";
        points =
          List.map
            (fun (t : Runner.solver_timing) ->
              (float_of_int t.samples, t.omp_seconds))
            timings;
      };
      {
        Ascii_plot.label = "BMF-PS (fast solver)";
        points =
          List.map
            (fun (t : Runner.solver_timing) ->
              (float_of_int t.samples, t.bmf_fast_seconds))
            timings;
      };
    ]
    @
    if with_direct then
      [
        {
          Ascii_plot.label = "BMF-PS (conventional Cholesky)";
          points =
            List.map
              (fun (t : Runner.solver_timing) ->
                (float_of_int t.samples, t.bmf_direct_seconds))
              timings;
        };
      ]
    else []
  in
  Buffer.add_string buf
    (Ascii_plot.xy ~log_y:true ~x_label:"training samples"
       ~y_label:"fitting cost (s)" series);
  let fmt = Format.formatter_of_buffer buf in
  Report.solver_table fmt timings;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let fig5 ?(with_direct = true) (cfg : Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  timing_figure
    ~title:
      "Fig. 5 — fitting cost vs training samples (RO; one metric shown, the \
       cost is metric-independent)"
    ~with_direct cfg prep

let fig8 (cfg : Config.t) =
  let sram = Circuit.Sram.create ~config:cfg.Config.sram cfg.seed in
  let tb = Circuit.Sram.testbench sram in
  let prep = Runner.prepare cfg tb ~metric:Circuit.Sram.read_delay_index in
  timing_figure
    ~title:
      "Fig. 8 — fitting cost vs training samples (SRAM; conventional solver \
       infeasible at this scale, as in the paper)"
    ~with_direct:false cfg prep
