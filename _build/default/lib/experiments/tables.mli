(** One entry point per table of the paper's evaluation section; each
    returns the rendered table (and is also what [bench/main.ml] and
    [bin/repro.ml] run). *)

val table1 : ?progress:(string -> unit) -> Config.t -> string
(** Table I — relative modeling error of RO power. *)

val table2 : ?progress:(string -> unit) -> Config.t -> string
(** Table II — relative modeling error of RO phase noise. *)

val table3 : ?progress:(string -> unit) -> Config.t -> string
(** Table III — relative modeling error of RO frequency. *)

val table4 : ?progress:(string -> unit) -> Config.t -> string
(** Table IV — error and cost, OMP at the largest sample count vs
    BMF-PS at the smallest (paper: 900 vs 100). *)

val table5 : ?progress:(string -> unit) -> Config.t -> string
(** Table V — relative modeling error of SRAM read delay. *)

val table6 : ?progress:(string -> unit) -> Config.t -> string
(** Table VI — error and cost for the SRAM read path (paper: OMP at
    400 samples vs BMF-PS at 100). *)

val ro_accuracy :
  ?progress:(string -> unit) -> Config.t -> metric:int -> Runner.accuracy
(** The raw experiment behind Tables I-III (exposed for the bench and
    for CSV export). *)

val sram_accuracy : ?progress:(string -> unit) -> Config.t -> Runner.accuracy
(** The raw experiment behind Table V. *)
