let nothing (_ : string) = ()

let k_small (cfg : Config.t) =
  List.fold_left Stdlib.min max_int cfg.Config.sample_sizes

(* Fit OMP and BMF-PS on one fresh draw and return test errors (%). *)
let errors_once (cfg : Config.t) (prep : Runner.prepared) ~scheme ~k rng =
  let tb = prep.Runner.tb and metric = prep.Runner.metric in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k ~scheme ()
  in
  let g = Polybasis.Basis.design_matrix prep.late_basis xs in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:cfg.test_samples ()
  in
  let g_t = Polybasis.Basis.design_matrix prep.late_basis xs_t in
  let problem =
    {
      Methods.g;
      f;
      early = prep.early;
      cv_folds = cfg.cv_folds;
      omp_max_terms = Config.omp_max_terms cfg ~k;
    }
  in
  let eval coeffs =
    100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t
  in
  let omp = eval (Methods.fit ~rng Methods.Omp problem) in
  let ps = eval (Methods.fit ~rng Methods.Bmf_ps problem) in
  (omp, ps)

let prior_quality ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: prior quality — layout discrepancy sweep (RO frequency, \
     smallest K)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-14s%12s%12s%12s\n" "discrepancy" "OMP (%)"
       "BMF-PS (%)" "advantage");
  let k = k_small cfg in
  List.iter
    (fun disc ->
      progress (Printf.sprintf "prior-quality discrepancy=%.2f" disc);
      let ro_cfg =
        {
          cfg.Config.ro with
          profile = { cfg.Config.ro.profile with layout_discrepancy = disc };
        }
      in
      let ro = Circuit.Ring_oscillator.create ~config:ro_cfg cfg.seed in
      let tb = Circuit.Ring_oscillator.testbench ro in
      let prep =
        Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
      in
      let rng = Stats.Rng.create (cfg.seed + 271) in
      let omp, ps = errors_once cfg prep ~scheme:Stats.Sampling.Monte_carlo ~k rng in
      Buffer.add_string buf
        (Printf.sprintf "%-14.2f%12.4f%12.4f%11.1fx\n" disc omp ps (omp /. ps)))
    [ 0.05; 0.12; 0.25; 0.5; 1.0 ];
  Buffer.add_string buf
    "(as the early-stage model goes stale, BMF's edge over OMP shrinks)\n";
  Buffer.contents buf

let sampling_scheme ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: sampling scheme — Monte Carlo vs Latin hypercube (RO \
     frequency)\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  Buffer.add_string buf
    (Printf.sprintf "%-10s%18s%12s%12s\n" "samples" "scheme" "OMP (%)"
       "BMF-PS (%)");
  List.iter
    (fun k ->
      List.iter
        (fun scheme ->
          progress
            (Printf.sprintf "sampling K=%d %s" k
               (Stats.Sampling.scheme_name scheme));
          let rng = Stats.Rng.create (cfg.seed + 331 + k) in
          let omp, ps = errors_once cfg prep ~scheme ~k rng in
          Buffer.add_string buf
            (Printf.sprintf "%-10d%18s%12.4f%12.4f\n" k
               (Stats.Sampling.scheme_name scheme)
               omp ps))
        [
          Stats.Sampling.Monte_carlo;
          Stats.Sampling.Latin_hypercube;
          Stats.Sampling.Halton;
        ])
    [ k_small cfg; 300 ];
  Buffer.contents buf

let missing_prior ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: missing prior knowledge — fraction of early coefficients \
     blanked (RO frequency, smallest K)\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  let k = k_small cfg in
  Buffer.add_string buf
    (Printf.sprintf "%-12s%14s\n" "missing" "BMF-PS (%)");
  List.iter
    (fun frac ->
      progress (Printf.sprintf "missing-prior fraction=%.2f" frac);
      let rng = Stats.Rng.create (cfg.seed + 389) in
      let early =
        Array.mapi
          (fun i e ->
            (* keep the constant term; blank a deterministic stride of the
               rest *)
            if i > 0 && Stats.Rng.float rng < frac then None else e)
          prep.early
      in
      let prep = { prep with early } in
      let rng = Stats.Rng.create (cfg.seed + 389) in
      let _, ps = errors_once cfg prep ~scheme:Stats.Sampling.Monte_carlo ~k rng in
      Buffer.add_string buf (Printf.sprintf "%-12.2f%14.4f\n" frac ps))
    [ 0.0; 0.1; 0.3; 0.6; 0.9 ];
  Buffer.add_string buf
    "(more missing prior -> BMF degrades toward a data-only fit)\n";
  Buffer.contents buf

let early_fit ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: early-stage fitting method and its downstream effect (RO \
     frequency, smallest K)\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let k = k_small cfg in
  Buffer.add_string buf
    (Printf.sprintf "%-24s%16s%14s%14s\n" "early fit" "early err (%)"
       "early terms" "BMF-PS (%)");
  List.iter
    (fun (name, ef) ->
      progress ("early-fit " ^ name);
      let prep =
        Runner.prepare ~early_fit:ef cfg tb
          ~metric:Circuit.Ring_oscillator.frequency_index
      in
      let rng = Stats.Rng.create (cfg.seed + 433) in
      let _, ps = errors_once cfg prep ~scheme:Stats.Sampling.Monte_carlo ~k rng in
      Buffer.add_string buf
        (Printf.sprintf "%-24s%16.4f%14d%14.4f\n" name
           prep.Runner.early_error_pct prep.Runner.early_terms ps))
    [
      ("OMP (paper)", Runner.Omp_early);
      ("least squares", Runner.Least_squares_early);
    ];
  Buffer.contents buf

let nonlinear_basis ?(progress = nothing) (cfg : Config.t) =
  progress "nonlinear-basis";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: second-order bases (paper Sec. V closing remark)\n";
  let rng = Stats.Rng.create (cfg.Config.seed + 541) in
  let r = 60 in
  let basis = Polybasis.Basis.quadratic_diagonal r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i ->
        if i = 0 then 3.
        else if i <= r then 0.8 /. float_of_int i
        else 0.3 /. float_of_int (i - r))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.12 *. Stats.Rng.gaussian rng))))
      truth
  in
  let sample k =
    let xs = Stats.Sampling.monte_carlo rng ~k ~r in
    let g = Polybasis.Basis.design_matrix basis xs in
    let f =
      Array.init k (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row g i) truth
          +. (0.01 *. Stats.Rng.gaussian rng))
    in
    (g, f)
  in
  let g, f = sample 70 and g_t, f_t = sample 400 in
  let eval c = 100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t c) f_t in
  let ps = Bmf.Fusion.fit_design ~rng ~early ~g ~f Bmf.Fusion.Bmf_ps in
  let omp =
    Regression.Omp.fit_design ~rng ~g ~f
      (Regression.Omp.Cross_validation { folds = cfg.cv_folds; max_terms = 25 })
  in
  (* restrict to the linear block to show what a linear basis misses *)
  let g_lin = Linalg.Mat.init 70 (r + 1) (fun i j -> Linalg.Mat.get g i j) in
  let g_t_lin =
    Linalg.Mat.init 400 (r + 1) (fun i j -> Linalg.Mat.get g_t i j)
  in
  let lin =
    Bmf.Fusion.fit_design ~rng
      ~early:(Array.sub early 0 (r + 1))
      ~g:g_lin ~f Bmf.Fusion.Bmf_ps
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  quadratic basis, 70 samples:  BMF-PS %.3f%%  OMP %.3f%%\n"
       (eval ps.coeffs) (eval omp.coeffs));
  Buffer.add_string buf
    (Printf.sprintf
       "  linear basis (same data):     BMF-PS %.3f%%  <- floors at the \
        quadratic variance share\n"
       (100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t_lin lin.coeffs) f_t));
  Buffer.contents buf

let baselines ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: extra baselines — ridge and lasso vs the paper's methods (RO \
     frequency)\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  let k = k_small cfg in
  let rng = Stats.Rng.create (cfg.seed + 577) in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
      ~metric:prep.Runner.metric ~rng ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.Runner.late_basis xs in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
      ~metric:prep.Runner.metric ~rng ~k:cfg.test_samples ()
  in
  let g_t = Polybasis.Basis.design_matrix prep.Runner.late_basis xs_t in
  let problem =
    {
      Methods.g;
      f;
      early = prep.Runner.early;
      cv_folds = cfg.cv_folds;
      omp_max_terms = Config.omp_max_terms cfg ~k;
    }
  in
  Buffer.add_string buf (Printf.sprintf "%-12s%14s\n" "method" "error (%)");
  List.iter
    (fun m ->
      progress ("baseline " ^ Methods.name m);
      let coeffs = Methods.fit ~rng m problem in
      Buffer.add_string buf
        (Printf.sprintf "%-12s%14.4f\n" (Methods.name m)
           (100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t)))
    [
      Methods.Omp;
      Methods.Ridge_cv;
      Methods.Lasso;
      Methods.Bmf_zm;
      Methods.Bmf_nzm;
      Methods.Bmf_ps;
    ];
  Buffer.contents buf

let hyper_selection ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: hyper-parameter selection — cross-validation (paper) vs \
     marginal likelihood (RO frequency, smallest K)\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  let k = k_small cfg in
  let rng = Stats.Rng.create (cfg.seed + 613) in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
      ~metric:prep.Runner.metric ~rng ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.Runner.late_basis xs in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
      ~metric:prep.Runner.metric ~rng ~k:cfg.test_samples ()
  in
  let g_t = Polybasis.Basis.design_matrix prep.Runner.late_basis xs_t in
  Buffer.add_string buf
    (Printf.sprintf "%-12s%22s%14s%14s\n" "prior" "selection" "hyper"
       "error (%)");
  List.iter
    (fun kind ->
      let prior = Bmf.Prior.make kind prep.Runner.early in
      let eval hyper =
        let coeffs = Bmf.Map_solver.solve ~g ~f ~prior ~hyper () in
        100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t
      in
      progress (Printf.sprintf "hyper-selection %s cv" (Bmf.Prior.kind_name kind));
      let h_cv, _ = Bmf.Hyper.select ~rng ~folds:cfg.cv_folds ~g ~f ~prior () in
      progress
        (Printf.sprintf "hyper-selection %s evidence" (Bmf.Prior.kind_name kind));
      let h_ev, _ = Bmf.Hyper.select_evidence ~g ~f ~prior () in
      Buffer.add_string buf
        (Printf.sprintf "%-12s%22s%14.3g%14.4f\n"
           (Bmf.Prior.kind_name kind) "cross-validation" h_cv (eval h_cv));
      Buffer.add_string buf
        (Printf.sprintf "%-12s%22s%14.3g%14.4f\n"
           (Bmf.Prior.kind_name kind) "marginal likelihood" h_ev (eval h_ev)))
    [ Bmf.Prior.Zero_mean; Bmf.Prior.Nonzero_mean ];
  Buffer.add_string buf
    "(evidence needs no held-out folds; both land at comparable errors)\n";
  Buffer.contents buf

let solver_exactness ?(progress = nothing) (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Ablation: fast-solver exactness — max |fast - direct| over live \
     problems\n";
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep =
    Runner.prepare cfg tb ~metric:Circuit.Ring_oscillator.frequency_index
  in
  let rng = Stats.Rng.create (cfg.seed + 499) in
  let k = k_small cfg in
  let xs, f =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
      ~metric:prep.Runner.metric ~rng ~k ()
  in
  let g = Polybasis.Basis.design_matrix prep.Runner.late_basis xs in
  let worst = ref 0. in
  List.iter
    (fun kind ->
      let prior = Bmf.Prior.make kind prep.Runner.early in
      List.iter
        (fun hyper ->
          progress
            (Printf.sprintf "exactness %s hyper=%g"
               (Bmf.Prior.kind_name kind) hyper);
          let fast =
            Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Fast_woodbury ~g ~f
              ~prior ~hyper ()
          in
          let direct =
            Bmf.Map_solver.solve ~solver:Bmf.Map_solver.Direct_cholesky ~g ~f
              ~prior ~hyper ()
          in
          let scale = Float.max 1e-300 (Linalg.Vec.nrm2 direct) in
          worst := Float.max !worst (Linalg.Vec.dist2 fast direct /. scale))
        [ 1e-6; 1e-3; 1.; 1e3 ])
    [ Bmf.Prior.Zero_mean; Bmf.Prior.Nonzero_mean ];
  Buffer.add_string buf
    (Printf.sprintf "  max relative deviation: %.3e %s\n" !worst
       (if !worst < 1e-8 then "(exact to roundoff, as eq. 53-58 promises)"
        else "(UNEXPECTEDLY LARGE)"));
  Buffer.contents buf

let all ?progress cfg =
  String.concat "\n"
    [
      prior_quality ?progress cfg;
      sampling_scheme ?progress cfg;
      missing_prior ?progress cfg;
      early_fit ?progress cfg;
      nonlinear_basis ?progress cfg;
      baselines ?progress cfg;
      hyper_selection ?progress cfg;
      solver_exactness ?progress cfg;
    ]
