(** The four performance-modeling methods compared in every table
    (paper Sec. V): OMP, BMF-ZM, BMF-NZM and BMF-PS — plus extras used
    by the ablation studies. *)

type t =
  | Omp  (** Sparse regression on late-stage data alone (ref [13]). *)
  | Bmf_zm
  | Bmf_nzm
  | Bmf_ps
  | Ridge_cv  (** L2 baseline (ablation only). *)
  | Lasso  (** L1 baseline (ablation only). *)

val paper_methods : t list
(** The four columns of Tables I-III and V, in the paper's order. *)

val name : t -> string

val of_name : string -> t
(** @raise Invalid_argument for unknown names. *)

type problem = {
  g : Linalg.Mat.t;  (** Late-stage design matrix (train). *)
  f : Linalg.Vec.t;  (** Late-stage responses (train). *)
  early : float option array;
      (** Mapped early coefficients ([None] = missing prior). *)
  cv_folds : int;
  omp_max_terms : int;
}

val fit : ?rng:Stats.Rng.t -> t -> problem -> Linalg.Vec.t
(** Fitted late-stage coefficients, length [cols g]. *)

val fit_timed : ?rng:Stats.Rng.t -> t -> problem -> Linalg.Vec.t * float
(** Also returns the wall-clock fitting time in seconds. *)
