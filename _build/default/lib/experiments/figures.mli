(** Regeneration of every figure in the paper, rendered as text.

    Fig. 1/2 are the prior-distribution illustrations; Fig. 3/6 the
    benchmark schematics (as netlist summaries); Fig. 4/7 the Monte
    Carlo sample histograms; Fig. 5/8 the fitting-cost comparisons. *)

val fig1 : unit -> string
(** Zero-mean priors for two coefficients with small / large
    [sigma_m = |alpha_E,m|] (paper Fig. 1). *)

val fig2 : unit -> string
(** Nonzero-mean priors for a small and a large early coefficient
    (paper Fig. 2). *)

val fig3 : Config.t -> string
(** Ring-oscillator circuit summary (paper Fig. 3). *)

val fig4 : ?samples:int -> Config.t -> string
(** Histograms of post-layout RO power / phase noise / frequency
    (paper Fig. 4(a-c); default 3000 Monte Carlo samples). *)

val fig5 : ?with_direct:bool -> Config.t -> string
(** Fitting cost vs training samples for the RO: OMP, BMF-PS with the
    conventional solver, BMF-PS with the fast solver (paper
    Fig. 5). *)

val fig6 : Config.t -> string
(** SRAM read-path circuit summary (paper Fig. 6). *)

val fig7 : ?samples:int -> Config.t -> string
(** Histogram of SRAM read delay (paper Fig. 7). *)

val fig8 : Config.t -> string
(** Fitting cost vs training samples for the SRAM: OMP and BMF-PS
    (fast solver); the conventional solver is skipped as in the paper
    ("computationally infeasible"). *)
