let histogram ?(width = 50) ?title ?(unit_label = "") h =
  let buf = Buffer.create 1024 in
  (match title with
  | Some t -> Buffer.add_string buf (t ^ "\n")
  | None -> ());
  let counts = h.Stats.Histogram.counts in
  let edges = Stats.Histogram.bin_edges h in
  let cmax = Array.fold_left Stdlib.max 1 counts in
  Array.iteri
    (fun i c ->
      let bar = c * width / cmax in
      Buffer.add_string buf
        (Printf.sprintf "  [%12.5g, %12.5g) |%s%s %d\n" edges.(i)
           edges.(i + 1) (String.make bar '#')
           (String.make (width - bar) ' ')
           c))
    counts;
  Buffer.add_string buf
    (Printf.sprintf "  n=%d%s underflow=%d overflow=%d\n"
       h.Stats.Histogram.total
       (if unit_label = "" then "" else " (" ^ unit_label ^ ")")
       h.Stats.Histogram.underflow h.Stats.Histogram.overflow);
  Buffer.contents buf

type series = { label : string; points : (float * float) list }

let markers = [| '*'; 'o'; '+'; 'x'; '@'; '%' |]

let xy ?(width = 64) ?(height = 20) ?(log_y = false) ?title ?(x_label = "x")
    ?(y_label = "y") series_list =
  let transform y = if log_y then log10 y else y in
  let points =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (x, y) ->
            if log_y && y <= 0. then None else Some (x, transform y))
          s.points)
      series_list
  in
  match points with
  | [] -> "(no data)\n"
  | (x0, y0) :: _ ->
      let xmin = ref x0 and xmax = ref x0 and ymin = ref y0 and ymax = ref y0 in
      List.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        points;
      let xspan = Float.max 1e-12 (!xmax -. !xmin) in
      let yspan = Float.max 1e-12 (!ymax -. !ymin) in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let marker = markers.(si mod Array.length markers) in
          let usable =
            List.filter (fun (_, y) -> (not log_y) || y > 0.) s.points
          in
          List.iter
            (fun (x, y) ->
              let y = transform y in
              let col =
                int_of_float ((x -. !xmin) /. xspan *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float
                    ((y -. !ymin) /. yspan *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- marker)
            usable)
        series_list;
      let buf = Buffer.create 4096 in
      (match title with
      | Some t -> Buffer.add_string buf (t ^ "\n")
      | None -> ());
      let y_of_row row =
        !ymin +. (yspan *. float_of_int (height - 1 - row) /. float_of_int (height - 1))
      in
      Array.iteri
        (fun row line ->
          let yv = y_of_row row in
          let yv = if log_y then 10. ** yv else yv in
          Buffer.add_string buf (Printf.sprintf "%12.4g |" yv);
          Array.iter (Buffer.add_char buf) line;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make 13 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%14s%-10.4g%*s%10.4g\n" "" !xmin (width - 18) "" !xmax);
      Buffer.add_string buf
        (Printf.sprintf "  x: %s, y: %s%s\n" x_label y_label
           (if log_y then " (log scale)" else ""));
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "  %c = %s\n" markers.(si mod Array.length markers) s.label))
        series_list;
      Buffer.contents buf

let curve ?width ?height ?title ?(samples = 120) ~lo ~hi fns =
  let series_list =
    List.map
      (fun (label, f) ->
        {
          label;
          points =
            List.init samples (fun i ->
                let x =
                  lo +. ((hi -. lo) *. float_of_int i /. float_of_int (samples - 1))
                in
                (x, f x));
        })
      fns
  in
  xy ?width ?height ?title ~x_label:"x" ~y_label:"f(x)" series_list
