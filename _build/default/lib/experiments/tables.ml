let nothing (_ : string) = ()

let ro_accuracy ?(progress = nothing) (cfg : Config.t) ~metric =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let prep = Runner.prepare cfg tb ~metric in
  Runner.accuracy ~progress cfg prep

let sram_accuracy ?(progress = nothing) (cfg : Config.t) =
  let sram = Circuit.Sram.create ~config:cfg.Config.sram cfg.seed in
  let tb = Circuit.Sram.testbench sram in
  let prep = Runner.prepare cfg tb ~metric:Circuit.Sram.read_delay_index in
  Runner.accuracy ~progress cfg prep

let render_accuracy header acc =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header ^ "\n");
  let fmt = Format.formatter_of_buffer buf in
  Report.accuracy_table fmt acc;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let table1 ?progress cfg =
  render_accuracy "Table I"
    (ro_accuracy ?progress cfg ~metric:Circuit.Ring_oscillator.power_index)

let table2 ?progress cfg =
  render_accuracy "Table II"
    (ro_accuracy ?progress cfg
       ~metric:Circuit.Ring_oscillator.phase_noise_index)

let table3 ?progress cfg =
  render_accuracy "Table III"
    (ro_accuracy ?progress cfg
       ~metric:Circuit.Ring_oscillator.frequency_index)

let render_cost header ~circuit entries =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header ^ "\n");
  let fmt = Format.formatter_of_buffer buf in
  Report.cost_table fmt ~circuit entries;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let sample_extremes (cfg : Config.t) =
  let sizes = cfg.Config.sample_sizes in
  ( List.fold_left Stdlib.max 1 sizes,
    List.fold_left Stdlib.min max_int sizes )

let table4 ?(progress = nothing) (cfg : Config.t) =
  let ro = Circuit.Ring_oscillator.create ~config:cfg.Config.ro cfg.seed in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let omp_samples, bmf_samples = sample_extremes cfg in
  let entries =
    Runner.cost_comparison ~progress cfg tb
      ~metrics:
        [
          Circuit.Ring_oscillator.power_index;
          Circuit.Ring_oscillator.phase_noise_index;
          Circuit.Ring_oscillator.frequency_index;
        ]
      ~omp_samples ~bmf_samples
  in
  render_cost "Table IV" ~circuit:"RO" entries

let table5 ?progress cfg =
  render_accuracy "Table V" (sram_accuracy ?progress cfg)

let table6 ?(progress = nothing) (cfg : Config.t) =
  let sram = Circuit.Sram.create ~config:cfg.Config.sram cfg.seed in
  let tb = Circuit.Sram.testbench sram in
  let omp_samples, bmf_samples = sample_extremes cfg in
  (* paper: OMP needs 400 samples to reach BMF-PS's accuracy at 100 *)
  let omp_samples = Stdlib.min omp_samples 400 in
  let entries =
    Runner.cost_comparison ~progress cfg tb
      ~metrics:[ Circuit.Sram.read_delay_index ]
      ~omp_samples ~bmf_samples
  in
  render_cost "Table VI" ~circuit:"SRAM read path" entries
