type config = {
  vars_per_device : int;
  input_pair_fingers : int;
  interdie : int;
  compensation_nodes : int;
  profile : Device.profile;
  interdie_sigma : float;
  parasitic_sigma : float;
  nonlinearity : float;
  sim_noise : float;
}

let default_config =
  {
    vars_per_device = 14;
    input_pair_fingers = 2;
    interdie = 8;
    compensation_nodes = 4;
    profile = Device.default_profile;
    interdie_sigma = 0.008;
    parasitic_sigma = 0.08;
    nonlinearity = 1.0;
    sim_noise = 0.002;
  }

(* The device roster of a textbook two-stage OTA. *)
type roster = {
  m1 : Device.t; (* input pair, + side *)
  m2 : Device.t; (* input pair, - side *)
  m3 : Device.t; (* current-mirror load + *)
  m4 : Device.t; (* current-mirror load - *)
  m5 : Device.t; (* tail current source *)
  m6 : Device.t; (* second-stage driver *)
  m7 : Device.t; (* second-stage current source *)
}

type t = {
  cfg : config;
  roster : roster;
  comp_tree : Rc_network.t;
  comp0 : float; (* nominal compensation time constant *)
  mapping : Bmf.Prior_mapping.t;
  parasitic_base : int;
  n_parasitic : int;
  layout_dim : int;
  schematic_dim : int;
  gain0_db : float;
  ugbw0_mhz : float;
  offset_sigma_mv : float;
  netlist : Netlist.t;
}

let gain_index = 0

let bandwidth_index = 1

let offset_index = 2

let metric_names = [| "gain"; "bandwidth"; "offset" |]

let create ?(config = default_config) seed =
  let cfg = config in
  let rng = Stats.Rng.create (seed + 104729) in
  let process = Process.create ~interdie:cfg.interdie in
  let interdie_dirs =
    Array.init cfg.interdie (fun _ ->
        cfg.interdie_sigma
        *. (1. +. (0.25 *. Stats.Rng.gaussian rng))
        *. (if Stats.Rng.bool rng then 1. else -1.))
  in
  let interdie_sens scale =
    Array.to_list
      (Array.mapi
         (fun v dir ->
           (v, dir *. scale *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
         interdie_dirs)
  in
  let netlist = Netlist.create ~name:"two-stage-opamp" in
  let dev name fingers ports =
    let d =
      Device.make ~rng ~process ~name ~fingers
        ~vars_per_device:cfg.vars_per_device
        ~interdie_sens:(interdie_sens 1.0) cfg.profile
    in
    Netlist.add netlist
      {
        Netlist.ref_name = name;
        kind = "mos";
        ports;
        params = [ ("fingers", float_of_int fingers) ];
      };
    d
  in
  (* explicit sequencing fixes the variable layout: M1's block first *)
  let m1 = dev "M1" cfg.input_pair_fingers [ "inp"; "n1" ] in
  let m2 = dev "M2" cfg.input_pair_fingers [ "inn"; "n2" ] in
  let m3 = dev "M3" 1 [ "n1" ] in
  let m4 = dev "M4" 1 [ "n2" ] in
  let m5 = dev "M5" 1 [ "tail" ] in
  let m6 = dev "M6" 1 [ "n2"; "out" ] in
  let m7 = dev "M7" 1 [ "out" ] in
  let roster = { m1; m2; m3; m4; m5; m6; m7 } in
  let comp_tree =
    Rc_network.random_tree rng ~nodes:cfg.compensation_nodes ~r_nominal:400.
      ~c_nominal:0.8
  in
  Netlist.add netlist
    {
      Netlist.ref_name = "CC.PAR";
      kind = "rc-tree";
      ports = [ "n2"; "out" ];
      params = [ ("nodes", float_of_int cfg.compensation_nodes) ];
    };
  let schematic_dim = Process.total_vars process in
  let finger_spec = Array.make schematic_dim 1 in
  Array.iter
    (fun v -> finger_spec.(v) <- cfg.input_pair_fingers)
    (Device.vars roster.m1);
  Array.iter
    (fun v -> finger_spec.(v) <- cfg.input_pair_fingers)
    (Device.vars roster.m2);
  let mapping = Bmf.Prior_mapping.create finger_spec in
  let parasitic_base = Bmf.Prior_mapping.late_dim mapping in
  let n_parasitic = 2 * (cfg.compensation_nodes - 1) in
  {
    cfg;
    roster;
    comp_tree;
    comp0 = Rc_network.effective_rc comp_tree;
    mapping;
    parasitic_base;
    n_parasitic;
    layout_dim = parasitic_base + n_parasitic;
    schematic_dim;
    gain0_db = 68.;
    ugbw0_mhz = 140.;
    offset_sigma_mv = 4.2;
    netlist;
  }

let config t = t.cfg

let element_scale sigma v = Float.max 0.2 (1. +. (sigma *. v))

let shift t ~stage d x =
  match stage with
  | Stage.Schematic -> Device.schematic_shift d x
  | Stage.Layout -> Device.layout_shift d t.mapping x

let simulate t ~stage ~metric ~noise x =
  let expected =
    match stage with
    | Stage.Schematic -> t.schematic_dim
    | Stage.Layout -> t.layout_dim
  in
  if Array.length x <> expected then
    invalid_arg
      (Printf.sprintf "Amplifier.simulate: expected %d variables, got %d"
         expected (Array.length x));
  let cfg = t.cfg in
  let r = t.roster in
  let d1 = shift t ~stage r.m1 x
  and d2 = shift t ~stage r.m2 x
  and d3 = shift t ~stage r.m3 x
  and d4 = shift t ~stage r.m4 x
  and d5 = shift t ~stage r.m5 x
  and d6 = shift t ~stage r.m6 x
  and d7 = shift t ~stage r.m7 x in
  (* first-stage transconductance follows the pair average plus tail *)
  let gm1 = 1. +. (0.5 *. (d1 +. d2)) +. (0.3 *. d5) in
  let gm1 = Float.max 0.2 gm1 in
  (* output conductances degrade gain when devices are fast/leaky *)
  let go = 1. +. (0.4 *. ((d3 +. d4) /. 2.)) +. (0.5 *. ((d6 +. d7) /. 2.)) in
  let go = Float.max 0.2 go in
  (* post-layout compensation network: parasitics move the pole *)
  let comp_factor =
    match stage with
    | Stage.Schematic -> 1.
    | Stage.Layout ->
        let r_scale e =
          element_scale cfg.parasitic_sigma x.(t.parasitic_base + (2 * e))
        in
        let c_scale e =
          element_scale cfg.parasitic_sigma x.(t.parasitic_base + (2 * e) + 1)
        in
        (* extraction adds ~12% compensation loading at nominal *)
        1.12 *. Rc_network.effective_rc ~r_scale ~c_scale t.comp_tree
        /. t.comp0
  in
  let value =
    if metric = gain_index then
      (* two gain stages in dB; log of the conductance ratio is the
         genuine nonlinearity here *)
      t.gain0_db +. (20. *. log10 (Float.max 0.05 (gm1 /. go)))
      +. (cfg.nonlinearity *. 1.5 *. (d6 -. d7) *. (d6 -. d7))
    else if metric = bandwidth_index then
      t.ugbw0_mhz *. gm1 /. comp_factor
    else if metric = offset_index then
      (* eq. 36: offset tracks the input-pair threshold difference, with
         a small mirror contribution *)
      t.offset_sigma_mv *. ((d1 -. d2) +. (0.3 *. (d3 -. d4))) /. 0.05
    else invalid_arg "Amplifier: unknown metric"
  in
  match noise with
  | None -> value
  | Some rng ->
      if metric = offset_index then
        (* offset is zero-mean: additive measurement noise *)
        value +. (cfg.sim_noise *. t.offset_sigma_mv *. 10. *. Stats.Rng.gaussian rng)
      else value *. (1. +. (cfg.sim_noise *. Stats.Rng.gaussian rng))

let parasitic_terms t =
  List.init t.n_parasitic (fun p ->
      Polybasis.Multi_index.linear (t.parasitic_base + p))

let testbench t =
  {
    Testbench.name = "two-stage-opamp";
    schematic_dim = t.schematic_dim;
    layout_dim = t.layout_dim;
    mapping = t.mapping;
    parasitic_terms = parasitic_terms t;
    metrics = metric_names;
    simulate = (fun ~stage ~metric ~noise x -> simulate t ~stage ~metric ~noise x);
    sim_cost_seconds =
      (fun stage -> match stage with Stage.Schematic -> 2.1 | Stage.Layout -> 19.4);
    netlist = t.netlist;
  }
