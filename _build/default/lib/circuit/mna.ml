type element =
  | Resistor of { a : int; b : int; ohms : float }
  | Conductance of { a : int; b : int; siemens : float }
  | Current_source of { from_node : int; to_node : int; amps : float }
  | Voltage_source of { plus : int; minus : int; volts : float }

type circuit = {
  nodes : int;
  mutable elements : element list; (* reverse order of addition *)
  mutable n_vsources : int;
}

let create ~nodes =
  if nodes < 1 then invalid_arg "Mna.create: need at least the ground node";
  { nodes; elements = []; n_vsources = 0 }

let check_node c n =
  if n < 0 || n >= c.nodes then
    invalid_arg (Printf.sprintf "Mna: node %d out of range" n)

let add c e =
  (match e with
  | Resistor { a; b; ohms } ->
      check_node c a;
      check_node c b;
      if ohms <= 0. then invalid_arg "Mna.add: resistance must be positive"
  | Conductance { a; b; siemens } ->
      check_node c a;
      check_node c b;
      if siemens <= 0. then invalid_arg "Mna.add: conductance must be positive"
  | Current_source { from_node; to_node; _ } ->
      check_node c from_node;
      check_node c to_node
  | Voltage_source { plus; minus; _ } ->
      check_node c plus;
      check_node c minus;
      c.n_vsources <- c.n_vsources + 1);
  c.elements <- e :: c.elements

type solution = { voltages : float array; branch_currents : float array }

(* Unknowns: voltages of nodes 1..n-1, then one branch current per
   voltage source. Ground row/column eliminated. *)
let solve c =
  let n = c.nodes - 1 in
  let nv = c.n_vsources in
  let dim = n + nv in
  if dim = 0 then { voltages = [| 0. |]; branch_currents = [||] }
  else begin
    let idx node = node - 1 in
    let triplets = ref [] and rhs = Array.make dim 0. in
    let stamp r cl v =
      triplets := { Linalg.Sparse.row = r; col = cl; value = v } :: !triplets
    in
    let vsrc = ref 0 in
    List.iter
      (fun e ->
        match e with
        | Resistor { a; b; ohms } | Conductance { a; b; siemens = ohms } ->
            let g =
              match e with
              | Resistor _ -> 1. /. ohms
              | _ -> ohms
            in
            if a <> 0 then stamp (idx a) (idx a) g;
            if b <> 0 then stamp (idx b) (idx b) g;
            if a <> 0 && b <> 0 then begin
              stamp (idx a) (idx b) (-.g);
              stamp (idx b) (idx a) (-.g)
            end
        | Current_source { from_node; to_node; amps } ->
            if from_node <> 0 then rhs.(idx from_node) <- rhs.(idx from_node) -. amps;
            if to_node <> 0 then rhs.(idx to_node) <- rhs.(idx to_node) +. amps
        | Voltage_source { plus; minus; volts } ->
            let row = n + !vsrc in
            incr vsrc;
            if plus <> 0 then begin
              stamp (idx plus) row 1.;
              stamp row (idx plus) 1.
            end;
            if minus <> 0 then begin
              stamp (idx minus) row (-1.);
              stamp row (idx minus) (-1.)
            end;
            rhs.(row) <- volts)
      (List.rev c.elements);
    let a = Linalg.Sparse.of_triplets ~rows:dim ~cols:dim !triplets in
    let x =
      try Linalg.Lu.solve_system (Linalg.Sparse.to_dense a) rhs
      with Linalg.Lu.Singular _ ->
        failwith "Mna.solve: singular system (floating node?)"
    in
    let voltages = Array.make c.nodes 0. in
    for node = 1 to c.nodes - 1 do
      voltages.(node) <- x.(idx node)
    done;
    { voltages; branch_currents = Array.init nv (fun i -> x.(n + i)) }
  end

let voltage s node =
  if node < 0 || node >= Array.length s.voltages then
    invalid_arg "Mna.voltage: node out of range";
  s.voltages.(node)

let source_current s i =
  if i < 0 || i >= Array.length s.branch_currents then
    invalid_arg "Mna.source_current: index out of range";
  s.branch_currents.(i)

let resistance_between c a b =
  check_node c a;
  check_node c b;
  if a = b then 0.
  else begin
    (* Copy the resistive part only; suppress sources (current sources
       open, voltage sources shorted — shorting is approximated by a
       very large conductance). *)
    let probe = create ~nodes:c.nodes in
    List.iter
      (fun e ->
        match e with
        | Resistor _ | Conductance _ -> add probe e
        | Current_source _ -> ()
        | Voltage_source { plus; minus; _ } ->
            if plus <> minus then
              add probe (Conductance { a = plus; b = minus; siemens = 1e9 }))
      (List.rev c.elements);
    add probe (Current_source { from_node = b; to_node = a; amps = 1. });
    let s = solve probe in
    voltage s a -. voltage s b
  end
