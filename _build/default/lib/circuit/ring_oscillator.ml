type config = {
  stages : int;
  vars_per_device : int;
  fingers : int;
  interdie : int;
  parasitic_nodes : int;
  profile : Device.profile;
  interdie_sigma : float;
  parasitic_sigma : float;
  parasitic_delay_fraction : float;
  nonlinearity : float;
  sim_noise : float;
  vdd : float;
  nominal_stage_delay_ps : float;
}

let default_config =
  {
    stages = 11;
    vars_per_device = 18;
    fingers = 2;
    interdie = 12;
    parasitic_nodes = 5;
    profile = Device.default_profile;
    interdie_sigma = 0.005;
    parasitic_sigma = 0.08;
    parasitic_delay_fraction = 0.18;
    nonlinearity = 1.0;
    sim_noise = 0.002;
    vdd = 0.9;
    nominal_stage_delay_ps = 8.0;
  }

let paper_scale_config =
  {
    default_config with
    stages = 35;
    vars_per_device = 48;
    interdie = 20;
    parasitic_nodes = 9;
  }

type stage_data = {
  nmos : Device.t;
  pmos : Device.t;
  tau0 : float; (* nominal schematic delay, ps *)
  c0 : float; (* nominal switched capacitance, fF *)
  tree : Rc_network.t;
  elmore0 : float; (* nominal Elmore delay of the tree *)
  noise0 : float; (* nominal phase-noise contribution *)
}

type t = {
  cfg : config;
  stage_data : stage_data array;
  mapping : Bmf.Prior_mapping.t;
  parasitic_base : int; (* first parasitic variable index (layout space) *)
  parasitic_per_stage : int;
  layout_dim : int;
  schematic_dim : int;
  leak_frac : float; (* leakage share of nominal power *)
  leak_sigma : float;
  pn0_db : float;
  pn_noise_db : float;
  netlist : Netlist.t;
}

let power_index = 0

let phase_noise_index = 1

let frequency_index = 2

let metric_names = [| "power"; "phase_noise"; "frequency" |]

(* Interdie coupling: each interdie variable has a global "direction"
   shared by all devices (with small per-device scatter), so these few
   variables carry large model coefficients — like real D2D variation. *)
let draw_interdie_directions rng ~interdie ~sigma =
  Array.init interdie (fun _ ->
      sigma
      *. (1. +. (0.25 *. Stats.Rng.gaussian rng))
      *. (if Stats.Rng.bool rng then 1. else -1.))

let create ?(config = default_config) seed =
  let cfg = config in
  if cfg.stages < 3 || cfg.stages mod 2 = 0 then
    invalid_arg "Ring_oscillator.create: stages must be odd and >= 3";
  let rng = Stats.Rng.create seed in
  let process = Process.create ~interdie:cfg.interdie in
  let interdie_dirs =
    draw_interdie_directions rng ~interdie:cfg.interdie ~sigma:cfg.interdie_sigma
  in
  let netlist = Netlist.create ~name:"ring-oscillator" in
  let interdie_sens dev_scale =
    Array.to_list
      (Array.mapi
         (fun v dir ->
           (v, dir *. dev_scale *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
         interdie_dirs)
  in
  let stage_data =
    Array.init cfg.stages (fun i ->
        let nmos =
          Device.make ~rng ~process
            ~name:(Printf.sprintf "INV%d.MN" i)
            ~fingers:cfg.fingers ~vars_per_device:cfg.vars_per_device
            ~interdie_sens:(interdie_sens 1.0) cfg.profile
        in
        let pmos =
          Device.make ~rng ~process
            ~name:(Printf.sprintf "INV%d.MP" i)
            ~fingers:cfg.fingers ~vars_per_device:cfg.vars_per_device
            ~interdie_sens:(interdie_sens 0.8) cfg.profile
        in
        let tau0 =
          cfg.nominal_stage_delay_ps *. (1. +. (0.08 *. Stats.Rng.gaussian rng))
        in
        let c0 = 1.8 *. (1. +. (0.08 *. Stats.Rng.gaussian rng)) in
        let tree =
          Rc_network.random_tree rng ~nodes:cfg.parasitic_nodes
            ~r_nominal:120. ~c_nominal:0.35
        in
        let elmore0 = Rc_network.worst_elmore tree in
        let noise0 = 1. +. (0.1 *. Stats.Rng.gaussian rng) in
        Netlist.add netlist
          {
            Netlist.ref_name = Device.name nmos;
            kind = "nmos";
            ports = [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" ((i + 1) mod cfg.stages) ];
            params = [ ("fingers", float_of_int cfg.fingers) ];
          };
        Netlist.add netlist
          {
            Netlist.ref_name = Device.name pmos;
            kind = "pmos";
            ports = [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" ((i + 1) mod cfg.stages) ];
            params = [ ("fingers", float_of_int cfg.fingers) ];
          };
        Netlist.add netlist
          {
            Netlist.ref_name = Printf.sprintf "INV%d.PAR" i;
            kind = "rc-tree";
            ports = [ Printf.sprintf "n%d" ((i + 1) mod cfg.stages) ];
            params =
              [
                ("nodes", float_of_int cfg.parasitic_nodes);
                ("elmore_ps", elmore0 /. 1000.);
              ];
          };
        { nmos; pmos; tau0; c0; tree; elmore0; noise0 })
  in
  let schematic_dim = Process.total_vars process in
  (* finger expansion: interdie variables keep one finger, device
     mismatch variables get cfg.fingers each *)
  let finger_spec = Array.make schematic_dim cfg.fingers in
  for v = 0 to cfg.interdie - 1 do
    finger_spec.(v) <- 1
  done;
  let mapping = Bmf.Prior_mapping.create finger_spec in
  let parasitic_base = Bmf.Prior_mapping.late_dim mapping in
  let parasitic_per_stage = 2 * (cfg.parasitic_nodes - 1) in
  let layout_dim = parasitic_base + (cfg.stages * parasitic_per_stage) in
  {
    cfg;
    stage_data;
    mapping;
    parasitic_base;
    parasitic_per_stage;
    layout_dim;
    schematic_dim;
    leak_frac = 0.12;
    leak_sigma = 0.10;
    pn0_db = -92.;
    pn_noise_db = 0.03;
    netlist;
  }

let config t = t.cfg

(* Parasitic variable index for stage i: slot [0, parasitic_per_stage). *)
let pvar t i slot = t.parasitic_base + (i * t.parasitic_per_stage) + slot

(* Clamped multiplicative element move: keeps RC values physical even at
   extreme sigma. *)
let element_scale sigma v = Float.max 0.2 (1. +. (sigma *. v))

(* Core behavioral evaluation: per-stage delay, switched cap, leakage
   drive and noise, then the three metrics. *)
type operating_point = {
  freq_ghz : float;
  cap_total : float;
  leak_z : float; (* standard-normal-ish leakage driver *)
  noise_sum : float;
}

let evaluate t ~stage x =
  let cfg = t.cfg in
  let n = cfg.stages in
  let total_delay = ref 0. in
  let cap_total = ref 0. in
  let leak_z = ref 0. in
  let noise_sum = ref 0. in
  for i = 0 to n - 1 do
    let sd = t.stage_data.(i) in
    let d =
      match stage with
      | Stage.Schematic ->
          0.5
          *. (Device.schematic_shift sd.nmos x
             +. Device.schematic_shift sd.pmos x)
      | Stage.Layout ->
          0.5
          *. (Device.layout_shift sd.nmos t.mapping x
             +. Device.layout_shift sd.pmos t.mapping x)
    in
    (* gate delay: faster devices (d > 0) shorten the stage *)
    let gate_delay =
      sd.tau0 *. (1. -. d +. (cfg.nonlinearity *. 0.5 *. d *. d))
    in
    let wire_delay, par_cap_shift =
      match stage with
      | Stage.Schematic -> (0., 0.)
      | Stage.Layout ->
          let r_scale e =
            element_scale cfg.parasitic_sigma x.(pvar t i (2 * e))
          in
          let c_scale e =
            element_scale cfg.parasitic_sigma x.(pvar t i ((2 * e) + 1))
          in
          let elm = Rc_network.elmore_delay ~r_scale ~c_scale sd.tree
              (Rc_network.node_count sd.tree - 1)
          in
          let elm = Float.max (0.05 *. sd.elmore0) elm in
          let cap =
            Rc_network.total_capacitance ~c_scale sd.tree
            /. Rc_network.total_capacitance sd.tree
          in
          ( cfg.parasitic_delay_fraction *. sd.tau0 *. (elm /. sd.elmore0),
            cap -. 1. )
    in
    total_delay := !total_delay +. gate_delay +. wire_delay;
    let cap_shift = (0.3 *. d) +. (0.4 *. par_cap_shift) in
    cap_total := !cap_total +. (sd.c0 *. (1. +. cap_shift));
    (* threshold-voltage-like mismatch drives leakage: use each device's
       dominant variable through its shift (d is a fine proxy) *)
    leak_z := !leak_z +. d;
    noise_sum :=
      !noise_sum +. (sd.noise0 *. (1. -. (0.8 *. d) +. (0.3 *. par_cap_shift)))
  done;
  let freq_ghz = 1000. /. (2. *. !total_delay) in
  {
    freq_ghz;
    cap_total = !cap_total;
    (* normalize the summed drive shifts to a roughly standard-normal
       leakage driver (per-stage shift std is ~0.03) *)
    leak_z = !leak_z /. (0.03 *. sqrt (float_of_int n));
    noise_sum = !noise_sum;
  }

let metric_value t ~stage op metric =
  let cfg = t.cfg in
  if metric = frequency_index then op.freq_ghz
  else if metric = power_index then begin
    (* dynamic CV^2 f (fF * V^2 * GHz = uW) plus leakage *)
    let dynamic = op.cap_total *. cfg.vdd *. cfg.vdd *. op.freq_ghz in
    let nominal_dynamic =
      (* reference: cap at nominal, freq at nominal *)
      let c0 = Array.fold_left (fun acc sd -> acc +. sd.c0) 0. t.stage_data in
      let tau0 =
        Array.fold_left (fun acc sd -> acc +. sd.tau0) 0. t.stage_data
      in
      let tau0 =
        match stage with
        | Stage.Schematic -> tau0
        | Stage.Layout -> tau0 *. (1. +. cfg.parasitic_delay_fraction)
      in
      c0 *. cfg.vdd *. cfg.vdd *. (1000. /. (2. *. tau0))
    in
    let leak =
      t.leak_frac *. nominal_dynamic *. exp (t.leak_sigma *. op.leak_z)
    in
    (dynamic +. leak) /. 1000. (* mW *)
  end
  else if metric = phase_noise_index then begin
    let n0 = Array.fold_left (fun acc sd -> acc +. sd.noise0) 0. t.stage_data in
    t.pn0_db
    +. (10. *. log10 (Float.max 1e-6 (op.noise_sum /. n0)))
    -. (20. *. log10 (op.freq_ghz /. 10.))
  end
  else invalid_arg "Ring_oscillator: unknown metric"

let simulate t ~stage ~metric ~noise x =
  let expected = match stage with
    | Stage.Schematic -> t.schematic_dim
    | Stage.Layout -> t.layout_dim
  in
  if Array.length x <> expected then
    invalid_arg
      (Printf.sprintf "Ring_oscillator.simulate: expected %d variables, got %d"
         expected (Array.length x));
  let op = evaluate t ~stage x in
  let value = metric_value t ~stage op metric in
  match noise with
  | None -> value
  | Some rng ->
      if metric = phase_noise_index then
        (* measurement-like additive noise on the dB scale *)
        value +. (t.pn_noise_db *. Stats.Rng.gaussian rng)
      else value *. (1. +. (t.cfg.sim_noise *. Stats.Rng.gaussian rng))

let parasitic_terms t =
  List.init
    (t.layout_dim - t.parasitic_base)
    (fun p -> Polybasis.Multi_index.linear (t.parasitic_base + p))

let testbench t =
  {
    Testbench.name = "ring-oscillator";
    schematic_dim = t.schematic_dim;
    layout_dim = t.layout_dim;
    mapping = t.mapping;
    parasitic_terms = parasitic_terms t;
    metrics = metric_names;
    simulate = (fun ~stage ~metric ~noise x -> simulate t ~stage ~metric ~noise x);
    sim_cost_seconds =
      (fun stage ->
        match stage with Stage.Schematic -> 5.6 | Stage.Layout -> 50.3);
    netlist = t.netlist;
  }
