(** The ring-oscillator benchmark circuit (paper Sec. V-A, Fig. 3).

    A chain of [stages] CMOS inverters with per-stage parasitic RC trees
    at the post-layout stage. Three performance metrics are modeled, in
    the paper's order: power (mW), phase noise (dBc/Hz) and oscillation
    frequency (GHz).

    The behavioral model (see DESIGN.md Sec. 4 for the substitution
    argument) is built at [create] time from seeded random sensitivities:

    - every inverter has an NMOS and a PMOS device whose drive shifts
      are linear forms over their mismatch variables plus the interdie
      variables ({!Device});
    - stage delay is [tau0 * (1 - d + nl d^2)] plus, post-layout, an
      interconnect term proportional to the Elmore delay of the stage's
      extracted RC tree, whose element values move with the parasitic
      variables ({!Rc_network});
    - frequency is [1 / (2 sum delay)]; power combines dynamic
      [C V^2 f] and a lognormal-ish leakage term; phase noise
      aggregates per-stage noise in the log domain.

    The response is therefore nearly linear over the +-3 sigma variation
    range with mild structured nonlinearity — the regime the paper's
    linear late-stage models operate in. *)

type config = {
  stages : int;  (** Number of inverters (odd). *)
  vars_per_device : int;
  fingers : int;  (** Fingers per device at the post-layout stage. *)
  interdie : int;  (** Shared die-to-die variables. *)
  parasitic_nodes : int;  (** Nodes of each stage's parasitic RC tree. *)
  profile : Device.profile;
  interdie_sigma : float;  (** Scale of interdie sensitivities. *)
  parasitic_sigma : float;  (** Relative RC element move per sigma. *)
  parasitic_delay_fraction : float;
      (** Interconnect share of the nominal post-layout stage delay. *)
  nonlinearity : float;  (** Multiplier on the quadratic delay term. *)
  sim_noise : float;  (** Relative simulation noise per sample. *)
  vdd : float;
  nominal_stage_delay_ps : float;
}

val default_config : config
(** ~900 post-layout variables; tuned so experiments run in seconds. *)

val paper_scale_config : config
(** ~7200 post-layout variables, matching the paper's 7177. *)

type t

val create : ?config:config -> int -> t
(** [create seed] builds the circuit and draws its ground-truth
    sensitivities; equal seeds give identical circuits. *)

val config : t -> config

val power_index : int
(** 0 — Table I's metric. *)

val phase_noise_index : int
(** 1 — Table II's metric. *)

val frequency_index : int
(** 2 — Table III's metric. *)

val testbench : t -> Testbench.t
(** Package for the experiment harness; simulation costs are calibrated
    to the paper's Table IV (50.3 s per post-layout sample). *)
