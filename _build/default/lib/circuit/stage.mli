(** Design stages of the AMS flow (paper Sec. I): the early stage is the
    schematic design, the late stage is the post-layout extraction. *)

type t = Schematic | Layout

val name : t -> string

val all : t list
