type config = {
  cells : int;
  vars_per_cell : int;
  sa_devices : int;
  wl_devices : int;
  vars_per_periph_device : int;
  periph_fingers : int;
  interdie : int;
  bitline_segments : int;
  cell_profile : Device.profile;
  periph_profile : Device.profile;
  interdie_sigma : float;
  leak_coupling : float;
  parasitic_sigma : float;
  nonlinearity : float;
  sim_noise : float;
}

let default_config =
  {
    cells = 160;
    vars_per_cell = 12;
    sa_devices = 6;
    wl_devices = 4;
    vars_per_periph_device = 16;
    periph_fingers = 2;
    interdie = 12;
    bitline_segments = 16;
    cell_profile =
      {
        Device.mismatch_sigma = 0.035;
        layout_discrepancy = 0.12;
        finger_imbalance = 0.;
      };
    periph_profile = Device.default_profile;
    interdie_sigma = 0.01;
    leak_coupling = 0.04;
    parasitic_sigma = 0.08;
    nonlinearity = 1.0;
    sim_noise = 0.003;
  }

let paper_scale_config =
  {
    default_config with
    cells = 1280;
    vars_per_cell = 48;
    vars_per_periph_device = 40;
    interdie = 20;
    bitline_segments = 64;
  }

type t = {
  cfg : config;
  cells : Device.t array; (* index 0 is the accessed cell *)
  sa : Device.t array;
  wl : Device.t array;
  bitline : Rc_network.t;
  mapping : Bmf.Prior_mapping.t;
  parasitic_base : int;
  n_parasitic : int;
  layout_dim : int;
  schematic_dim : int;
  (* nominal timing decomposition, ps *)
  t_wl0 : float;
  t_bl0 : float;
  t_sa0 : float;
  layout_cbl_growth : float; (* extracted bitline cap vs schematic estimate *)
  sa_offset_gain : float;
  netlist : Netlist.t;
}

let read_delay_index = 0

let metric_names = [| "read_delay" |]

let draw_interdie_directions rng ~interdie ~sigma =
  Array.init interdie (fun _ ->
      sigma
      *. (1. +. (0.25 *. Stats.Rng.gaussian rng))
      *. (if Stats.Rng.bool rng then 1. else -1.))

let create ?(config = default_config) seed =
  let cfg = config in
  if cfg.cells < 2 then invalid_arg "Sram.create: need at least 2 cells";
  let rng = Stats.Rng.create (seed + 7919) in
  let process = Process.create ~interdie:cfg.interdie in
  let interdie_dirs =
    draw_interdie_directions rng ~interdie:cfg.interdie ~sigma:cfg.interdie_sigma
  in
  let interdie_sens dev_scale =
    Array.to_list
      (Array.mapi
         (fun v dir ->
           (v, dir *. dev_scale *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
         interdie_dirs)
  in
  let netlist = Netlist.create ~name:"sram-read-path" in
  let cells =
    Array.init cfg.cells (fun c ->
        let d =
          Device.make ~rng ~process
            ~name:(Printf.sprintf "CELL%d" c)
            ~fingers:1 ~vars_per_device:cfg.vars_per_cell
            ~interdie_sens:(interdie_sens 0.8) cfg.cell_profile
        in
        Netlist.add netlist
          {
            Netlist.ref_name = Device.name d;
            kind = "sram-cell";
            ports = [ "bl"; Printf.sprintf "wl%d" c ];
            params = [];
          };
        d)
  in
  let wl =
    Array.init cfg.wl_devices (fun i ->
        let d =
          Device.make ~rng ~process
            ~name:(Printf.sprintf "WLDRV.M%d" i)
            ~fingers:cfg.periph_fingers
            ~vars_per_device:cfg.vars_per_periph_device
            ~interdie_sens:(interdie_sens 1.0) cfg.periph_profile
        in
        Netlist.add netlist
          {
            Netlist.ref_name = Device.name d;
            kind = "wl-driver-mos";
            ports = [ "wl0" ];
            params = [ ("fingers", float_of_int cfg.periph_fingers) ];
          };
        d)
  in
  let sa =
    Array.init cfg.sa_devices (fun i ->
        let d =
          Device.make ~rng ~process
            ~name:(Printf.sprintf "SA.M%d" i)
            ~fingers:cfg.periph_fingers
            ~vars_per_device:cfg.vars_per_periph_device
            ~interdie_sens:(interdie_sens 1.0) cfg.periph_profile
        in
        Netlist.add netlist
          {
            Netlist.ref_name = Device.name d;
            kind = "sense-amp-mos";
            ports = [ "bl"; "out" ];
            params = [ ("fingers", float_of_int cfg.periph_fingers) ];
          };
        d)
  in
  let bitline =
    Rc_network.chain ~segments:cfg.bitline_segments ~r_per_segment:45.
      ~c_per_segment:1.1
  in
  Netlist.add netlist
    {
      Netlist.ref_name = "BL.PAR";
      kind = "rc-chain";
      ports = [ "bl" ];
      params = [ ("segments", float_of_int cfg.bitline_segments) ];
    };
  let schematic_dim = Process.total_vars process in
  let finger_spec = Array.make schematic_dim 1 in
  Array.iter
    (fun d ->
      Array.iter (fun v -> finger_spec.(v) <- cfg.periph_fingers) (Device.vars d))
    wl;
  Array.iter
    (fun d ->
      Array.iter (fun v -> finger_spec.(v) <- cfg.periph_fingers) (Device.vars d))
    sa;
  let mapping = Bmf.Prior_mapping.create finger_spec in
  let parasitic_base = Bmf.Prior_mapping.late_dim mapping in
  (* parasitic variables: 2 per bitline segment (R and C), plus 6 for the
     wordline wire *)
  let n_parasitic = (2 * cfg.bitline_segments) + 6 in
  {
    cfg;
    cells;
    sa;
    wl;
    bitline;
    mapping;
    parasitic_base;
    n_parasitic;
    layout_dim = parasitic_base + n_parasitic;
    schematic_dim;
    t_wl0 = 28.;
    t_bl0 = 95.;
    t_sa0 = 42.;
    layout_cbl_growth = 1.28;
    sa_offset_gain = 14.;
    netlist;
  }

let config t = t.cfg

let pvar t slot = t.parasitic_base + slot

let element_scale sigma v = Float.max 0.2 (1. +. (sigma *. v))

let shift t ~stage d x =
  match stage with
  | Stage.Schematic -> Device.schematic_shift d x
  | Stage.Layout -> Device.layout_shift d t.mapping x

let mean_shift t ~stage devices x =
  let acc = ref 0. in
  Array.iter (fun d -> acc := !acc +. shift t ~stage d x) devices;
  !acc /. float_of_int (Array.length devices)

let simulate t ~stage ~metric ~noise x =
  if metric <> read_delay_index then invalid_arg "Sram: unknown metric";
  let expected =
    match stage with
    | Stage.Schematic -> t.schematic_dim
    | Stage.Layout -> t.layout_dim
  in
  if Array.length x <> expected then
    invalid_arg
      (Printf.sprintf "Sram.simulate: expected %d variables, got %d" expected
         (Array.length x));
  let cfg = t.cfg in
  let nl = cfg.nonlinearity in
  (* wordline: driver drive plus post-layout wire parasitics *)
  let d_wl = mean_shift t ~stage t.wl x in
  let wl_par =
    match stage with
    | Stage.Schematic -> 0.
    | Stage.Layout ->
        let acc = ref 0. in
        for s = 0 to 5 do
          acc := !acc +. x.(pvar t ((2 * cfg.bitline_segments) + s))
        done;
        cfg.parasitic_sigma *. 0.4 *. !acc
  in
  let t_wl =
    t.t_wl0 *. (1. -. d_wl +. (nl *. 0.5 *. d_wl *. d_wl)) *. (1. +. wl_par)
  in
  (* bitline: accessed cell current against leakage of the others *)
  let d_cell = shift t ~stage t.cells.(0) x in
  let leak = ref 0. in
  for c = 1 to cfg.cells - 1 do
    leak := !leak +. shift t ~stage t.cells.(c) x
  done;
  let d_current =
    d_cell -. (cfg.leak_coupling *. !leak /. float_of_int (cfg.cells - 1) *. 8.)
  in
  (* guard the denominator: a dead cell cannot give negative current *)
  let current_factor = Float.max 0.2 (1. +. d_current) in
  let cbl_factor, t_rc =
    match stage with
    | Stage.Schematic -> (1., 0.)
    | Stage.Layout ->
        let r_scale e = element_scale cfg.parasitic_sigma x.(pvar t (2 * e)) in
        let c_scale e =
          element_scale cfg.parasitic_sigma x.(pvar t ((2 * e) + 1))
        in
        let ctot = Rc_network.total_capacitance ~c_scale t.bitline in
        let c0 = Rc_network.total_capacitance t.bitline in
        (* distributed-RC settling term via the MNA effective resistance *)
        let rc = Rc_network.effective_rc ~r_scale ~c_scale t.bitline in
        let rc0 = Rc_network.effective_rc t.bitline in
        (t.layout_cbl_growth *. (ctot /. c0), 0.06 *. t.t_bl0 *. (rc /. rc0))
  in
  let t_bl = (t.t_bl0 *. cbl_factor /. current_factor) +. t_rc in
  (* sense amplifier: mean drive speeds it up; a signed offset between
     the differential halves adds resolve time *)
  let d_sa = mean_shift t ~stage t.sa x in
  let offset =
    let acc = ref 0. in
    Array.iteri
      (fun i d ->
        let sign = if i mod 2 = 0 then 1. else -1. in
        acc := !acc +. (sign *. shift t ~stage d x))
      t.sa;
    !acc /. float_of_int (Array.length t.sa)
  in
  let t_sa =
    t.t_sa0 *. (1. -. d_sa +. (nl *. 0.5 *. d_sa *. d_sa))
    +. (t.sa_offset_gain *. offset)
  in
  let delay = t_wl +. t_bl +. t_sa in
  match noise with
  | None -> delay
  | Some rng -> delay *. (1. +. (cfg.sim_noise *. Stats.Rng.gaussian rng))

let parasitic_terms t =
  List.init t.n_parasitic (fun p ->
      Polybasis.Multi_index.linear (t.parasitic_base + p))

let testbench t =
  {
    Testbench.name = "sram-read-path";
    schematic_dim = t.schematic_dim;
    layout_dim = t.layout_dim;
    mapping = t.mapping;
    parasitic_terms = parasitic_terms t;
    metrics = metric_names;
    simulate = (fun ~stage ~metric ~noise x -> simulate t ~stage ~metric ~noise x);
    sim_cost_seconds =
      (fun stage ->
        match stage with Stage.Schematic -> 34.9 | Stage.Layout -> 348.9);
    netlist = t.netlist;
  }
