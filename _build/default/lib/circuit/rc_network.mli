(** Parasitic RC interconnect trees, as produced by layout extraction.

    A network is a rooted tree: node 0 is the driver; every other node
    hangs off a parent through a parasitic resistance and carries a
    parasitic capacitance to ground. Element values are perturbed
    multiplicatively by per-element variation factors at evaluation time,
    which is how layout-parasitic process variables enter the late-stage
    performance models.

    Two delay evaluators are provided: the classical Elmore delay (tree
    recursion, used in the simulation hot path) and an MNA-based
    effective-RC product ({!Mna} solve); tests check they agree on path
    resistances. *)

type t

val random_tree :
  Stats.Rng.t ->
  nodes:int ->
  r_nominal:float ->
  c_nominal:float ->
  t
(** A random tree with [nodes] nodes (including the driver), edge
    resistances around [r_nominal] and node capacitances around
    [c_nominal] (log-uniform within a factor ~2).
    @raise Invalid_argument when [nodes < 2]. *)

val chain :
  segments:int -> r_per_segment:float -> c_per_segment:float -> t
(** A uniform RC ladder — the classical bitline/wire model. *)

val node_count : t -> int

val edge_count : t -> int
(** Always [node_count - 1]. *)

val total_capacitance : ?c_scale:(int -> float) -> t -> float
(** Sum of (scaled) node capacitances; [c_scale i] multiplies the
    capacitance at node [i + 1] (default all 1). *)

val elmore_delay :
  ?r_scale:(int -> float) ->
  ?c_scale:(int -> float) ->
  t ->
  int ->
  float
(** Elmore delay from the driver to a node: [sum_k C_k * R_shared(k)].
    [r_scale e] multiplies edge [e]'s resistance. *)

val worst_elmore : ?r_scale:(int -> float) -> ?c_scale:(int -> float) -> t -> float
(** Largest Elmore delay over all nodes (the critical sink). *)

val effective_rc :
  ?r_scale:(int -> float) -> ?c_scale:(int -> float) -> t -> float
(** MNA-evaluated effective resistance from the driver to the critical
    sink, times total capacitance — a single-pole surrogate of the
    interconnect delay. *)

val path_resistance : ?r_scale:(int -> float) -> t -> int -> float
(** Sum of (scaled) edge resistances from the driver to a node. *)

val to_mna : ?r_scale:(int -> float) -> t -> Mna.circuit
(** The resistive skeleton as an MNA circuit (capacitors omitted — DC). *)
