(** A two-stage Miller-compensated operational amplifier — a third
    benchmark beyond the paper's two, showing how to target a new
    circuit with the same modeling machinery.

    Modeled metrics:
    - DC gain (dB): transconductance over output conductance per stage,
      both moved by drive shifts (mildly nonlinear through the log);
    - unity-gain bandwidth (MHz): [gm1 / (2 pi Cc)], with the
      compensation capacitor a layout parasitic;
    - input offset voltage (mV): the classic differential-pair mismatch
      — exactly the paper's Sec. IV-A illustration (eq. 36-37), with
      the input pair extracted as multifinger devices post-layout.

    The offset metric makes this the reference testbench for prior
    mapping: its schematic model is literally
    [alpha_1 x_1 + alpha_2 x_2 + alpha_3] over the two input devices'
    threshold variables. *)

type config = {
  vars_per_device : int;
  input_pair_fingers : int;  (** Post-layout fingers of the input pair. *)
  interdie : int;
  compensation_nodes : int;  (** RC tree of the compensation network. *)
  profile : Device.profile;
  interdie_sigma : float;
  parasitic_sigma : float;
  nonlinearity : float;
  sim_noise : float;
}

val default_config : config

type t

val create : ?config:config -> int -> t
(** [create seed]: seeded ground truth, as for the other benchmarks. *)

val config : t -> config

val gain_index : int
(** 0 — DC gain in dB. *)

val bandwidth_index : int
(** 1 — unity-gain bandwidth in MHz. *)

val offset_index : int
(** 2 — input offset voltage in mV. *)

val testbench : t -> Testbench.t
