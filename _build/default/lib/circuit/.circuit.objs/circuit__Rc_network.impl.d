lib/circuit/rc_network.ml: Array Float Mna Stats
