lib/circuit/rc_network.mli: Mna Stats
