lib/circuit/stage.mli:
