lib/circuit/stage.ml:
