lib/circuit/amplifier.mli: Device Testbench
