lib/circuit/ring_oscillator.mli: Device Testbench
