lib/circuit/mna.mli:
