lib/circuit/process.ml: Array
