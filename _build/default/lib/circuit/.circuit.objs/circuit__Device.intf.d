lib/circuit/device.mli: Bmf Linalg Process Stats
