lib/circuit/mna.ml: Array Linalg List Printf
