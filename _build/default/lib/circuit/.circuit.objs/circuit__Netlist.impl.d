lib/circuit/netlist.ml: Format Hashtbl List String
