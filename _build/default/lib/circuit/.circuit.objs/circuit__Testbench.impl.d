lib/circuit/testbench.ml: Array Bmf Linalg Netlist Polybasis Stage Stats
