lib/circuit/device.ml: Array Bmf Float List Process Stats
