lib/circuit/ring_oscillator.ml: Array Bmf Device Float List Netlist Polybasis Printf Process Rc_network Stage Stats Testbench
