lib/circuit/testbench.mli: Bmf Linalg Netlist Polybasis Stage Stats
