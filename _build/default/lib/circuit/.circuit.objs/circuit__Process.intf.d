lib/circuit/process.mli:
