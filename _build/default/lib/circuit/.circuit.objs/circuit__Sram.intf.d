lib/circuit/sram.mli: Device Testbench
