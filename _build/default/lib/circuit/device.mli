(** A MOS device in the statistical substrate.

    Each device owns a block of mismatch variables with a decaying
    sensitivity profile (threshold voltage dominates, then current
    factor, then a tail of smaller contributors — mimicking the ~40
    PDK mismatch parameters), plus responses to the shared interdie
    variables.

    The device exposes its relative "drive shift" — the fractional change
    of its drive strength — at both stages:

    - schematic: a linear form over the schematic variables;
    - layout: the same form with each mismatch variable replaced by a
      weighted combination of its finger variables (weights nominally
      [1/sqrt W], perturbed by layout-systematic imbalance), with
      sensitivities themselves perturbed by the layout discrepancy.

    With zero imbalance and zero discrepancy the layout shift's linear
    coefficients equal the schematic ones split by [1/sqrt W] — exactly
    the paper's prior-mapping assumption (eq. 47-49); tests verify this. *)

type t

type profile = {
  mismatch_sigma : float;
      (** Scale of the dominant (threshold) sensitivity. *)
  layout_discrepancy : float;
      (** Relative perturbation of sensitivities at layout (systematic
          layout effects). *)
  finger_imbalance : float;
      (** Relative unevenness of finger weights at layout. *)
}

val default_profile : profile

val make :
  rng:Stats.Rng.t ->
  process:Process.t ->
  name:string ->
  fingers:int ->
  vars_per_device:int ->
  ?interdie_sens:(int * float) list ->
  profile ->
  t
(** Allocates the device's variables from [process] and draws its
    sensitivities. [interdie_sens] couples the device to interdie
    variables (pairs of variable index and schematic sensitivity); the
    layout sensitivity of interdie terms gets the same discrepancy
    treatment. *)

val name : t -> string

val fingers : t -> int

val vars : t -> int array
(** The device's schematic mismatch variable indices. *)

val schematic_shift : t -> Linalg.Vec.t -> float
(** Relative drive shift at the schematic stage; the argument is the
    full schematic variable vector. *)

val layout_shift : t -> Bmf.Prior_mapping.t -> Linalg.Vec.t -> float
(** Relative drive shift at the post-layout stage; the argument is the
    full layout variable vector (finger-expanded, parasitics may follow
    and are ignored here). *)

val schematic_coefficients : t -> (int * float) list
(** The exact linear form of {!schematic_shift}: (variable, coefficient)
    pairs, used by tests and diagnostics. *)
