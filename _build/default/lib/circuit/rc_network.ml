type t = {
  parent : int array; (* parent.(i) is the parent of node i + 1 *)
  r : float array; (* nominal resistance of edge i (into node i + 1) *)
  c : float array; (* nominal capacitance at node i + 1 *)
}

let node_count t = Array.length t.parent + 1

let edge_count t = Array.length t.parent

let random_tree rng ~nodes ~r_nominal ~c_nominal =
  if nodes < 2 then invalid_arg "Rc_network.random_tree: need >= 2 nodes";
  let n_edges = nodes - 1 in
  let parent =
    Array.init n_edges (fun i ->
        (* node i+1 attaches to a uniformly random earlier node *)
        if i = 0 then 0 else Stats.Rng.int rng (i + 1))
  in
  let log_uniform nominal =
    nominal *. exp (Stats.Rng.uniform rng ~lo:(-0.7) ~hi:0.7)
  in
  {
    parent;
    r = Array.init n_edges (fun _ -> log_uniform r_nominal);
    c = Array.init n_edges (fun _ -> log_uniform c_nominal);
  }

let chain ~segments ~r_per_segment ~c_per_segment =
  if segments < 1 then invalid_arg "Rc_network.chain: need >= 1 segment";
  if r_per_segment <= 0. || c_per_segment <= 0. then
    invalid_arg "Rc_network.chain: values must be positive";
  {
    parent = Array.init segments (fun i -> i);
    r = Array.make segments r_per_segment;
    c = Array.make segments c_per_segment;
  }

let id_scale (_ : int) = 1.

let total_capacitance ?(c_scale = id_scale) t =
  let acc = ref 0. in
  Array.iteri (fun i c -> acc := !acc +. (c *. c_scale i)) t.c;
  !acc

let path_resistance ?(r_scale = id_scale) t node =
  if node < 0 || node >= node_count t then
    invalid_arg "Rc_network.path_resistance: node out of range";
  let acc = ref 0. in
  let cur = ref node in
  while !cur <> 0 do
    let e = !cur - 1 in
    acc := !acc +. (t.r.(e) *. r_scale e);
    cur := t.parent.(e)
  done;
  !acc

(* Shared-path resistance between the root-paths of two nodes in a tree:
   ascend the deeper path until the two meet, accumulating only edges
   common to both paths. Simpler: R_shared(j, k) = sum of scaled edge
   resistances on path(0, j) /\ path(0, k); we mark path(0, j) then walk
   path(0, k). *)
let shared_resistance ?(r_scale = id_scale) t j k =
  let on_path = Array.make (node_count t) false in
  let cur = ref j in
  while !cur <> 0 do
    on_path.(!cur) <- true;
    cur := t.parent.(!cur - 1)
  done;
  (* walk up from k to the first marked node = lowest common ancestor,
     then accumulate from there to the root *)
  let cur = ref k in
  while !cur <> 0 && not on_path.(!cur) do
    cur := t.parent.(!cur - 1)
  done;
  let acc = ref 0. in
  while !cur <> 0 do
    let e = !cur - 1 in
    acc := !acc +. (t.r.(e) *. r_scale e);
    cur := t.parent.(e)
  done;
  !acc

let elmore_delay ?(r_scale = id_scale) ?(c_scale = id_scale) t node =
  if node < 0 || node >= node_count t then
    invalid_arg "Rc_network.elmore_delay: node out of range";
  let acc = ref 0. in
  for k = 1 to node_count t - 1 do
    let ck = t.c.(k - 1) *. c_scale (k - 1) in
    acc := !acc +. (ck *. shared_resistance ~r_scale t node k)
  done;
  !acc

let worst_elmore ?(r_scale = id_scale) ?(c_scale = id_scale) t =
  let best = ref 0. in
  for node = 1 to node_count t - 1 do
    best := Float.max !best (elmore_delay ~r_scale ~c_scale t node)
  done;
  !best

let to_mna ?(r_scale = id_scale) t =
  let c = Mna.create ~nodes:(node_count t) in
  Array.iteri
    (fun e p ->
      Mna.add c (Mna.Resistor { a = p; b = e + 1; ohms = t.r.(e) *. r_scale e }))
    t.parent;
  c

let effective_rc ?(r_scale = id_scale) ?(c_scale = id_scale) t =
  (* critical sink = largest path resistance *)
  let sink = ref 1 and best = ref neg_infinity in
  for node = 1 to node_count t - 1 do
    let r = path_resistance ~r_scale t node in
    if r > !best then begin
      best := r;
      sink := node
    end
  done;
  let circuit = to_mna ~r_scale t in
  let r_eff = Mna.resistance_between circuit 0 !sink in
  r_eff *. total_capacitance ~c_scale t
