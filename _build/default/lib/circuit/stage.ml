type t = Schematic | Layout

let name = function Schematic -> "schematic" | Layout -> "post-layout"

let all = [ Schematic; Layout ]
