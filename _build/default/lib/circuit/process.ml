type t = { interdie : int; mutable next : int }

let create ~interdie =
  if interdie < 0 then invalid_arg "Process.create: negative interdie count";
  { interdie; next = interdie }

let interdie_vars t = Array.init t.interdie (fun i -> i)

let alloc_device t ~count =
  if count <= 0 then invalid_arg "Process.alloc_device: count must be positive";
  let base = t.next in
  t.next <- t.next + count;
  Array.init count (fun i -> base + i)

let total_vars t = t.next
