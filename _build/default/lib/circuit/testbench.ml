type t = {
  name : string;
  schematic_dim : int;
  layout_dim : int;
  mapping : Bmf.Prior_mapping.t;
  parasitic_terms : Polybasis.Multi_index.t list;
  metrics : string array;
  simulate :
    stage:Stage.t ->
    metric:int ->
    noise:Stats.Rng.t option ->
    Linalg.Vec.t ->
    float;
  sim_cost_seconds : Stage.t -> float;
  netlist : Netlist.t;
}

let dim t = function
  | Stage.Schematic -> t.schematic_dim
  | Stage.Layout -> t.layout_dim

let metric_index t name =
  let found = ref None in
  Array.iteri (fun i m -> if m = name && !found = None then found := Some i) t.metrics;
  match !found with Some i -> i | None -> raise Not_found

let schematic_basis t = Polybasis.Basis.linear t.schematic_dim

let layout_basis_with_prior t ~early_coeffs =
  let mapped =
    Bmf.Prior_mapping.map_model t.mapping
      ~early_basis:(schematic_basis t) ~early_coeffs
  in
  Bmf.Prior_mapping.append_missing mapped t.parasitic_terms

let draw_dataset t ~stage ~metric ~rng ~k ?(scheme = Stats.Sampling.Monte_carlo)
    ?(noisy = true) () =
  if metric < 0 || metric >= Array.length t.metrics then
    invalid_arg "Testbench.draw_dataset: metric out of range";
  let r = dim t stage in
  let xs = Stats.Sampling.draw scheme rng ~k ~r in
  let noise = if noisy then Some (Stats.Rng.split rng) else None in
  let f =
    Array.init k (fun i ->
        t.simulate ~stage ~metric ~noise (Linalg.Mat.row xs i))
  in
  (xs, f)

let simulation_hours t ~stage ~samples =
  t.sim_cost_seconds stage *. float_of_int samples /. 3600.
