(** The statistical process model: allocation of independent
    standard-normal variation variables (paper eq. 1).

    In the real flow the PDK assigns each device ~40 mismatch random
    variables plus chip-level interdie variables; here a [Process.t]
    plays that role, handing out contiguous index blocks in the
    schematic-stage variable space. The layout-stage space is derived
    from it by [Bmf.Prior_mapping] (finger expansion) plus appended
    parasitic variables. *)

type t

val create : interdie:int -> t
(** A fresh variable space whose first [interdie] indices are the shared
    interdie (die-to-die) variables.
    @raise Invalid_argument on negative [interdie]. *)

val interdie_vars : t -> int array
(** Indices of the interdie variables. *)

val alloc_device : t -> count:int -> int array
(** Allocates [count] fresh mismatch variables for one device and
    returns their indices.
    @raise Invalid_argument on non-positive [count]. *)

val total_vars : t -> int
(** Number of variables allocated so far (the schematic dimension [R]). *)
