(** The SRAM read-path benchmark circuit (paper Sec. V-B, Fig. 6).

    A column of bit cells on a shared bitline, a wordline driver, and a
    sense amplifier; the modeled performance is the read delay from the
    wordline rising to the sense-amplifier output. This is the paper's
    high-dimensional case: the variable count is dominated by the many
    bit cells, almost all of which only perturb the delay through tiny
    leakage contributions — producing the long tail of near-zero model
    coefficients that sparse methods and BMF both exploit.

    Behavioral model (see DESIGN.md Sec. 4):
    - wordline delay: driver drive shift, plus wordline-wire parasitics
      post-layout;
    - bitline discharge: [C_bl dV / I_cell], with the accessed cell's
      drive in the denominator (mild 1/(1+d) nonlinearity) and every
      unaccessed cell leaking a small fraction of the read current; the
      distributed bitline RC adds an {!Mna}-evaluated effective-RC term
      post-layout;
    - sense delay: amplifier devices' mean drive plus a signed offset
      term.

    Peripheral devices (driver, sense amp) are multifinger post-layout;
    bit cells are minimum-size single-finger devices. *)

type config = {
  cells : int;  (** Bit cells on the column. *)
  vars_per_cell : int;
  sa_devices : int;  (** Devices in the sense amplifier. *)
  wl_devices : int;  (** Devices in the wordline driver. *)
  vars_per_periph_device : int;
  periph_fingers : int;  (** Post-layout fingers of peripheral devices. *)
  interdie : int;
  bitline_segments : int;  (** RC-ladder segments of the bitline. *)
  cell_profile : Device.profile;
  periph_profile : Device.profile;
  interdie_sigma : float;
  leak_coupling : float;
      (** Aggregate leakage sensitivity of unaccessed cells, as a
          fraction of the read current per unit aggregate shift. *)
  parasitic_sigma : float;
  nonlinearity : float;
  sim_noise : float;
}

val default_config : config
(** ~2300 post-layout variables (the "large" benchmark at default
    scale). *)

val paper_scale_config : config
(** ~66000 post-layout variables, matching the paper's 66117. *)

type t

val create : ?config:config -> int -> t
(** [create seed]: seeded ground-truth construction. *)

val config : t -> config

val read_delay_index : int
(** 0 — Table V's metric. *)

val testbench : t -> Testbench.t
(** Simulation costs calibrated to the paper's Table VI (349 s per
    post-layout sample). *)
