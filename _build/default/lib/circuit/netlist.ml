type entry = {
  ref_name : string;
  kind : string;
  ports : string list;
  params : (string * float) list;
}

type t = { name : string; mutable entries : entry list (* reversed *) }

let create ~name = { name; entries = [] }

let add t e = t.entries <- e :: t.entries

let name t = t.name

let entries t = List.rev t.entries

let count_kind t kind =
  List.fold_left
    (fun acc e -> if e.kind = kind then acc + 1 else acc)
    0 t.entries

let kinds t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find tbl e.kind with Not_found -> 0 in
      Hashtbl.replace tbl e.kind (cur + 1))
    t.entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summary fmt t =
  Format.fprintf fmt "@[<v>netlist %s:" t.name;
  List.iter
    (fun (kind, count) -> Format.fprintf fmt "@,  %-24s x%d" kind count)
    (kinds t);
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.fprintf fmt "@[<v>* netlist %s" t.name;
  List.iter
    (fun e ->
      Format.fprintf fmt "@,%s %s (%s)" e.ref_name e.kind
        (String.concat " " e.ports);
      List.iter
        (fun (k, v) -> Format.fprintf fmt " %s=%g" k v)
        e.params)
    (entries t);
  Format.fprintf fmt "@]"
