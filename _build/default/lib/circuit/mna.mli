(** Modified nodal analysis for linear resistive networks.

    Circuit elements (conductances, current sources, voltage sources) are
    stamped into a sparse system [G v = i]; node 0 is ground and is
    eliminated. Voltage sources are handled with the standard MNA branch
    currents. This solver evaluates the parasitic networks produced by
    "layout extraction" in the circuit substrate. *)

type element =
  | Resistor of { a : int; b : int; ohms : float }
  | Conductance of { a : int; b : int; siemens : float }
  | Current_source of { from_node : int; to_node : int; amps : float }
      (** Conventional current flowing from [from_node] to [to_node]. *)
  | Voltage_source of { plus : int; minus : int; volts : float }

type circuit

val create : nodes:int -> circuit
(** A circuit with nodes [0 .. nodes - 1]; node 0 is ground.
    @raise Invalid_argument when [nodes < 1]. *)

val add : circuit -> element -> unit
(** @raise Invalid_argument on out-of-range nodes or non-positive
    resistance. *)

type solution

val solve : circuit -> solution
(** Assembles and solves the MNA system (dense LU for the small systems
    used here; the assembled matrix is sparse CSR).
    @raise Failure when the system is singular (e.g. floating nodes). *)

val voltage : solution -> int -> float
(** Node voltage (ground is 0). *)

val source_current : solution -> int -> float
(** Branch current through the [n]th voltage source (in order of
    addition), flowing from [plus] to [minus] through the source. *)

val resistance_between : circuit -> int -> int -> float
(** Effective (Thevenin) resistance between two nodes of the resistive
    part of the circuit, by injecting a unit test current. Sources
    already present are zeroed (ideal sources suppressed). *)
