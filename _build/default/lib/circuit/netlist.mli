(** Lightweight structural netlists, used to document the benchmark
    circuits (the textual counterpart of the paper's Fig. 3 and Fig. 6
    schematics) and to keep device/component bookkeeping auditable. *)

type entry = {
  ref_name : string;  (** Instance name, e.g. "INV3.MN". *)
  kind : string;  (** Component kind, e.g. "nmos", "rc-tree". *)
  ports : string list;
  params : (string * float) list;
}

type t

val create : name:string -> t

val add : t -> entry -> unit

val name : t -> string

val entries : t -> entry list
(** In order of addition. *)

val count_kind : t -> string -> int

val kinds : t -> (string * int) list
(** Distinct kinds with their counts, alphabetical. *)

val summary : Format.formatter -> t -> unit
(** Component-count summary (one line per kind). *)

val pp : Format.formatter -> t -> unit
(** Full netlist listing. *)
