(** A benchmark circuit packaged for the performance-modeling
    experiments: its two variable spaces, the finger mapping between
    them, the simulator, and the (simulated) per-sample simulation cost.

    The layout variable layout is fixed by convention: indices
    [0 .. Prior_mapping.late_dim mapping - 1] are the finger-expanded
    device/interdie variables, followed by the parasitic variables in
    the order of [parasitic_terms]. *)

type t = {
  name : string;
  schematic_dim : int;
  layout_dim : int;
  mapping : Bmf.Prior_mapping.t;
  parasitic_terms : Polybasis.Multi_index.t list;
      (** Late-stage-only (missing-prior) linear terms, over layout
          variable indices. *)
  metrics : string array;
  simulate :
    stage:Stage.t ->
    metric:int ->
    noise:Stats.Rng.t option ->
    Linalg.Vec.t ->
    float;
      (** Deterministic when [noise] is [None]. *)
  sim_cost_seconds : Stage.t -> float;
      (** Declared transistor-level simulation cost per sample (see
          DESIGN.md: simulated, calibrated to the paper's totals). *)
  netlist : Netlist.t;
}

val dim : t -> Stage.t -> int

val metric_index : t -> string -> int
(** @raise Not_found for unknown metric names. *)

val schematic_basis : t -> Polybasis.Basis.t
(** The linear schematic-stage basis [1; x_1; ...; x_R]. *)

val layout_basis_with_prior :
  t -> early_coeffs:Linalg.Vec.t -> Polybasis.Basis.t * float option array
(** Applies prior mapping (Sec. IV-A) to a fitted schematic model and
    appends the parasitic missing-prior terms (Sec. IV-B). The returned
    basis spans the layout variable space. *)

val draw_dataset :
  t ->
  stage:Stage.t ->
  metric:int ->
  rng:Stats.Rng.t ->
  k:int ->
  ?scheme:Stats.Sampling.scheme ->
  ?noisy:bool ->
  unit ->
  Linalg.Mat.t * Linalg.Vec.t
(** [k] Monte Carlo "simulations": the sample matrix and the simulated
    performance values. [noisy] (default true) adds simulation noise
    from a stream split off [rng]. *)

val simulation_hours : t -> stage:Stage.t -> samples:int -> float
(** Declared simulation cost of a sample set, in hours. *)
