type profile = {
  mismatch_sigma : float;
  layout_discrepancy : float;
  finger_imbalance : float;
}

let default_profile =
  { mismatch_sigma = 0.03; layout_discrepancy = 0.12; finger_imbalance = 0.08 }

type t = {
  name : string;
  fingers : int;
  vars : int array;
  sens_schematic : float array; (* per mismatch var *)
  sens_layout : float array; (* perturbed at layout *)
  finger_weights : float array array; (* per var, length fingers, sum w^2 = 1 *)
  interdie : (int * float * float) array; (* var, schematic sens, layout sens *)
}

(* Decaying magnitude profile: Vth-like term dominates, a current-factor
   term at ~40%, then an exponentially decaying tail. Signs random. *)
let draw_sensitivities rng ~sigma ~count =
  Array.init count (fun j ->
      let magnitude =
        if j = 0 then sigma
        else if j = 1 then 0.45 *. sigma
        else 0.22 *. sigma *. exp (-.float_of_int (j - 2) /. 8.)
      in
      magnitude *. (1. +. (0.3 *. Stats.Rng.gaussian rng))
      *. (if Stats.Rng.bool rng then 1. else -1.))

let perturb rng ~discrepancy s =
  s *. (1. +. (discrepancy *. Stats.Rng.gaussian rng))

let draw_finger_weights rng ~fingers ~imbalance =
  let raw =
    Array.init fingers (fun _ ->
        Float.max 0.1 (1. +. (imbalance *. Stats.Rng.gaussian rng)))
  in
  let norm = sqrt (Array.fold_left (fun acc w -> acc +. (w *. w)) 0. raw) in
  Array.map (fun w -> w /. norm) raw

let make ~rng ~process ~name ~fingers ~vars_per_device ?(interdie_sens = [])
    profile =
  if fingers < 1 then invalid_arg "Device.make: fingers must be >= 1";
  let vars = Process.alloc_device process ~count:vars_per_device in
  let sens_schematic =
    draw_sensitivities rng ~sigma:profile.mismatch_sigma ~count:vars_per_device
  in
  let sens_layout =
    Array.map
      (perturb rng ~discrepancy:profile.layout_discrepancy)
      sens_schematic
  in
  let finger_weights =
    Array.init vars_per_device (fun _ ->
        draw_finger_weights rng ~fingers ~imbalance:profile.finger_imbalance)
  in
  let interdie =
    Array.of_list
      (List.map
         (fun (v, s) ->
           (v, s, perturb rng ~discrepancy:profile.layout_discrepancy s))
         interdie_sens)
  in
  { name; fingers; vars; sens_schematic; sens_layout; finger_weights; interdie }

let name t = t.name

let fingers t = t.fingers

let vars t = Array.copy t.vars

let schematic_shift t x =
  let acc = ref 0. in
  Array.iteri
    (fun j v -> acc := !acc +. (t.sens_schematic.(j) *. x.(v)))
    t.vars;
  Array.iter (fun (v, s, _) -> acc := !acc +. (s *. x.(v))) t.interdie;
  !acc

let layout_shift t mapping x =
  let acc = ref 0. in
  Array.iteri
    (fun j v ->
      (* aggregate the finger variables of schematic variable v *)
      let w = t.finger_weights.(j) in
      let agg = ref 0. in
      for finger = 0 to t.fingers - 1 do
        agg :=
          !agg
          +. (w.(finger) *. x.(Bmf.Prior_mapping.late_var mapping ~sch:v ~finger))
      done;
      acc := !acc +. (t.sens_layout.(j) *. !agg))
    t.vars;
  Array.iter
    (fun (v, _, s_lay) ->
      (* interdie variables have one finger by construction *)
      acc := !acc +. (s_lay *. x.(Bmf.Prior_mapping.late_var mapping ~sch:v ~finger:0)))
    t.interdie;
  !acc

let schematic_coefficients t =
  let mismatch =
    Array.to_list (Array.mapi (fun j v -> (v, t.sens_schematic.(j))) t.vars)
  in
  let inter = Array.to_list (Array.map (fun (v, s, _) -> (v, s)) t.interdie) in
  mismatch @ inter
