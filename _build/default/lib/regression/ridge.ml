let fit_design ~lambda ~g ~f =
  if lambda <= 0. then invalid_arg "Ridge.fit_design: lambda must be > 0";
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then invalid_arg "Ridge.fit_design: length mismatch";
  let gtf = Linalg.Mat.gemv_t g f in
  if k >= m then begin
    (* normal equations, m x m *)
    let gram = Linalg.Mat.gram g in
    let shifted = Linalg.Mat.add_diag gram (Array.make m lambda) in
    Linalg.Cholesky.solve_system shifted gtf
  end
  else
    (* Woodbury: (lambda I + G^T G)^-1 G^T f via a k x k solve *)
    Linalg.Woodbury.solve_system ~d:(Array.make m lambda) ~g ~scale:1. gtf

let fit ~lambda ~basis ~xs ~f =
  let g = Polybasis.Basis.design_matrix basis xs in
  Model.create basis (fit_design ~lambda ~g ~f)

let default_lambdas =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1000. ]

let submatrix_rows g idx =
  let _, m = Linalg.Mat.dims g in
  Linalg.Mat.init (Array.length idx) m (fun i j -> Linalg.Mat.get g idx.(i) j)

let fit_cv ?rng ?(lambdas = default_lambdas) ?(folds = 5) ~g ~f () =
  let k = Linalg.Mat.rows g in
  let folds = Stdlib.max 2 (Stdlib.min folds k) in
  let run lambda ~train ~test =
    let gt = submatrix_rows g train
    and ft = Array.map (fun i -> f.(i)) train in
    let gv = submatrix_rows g test and fv = Array.map (fun i -> f.(i)) test in
    let alpha = fit_design ~lambda ~g:gt ~f:ft in
    Linalg.Vec.rel_error (Linalg.Mat.gemv gv alpha) fv
  in
  let best, _ =
    Stats.Crossval.select ?shuffle:rng ~n:folds ~size:k ~candidates:lambdas
      run
  in
  (fit_design ~lambda:best ~g ~f, best)
