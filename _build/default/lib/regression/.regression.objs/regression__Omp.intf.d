lib/regression/omp.mli: Linalg Model Polybasis Stats
