lib/regression/least_squares.mli: Linalg Model Polybasis
