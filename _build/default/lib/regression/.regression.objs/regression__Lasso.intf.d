lib/regression/lasso.mli: Linalg Model Polybasis
