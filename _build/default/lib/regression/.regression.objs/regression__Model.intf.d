lib/regression/model.mli: Linalg Polybasis
