lib/regression/omp.ml: Array Float Linalg List Model Polybasis Stats Stdlib
