lib/regression/ridge.ml: Array Linalg Model Polybasis Stats Stdlib
