lib/regression/model.ml: Array Float Linalg Polybasis Stats Stdlib
