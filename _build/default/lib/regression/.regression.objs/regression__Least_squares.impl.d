lib/regression/least_squares.ml: Array Linalg Model Polybasis Printf
