lib/regression/ridge.mli: Linalg Model Polybasis Stats
