lib/regression/lasso.ml: Array Float Linalg Model Polybasis
