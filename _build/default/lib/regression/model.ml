type t = { basis : Polybasis.Basis.t; coeffs : Linalg.Vec.t }

let create basis coeffs =
  if Array.length coeffs <> Polybasis.Basis.size basis then
    invalid_arg "Model.create: coefficient length mismatch";
  { basis; coeffs }

let predict t x = Polybasis.Basis.predict t.basis ~coeffs:t.coeffs x

let predict_many t xs = Polybasis.Basis.predict_many t.basis ~coeffs:t.coeffs xs

let coeffs t = t.coeffs

let basis t = t.basis

let num_terms t = Array.length t.coeffs

let sparsity ?(tol = 1e-12) t =
  Array.fold_left
    (fun acc c -> if Float.abs c > tol then acc + 1 else acc)
    0 t.coeffs

let dominant_terms ?(count = 10) t =
  let indexed = Array.mapi (fun i c -> (i, c)) t.coeffs in
  Array.sort
    (fun (_, a) (_, b) -> Float.compare (Float.abs b) (Float.abs a))
    indexed;
  Array.to_list (Array.sub indexed 0 (Stdlib.min count (Array.length indexed)))

let relative_test_error t ~xs ~f =
  Stats.Metrics.relative_error ~predicted:(predict_many t xs) ~actual:f
