(** Lasso and elastic-net regression by cyclic coordinate descent —
    the other family of sparse-regression baselines the paper cites
    (refs [15], elastic net).

    Minimizes
    [1/(2K) ||f - G a||_2^2 + lambda * (l1_ratio ||a||_1
     + (1 - l1_ratio)/2 ||a||_2^2)]. *)

type options = {
  lambda : float;  (** Overall regularization strength, [> 0]. *)
  l1_ratio : float;  (** 1 = pure lasso, 0 = pure ridge; in [0, 1]. *)
  max_sweeps : int;  (** Full coordinate sweeps (default 1000). *)
  tol : float;  (** Stop when the largest coefficient move in a sweep is
                    below [tol] (default 1e-8). *)
}

val default_options : lambda:float -> options
(** Pure lasso ([l1_ratio = 1]) with default iteration controls. *)

type result = {
  coeffs : Linalg.Vec.t;
  sweeps : int;
  converged : bool;
}

val fit_design : options -> g:Linalg.Mat.t -> f:Linalg.Vec.t -> result

val fit :
  options ->
  basis:Polybasis.Basis.t ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  Model.t

val lambda_max : g:Linalg.Mat.t -> f:Linalg.Vec.t -> float
(** Smallest lambda for which the pure-lasso solution is identically zero
    ([||G^T f||_inf / K]); the natural top of a regularization path. *)
