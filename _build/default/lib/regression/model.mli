(** A fitted performance model: a basis plus its coefficient vector
    (paper eq. 2). Produced by every fitting method in this library and
    by [Bmf]. *)

type t = { basis : Polybasis.Basis.t; coeffs : Linalg.Vec.t }

val create : Polybasis.Basis.t -> Linalg.Vec.t -> t
(** @raise Invalid_argument when the coefficient length differs from the
    basis size. *)

val predict : t -> Linalg.Vec.t -> float
(** Model value at one point of the variation space. *)

val predict_many : t -> Linalg.Mat.t -> Linalg.Vec.t
(** Model values at each row of a sample matrix. *)

val coeffs : t -> Linalg.Vec.t

val basis : t -> Polybasis.Basis.t

val num_terms : t -> int

val sparsity : ?tol:float -> t -> int
(** Number of coefficients with magnitude [> tol] (default [1e-12]). *)

val dominant_terms : ?count:int -> t -> (int * float) list
(** The [count] (default 10) coefficients of largest magnitude, as
    (basis index, value) pairs in decreasing magnitude. *)

val relative_test_error : t -> xs:Linalg.Mat.t -> f:Linalg.Vec.t -> float
(** Eq. 59 evaluated on a held-out test set. *)
