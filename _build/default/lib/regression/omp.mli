(** Orthogonal matching pursuit (paper Sec. II-C, ref [13]) — the sparse
    regression baseline BMF is compared against in every table.

    At each step OMP selects the basis function most correlated with the
    current residual, then re-solves least squares on the selected set.
    The implementation keeps an incremental Cholesky factorization of the
    support Gram matrix, so step [s] costs O(K M + K s + s^2) instead of a
    full refit. *)

type stop =
  | Max_terms of int  (** Select exactly this many terms (or fewer if the
                          residual vanishes first). *)
  | Residual of float
      (** Stop when [||r||_2 <= tol * ||f||_2]; capped at [K - 1] terms. *)
  | Cross_validation of { folds : int; max_terms : int }
      (** Choose the number of terms minimizing N-fold CV error (paper's
          recommended practice), then refit on all data. *)

type result = {
  coeffs : Linalg.Vec.t;  (** Dense length-[M] vector, zeros off support. *)
  support : int array;  (** Selected basis indices, in selection order. *)
  residual_norm : float;
  iterations : int;
}

val fit_design :
  ?rng:Stats.Rng.t -> g:Linalg.Mat.t -> f:Linalg.Vec.t -> stop -> result
(** [rng] shuffles the cross-validation folds (ignored otherwise). *)

val fit :
  ?rng:Stats.Rng.t ->
  basis:Polybasis.Basis.t ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  stop ->
  Model.t
