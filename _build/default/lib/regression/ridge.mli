(** Ridge (L2-regularized) regression.

    Solves [(G^T G + lambda I) alpha = G^T f]. When there are fewer
    samples than bases the solve goes through the Sherman-Morrison-Woodbury
    identity, so high-dimensional fits stay cheap — the same trick as the
    paper's fast solver. Ridge is also exactly BMF-ZM with a flat prior,
    which the tests exploit as a consistency check. *)

val fit_design :
  lambda:float -> g:Linalg.Mat.t -> f:Linalg.Vec.t -> Linalg.Vec.t
(** @raise Invalid_argument unless [lambda > 0]. *)

val fit :
  lambda:float ->
  basis:Polybasis.Basis.t ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  Model.t

val fit_cv :
  ?rng:Stats.Rng.t ->
  ?lambdas:float list ->
  ?folds:int ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  unit ->
  Linalg.Vec.t * float
(** Cross-validated lambda over a log grid (default 1e-6 .. 1e3); returns
    the refit coefficients and the chosen lambda. *)
