(** Ordinary least-squares fitting (paper Sec. II-B).

    Solves the overdetermined system [G alpha = f] of eq. 6 in the
    2-norm. Requires at least as many samples as basis functions; this is
    precisely the cost blow-up that motivates sparse regression and BMF. *)

val fit_design : g:Linalg.Mat.t -> f:Linalg.Vec.t -> Linalg.Vec.t
(** Coefficients minimizing [||g x - f||_2], via Householder QR.
    @raise Invalid_argument when [rows g < cols g] (underdetermined) or
    lengths mismatch.
    @raise Linalg.Qr.Rank_deficient on numerically collinear columns. *)

val fit :
  basis:Polybasis.Basis.t -> xs:Linalg.Mat.t -> f:Linalg.Vec.t -> Model.t
(** Builds the design matrix for [basis] on [xs] and fits. *)
