type stop =
  | Max_terms of int
  | Residual of float
  | Cross_validation of { folds : int; max_terms : int }

type result = {
  coeffs : Linalg.Vec.t;
  support : int array;
  residual_norm : float;
  iterations : int;
}

(* Greedy selection state: [cols] stores the chosen columns of g
   contiguously (k x smax), [r_fact] is the upper-triangular Cholesky
   factor of the support Gram matrix, grown one row per step. *)
type state = {
  k : int;
  smax : int;
  cols : float array; (* column-major: cols.(j * k + i) *)
  r_fact : float array; (* smax x smax upper triangular, row-major *)
  gtf : float array; (* g_support^T f, length smax *)
  support : int array;
  mutable s : int;
}

let make_state k smax =
  {
    k;
    smax;
    cols = Array.make (k * smax) 0.;
    r_fact = Array.make (smax * smax) 0.;
    gtf = Array.make smax 0.;
    support = Array.make smax (-1);
    s = 0;
  }

(* Append column [col] (with g^T f entry [gf]) to the support; returns
   false when the column is numerically dependent on the support. *)
let push st col gf idx =
  let s = st.s and k = st.k and smax = st.smax in
  assert (s < smax);
  (* w = cols^T col, then solve R^T v = w *)
  let v = Array.make s 0. in
  for j = 0 to s - 1 do
    let acc = ref 0. in
    let base = j * k in
    for i = 0 to k - 1 do
      acc := !acc +. (Array.unsafe_get st.cols (base + i) *. Array.unsafe_get col i)
    done;
    v.(j) <- !acc
  done;
  for j = 0 to s - 1 do
    let acc = ref v.(j) in
    for t = 0 to j - 1 do
      acc := !acc -. (st.r_fact.((t * smax) + j) *. v.(t))
    done;
    v.(j) <- !acc /. st.r_fact.((j * smax) + j)
  done;
  let col_norm2 = Linalg.Vec.dot col col in
  let d2 = col_norm2 -. Linalg.Vec.dot v v in
  if d2 <= 1e-12 *. Float.max 1. col_norm2 then false
  else begin
    Array.blit col 0 st.cols (s * k) k;
    for t = 0 to s - 1 do
      st.r_fact.((t * smax) + s) <- v.(t)
    done;
    st.r_fact.((s * smax) + s) <- sqrt d2;
    st.gtf.(s) <- gf;
    st.support.(s) <- idx;
    st.s <- s + 1;
    true
  end

(* Solve R^T R alpha = g_support^T f for the current support. *)
let solve_support st =
  let s = st.s and smax = st.smax in
  let y = Array.make s 0. in
  for i = 0 to s - 1 do
    let acc = ref st.gtf.(i) in
    for t = 0 to i - 1 do
      acc := !acc -. (st.r_fact.((t * smax) + i) *. y.(t))
    done;
    y.(i) <- !acc /. st.r_fact.((i * smax) + i)
  done;
  let alpha = Array.make s 0. in
  for i = s - 1 downto 0 do
    let acc = ref y.(i) in
    for t = i + 1 to s - 1 do
      acc := !acc -. (st.r_fact.((i * smax) + t) *. alpha.(t))
    done;
    alpha.(i) <- !acc /. st.r_fact.((i * smax) + i)
  done;
  alpha

(* Residual f - g_support alpha. *)
let residual st f alpha =
  let r = Array.copy f in
  for j = 0 to st.s - 1 do
    let a = alpha.(j) in
    if a <> 0. then begin
      let base = j * st.k in
      for i = 0 to st.k - 1 do
        Array.unsafe_set r i
          (Array.unsafe_get r i -. (a *. Array.unsafe_get st.cols (base + i)))
      done
    end
  done;
  r

(* One full greedy run on (g, f) up to [max_terms] or residual tolerance.
   [observe] is called after each step with the state and current alpha,
   letting cross-validation record per-step test errors without refits. *)
let run ~g ~f ~max_terms ~res_tol ~observe =
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then invalid_arg "Omp: sample count mismatch";
  let max_terms = Stdlib.min max_terms (Stdlib.min k m) in
  let st = make_state k max_terms in
  let fnorm = Float.max 1e-300 (Linalg.Vec.nrm2 f) in
  (* cached column norms for correlation normalization *)
  let col_norms =
    Array.init m (fun j ->
        let acc = ref 0. in
        for i = 0 to k - 1 do
          let v = Linalg.Mat.get g i j in
          acc := !acc +. (v *. v)
        done;
        Float.max 1e-300 (sqrt !acc))
  in
  let in_support = Array.make m false in
  let r = ref (Array.copy f) in
  let alpha = ref [||] in
  let stop = ref false in
  while (not !stop) && st.s < max_terms do
    if Linalg.Vec.nrm2 !r <= res_tol *. fnorm then stop := true
    else begin
      (* c = g^T r, normalized by column norms; pick the best new index *)
      let c = Linalg.Mat.gemv_t g !r in
      let best = ref (-1) and best_v = ref 0. in
      for j = 0 to m - 1 do
        if not in_support.(j) then begin
          let v = Float.abs c.(j) /. col_norms.(j) in
          if v > !best_v then begin
            best := j;
            best_v := v
          end
        end
      done;
      if !best < 0 || !best_v <= 1e-14 *. fnorm then stop := true
      else begin
        let col = Linalg.Mat.col g !best in
        let gf = Linalg.Vec.dot col f in
        if push st col gf !best then begin
          in_support.(!best) <- true;
          alpha := solve_support st;
          r := residual st f !alpha;
          observe st !alpha
        end
        else
          (* numerically dependent column: exclude it and continue *)
          in_support.(!best) <- true
      end
    end
  done;
  (st, !alpha, Linalg.Vec.nrm2 !r)

let densify ~m st alpha =
  let coeffs = Array.make m 0. in
  for j = 0 to st.s - 1 do
    coeffs.(st.support.(j)) <- alpha.(j)
  done;
  coeffs

let fit_fixed ~g ~f ~max_terms ~res_tol =
  let _, m = Linalg.Mat.dims g in
  let st, alpha, rnorm =
    run ~g ~f ~max_terms ~res_tol ~observe:(fun _ _ -> ())
  in
  {
    coeffs = densify ~m st alpha;
    support = Array.sub st.support 0 st.s;
    residual_norm = rnorm;
    iterations = st.s;
  }

let submatrix_rows g idx =
  let _, m = Linalg.Mat.dims g in
  Linalg.Mat.init (Array.length idx) m (fun i j -> Linalg.Mat.get g idx.(i) j)

let subvector f idx = Array.map (fun i -> f.(i)) idx

(* Cross-validated choice of the number of terms: each fold runs the
   greedy path once, recording held-out error after every step. *)
let fit_cv ?rng ~g ~f ~folds ~max_terms () =
  let k, _ = Linalg.Mat.dims g in
  let folds = Stdlib.max 2 (Stdlib.min folds k) in
  let fold_list = Stats.Crossval.folds ?shuffle:rng ~n:folds ~size:k () in
  let limit = Stdlib.min max_terms (k - (k / folds) - 1) in
  let limit = Stdlib.max 1 limit in
  let err_sum = Array.make (limit + 1) 0. in
  let err_count = Array.make (limit + 1) 0 in
  List.iter
    (fun { Stats.Crossval.train; test } ->
      let gt = submatrix_rows g train and ft = subvector f train in
      let gv = submatrix_rows g test and fv = subvector f test in
      let fvnorm = Float.max 1e-300 (Linalg.Vec.nrm2 fv) in
      let observe st alpha =
        let s = st.s in
        if s <= limit then begin
          (* held-out predictions from the sparse support *)
          let pred = Array.make (Array.length test) 0. in
          for j = 0 to s - 1 do
            let idx = st.support.(j) and a = alpha.(j) in
            for i = 0 to Array.length test - 1 do
              pred.(i) <- pred.(i) +. (a *. Linalg.Mat.get gv i idx)
            done
          done;
          err_sum.(s) <- err_sum.(s) +. (Linalg.Vec.dist2 pred fv /. fvnorm);
          err_count.(s) <- err_count.(s) + 1
        end
      in
      ignore (run ~g:gt ~f:ft ~max_terms:limit ~res_tol:0. ~observe))
    fold_list;
  let best_s = ref 1 and best_e = ref infinity in
  for s = 1 to limit do
    if err_count.(s) > 0 then begin
      let e = err_sum.(s) /. float_of_int err_count.(s) in
      if e < !best_e then begin
        best_e := e;
        best_s := s
      end
    end
  done;
  fit_fixed ~g ~f ~max_terms:!best_s ~res_tol:0.

let fit_design ?rng ~g ~f stop =
  match stop with
  | Max_terms n ->
      if n <= 0 then invalid_arg "Omp: Max_terms must be positive";
      fit_fixed ~g ~f ~max_terms:n ~res_tol:0.
  | Residual tol ->
      if tol < 0. then invalid_arg "Omp: Residual tolerance must be >= 0";
      let k = Linalg.Mat.rows g in
      fit_fixed ~g ~f ~max_terms:(Stdlib.max 1 (k - 1)) ~res_tol:tol
  | Cross_validation { folds; max_terms } ->
      if folds < 2 then invalid_arg "Omp: need at least 2 folds";
      if max_terms <= 0 then invalid_arg "Omp: max_terms must be positive";
      fit_cv ?rng ~g ~f ~folds ~max_terms ()

let fit ?rng ~basis ~xs ~f stop =
  let g = Polybasis.Basis.design_matrix basis xs in
  let result = fit_design ?rng ~g ~f stop in
  Model.create basis result.coeffs
