type options = {
  lambda : float;
  l1_ratio : float;
  max_sweeps : int;
  tol : float;
}

let default_options ~lambda = { lambda; l1_ratio = 1.; max_sweeps = 1000; tol = 1e-8 }

type result = { coeffs : Linalg.Vec.t; sweeps : int; converged : bool }

let soft_threshold z gamma =
  if z > gamma then z -. gamma
  else if z < -.gamma then z +. gamma
  else 0.

let lambda_max ~g ~f =
  let k = Linalg.Mat.rows g in
  if Array.length f <> k then invalid_arg "Lasso.lambda_max: length mismatch";
  Linalg.Vec.norm_inf (Linalg.Mat.gemv_t g f) /. float_of_int k

(* Cyclic coordinate descent with a maintained residual. For coordinate j:
   rho = g_j^T r / K + (g_j^T g_j / K) a_j, then
   a_j <- soft(rho, lambda l1) / (g_j^T g_j / K + lambda (1 - l1)). *)
let fit_design opts ~g ~f =
  if opts.lambda <= 0. then invalid_arg "Lasso.fit_design: lambda must be > 0";
  if opts.l1_ratio < 0. || opts.l1_ratio > 1. then
    invalid_arg "Lasso.fit_design: l1_ratio outside [0, 1]";
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then invalid_arg "Lasso.fit_design: length mismatch";
  let kf = float_of_int k in
  (* cache columns and their squared norms *)
  let cols = Array.init m (fun j -> Linalg.Mat.col g j) in
  let col_sq = Array.map (fun c -> Linalg.Vec.dot c c /. kf) cols in
  let a = Array.make m 0. in
  let r = Array.copy f in
  let l1 = opts.lambda *. opts.l1_ratio in
  let l2 = opts.lambda *. (1. -. opts.l1_ratio) in
  let sweeps = ref 0 and converged = ref false in
  while (not !converged) && !sweeps < opts.max_sweeps do
    incr sweeps;
    let max_move = ref 0. in
    for j = 0 to m - 1 do
      if col_sq.(j) > 0. then begin
        let cj = cols.(j) in
        let old = a.(j) in
        let rho = (Linalg.Vec.dot cj r /. kf) +. (col_sq.(j) *. old) in
        let fresh = soft_threshold rho l1 /. (col_sq.(j) +. l2) in
        if fresh <> old then begin
          let delta = fresh -. old in
          (* r <- r - delta * g_j *)
          for i = 0 to k - 1 do
            Array.unsafe_set r i
              (Array.unsafe_get r i -. (delta *. Array.unsafe_get cj i))
          done;
          a.(j) <- fresh;
          let move = Float.abs delta *. sqrt col_sq.(j) in
          if move > !max_move then max_move := move
        end
      end
    done;
    if !max_move < opts.tol then converged := true
  done;
  { coeffs = a; sweeps = !sweeps; converged = !converged }

let fit opts ~basis ~xs ~f =
  let g = Polybasis.Basis.design_matrix basis xs in
  Model.create basis (fit_design opts ~g ~f).coeffs
