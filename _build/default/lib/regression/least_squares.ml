let fit_design ~g ~f =
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then
    invalid_arg "Least_squares.fit_design: sample count mismatch";
  if k < m then
    invalid_arg
      (Printf.sprintf
         "Least_squares.fit_design: underdetermined (%d samples, %d bases)" k
         m);
  Linalg.Qr.least_squares g f

let fit ~basis ~xs ~f =
  let g = Polybasis.Basis.design_matrix basis xs in
  Model.create basis (fit_design ~g ~f)
