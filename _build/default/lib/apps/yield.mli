(** Parametric yield estimation on a fitted performance model (one of
    the paper's motivating applications, Sec. I).

    A model evaluation costs microseconds against the hours of a
    transistor-level simulation, so yield — the probability that the
    performance meets its spec over the process distribution — can be
    estimated by plain Monte Carlo on the model. *)

type spec = At_most of float | At_least of float
(** Pass condition: performance must not exceed (resp. fall below) the
    bound — e.g. [At_most 220.] for a read-delay spec in ps. *)

val passes : spec -> float -> bool

type estimate = {
  yield : float;  (** Fraction of passing samples. *)
  std_error : float;  (** Binomial standard error. *)
  ci95 : float * float;  (** Wilson 95% confidence interval. *)
  failures : int;
  samples : int;
}

val estimate :
  ?samples:int -> rng:Stats.Rng.t -> spec:spec -> Regression.Model.t -> estimate
(** Monte Carlo yield over X ~ N(0, I) (default 100000 samples). *)

val spec_for_yield :
  ?samples:int ->
  rng:Stats.Rng.t ->
  target:float ->
  [ `Upper | `Lower ] ->
  Regression.Model.t ->
  float
(** The spec bound achieving a target yield: the [target] (resp.
    [1 - target]) quantile of the model's Monte Carlo distribution for
    an upper (resp. lower) spec. [target] in (0, 1). *)

val gaussian_approximation : spec:spec -> Regression.Model.t -> float
(** Closed-form yield assuming the model output is Gaussian with the
    analytic mean and variance of {!Moments} — exact for linear models,
    an approximation otherwise. *)
