lib/apps/yield.mli: Regression Stats
