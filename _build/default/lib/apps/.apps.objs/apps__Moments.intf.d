lib/apps/moments.mli: Polybasis Regression
