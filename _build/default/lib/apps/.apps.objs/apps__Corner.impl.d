lib/apps/corner.ml: Array Linalg List Polybasis Regression Stats
