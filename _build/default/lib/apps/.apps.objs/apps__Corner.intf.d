lib/apps/corner.mli: Linalg Regression Stats
