lib/apps/yield.ml: Array Float Moments Polybasis Regression Stats
