lib/apps/moments.ml: Array Float List Polybasis Regression
