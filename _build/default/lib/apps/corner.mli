(** Worst-case corner extraction (the paper's other motivating
    application, Sec. I / ref [18]).

    A corner is the point on the [beta]-sigma sphere of the process
    space where the modeled performance is most degraded. For a linear
    model the corner is closed-form (along the coefficient direction);
    for general models a projected gradient ascent on the sphere is
    provided. *)

type direction = Maximize | Minimize

type result = {
  corner : Linalg.Vec.t;  (** Point on the beta-sigma sphere. *)
  value : float;  (** Model prediction at the corner. *)
  sigma : float;  (** The sphere radius actually used. *)
}

val linear_coefficients : Regression.Model.t -> Linalg.Vec.t
(** The purely linear part of the model as a vector over the process
    variables (zero for variables appearing only in higher-order
    terms). *)

val linear : ?beta:float -> direction -> Regression.Model.t -> result
(** Closed-form corner of the linear part: [+- beta * a / ||a||]
    (default [beta = 3]).
    @raise Invalid_argument if the linear part is identically zero. *)

val search :
  ?beta:float ->
  ?steps:int ->
  ?step_size:float ->
  ?restarts:int ->
  rng:Stats.Rng.t ->
  direction ->
  Regression.Model.t ->
  result
(** Projected gradient ascent on the beta-sigma sphere with numeric
    (central-difference) gradients and random restarts (defaults: 200
    steps, step 0.2, 4 restarts). Always returns at least the value of
    the best restart; for linear models it agrees with {!linear} (tests
    check this). *)
