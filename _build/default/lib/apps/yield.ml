type spec = At_most of float | At_least of float

let passes spec value =
  match spec with
  | At_most bound -> value <= bound
  | At_least bound -> value >= bound

type estimate = {
  yield : float;
  std_error : float;
  ci95 : float * float;
  failures : int;
  samples : int;
}

(* Wilson score interval: well-behaved even at 0 or n failures. *)
let wilson ~passes_count ~n =
  let z = 1.959963984540054 in
  let nf = float_of_int n in
  let p = float_of_int passes_count /. nf in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let center = (p +. (z2 /. (2. *. nf))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf)))
  in
  (Float.max 0. (center -. half), Float.min 1. (center +. half))

let estimate ?(samples = 100_000) ~rng ~spec model =
  if samples <= 0 then invalid_arg "Yield.estimate: samples must be positive";
  let r = Polybasis.Basis.dim (Regression.Model.basis model) in
  let failures = ref 0 in
  for _ = 1 to samples do
    let x = Stats.Rng.gaussian_vec rng r in
    if not (passes spec (Regression.Model.predict model x)) then incr failures
  done;
  let passes_count = samples - !failures in
  let nf = float_of_int samples in
  let yield = float_of_int passes_count /. nf in
  {
    yield;
    std_error = sqrt (Float.max 0. (yield *. (1. -. yield)) /. nf);
    ci95 = wilson ~passes_count ~n:samples;
    failures = !failures;
    samples;
  }

let spec_for_yield ?(samples = 100_000) ~rng ~target side model =
  if target <= 0. || target >= 1. then
    invalid_arg "Yield.spec_for_yield: target must be in (0, 1)";
  let r = Polybasis.Basis.dim (Regression.Model.basis model) in
  let values =
    Array.init samples (fun _ ->
        Regression.Model.predict model (Stats.Rng.gaussian_vec rng r))
  in
  match side with
  | `Upper -> Stats.Describe.quantile values target
  | `Lower -> Stats.Describe.quantile values (1. -. target)

let gaussian_approximation ~spec model =
  let mu = Moments.mean model and sigma = Moments.std model in
  if sigma = 0. then if passes spec mu then 1. else 0.
  else
    match spec with
    | At_most bound -> Stats.Special.norm_cdf ((bound -. mu) /. sigma)
    | At_least bound -> Stats.Special.norm_cdf ((mu -. bound) /. sigma)
