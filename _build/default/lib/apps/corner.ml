type direction = Maximize | Minimize

type result = { corner : Linalg.Vec.t; value : float; sigma : float }

let linear_coefficients model =
  let basis = Regression.Model.basis model in
  let coeffs = Regression.Model.coeffs model in
  let out = Array.make (Polybasis.Basis.dim basis) 0. in
  Array.iteri
    (fun m c ->
      let term = Polybasis.Basis.term basis m in
      if Polybasis.Multi_index.total_degree term = 1 then
        match Polybasis.Multi_index.variables term with
        | [ v ] -> out.(v) <- out.(v) +. c
        | _ -> ())
    coeffs;
  out

let sign = function Maximize -> 1. | Minimize -> -1.

let linear ?(beta = 3.) direction model =
  let a = linear_coefficients model in
  let norm = Linalg.Vec.nrm2 a in
  if norm = 0. then
    invalid_arg "Corner.linear: model has no linear part";
  let corner = Linalg.Vec.scale (sign direction *. beta /. norm) a in
  { corner; value = Regression.Model.predict model corner; sigma = beta }

let project_to_sphere beta x =
  let norm = Linalg.Vec.nrm2 x in
  if norm = 0. then x else Linalg.Vec.scale (beta /. norm) x

let numeric_gradient model x =
  let r = Array.length x in
  let h = 1e-5 in
  Array.init r (fun i ->
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- xp.(i) +. h;
      xm.(i) <- xm.(i) -. h;
      (Regression.Model.predict model xp -. Regression.Model.predict model xm)
      /. (2. *. h))

let search ?(beta = 3.) ?(steps = 200) ?(step_size = 0.2) ?(restarts = 4) ~rng
    direction model =
  if restarts < 1 then invalid_arg "Corner.search: need at least one restart";
  let r = Polybasis.Basis.dim (Regression.Model.basis model) in
  let s = sign direction in
  let run x0 =
    let x = ref (project_to_sphere beta x0) in
    for _ = 1 to steps do
      let g = numeric_gradient model !x in
      let candidate =
        project_to_sphere beta
          (Linalg.Vec.add !x (Linalg.Vec.scale (s *. step_size) g))
      in
      (* accept only improving moves so the ascent cannot diverge *)
      if
        s *. Regression.Model.predict model candidate
        >= s *. Regression.Model.predict model !x
      then x := candidate
    done;
    !x
  in
  (* deterministic start along the linear direction when available,
     plus random restarts *)
  let starts =
    let random () = Stats.Rng.gaussian_vec rng r in
    let linear_start =
      let a = linear_coefficients model in
      if Linalg.Vec.nrm2 a > 0. then [ Linalg.Vec.scale s a ] else []
    in
    linear_start @ List.init restarts (fun _ -> random ())
  in
  let best = ref None in
  List.iter
    (fun x0 ->
      let x = run x0 in
      let v = Regression.Model.predict model x in
      match !best with
      | Some (_, bv) when s *. v <= s *. bv -> ()
      | _ -> best := Some (x, v))
    starts;
  match !best with
  | Some (corner, value) -> { corner; value; sigma = beta }
  | None -> assert false
