let constant_index model =
  Polybasis.Basis.index_of_term
    (Regression.Model.basis model)
    Polybasis.Multi_index.constant

let mean model =
  match constant_index model with
  | Some i -> (Regression.Model.coeffs model).(i)
  | None -> 0.

let variance model =
  let coeffs = Regression.Model.coeffs model in
  let skip = constant_index model in
  let acc = ref 0. in
  Array.iteri
    (fun i c -> if Some i <> skip then acc := !acc +. (c *. c))
    coeffs;
  !acc

let std model = sqrt (variance model)

let term_contributions model =
  let basis = Regression.Model.basis model in
  let coeffs = Regression.Model.coeffs model in
  let skip = constant_index model in
  let entries = ref [] in
  Array.iteri
    (fun i c ->
      if Some i <> skip then
        entries := (Polybasis.Basis.term basis i, c *. c) :: !entries)
    coeffs;
  List.sort (fun (_, a) (_, b) -> Float.compare b a) !entries

let variance_share_by_variable model =
  let total = variance model in
  if total <= 0. then [||]
  else begin
    let basis = Regression.Model.basis model in
    let shares = Array.make (Polybasis.Basis.dim basis) 0. in
    List.iter
      (fun (term, contribution) ->
        List.iter
          (fun v -> shares.(v) <- shares.(v) +. contribution)
          (Polybasis.Multi_index.variables term))
      (term_contributions model);
    let indexed = Array.mapi (fun v s -> (v, s /. total)) shares in
    Array.sort (fun (_, a) (_, b) -> Float.compare b a) indexed;
    indexed
  end
