(** Analytic statistics of a fitted performance model.

    Because the basis functions are orthonormal under the process
    distribution (eq. 3), the model's moments are read directly off the
    coefficients: for [f(x) = sum_m alpha_m g_m(x)] with X ~ N(0, I),

    - E[f(X)] = alpha_0 (the constant term's coefficient), and
    - Var[f(X)] = sum_{m > 0} alpha_m^2.

    This is one of the classical payoffs of the orthonormal-polynomial
    formulation: no Monte Carlo needed for mean/variance. *)

val mean : Regression.Model.t -> float
(** The coefficient of the constant term; [0.] if the basis has no
    constant term. *)

val variance : Regression.Model.t -> float
(** Sum of squared non-constant coefficients. *)

val std : Regression.Model.t -> float

val term_contributions : Regression.Model.t -> (Polybasis.Multi_index.t * float) list
(** Per-term variance contribution [alpha_m^2] (constant excluded), in
    decreasing order. The contributions sum to {!variance} exactly. *)

val variance_share_by_variable : Regression.Model.t -> (int * float) array
(** Total-effect variance share per process variable: the summed
    [alpha_m^2] of every term involving the variable, divided by the
    total variance (interaction terms count toward each participating
    variable, so shares can sum to more than 1). Sorted by decreasing
    share. Returns [[||]] when the model has zero variance. *)
