type t = {
  mean : Linalg.Vec.t;
  covariance : Linalg.Mat.t;
  sigma0_sq : float;
}

let compute ?sigma0_sq ~g ~f ~prior ~hyper () =
  let k, m = Linalg.Mat.dims g in
  if Prior.size prior <> m then invalid_arg "Posterior.compute: prior mismatch";
  let mean =
    Map_solver.solve ~solver:Map_solver.Direct_cholesky ~g ~f ~prior ~hyper ()
  in
  let sigma0_sq =
    match sigma0_sq with
    | Some s ->
        if s <= 0. then invalid_arg "Posterior.compute: sigma0_sq <= 0";
        s
    | None ->
        let r = Linalg.Vec.sub f (Linalg.Mat.gemv g mean) in
        Float.max 1e-300 (Linalg.Vec.dot r r /. float_of_int (Stdlib.max 1 k))
  in
  let gram = Linalg.Mat.gram g in
  let shifted =
    Linalg.Mat.add_diag gram
      (Array.map (fun w -> hyper *. w) prior.Prior.weights)
  in
  let inv = Linalg.Cholesky.inverse (Linalg.Cholesky.factorize shifted) in
  { mean; covariance = Linalg.Mat.scale sigma0_sq inv; sigma0_sq }

let marginal_std p = Array.map sqrt (Linalg.Mat.diag p.covariance)

let credible_interval p ~index ~level =
  if level <= 0. || level >= 1. then
    invalid_arg "Posterior.credible_interval: level outside (0, 1)";
  let std = sqrt (Linalg.Mat.get p.covariance index index) in
  let z = Stats.Special.norm_ppf (0.5 +. (level /. 2.)) in
  (p.mean.(index) -. (z *. std), p.mean.(index) +. (z *. std))

let sample rng p =
  let m = Array.length p.mean in
  (* covariance may be near-singular; regularize the factorization by a
     vanishing jitter if needed *)
  let rec factor jitter =
    try
      Linalg.Cholesky.factorize
        (if jitter = 0. then p.covariance
         else Linalg.Mat.add_diag p.covariance (Array.make m jitter))
    with Linalg.Cholesky.Not_positive_definite _ ->
      let next = if jitter = 0. then 1e-12 else jitter *. 100. in
      if next > 1. then raise (Linalg.Cholesky.Not_positive_definite 0)
      else factor next
  in
  let l = Linalg.Cholesky.factor (factor 0.) in
  let z = Stats.Rng.gaussian_vec rng m in
  let lz = Linalg.Mat.gemv l z in
  Linalg.Vec.add p.mean lz

let predict p g_row =
  let m = Array.length p.mean in
  if Array.length g_row <> m then invalid_arg "Posterior.predict: bad row";
  let mean = Linalg.Vec.dot g_row p.mean in
  let sv = Linalg.Mat.gemv p.covariance g_row in
  let var = Linalg.Vec.dot g_row sv +. p.sigma0_sq in
  (mean, sqrt (Float.max 0. var))
