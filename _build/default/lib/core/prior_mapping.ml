type t = { fingers : int array; offsets : int array; total : int }

let create fingers =
  Array.iteri
    (fun r w ->
      if w < 1 then
        invalid_arg
          (Printf.sprintf "Prior_mapping.create: fingers.(%d) = %d < 1" r w))
    fingers;
  let n = Array.length fingers in
  let offsets = Array.make n 0 in
  let acc = ref 0 in
  for r = 0 to n - 1 do
    offsets.(r) <- !acc;
    acc := !acc + fingers.(r)
  done;
  { fingers = Array.copy fingers; offsets; total = !acc }

let identity r = create (Array.make r 1)

let early_dim t = Array.length t.fingers

let late_dim t = t.total

let fingers t r =
  if r < 0 || r >= early_dim t then
    invalid_arg "Prior_mapping.fingers: variable out of range";
  t.fingers.(r)

let late_var t ~sch ~finger =
  if sch < 0 || sch >= early_dim t then
    invalid_arg "Prior_mapping.late_var: variable out of range";
  if finger < 0 || finger >= t.fingers.(sch) then
    invalid_arg "Prior_mapping.late_var: finger out of range";
  t.offsets.(sch) + finger

let schematic_of_late t v =
  if v < 0 || v >= t.total then
    invalid_arg "Prior_mapping.schematic_of_late: variable out of range";
  (* offsets are sorted; linear scan is fine for the sizes involved,
     but binary search keeps this O(log r) for the big substrates *)
  let lo = ref 0 and hi = ref (early_dim t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.offsets.(mid) <= v then lo := mid else hi := mid - 1
  done;
  (!lo, v - t.offsets.(!lo))

(* Cartesian product of per-variable finger choices, in lexicographic
   finger order so the group layout is deterministic. *)
let map_term t term =
  let n = Array.length term in
  if n = 0 then [ Polybasis.Multi_index.constant ]
  else begin
    let rec expand i acc =
      if i = n then [ List.rev acc ]
      else begin
        let v, d = term.(i) in
        if v >= early_dim t then
          invalid_arg "Prior_mapping.map_term: variable out of range";
        List.concat
          (List.init t.fingers.(v) (fun finger ->
               expand (i + 1) ((late_var t ~sch:v ~finger, d) :: acc)))
      end
    in
    List.map Polybasis.Multi_index.of_pairs (expand 0 [])
  end

let group_size t term =
  Array.fold_left (fun acc (v, _) -> acc * t.fingers.(v)) 1 term

let map_model t ~early_basis ~early_coeffs =
  let m = Polybasis.Basis.size early_basis in
  if Array.length early_coeffs <> m then
    invalid_arg "Prior_mapping.map_model: coefficient length mismatch";
  if Polybasis.Basis.dim early_basis <> early_dim t then
    invalid_arg "Prior_mapping.map_model: basis dimension mismatch";
  let late_terms = ref [] and late_coeffs = ref [] in
  for i = m - 1 downto 0 do
    let term = Polybasis.Basis.term early_basis i in
    let group = map_term t term in
    let tm = group_size t term in
    assert (List.length group = tm);
    let beta = early_coeffs.(i) /. sqrt (float_of_int tm) in
    List.iter
      (fun lt ->
        late_terms := lt :: !late_terms;
        late_coeffs := Some beta :: !late_coeffs)
      (List.rev group)
  done;
  let basis = Polybasis.Basis.of_terms ~dim:(late_dim t) !late_terms in
  (basis, Array.of_list !late_coeffs)

let append_missing (basis, coeffs) extra_terms =
  let extended = Polybasis.Basis.extend basis extra_terms in
  let extra = Array.make (List.length extra_terms) None in
  (extended, Array.append coeffs extra)
