lib/core/fusion.mli: Hyper Linalg Map_solver Polybasis Prior Regression Stats
