lib/core/fusion.ml: Array Hyper Linalg List Map_solver Polybasis Prior Regression
