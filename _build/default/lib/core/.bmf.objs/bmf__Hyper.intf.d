lib/core/hyper.mli: Linalg Map_solver Prior Stats
