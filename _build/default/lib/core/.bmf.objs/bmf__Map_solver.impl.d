lib/core/map_solver.ml: Array Float Linalg Prior
