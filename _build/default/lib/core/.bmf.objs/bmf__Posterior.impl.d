lib/core/posterior.ml: Array Float Linalg Map_solver Prior Stats Stdlib
