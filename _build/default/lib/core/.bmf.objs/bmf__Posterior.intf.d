lib/core/posterior.mli: Linalg Prior Stats
