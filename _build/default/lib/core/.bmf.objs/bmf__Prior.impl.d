lib/core/prior.ml: Array Float Linalg List Option
