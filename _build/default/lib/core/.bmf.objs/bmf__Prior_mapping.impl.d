lib/core/prior_mapping.ml: Array List Polybasis Printf
