lib/core/hyper.ml: Array Float Linalg List Map_solver Prior Stats Stdlib
