lib/core/prior.mli: Linalg
