lib/core/map_solver.mli: Linalg Prior
