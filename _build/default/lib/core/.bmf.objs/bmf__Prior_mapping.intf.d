lib/core/prior_mapping.mli: Linalg Polybasis
