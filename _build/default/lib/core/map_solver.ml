type solver = Direct_cholesky | Fast_woodbury

let solver_name = function
  | Direct_cholesky -> "cholesky"
  | Fast_woodbury -> "fast-woodbury"

let check ~g ~f ~weights ~means ~hyper =
  let k, m = Linalg.Mat.dims g in
  if Array.length f <> k then invalid_arg "Map_solver: sample count mismatch";
  if Array.length weights <> m then
    invalid_arg "Map_solver: weight length mismatch";
  if Array.length means <> m then invalid_arg "Map_solver: mean length mismatch";
  if hyper <= 0. || not (Float.is_finite hyper) then
    invalid_arg "Map_solver: hyper must be positive and finite";
  Array.iter
    (fun w ->
      if w <= 0. || not (Float.is_finite w) then
        invalid_arg "Map_solver: weights must be positive and finite")
    weights

(* Residual of the prior mean: f - G mu. Skipped when mu = 0. *)
let prior_residual ~g ~f ~means =
  if Array.for_all (fun x -> x = 0.) means then f
  else Linalg.Vec.sub f (Linalg.Mat.gemv g means)

(* Direct path (eq. 28-35): the M x M system, solved in the prior-scaled
   basis alpha = mu + S gamma with S = diag(w^-1/2):
     (S G^T G S + t I) gamma = S G^T (f - G mu).
   Mathematically identical to (G^T G + t W) beta = G^T (f - G mu) but
   with a condition number independent of the weight spread. *)
let solve_direct ~g ~f ~weights ~means ~hyper =
  let m = Linalg.Mat.cols g in
  let r = prior_residual ~g ~f ~means in
  let s = Array.map (fun w -> 1. /. sqrt w) weights in
  let gs = Linalg.Mat.mul_cols g s in
  let gram = Linalg.Mat.gram gs in
  let shifted = Linalg.Mat.add_diag gram (Array.make m hyper) in
  let rhs = Linalg.Mat.gemv_t gs r in
  let gamma = Linalg.Cholesky.solve_system shifted rhs in
  Array.init m (fun i -> means.(i) +. (s.(i) *. gamma.(i)))

(* Fast path (eq. 53-58): the paper's low-rank identity, in the stable
   dual form
     alpha = mu + W^-1 G^T (t I + G W^-1 G^T)^-1 (f - G mu)
   with a single K x K Cholesky solve. Exact — tests assert agreement
   with the direct path to roundoff. *)
let solve_fast ~g ~f ~weights ~means ~hyper =
  let k, m = Linalg.Mat.dims g in
  let r = prior_residual ~g ~f ~means in
  let w_inv = Array.map (fun w -> 1. /. w) weights in
  let core = Linalg.Mat.weighted_outer_gram g w_inv in
  let shifted = Linalg.Mat.add_diag core (Array.make k hyper) in
  let v = Linalg.Cholesky.solve_system shifted r in
  let gtv = Linalg.Mat.gemv_t g v in
  Array.init m (fun i -> means.(i) +. (w_inv.(i) *. gtv.(i)))

let solve_raw ~solver ~g ~f ~weights ~means ~hyper =
  check ~g ~f ~weights ~means ~hyper;
  match solver with
  | Direct_cholesky -> solve_direct ~g ~f ~weights ~means ~hyper
  | Fast_woodbury -> solve_fast ~g ~f ~weights ~means ~hyper

let solve ?solver ~g ~f ~prior ~hyper () =
  let k, m = Linalg.Mat.dims g in
  let solver =
    match solver with
    | Some s -> s
    | None -> if k < m then Fast_woodbury else Direct_cholesky
  in
  solve_raw ~solver ~g ~f ~weights:prior.Prior.weights
    ~means:prior.Prior.means ~hyper
