(** Maximum-a-posteriori estimation of the late-stage coefficients
    (paper Sec. III-B and IV-C).

    Both prior families reduce to one quadratic problem. With prior means
    [mu], prior weights [w] (inverse variance-scales from [Prior]) and
    hyper-parameter [t] ([sigma_0^2] for the zero-mean prior, [eta] for
    the nonzero-mean prior), the MAP solution solves

    [(G^T G + t * diag w) (alpha - mu) = G^T (f - G mu)]

    which is eq. 30 / eq. 35 after multiplying through by [sigma_0^2]
    (resp. substituting [eta = sigma_0^2 / lambda^2]).

    Two solution paths are provided:
    - [Direct_cholesky]: forms the M x M system (eq. 28-35) — the
      "conventional solver" of Fig. 5;
    - [Fast_woodbury]: the paper's low-rank fast solver (eq. 53-58),
      exact, with a K x K core solve.

    Both return identical answers to roundoff; tests assert this. *)

type solver = Direct_cholesky | Fast_woodbury

val solver_name : solver -> string

val solve :
  ?solver:solver ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  hyper:float ->
  unit ->
  Linalg.Vec.t
(** MAP coefficients (length [cols g]). Default solver is
    [Fast_woodbury] when there are fewer samples than basis functions,
    [Direct_cholesky] otherwise.
    @raise Invalid_argument on dimension mismatches or [hyper <= 0]. *)

val solve_raw :
  solver:solver ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  weights:Linalg.Vec.t ->
  means:Linalg.Vec.t ->
  hyper:float ->
  Linalg.Vec.t
(** Same computation on raw (weights, means) vectors, for callers that
    bypass [Prior] (e.g. hyper-parameter sweeps that share work). *)
