(** The full Gaussian posterior over late-stage coefficients
    (eq. 28-29 / 31-32), beyond the MAP point estimate.

    The posterior is [N(mu_L, Sigma_L)] with

    [Sigma_L = sigma_0^2 (G^T G + t diag w)^-1]

    where [t] is the prior hyper-parameter. (The paper's eq. 31 writes the
    nonzero-mean covariance without the [sigma_0^2] factor because only
    the mean is needed there; we keep the factor so that predictive
    variances are calibrated.) When [sigma_0^2] is not supplied it is
    estimated from the MAP residual, [||f - G mu_L||^2 / K].

    The explicit covariance is an M x M object: intended for moderate M
    (diagnostics, credible intervals, posterior sampling in the
    examples), not for the 10^4-variable substrates. *)

type t = {
  mean : Linalg.Vec.t;
  covariance : Linalg.Mat.t;
  sigma0_sq : float;  (** Noise variance used to scale the covariance. *)
}

val compute :
  ?sigma0_sq:float ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  hyper:float ->
  unit ->
  t
(** Mean and full covariance by the direct (Cholesky) path. *)

val marginal_std : t -> Linalg.Vec.t
(** Per-coefficient posterior standard deviations. *)

val credible_interval : t -> index:int -> level:float -> float * float
(** Central credible interval for one coefficient; [level] in (0, 1),
    e.g. 0.95. *)

val sample : Stats.Rng.t -> t -> Linalg.Vec.t
(** One draw from the posterior (via Cholesky of the covariance). *)

val predict : t -> Linalg.Vec.t -> float * float
(** [predict p g_row] is the predictive mean and standard deviation of
    the performance at a point whose basis-function row is [g_row];
    includes the observation noise [sigma_0^2]. *)
