(** Prior mapping across design stages (paper Sec. IV-A).

    At the post-layout stage every schematic device may be extracted as
    multiple fingers: schematic variable [x_r] becomes [W_r] independent
    late-stage variables [x_{r,1} .. x_{r,W_r}]. Each schematic basis
    function [g_m] therefore maps to a group of [T_m] late-stage basis
    functions, and the early coefficient splits as

    [beta_{E,m,t} = alpha_{E,m} / sqrt(T_m)]   (eq. 49)

    which conserves the contributed performance variance (eq. 45-46)
    under the equal-finger-impact assumption (eq. 47).

    For a product term the group is the cartesian product of the finger
    choices of each variable, so [T_m] is the product of the finger
    counts — the natural generalization of the paper's linear case. *)

type t
(** A finger specification: how many late-stage variables each schematic
    variable expands to. *)

val create : int array -> t
(** [create fingers] with [fingers.(r) >= 1] for every schematic
    variable [r].
    @raise Invalid_argument otherwise. *)

val identity : int -> t
(** No multifinger extraction: every device keeps one finger. *)

val early_dim : t -> int

val late_dim : t -> int
(** Total number of late-stage variables, [sum_r W_r]. *)

val fingers : t -> int -> int
(** Finger count of schematic variable [r]. *)

val late_var : t -> sch:int -> finger:int -> int
(** Index of late-stage variable (r, t); fingers are 0-based.
    @raise Invalid_argument when out of range. *)

val schematic_of_late : t -> int -> int * int
(** Inverse of {!late_var}: (schematic variable, finger). *)

val map_term : t -> Polybasis.Multi_index.t -> Polybasis.Multi_index.t list
(** The late-stage group of one schematic term, in deterministic order;
    the constant maps to itself. *)

val map_model :
  t ->
  early_basis:Polybasis.Basis.t ->
  early_coeffs:Linalg.Vec.t ->
  Polybasis.Basis.t * float option array
(** The late-stage basis (groups concatenated in early-term order) and
    the mapped prior coefficients, every entry [Some (alpha / sqrt T)].
    Feed the result to [Fusion.fit_design] via {!append_missing} if the
    late stage also has parasitic-only terms. *)

val append_missing :
  Polybasis.Basis.t * float option array ->
  Polybasis.Multi_index.t list ->
  Polybasis.Basis.t * float option array
(** Adds late-stage-only basis functions with missing priors
    (Sec. IV-B); positions of existing terms are unchanged. *)
