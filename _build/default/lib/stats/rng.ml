type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gaussian : float;
  mutable has_cached : bool;
}

(* splitmix64: used only to expand seeds into xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = 0.; has_cached = false }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let int64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let float t =
  (* Top 53 bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the low bits to avoid modulo bias. *)
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let v = raw mod n in
    if raw - v > max_int - n then draw () else v
  in
  draw ()

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = 0.; has_cached = false }

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached_gaussian
  end
  else begin
    (* Marsaglia polar method. *)
    let rec draw () =
      let u = (2. *. float t) -. 1. in
      let v = (2. *. float t) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then draw ()
      else begin
        let m = sqrt (-2. *. log s /. s) in
        t.cached_gaussian <- v *. m;
        t.has_cached <- true;
        u *. m
      end
    in
    draw ()
  end

let gaussian_vec t n = Array.init n (fun _ -> gaussian t)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let x = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- x
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
