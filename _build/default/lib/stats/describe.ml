type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
  skewness : float;
  kurtosis_excess : float;
}

let mean = Linalg.Vec.mean

let variance v =
  let n = Array.length v in
  if n < 2 then 0.
  else begin
    let m = mean v in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      v;
    !acc /. float_of_int (n - 1)
  end

let std v = sqrt (variance v)

let quantile v p =
  let n = Array.length v in
  if n = 0 then invalid_arg "Describe.quantile: empty sample";
  if p < 0. || p > 1. then invalid_arg "Describe.quantile: p outside [0, 1]";
  let sorted = Array.copy v in
  Array.sort Float.compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let central_moment v m k =
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. ((x -. m) ** float_of_int k)) v;
  !acc /. float_of_int (Array.length v)

let summarize v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Describe.summarize: empty sample";
  let m = mean v in
  let s = std v in
  let mu2 = central_moment v m 2 in
  let mu3 = central_moment v m 3 in
  let mu4 = central_moment v m 4 in
  let skewness = if mu2 = 0. then 0. else mu3 /. (mu2 ** 1.5) in
  let kurtosis_excess = if mu2 = 0. then 0. else (mu4 /. (mu2 *. mu2)) -. 3. in
  {
    count = n;
    mean = m;
    std = s;
    min = Linalg.Vec.min v;
    max = Linalg.Vec.max v;
    median = quantile v 0.5;
    q1 = quantile v 0.25;
    q3 = quantile v 0.75;
    skewness;
    kurtosis_excess;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.6g std=%.6g min=%.6g q1=%.6g med=%.6g q3=%.6g max=%.6g \
     skew=%.3g exkurt=%.3g"
    s.count s.mean s.std s.min s.q1 s.median s.q3 s.max s.skewness
    s.kurtosis_excess
