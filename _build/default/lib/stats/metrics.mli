(** Model-accuracy metrics. [relative_error] is exactly the paper's
    eq. 59 and is the number reported in Tables I-III and V. *)

val relative_error : predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float
(** [||predicted - actual||_2 / ||actual||_2]. *)

val relative_error_percent :
  predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float
(** {!relative_error} scaled by 100, as printed in the paper's tables. *)

val rmse : predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float

val mae : predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float

val r_squared : predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float
(** Coefficient of determination; can be negative for models worse than
    the mean predictor. *)

val max_abs_error : predicted:Linalg.Vec.t -> actual:Linalg.Vec.t -> float
