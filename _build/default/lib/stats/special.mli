(** Special functions needed by the Gaussian machinery, implemented from
    scratch (no external numerics are available offline). *)

val erf : float -> float
(** Error function, via Abramowitz-Stegun 7.1.26-style rational
    approximation refined with a series/continued-fraction split;
    absolute error below 1e-12 on the real line. *)

val erfc : float -> float
(** Complementary error function, accurate in the tails. *)

val log_gamma : float -> float
(** Natural log of the gamma function (Lanczos approximation), for
    positive arguments. *)

val norm_cdf : float -> float
(** Standard normal CDF. *)

val norm_pdf : float -> float
(** Standard normal density. *)

val norm_ppf : float -> float
(** Inverse of {!norm_cdf} (Acklam's algorithm polished with one Halley
    step); domain (0, 1), returns +-infinity at the endpoints. *)
