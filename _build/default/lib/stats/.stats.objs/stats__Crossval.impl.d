lib/stats/crossval.ml: Array List Rng
