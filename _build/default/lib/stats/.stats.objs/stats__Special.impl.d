lib/stats/special.ml: Array Float
