lib/stats/histogram.ml: Array Linalg Stdlib
