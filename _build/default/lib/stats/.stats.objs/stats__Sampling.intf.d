lib/stats/sampling.mli: Linalg Rng
