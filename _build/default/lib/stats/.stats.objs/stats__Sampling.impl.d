lib/stats/sampling.ml: Array Float Linalg Rng Special Stdlib
