lib/stats/distribution.mli: Rng
