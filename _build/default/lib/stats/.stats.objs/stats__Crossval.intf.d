lib/stats/crossval.mli: Rng
