lib/stats/rng.mli: Linalg
