lib/stats/distribution.ml: Float Rng Special
