lib/stats/describe.mli: Format Linalg
