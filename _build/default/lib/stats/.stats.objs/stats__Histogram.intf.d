lib/stats/histogram.mli: Linalg
