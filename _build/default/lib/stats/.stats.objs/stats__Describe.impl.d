lib/stats/describe.ml: Array Float Format Linalg Stdlib
