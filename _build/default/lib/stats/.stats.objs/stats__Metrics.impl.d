lib/stats/metrics.ml: Array Linalg
