lib/stats/metrics.mli: Linalg
