lib/stats/special.mli:
