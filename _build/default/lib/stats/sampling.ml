type scheme = Monte_carlo | Latin_hypercube | Halton

let monte_carlo rng ~k ~r =
  Linalg.Mat.init k r (fun _ _ -> Rng.gaussian rng)

(* For each column: permute the k strata, then draw uniformly inside each
   stratum and map through the standard-normal quantile. *)
let latin_hypercube rng ~k ~r =
  if k <= 0 then invalid_arg "Sampling.latin_hypercube: k must be positive";
  let m = Linalg.Mat.create k r in
  let kf = float_of_int k in
  for j = 0 to r - 1 do
    let strata = Rng.permutation rng k in
    for i = 0 to k - 1 do
      let u = (float_of_int strata.(i) +. Rng.float rng) /. kf in
      (* Clamp away from 0/1 so the quantile stays finite. *)
      let u = Float.max 1e-12 (Float.min (1. -. 1e-12) u) in
      Linalg.Mat.set m i j (Special.norm_ppf u)
    done
  done;
  m

(* Simple sieve, doubling the bound until enough primes appear. *)
let nth_primes n =
  if n <= 0 then [||]
  else begin
    let rec with_bound bound =
      let sieve = Array.make (bound + 1) true in
      sieve.(0) <- false;
      if bound >= 1 then sieve.(1) <- false;
      let i = ref 2 in
      while !i * !i <= bound do
        if sieve.(!i) then begin
          let j = ref (!i * !i) in
          while !j <= bound do
            sieve.(!j) <- false;
            j := !j + !i
          done
        end;
        incr i
      done;
      let primes = ref [] and count = ref 0 in
      for v = bound downto 2 do
        if sieve.(v) then begin
          primes := v :: !primes;
          incr count
        end
      done;
      if !count >= n then Array.sub (Array.of_list !primes) 0 n
      else with_bound (bound * 2)
    in
    with_bound (Stdlib.max 64 (n * 20))
  end

let radical_inverse ~base index =
  let fb = 1. /. float_of_int base in
  let rec go index f acc =
    if index = 0 then acc
    else
      go (index / base) (f *. fb)
        (acc +. (float_of_int (index mod base) *. f))
  in
  go index fb 0.

let halton rng ~k ~r =
  if k <= 0 then invalid_arg "Sampling.halton: k must be positive";
  let primes = nth_primes r in
  (* random shift per dimension decorrelates repeated draws *)
  let shifts = Array.init r (fun _ -> Rng.float rng) in
  let m = Linalg.Mat.create k r in
  for i = 0 to k - 1 do
    for j = 0 to r - 1 do
      let u = radical_inverse ~base:primes.(j) (i + 1) +. shifts.(j) in
      let u = u -. Float.of_int (int_of_float u) in
      let u = Float.max 1e-12 (Float.min (1. -. 1e-12) u) in
      Linalg.Mat.set m i j (Special.norm_ppf u)
    done
  done;
  m

let draw scheme rng ~k ~r =
  match scheme with
  | Monte_carlo -> monte_carlo rng ~k ~r
  | Latin_hypercube -> latin_hypercube rng ~k ~r
  | Halton -> halton rng ~k ~r

let scheme_name = function
  | Monte_carlo -> "monte-carlo"
  | Latin_hypercube -> "latin-hypercube"
  | Halton -> "halton"
