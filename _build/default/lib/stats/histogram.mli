(** Fixed-width histograms, used to reproduce the sample histograms of
    Figures 4 and 7. *)

type t = {
  lo : float;  (** Left edge of the first bin. *)
  hi : float;  (** Right edge of the last bin. *)
  counts : int array;
  total : int;
  underflow : int;
  overflow : int;
}

val build : ?bins:int -> ?range:float * float -> Linalg.Vec.t -> t
(** [build data] bins the sample into [bins] (default 30) equal-width bins.
    With no explicit [range], the data range is used (widened slightly so
    the maximum lands inside the last bin).
    @raise Invalid_argument on empty data, non-positive [bins], or an
    empty range. *)

val bin_edges : t -> float array
(** The [bins + 1] edges. *)

val bin_centers : t -> float array

val density : t -> float array
(** Counts normalized so the histogram integrates to 1. *)

val mode_bin : t -> int
(** Index of the fullest bin. *)
