type t = {
  lo : float;
  hi : float;
  counts : int array;
  total : int;
  underflow : int;
  overflow : int;
}

let build ?(bins = 30) ?range data =
  if Array.length data = 0 then invalid_arg "Histogram.build: empty data";
  if bins <= 0 then invalid_arg "Histogram.build: bins must be positive";
  let lo, hi =
    match range with
    | Some (lo, hi) ->
        if lo >= hi then invalid_arg "Histogram.build: empty range";
        (lo, hi)
    | None ->
        let lo = Linalg.Vec.min data and hi = Linalg.Vec.max data in
        if lo = hi then (lo -. 0.5, hi +. 0.5)
        else
          (* widen slightly so max falls inside the last bin *)
          let eps = 1e-9 *. (hi -. lo) in
          (lo, hi +. eps)
  in
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      if x < lo then incr underflow
      else if x >= hi then incr overflow
      else begin
        let b = int_of_float ((x -. lo) /. width) in
        let b = Stdlib.min b (bins - 1) in
        counts.(b) <- counts.(b) + 1
      end)
    data;
  {
    lo;
    hi;
    counts;
    total = Array.length data;
    underflow = !underflow;
    overflow = !overflow;
  }

let bins t = Array.length t.counts

let bin_edges t =
  let n = bins t in
  let width = (t.hi -. t.lo) /. float_of_int n in
  Array.init (n + 1) (fun i -> t.lo +. (float_of_int i *. width))

let bin_centers t =
  let n = bins t in
  let width = (t.hi -. t.lo) /. float_of_int n in
  Array.init n (fun i -> t.lo +. ((float_of_int i +. 0.5) *. width))

let density t =
  let n = bins t in
  let width = (t.hi -. t.lo) /. float_of_int n in
  let norm = float_of_int t.total *. width in
  Array.map (fun c -> float_of_int c /. norm) t.counts

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best
