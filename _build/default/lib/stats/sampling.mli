(** Experiment-design sampling of the variation space.

    Each scheme produces a [k] x [r] matrix whose rows are sampling points
    of the [r] standard-normal process variables [x] (paper eq. 1). The
    paper uses plain Monte Carlo; Latin hypercube is provided for the
    sampling-scheme ablation in DESIGN.md Sec. 6. *)

type scheme =
  | Monte_carlo  (** i.i.d. standard-normal rows. *)
  | Latin_hypercube
      (** Stratified: each variable's [k] draws occupy distinct
          equal-probability strata, mapped through the normal quantile. *)
  | Halton
      (** Quasi-random: the Halton sequence (radical inverse in the
          first [r] primes, randomly shifted), mapped through the normal
          quantile. Low-discrepancy in moderate dimension; in very high
          dimension the usual Halton correlations apply — provided for
          the sampling-scheme ablation. *)

val draw : scheme -> Rng.t -> k:int -> r:int -> Linalg.Mat.t
(** [draw scheme rng ~k ~r] is the [k] x [r] sample matrix. *)

val monte_carlo : Rng.t -> k:int -> r:int -> Linalg.Mat.t

val latin_hypercube : Rng.t -> k:int -> r:int -> Linalg.Mat.t

val halton : Rng.t -> k:int -> r:int -> Linalg.Mat.t
(** The [rng] only draws the random (Cranley-Patterson) shift. *)

val nth_primes : int -> int array
(** The first [n] primes (exposed for tests). *)

val scheme_name : scheme -> string
