(** Univariate probability distributions with a uniform interface:
    density, cumulative distribution, quantile, and sampling.

    The paper's priors and likelihoods are all Gaussian; the lognormal and
    uniform cases appear in the circuit substrate (parasitic magnitudes,
    hyper-parameter grids). *)

type t =
  | Gaussian of { mu : float; sigma : float }  (** [sigma > 0]. *)
  | Lognormal of { mu : float; sigma : float }
      (** [exp] of a Gaussian; support (0, inf). *)
  | Uniform of { lo : float; hi : float }  (** [lo < hi]. *)

val gaussian : mu:float -> sigma:float -> t
(** @raise Invalid_argument unless [sigma > 0]. *)

val lognormal : mu:float -> sigma:float -> t

val uniform : lo:float -> hi:float -> t

val standard_normal : t

val pdf : t -> float -> float

val log_pdf : t -> float -> float

val cdf : t -> float -> float

val quantile : t -> float -> float
(** Inverse CDF; argument in (0, 1). *)

val sample : t -> Rng.t -> float

val mean : t -> float

val variance : t -> float

val std : t -> float
