let sqrt_2pi = sqrt (2. *. Float.pi)

let norm_pdf x = exp (-0.5 *. x *. x) /. sqrt_2pi

(* erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1)),
   used for |x| < 2 where it converges quickly and without cancellation
   trouble at double precision. *)
let erf_series x =
  let x2 = x *. x in
  let term = ref x and acc = ref x and n = ref 0 in
  let continue = ref true in
  while !continue do
    incr n;
    let nf = float_of_int !n in
    term := !term *. -.x2 /. nf;
    let contrib = !term /. ((2. *. nf) +. 1.) in
    acc := !acc +. contrib;
    if Float.abs contrib < 1e-17 *. Float.abs !acc || !n > 200 then
      continue := false
  done;
  2. /. sqrt Float.pi *. !acc

(* erfc(x) = Q(1/2, x^2) for x >= 0, where Q is the regularized upper
   incomplete gamma function, evaluated by the modified Lentz continued
   fraction (Numerical Recipes "gcf" scheme). Accurate in the far tail. *)
let erfc_cf x =
  let a = 0.5 and xx = x *. x in
  let fpmin = 1e-300 and eps = 1e-16 in
  let b = ref (xx +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 and converged = ref false in
  while (not !converged) && !i <= 300 do
    let fi = float_of_int !i in
    let an = -.fi *. (fi -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then converged := true;
    incr i
  done;
  (* Q(a, xx) = exp(-xx + a ln xx - lgamma(a)) * h; lgamma(1/2) = ln sqrt(pi),
     so the prefactor reduces to exp(-x^2) * x / sqrt(pi). *)
  exp (-.xx) *. x /. sqrt Float.pi *. !h

let rec erfc x =
  if x < 0. then 2. -. erfc (-.x)
  else if x < 2. then 1. -. erf_series x
  else erfc_cf x

let erf x =
  if Float.abs x < 2. then erf_series x
  else if x > 0. then 1. -. erfc x
  else -1. +. erfc (-.x)

let norm_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* reflection: gamma(x) gamma(1-x) = pi / sin(pi x) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Acklam's rational approximation to the normal quantile, then one step of
   Halley's method to polish to near machine precision. *)
let norm_ppf p =
  if p <= 0. then neg_infinity
  else if p >= 1. then infinity
  else begin
    let a =
      [| -3.969683028665376e+01; 2.209460984245205e+02;
         -2.759285104469687e+02; 1.383577518672690e+02;
         -3.066479806614716e+01; 2.506628277459239e+00 |]
    and b =
      [| -5.447609879822406e+01; 1.615858368580409e+02;
         -1.556989798598866e+02; 6.680131188771972e+01;
         -1.328068155288572e+01 |]
    and c =
      [| -7.784894002430293e-03; -3.223964580411365e-01;
         -2.400758277161838e+00; -2.549732539343734e+00;
         4.374664141464968e+00; 2.938163982698783e+00 |]
    and d =
      [| 7.784695709041462e-03; 3.224671290700398e-01;
         2.445134137142996e+00; 3.754408661907416e+00 |]
    in
    let p_low = 0.02425 in
    let x =
      if p < p_low then begin
        let q = sqrt (-2. *. log p) in
        ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
        /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
      end
      else if p <= 1. -. p_low then begin
        let q = p -. 0.5 in
        let r = q *. q in
        ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
        *. q
        /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
      end
      else begin
        let q = sqrt (-2. *. log (1. -. p)) in
        -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
        /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
      end
    in
    (* One Halley refinement step. *)
    let e = norm_cdf x -. p in
    let u = e *. sqrt_2pi *. exp (x *. x /. 2.) in
    x -. (u /. (1. +. (x *. u /. 2.)))
  end
