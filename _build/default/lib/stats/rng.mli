(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, so a single
    integer seed reproduces every experiment bit-for-bit. [split] derives
    statistically independent child generators — used to give each repeated
    run of an experiment its own stream (DESIGN.md Sec. 7). *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds give
    equal streams. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** Derives a child generator and advances the parent; children obtained
    from successive calls are independent streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]; requires [n > 0]. *)

val gaussian : t -> float
(** Standard normal draw (Marsaglia polar method, cached pair). *)

val gaussian_vec : t -> int -> Linalg.Vec.t
(** Vector of i.i.d. standard normal draws. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** Uniform random permutation of [0 .. n-1]. *)
