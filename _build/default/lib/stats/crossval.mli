(** N-fold cross-validation (paper Sec. IV-D).

    The data set is partitioned into [n] non-overlapping groups; each run
    trains on [n - 1] groups and scores on the held-out one, and the final
    score is the average of the [n] runs. *)

type fold = { train : int array; test : int array }
(** Index sets into the original data set; disjoint, and together they
    cover [0 .. size - 1]. *)

val folds : ?shuffle:Rng.t -> n:int -> size:int -> unit -> fold list
(** [folds ~n ~size ()] partitions [0 .. size - 1] into [n] folds whose
    test groups differ in size by at most one. With [shuffle] the indices
    are permuted first (recommended).
    @raise Invalid_argument unless [2 <= n <= size]. *)

val score :
  ?shuffle:Rng.t ->
  n:int ->
  size:int ->
  (train:int array -> test:int array -> float) ->
  float
(** [score ~n ~size run] averages [run] over the folds. *)

val select :
  ?shuffle:Rng.t ->
  n:int ->
  size:int ->
  candidates:'a list ->
  ('a -> train:int array -> test:int array -> float) ->
  'a * float
(** Evaluates every candidate on the same folds and returns the one with
    the smallest average score (ties keep the earliest candidate).
    @raise Invalid_argument on an empty candidate list. *)
