type t =
  | Gaussian of { mu : float; sigma : float }
  | Lognormal of { mu : float; sigma : float }
  | Uniform of { lo : float; hi : float }

let gaussian ~mu ~sigma =
  if sigma <= 0. then invalid_arg "Distribution.gaussian: sigma must be > 0";
  Gaussian { mu; sigma }

let lognormal ~mu ~sigma =
  if sigma <= 0. then invalid_arg "Distribution.lognormal: sigma must be > 0";
  Lognormal { mu; sigma }

let uniform ~lo ~hi =
  if lo >= hi then invalid_arg "Distribution.uniform: need lo < hi";
  Uniform { lo; hi }

let standard_normal = Gaussian { mu = 0.; sigma = 1. }

let pdf d x =
  match d with
  | Gaussian { mu; sigma } -> Special.norm_pdf ((x -. mu) /. sigma) /. sigma
  | Lognormal { mu; sigma } ->
      if x <= 0. then 0.
      else Special.norm_pdf ((log x -. mu) /. sigma) /. (sigma *. x)
  | Uniform { lo; hi } ->
      if x < lo || x > hi then 0. else 1. /. (hi -. lo)

let log_pdf d x =
  match d with
  | Gaussian { mu; sigma } ->
      let z = (x -. mu) /. sigma in
      (-0.5 *. z *. z) -. log sigma -. (0.5 *. log (2. *. Float.pi))
  | Lognormal _ | Uniform _ ->
      let p = pdf d x in
      if p = 0. then neg_infinity else log p

let cdf d x =
  match d with
  | Gaussian { mu; sigma } -> Special.norm_cdf ((x -. mu) /. sigma)
  | Lognormal { mu; sigma } ->
      if x <= 0. then 0. else Special.norm_cdf ((log x -. mu) /. sigma)
  | Uniform { lo; hi } ->
      if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo)

let quantile d p =
  if p <= 0. || p >= 1. then
    invalid_arg "Distribution.quantile: p must be in (0, 1)";
  match d with
  | Gaussian { mu; sigma } -> mu +. (sigma *. Special.norm_ppf p)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. Special.norm_ppf p))
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))

let sample d rng =
  match d with
  | Gaussian { mu; sigma } -> mu +. (sigma *. Rng.gaussian rng)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. Rng.gaussian rng))
  | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi

let mean = function
  | Gaussian { mu; _ } -> mu
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))
  | Uniform { lo; hi } -> (lo +. hi) /. 2.

let variance = function
  | Gaussian { sigma; _ } -> sigma *. sigma
  | Lognormal { mu; sigma } ->
      let s2 = sigma *. sigma in
      (exp s2 -. 1.) *. exp ((2. *. mu) +. s2)
  | Uniform { lo; hi } ->
      let w = hi -. lo in
      w *. w /. 12.

let std d = sqrt (variance d)
