let relative_error ~predicted ~actual = Linalg.Vec.rel_error predicted actual

let relative_error_percent ~predicted ~actual =
  100. *. relative_error ~predicted ~actual

let rmse ~predicted ~actual =
  let n = Array.length actual in
  if n = 0 then invalid_arg "Metrics.rmse: empty vectors";
  Linalg.Vec.dist2 predicted actual /. sqrt (float_of_int n)

let mae ~predicted ~actual =
  let n = Array.length actual in
  if n = 0 then invalid_arg "Metrics.mae: empty vectors";
  Linalg.Vec.norm1 (Linalg.Vec.sub predicted actual) /. float_of_int n

let r_squared ~predicted ~actual =
  let n = Array.length actual in
  if n = 0 then invalid_arg "Metrics.r_squared: empty vectors";
  let m = Linalg.Vec.mean actual in
  let ss_res = ref 0. and ss_tot = ref 0. in
  for i = 0 to n - 1 do
    let r = actual.(i) -. predicted.(i) in
    let t = actual.(i) -. m in
    ss_res := !ss_res +. (r *. r);
    ss_tot := !ss_tot +. (t *. t)
  done;
  if !ss_tot = 0. then if !ss_res = 0. then 1. else neg_infinity
  else 1. -. (!ss_res /. !ss_tot)

let max_abs_error ~predicted ~actual =
  Linalg.Vec.norm_inf (Linalg.Vec.sub predicted actual)
