type fold = { train : int array; test : int array }

let folds ?shuffle ~n ~size () =
  if n < 2 then invalid_arg "Crossval.folds: need at least 2 folds";
  if n > size then invalid_arg "Crossval.folds: more folds than data points";
  let order =
    match shuffle with
    | Some rng -> Rng.permutation rng size
    | None -> Array.init size (fun i -> i)
  in
  (* Fold f gets indices at positions f, f + n, f + 2n, ... of the order,
     which yields test sizes differing by at most one. *)
  let build f =
    let test = ref [] and train = ref [] in
    for pos = size - 1 downto 0 do
      if pos mod n = f then test := order.(pos) :: !test
      else train := order.(pos) :: !train
    done;
    { train = Array.of_list !train; test = Array.of_list !test }
  in
  List.init n build

let score ?shuffle ~n ~size run =
  let fs = folds ?shuffle ~n ~size () in
  let total =
    List.fold_left
      (fun acc { train; test } -> acc +. run ~train ~test)
      0. fs
  in
  total /. float_of_int n

let select ?shuffle ~n ~size ~candidates run =
  match candidates with
  | [] -> invalid_arg "Crossval.select: no candidates"
  | first :: rest ->
      let fs = folds ?shuffle ~n ~size () in
      let evaluate c =
        let total =
          List.fold_left
            (fun acc { train; test } -> acc +. run c ~train ~test)
            0. fs
        in
        total /. float_of_int n
      in
      let best = ref first and best_score = ref (evaluate first) in
      List.iter
        (fun c ->
          let s = evaluate c in
          if s < !best_score then begin
            best := c;
            best_score := s
          end)
        rest;
      (!best, !best_score)
