(** Descriptive statistics of float samples. *)

type summary = {
  count : int;
  mean : float;
  std : float;  (** Unbiased (n-1) standard deviation. *)
  min : float;
  max : float;
  median : float;
  q1 : float;  (** First quartile. *)
  q3 : float;  (** Third quartile. *)
  skewness : float;
  kurtosis_excess : float;
}

val mean : Linalg.Vec.t -> float

val variance : Linalg.Vec.t -> float
(** Unbiased sample variance; [0.] for fewer than two points. *)

val std : Linalg.Vec.t -> float

val quantile : Linalg.Vec.t -> float -> float
(** Linear-interpolation quantile of an unsorted sample; [p] in [0, 1].
    @raise Invalid_argument on an empty sample or [p] outside [0, 1]. *)

val summarize : Linalg.Vec.t -> summary
(** @raise Invalid_argument on an empty sample. *)

val pp_summary : Format.formatter -> summary -> unit
