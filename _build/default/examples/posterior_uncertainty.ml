(* Beyond the MAP point estimate: the full Gaussian posterior of
   eq. 28-29 gives calibrated uncertainty on every coefficient and on
   every prediction — which is what makes the fused model trustworthy
   when only a handful of late-stage samples exist.

   Run with: dune exec examples/posterior_uncertainty.exe *)

let () =
  let rng = Stats.Rng.create 31415 in
  let r = 40 and k = 25 in
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in
  let truth =
    Array.init m (fun i -> if i = 0 then 2.0 else 1.0 /. float_of_int (i * i))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.2 *. Stats.Rng.gaussian rng))))
      truth
  in
  let sigma_noise = 0.05 in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (sigma_noise *. Stats.Rng.gaussian rng))
  in

  let prior = Bmf.Prior.nonzero_mean early in
  let hyper, _ = Bmf.Hyper.select ~rng ~g ~f ~prior () in
  let post =
    Bmf.Posterior.compute ~sigma0_sq:(sigma_noise *. sigma_noise) ~g ~f ~prior
      ~hyper ()
  in
  Printf.printf "posterior over %d coefficients from %d samples (hyper %.3g)\n\n"
    m k hyper;

  (* credible intervals vs truth for the first few coefficients *)
  print_endline "coefficient   truth     MAP       95% credible interval";
  let inside = ref 0 in
  for i = 0 to m - 1 do
    let lo, hi = Bmf.Posterior.credible_interval post ~index:i ~level:0.95 in
    if truth.(i) >= lo && truth.(i) <= hi then incr inside;
    if i < 8 then
      Printf.printf "  alpha_%-5d %+.4f   %+.4f   [%+.4f, %+.4f]%s\n" i
        truth.(i) post.mean.(i) lo hi
        (if truth.(i) >= lo && truth.(i) <= hi then "" else "  <- outside")
  done;
  Printf.printf "\n95%% intervals containing the truth: %d / %d (%.1f%%)\n\n"
    !inside m
    (100. *. float_of_int !inside /. float_of_int m);

  (* predictive uncertainty at fresh points, checked for calibration *)
  let n_test = 2000 in
  let covered = ref 0 in
  let z95 = Stats.Special.norm_ppf 0.975 in
  for _ = 1 to n_test do
    let x = Stats.Rng.gaussian_vec rng r in
    let row = Polybasis.Basis.eval_row basis x in
    let mean, std = Bmf.Posterior.predict post row in
    let actual =
      Linalg.Vec.dot row truth +. (sigma_noise *. Stats.Rng.gaussian rng)
    in
    if Float.abs (actual -. mean) <= z95 *. std then incr covered
  done;
  Printf.printf
    "predictive 95%% intervals covering fresh simulations: %.1f%% of %d\n"
    (100. *. float_of_int !covered /. float_of_int n_test)
    n_test;

  (* posterior samples give an ensemble of plausible models *)
  let draws = List.init 5 (fun _ -> Bmf.Posterior.sample rng post) in
  print_endline "\nfive posterior draws of alpha_1 (truth, then draws):";
  Printf.printf "  %.4f |" truth.(1);
  List.iter (fun d -> Printf.printf " %.4f" d.(1)) draws;
  print_newline ()
