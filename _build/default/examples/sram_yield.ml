(* Applications of a fitted performance model (paper Sec. I / II-A):
   parametric yield estimation and worst-case corner extraction for the
   SRAM read path.

   A BMF-fitted read-delay model replaces the 349 s/sample transistor-
   level simulation with a microsecond evaluation, so yield can be
   estimated from 10^5 model evaluations, and the worst-case corner is
   read directly off the model gradient.

   Run with: dune exec examples/sram_yield.exe *)

let () =
  let sram = Circuit.Sram.create 21 in
  let tb = Circuit.Sram.testbench sram in
  let metric = Circuit.Sram.read_delay_index in
  let rng = Stats.Rng.create 2121 in

  (* early-stage model + prior mapping *)
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:3000 ()
  in
  let eb = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix eb xs_e in
  let early_coeffs =
    (Regression.Omp.fit_design ~rng ~g:g_e ~f:f_e
       (Regression.Omp.Cross_validation { folds = 4; max_terms = 700 }))
      .coeffs
  in
  let late_basis, early =
    Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs
  in

  (* post-layout fusion from 100 expensive samples *)
  let xs_l, f_l =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let model, fitted =
    Bmf.Fusion.fit ~rng ~early ~basis:late_basis ~xs:xs_l ~f:f_l
      Bmf.Fusion.Bmf_ps
  in
  Printf.printf "read-delay model fused from 100 samples (%s, hyper %.3g)\n"
    (Bmf.Prior.kind_name fitted.prior_kind)
    fitted.hyper;
  let sim_hours =
    Circuit.Testbench.simulation_hours tb ~stage:Circuit.Stage.Layout
      ~samples:100
  in
  Printf.printf "simulation budget spent: %.1f hours (at 349 s/sample)\n\n"
    sim_hours;

  (* --- application 1: parametric yield --- *)
  let n_mc = 100_000 in
  let r = Polybasis.Basis.dim late_basis in
  (* analytic moments come straight off the orthonormal coefficients *)
  let mu = Apps.Moments.mean model and sd = Apps.Moments.std model in
  Printf.printf "analytic model moments: mean %.2f ps, std %.2f ps\n" mu sd;
  let spec_ps = mu +. (3. *. sd) in
  let spec = Apps.Yield.At_most spec_ps in
  let est = Apps.Yield.estimate ~samples:n_mc ~rng ~spec model in
  let yield = est.Apps.Yield.yield in
  Printf.printf "application 1: parametric yield vs spec %.2f ps\n" spec_ps;
  Printf.printf
    "  model-based yield from %d Monte Carlo points: %.4f%% (95%% CI \
     [%.4f%%, %.4f%%])\n"
    n_mc (100. *. yield)
    (100. *. fst est.Apps.Yield.ci95)
    (100. *. snd est.Apps.Yield.ci95);
  Printf.printf "  Gaussian closed form: %.4f%%\n"
    (100. *. Apps.Yield.gaussian_approximation ~spec model);
  Printf.printf
    "  (the same estimate by transistor-level simulation would cost %.0f \
     days)\n\n"
    (Circuit.Testbench.simulation_hours tb ~stage:Circuit.Stage.Layout
       ~samples:n_mc
    /. 24.);

  (* validate the tail prediction against the "simulator" on a smaller set *)
  let n_check = 3000 in
  let sim_failures = ref 0 in
  let noise = Stats.Rng.split rng in
  for _ = 1 to n_check do
    let x = Stats.Rng.gaussian_vec rng r in
    let d =
      tb.Circuit.Testbench.simulate ~stage:Circuit.Stage.Layout ~metric
        ~noise:(Some noise) x
    in
    if d > spec_ps then incr sim_failures
  done;
  Printf.printf
    "  cross-check on %d simulated points: %.4f%% yield (model said %.4f%%)\n\n"
    n_check
    (100. *. (1. -. (float_of_int !sim_failures /. float_of_int n_check)))
    (100. *. yield);

  (* --- application 2: worst-case corner extraction --- *)
  let result = Apps.Corner.linear ~beta:3. Apps.Corner.Maximize model in
  let sim_corner =
    tb.Circuit.Testbench.simulate ~stage:Circuit.Stage.Layout ~metric
      ~noise:None result.Apps.Corner.corner
  in
  Printf.printf "application 2: worst-case corner (3-sigma sphere)\n";
  Printf.printf "  model-predicted corner delay: %.2f ps\n"
    result.Apps.Corner.value;
  Printf.printf "  simulated delay at that corner: %.2f ps\n" sim_corner;
  let top =
    List.filteri (fun i _ -> i < 5)
      (List.sort
         (fun (_, a) (_, b) -> Float.compare (Float.abs b) (Float.abs a))
         (Array.to_list
            (Array.mapi (fun v d -> (v, d)) result.Apps.Corner.corner)))
  in
  print_endline "  largest corner components (variable, sigma):";
  List.iter (fun (v, d) -> Printf.printf "    x%-6d %+.3f\n" v d) top;
  (* variance attribution: which variables drive the spread? *)
  let shares = Apps.Moments.variance_share_by_variable model in
  print_endline "  top variance contributors:";
  Array.iteri
    (fun i (v, s) ->
      if i < 5 then Printf.printf "    x%-6d %5.2f%%\n" v (100. *. s))
    shares
