examples/nonlinear_modeling.mli:
