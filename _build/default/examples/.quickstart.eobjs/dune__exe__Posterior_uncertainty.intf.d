examples/posterior_uncertainty.mli:
