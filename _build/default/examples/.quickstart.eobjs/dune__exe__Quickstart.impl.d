examples/quickstart.ml: Array Bmf Linalg Polybasis Printf Regression Stats
