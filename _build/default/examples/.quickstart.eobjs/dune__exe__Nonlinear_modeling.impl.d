examples/nonlinear_modeling.ml: Apps Array Bmf Linalg List Polybasis Printf Regression Stats
