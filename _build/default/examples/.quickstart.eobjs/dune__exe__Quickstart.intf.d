examples/quickstart.mli:
