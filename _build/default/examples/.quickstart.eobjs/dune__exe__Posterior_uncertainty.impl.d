examples/posterior_uncertainty.ml: Array Bmf Float Linalg List Polybasis Printf Stats
