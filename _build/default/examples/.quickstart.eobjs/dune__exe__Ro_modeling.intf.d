examples/ro_modeling.mli:
