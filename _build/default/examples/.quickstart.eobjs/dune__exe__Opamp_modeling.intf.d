examples/opamp_modeling.mli:
