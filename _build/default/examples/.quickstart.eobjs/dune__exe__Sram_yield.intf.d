examples/sram_yield.mli:
