examples/three_stage.ml: Array Bmf Circuit Linalg Polybasis Printf Regression Stats
