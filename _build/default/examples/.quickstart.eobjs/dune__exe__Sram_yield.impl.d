examples/sram_yield.ml: Apps Array Bmf Circuit Float List Polybasis Printf Regression Stats
