examples/ro_modeling.ml: Array Bmf Circuit Format Linalg List Polybasis Printf Regression Stats
