examples/opamp_modeling.ml: Array Bmf Circuit Float Linalg List Polybasis Printf Regression Stats
