examples/three_stage.mli:
