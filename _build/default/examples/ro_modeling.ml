(* The paper's full ring-oscillator workflow (Sec. V-A):

   1. run "cheap" schematic Monte Carlo and fit the early-stage model;
   2. map its coefficients through the multifinger prior mapping and add
      missing priors for the layout parasitics;
   3. fit the post-layout model from only 100 "expensive" samples with
      BMF-PS, against an OMP baseline;
   4. report errors and where the model says the variance comes from.

   Run with: dune exec examples/ro_modeling.exe *)

let () =
  let ro = Circuit.Ring_oscillator.create 7 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let rng = Stats.Rng.create 77 in
  Printf.printf "circuit: %s (%d schematic vars -> %d post-layout vars)\n"
    tb.Circuit.Testbench.name tb.schematic_dim tb.layout_dim;

  (* --- stage 1: schematic --- *)
  let k_early = 3000 in
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:k_early ()
  in
  let early_basis = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix early_basis xs_e in
  let early_fit =
    Regression.Omp.fit_design ~rng ~g:g_e ~f:f_e
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 400 })
  in
  Printf.printf
    "early model: OMP kept %d of %d basis functions from %d schematic samples\n"
    early_fit.iterations
    (Polybasis.Basis.size early_basis)
    k_early;

  (* --- stage 2: prior mapping (Sec. IV-A/IV-B) --- *)
  let late_basis, early =
    Circuit.Testbench.layout_basis_with_prior tb
      ~early_coeffs:early_fit.coeffs
  in
  let missing =
    Array.fold_left
      (fun acc e -> if e = None then acc + 1 else acc)
      0 early
  in
  Printf.printf
    "late basis: %d functions (%d with mapped priors, %d missing — layout \
     parasitics)\n"
    (Polybasis.Basis.size late_basis)
    (Array.length early - missing)
    missing;

  (* --- stage 3: post-layout fusion with K = 100 --- *)
  let k_late = 100 in
  let xs_l, f_l =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:k_late ()
  in
  let model, fitted =
    Bmf.Fusion.fit ~rng ~early ~basis:late_basis ~xs:xs_l ~f:f_l
      Bmf.Fusion.Bmf_ps
  in
  Printf.printf "BMF-PS selected %s (hyper %.3g, cv error %.3f%%)\n"
    (Bmf.Prior.kind_name fitted.prior_kind)
    fitted.hyper
    (100. *. fitted.cv_error);

  (* --- stage 4: evaluation --- *)
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:300 ()
  in
  let bmf_err =
    100. *. Regression.Model.relative_test_error model ~xs:xs_t ~f:f_t
  in
  let g_l = Polybasis.Basis.design_matrix late_basis xs_l in
  let omp =
    Regression.Omp.fit_design ~rng ~g:g_l ~f:f_l
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 40 })
  in
  let g_t = Polybasis.Basis.design_matrix late_basis xs_t in
  let omp_err =
    100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t omp.coeffs) f_t
  in
  Printf.printf
    "post-layout frequency model from %d samples: BMF-PS %.4f%%  OMP %.4f%%\n"
    k_late bmf_err omp_err;
  Printf.printf
    "(paper headline: BMF at 100 samples matches OMP at ~900 — a ~9x \
     simulation-cost saving)\n\n";

  (* where does the model say the variability comes from? *)
  print_endline "dominant post-layout coefficients:";
  List.iter
    (fun (idx, value) ->
      let term = Polybasis.Basis.term late_basis idx in
      let name = Format.asprintf "%a" Polybasis.Multi_index.pp term in
      Printf.printf "  %-14s %+.5f GHz/sigma\n" name value)
    (List.filter
       (fun (idx, _) -> idx > 0)
       (Regression.Model.dominant_terms ~count:9 model))
