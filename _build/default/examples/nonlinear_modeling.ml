(* Nonlinear performance modeling (paper Sec. V, closing remark):
   "the proposed BMF framework is not limited to linear performance
   modeling. BMF can be applied to orthonormal basis functions where
   high-order basis functions are included."

   We build a synthetic performance with genuine second-order content —
   think of a bias current whose sensitivity to threshold mismatch is
   quadratic around the operating point — and fit it with a
   diagonal-quadratic Hermite basis (1, x_i, (x_i^2 - 1)/sqrt 2), fusing
   an early-stage model as usual.

   Run with: dune exec examples/nonlinear_modeling.exe *)

let () =
  let rng = Stats.Rng.create 606 in
  let r = 80 in
  let basis = Polybasis.Basis.quadratic_diagonal r in
  let m = Polybasis.Basis.size basis in
  Printf.printf "quadratic basis over %d variables: %d functions\n" r m;

  (* ground truth with linear terms and a decaying quadratic tail *)
  let truth =
    Array.init m (fun i ->
        if i = 0 then 3.
        else if i <= r then 0.8 /. float_of_int i (* linear block *)
        else 0.3 /. float_of_int (i - r) (* quadratic block *))
  in
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.12 *. Stats.Rng.gaussian rng))))
      truth
  in

  let sample k =
    let xs = Stats.Sampling.monte_carlo rng ~k ~r in
    let g = Polybasis.Basis.design_matrix basis xs in
    let f =
      Array.init k (fun i ->
          Linalg.Vec.dot (Linalg.Mat.row g i) truth
          +. (0.01 *. Stats.Rng.gaussian rng))
    in
    (xs, g, f)
  in

  (* few late samples: K = 70 << M = 161 *)
  let _, g, f = sample 70 in
  let _, g_t, f_t = sample 500 in
  let eval coeffs =
    100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t
  in

  let ps = Bmf.Fusion.fit_design ~rng ~early ~g ~f Bmf.Fusion.Bmf_ps in
  let omp =
    Regression.Omp.fit_design ~rng ~g ~f
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 25 })
  in
  Printf.printf
    "test error with 70 samples: BMF-PS %.3f%% (%s)   OMP %.3f%%\n"
    (eval ps.coeffs)
    (Bmf.Prior.kind_name ps.prior_kind)
    (eval omp.coeffs);

  (* a purely linear fit cannot explain the quadratic content: its error
     floors at the quadratic variance share *)
  let lin_basis = Polybasis.Basis.linear r in
  let g_lin = Linalg.Mat.init 70 (r + 1) (fun i j -> Linalg.Mat.get g i j) in
  let lin_early = Array.sub early 0 (r + 1) in
  let lin = Bmf.Fusion.fit_design ~rng ~early:lin_early ~g:g_lin ~f Bmf.Fusion.Bmf_ps in
  let g_t_lin = Linalg.Mat.init 500 (r + 1) (fun i j -> Linalg.Mat.get g_t i j) in
  Printf.printf "linear-basis BMF on the same data: %.3f%% (misses the \
                 quadratic variance)\n"
    (100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t_lin lin.coeffs) f_t);
  ignore lin_basis;

  (* where the variance lives, split by term order *)
  let model = Regression.Model.create basis ps.coeffs in
  let quad_share =
    List.fold_left
      (fun acc (term, c) ->
        if Polybasis.Multi_index.total_degree term = 2 then acc +. c else acc)
      0.
      (Apps.Moments.term_contributions model)
    /. Apps.Moments.variance model
  in
  Printf.printf "fitted model attributes %.1f%% of the variance to \
                 second-order terms\n"
    (100. *. quad_share)
