(* Fusing across the whole design flow.

   The paper's introduction names three core stages — schematic design,
   layout design, and chip manufacturing/testing — and BMF's premise is
   that each stage's model is the natural prior for the next. This
   example runs the full chain on the ring oscillator:

     schematic (3000 cheap simulations)
       -> post-layout (100 expensive simulations, BMF)
         -> silicon    (25 measured dies, BMF again)

   "Silicon" is simulated as the post-layout behavior under a small
   systematic process shift plus measurement noise — the situation a
   product team faces at first silicon. The payoff: a silicon-accurate
   model from 25 measurements, versus the hundreds a from-scratch fit
   would need.

   Run with: dune exec examples/three_stage.exe *)

let () =
  let ro = Circuit.Ring_oscillator.create 99 in
  let tb = Circuit.Ring_oscillator.testbench ro in
  let metric = Circuit.Ring_oscillator.frequency_index in
  let rng = Stats.Rng.create 999 in

  (* silicon = post-layout with a die-level systematic shift and
     measurement noise *)
  let silicon_shift = 0.97 in
  let meas_noise = 0.004 in
  let measure_silicon noise_rng x =
    let f =
      tb.Circuit.Testbench.simulate ~stage:Circuit.Stage.Layout ~metric
        ~noise:None x
    in
    (f *. silicon_shift) +. (meas_noise *. f *. Stats.Rng.gaussian noise_rng)
  in

  (* stage 1: schematic model *)
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:3000 ()
  in
  let eb = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix eb xs_e in
  let early_coeffs =
    (Regression.Omp.fit_design ~rng ~g:g_e ~f:f_e
       (Regression.Omp.Cross_validation { folds = 4; max_terms = 400 }))
      .coeffs
  in
  let late_basis, early =
    Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs
  in
  let r = Polybasis.Basis.dim late_basis in

  (* stage 2 data: 100 post-layout simulations *)
  let xs_l, f_l =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric ~rng
      ~k:100 ()
  in
  let g_l = Polybasis.Basis.design_matrix late_basis xs_l in

  (* stage 3 data: 25 measured dies *)
  let k_si = 25 in
  let noise_rng = Stats.Rng.split rng in
  let xs_s = Stats.Sampling.monte_carlo rng ~k:k_si ~r in
  let g_s = Polybasis.Basis.design_matrix late_basis xs_s in
  let f_s =
    Array.init k_si (fun i -> measure_silicon noise_rng (Linalg.Mat.row xs_s i))
  in

  (* fuse down the chain *)
  let fits =
    Bmf.Fusion.chain ~rng ~early [ (g_l, f_l); (g_s, f_s) ] Bmf.Fusion.Bmf_ps
  in
  let layout_fit, silicon_fit =
    match fits with [ a; b ] -> (a, b) | _ -> assert false
  in
  Printf.printf "stage 2 (post-layout, 100 sims): %s, cv %.3f%%\n"
    (Bmf.Prior.kind_name layout_fit.prior_kind)
    (100. *. layout_fit.cv_error);
  Printf.printf "stage 3 (silicon, %d dies):      %s, cv %.3f%%\n" k_si
    (Bmf.Prior.kind_name silicon_fit.prior_kind)
    (100. *. silicon_fit.cv_error);

  (* evaluate all candidates against fresh silicon measurements *)
  let n_test = 300 in
  let xs_t = Stats.Sampling.monte_carlo rng ~k:n_test ~r in
  let g_t = Polybasis.Basis.design_matrix late_basis xs_t in
  let f_t =
    Array.init n_test (fun i ->
        measure_silicon noise_rng (Linalg.Mat.row xs_t i))
  in
  let err c = 100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t c) f_t in

  let omp_scratch =
    Regression.Omp.fit_design ~rng ~g:g_s ~f:f_s
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 10 })
  in
  Printf.printf "\nsilicon test error (%d fresh dies):\n" n_test;
  Printf.printf "  stage-2 model, no silicon data:   %.3f%% (stale: misses \
                 the die shift)\n"
    (err layout_fit.coeffs);
  Printf.printf "  OMP from the %d dies alone:       %.3f%%\n" k_si
    (err omp_scratch.coeffs);
  Printf.printf "  chained BMF (all three stages):   %.3f%%\n"
    (err silicon_fit.coeffs)
