(* Targeting a new circuit with the same machinery.

   The paper evaluates a ring oscillator and an SRAM read path; this
   example drives the third built-in benchmark — a two-stage Miller
   op-amp — through the identical two-stage flow, for its input offset
   voltage. The offset is the paper's own prior-mapping illustration
   (Sec. IV-A, eq. 36-37): at the schematic level it is a linear
   function of the input pair's threshold variables; post-layout each
   input device is extracted as two fingers, and the schematic
   coefficients split as alpha / sqrt 2 onto the finger variables.

   Run with: dune exec examples/opamp_modeling.exe *)

let () =
  let amp = Circuit.Amplifier.create 11 in
  let tb = Circuit.Amplifier.testbench amp in
  let rng = Stats.Rng.create 1111 in
  Printf.printf "circuit: %s (%d -> %d variables)\n" tb.Circuit.Testbench.name
    tb.schematic_dim tb.layout_dim;

  List.iter
    (fun (name, metric) ->
      (* early stage *)
      let xs_e, f_e =
        Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic
          ~metric ~rng ~k:1500 ()
      in
      let eb = Circuit.Testbench.schematic_basis tb in
      let g_e = Polybasis.Basis.design_matrix eb xs_e in
      let early_coeffs = Regression.Least_squares.fit_design ~g:g_e ~f:f_e in
      let lb, early =
        Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs
      in
      (* late stage with only 60 samples *)
      let xs, f =
        Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
          ~rng ~k:60 ()
      in
      let g = Polybasis.Basis.design_matrix lb xs in
      let ps = Bmf.Fusion.fit_design ~rng ~early ~g ~f Bmf.Fusion.Bmf_ps in
      let omp =
        Regression.Omp.fit_design ~rng ~g ~f
          (Regression.Omp.Cross_validation { folds = 4; max_terms = 24 })
      in
      let xs_t, f_t =
        Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout ~metric
          ~rng ~k:300 ()
      in
      let g_t = Polybasis.Basis.design_matrix lb xs_t in
      let err c = 100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t c) f_t in
      Printf.printf "%-10s (60 post-layout samples): BMF-PS %.3f%% (%s)  OMP \
                     %.3f%%\n"
        name (err ps.coeffs)
        (Bmf.Prior.kind_name ps.prior_kind)
        (err omp.coeffs))
    [
      ("gain", Circuit.Amplifier.gain_index);
      ("bandwidth", Circuit.Amplifier.bandwidth_index);
      ("offset", Circuit.Amplifier.offset_index);
    ];

  (* show the eq. 36/37 structure explicitly for the offset *)
  let metric = Circuit.Amplifier.offset_index in
  let xs_e, f_e =
    Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Schematic ~metric
      ~rng ~k:1500 ()
  in
  let eb = Circuit.Testbench.schematic_basis tb in
  let g_e = Polybasis.Basis.design_matrix eb xs_e in
  let early_coeffs = Regression.Least_squares.fit_design ~g:g_e ~f:f_e in
  let _, early = Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs in
  (* the dominant schematic coefficient and its two mapped fingers *)
  let dominant = ref 1 in
  Array.iteri
    (fun i c ->
      if i > 0 && Float.abs c > Float.abs early_coeffs.(!dominant) then
        dominant := i)
    early_coeffs;
  let sch_var = !dominant - 1 in
  let mapped_positions =
    [
      Bmf.Prior_mapping.late_var tb.mapping ~sch:sch_var ~finger:0;
      Bmf.Prior_mapping.late_var tb.mapping ~sch:sch_var ~finger:1;
    ]
  in
  Printf.printf
    "\nprior mapping (eq. 36-37): schematic x%d coefficient %+.4f mV splits \
     into\n"
    sch_var
    early_coeffs.(!dominant);
  List.iter
    (fun lv ->
      match early.(lv + 1) with
      | Some b -> Printf.printf "  finger variable x%d: prior mean %+.4f mV\n" lv b
      | None -> ())
    mapped_positions;
  Printf.printf "  (each = alpha / sqrt 2 = %+.4f)\n"
    (early_coeffs.(!dominant) /. sqrt 2.)
