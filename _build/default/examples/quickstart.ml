(* Quickstart: Bayesian model fusion in ~60 lines.

   We fabricate a "circuit" whose late-stage performance is a sparse
   linear function of 500 process variables, pretend we already fitted an
   early-stage model (a perturbed version of the truth), and fuse it with
   only 60 late-stage samples. Run with:

     dune exec examples/quickstart.exe *)

let () =
  let rng = Stats.Rng.create 2013 in
  let r = 500 in
  (* number of process variables (eq. 1) *)
  let basis = Polybasis.Basis.linear r in
  let m = Polybasis.Basis.size basis in

  (* Ground-truth late-stage coefficients: a few dominant terms and a
     decaying tail — the structure BMF exploits. *)
  let truth =
    Array.init m (fun i ->
        if i = 0 then 4.0
        else if i <= 25 then 1.5 /. float_of_int i
        else 0.02 /. (1. +. (float_of_int i /. 100.)))
  in

  (* Early-stage model: the truth seen through a noisy lens (the
     schematic-level fit from cheap early simulations). *)
  let early =
    Array.map
      (fun c -> Some (c *. (1. +. (0.15 *. Stats.Rng.gaussian rng))))
      truth
  in

  (* Very few late-stage samples: K = 60 << M = 501. *)
  let k = 60 in
  let xs = Stats.Sampling.monte_carlo rng ~k ~r in
  let g = Polybasis.Basis.design_matrix basis xs in
  let f =
    Array.init k (fun i ->
        Linalg.Vec.dot (Linalg.Mat.row g i) truth
        +. (0.01 *. Stats.Rng.gaussian rng))
  in

  (* Fuse: Algorithm 1 with prior selection. *)
  let model, fitted =
    Bmf.Fusion.fit ~rng ~early ~basis ~xs ~f Bmf.Fusion.Bmf_ps
  in
  Printf.printf "BMF selected %s with hyper-parameter %.3g\n"
    (Bmf.Prior.kind_name fitted.prior_kind)
    fitted.hyper;

  (* Evaluate on independent test samples against the truth. *)
  let kt = 500 in
  let xs_t = Stats.Sampling.monte_carlo rng ~k:kt ~r in
  let g_t = Polybasis.Basis.design_matrix basis xs_t in
  let actual = Linalg.Mat.gemv g_t truth in
  let bmf_err =
    Stats.Metrics.relative_error_percent
      ~predicted:(Regression.Model.predict_many model xs_t)
      ~actual
  in
  (* Baseline: OMP on the same 60 late samples, no early knowledge. *)
  let omp =
    Regression.Omp.fit_design ~rng ~g ~f
      (Regression.Omp.Cross_validation { folds = 4; max_terms = 20 })
  in
  let omp_err =
    Stats.Metrics.relative_error_percent
      ~predicted:(Linalg.Mat.gemv g_t omp.coeffs)
      ~actual
  in
  Printf.printf "test error with %d late samples:  BMF-PS %.3f%%   OMP %.3f%%\n"
    k bmf_err omp_err;
  Printf.printf "(early knowledge is worth a %.1fx error reduction here)\n"
    (omp_err /. bmf_err)
