(* Command-line driver: regenerate any table or figure of the paper, run
   the ablation studies, or inspect the benchmark circuits.

     repro table 1..6     a paper table
     repro fig 1..8       a paper figure
     repro all            everything, in paper order
     repro ablation NAME  prior-quality | sampling | missing-prior |
                          early-fit | solver | all
     repro info           circuit and configuration summary *)

open Cmdliner

let scale_conv =
  let parse = function
    | "quick" -> Ok Experiments.Config.quick
    | "default" -> Ok Experiments.Config.default
    | "paper" -> Ok Experiments.Config.paper
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  Arg.conv (parse, fun fmt _ -> Format.fprintf fmt "<scale>")

let scale_arg =
  Arg.(
    value
    & opt scale_conv Experiments.Config.default
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Problem scale: $(b,quick), $(b,default) or $(b,paper).")

let repeats_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "repeats" ] ~docv:"N" ~doc:"Override the number of repeated runs.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Override the master seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print progress to stderr.")

let build_config scale repeats seed =
  let cfg = match repeats with
    | Some r -> Experiments.Config.with_repeats scale r
    | None -> scale
  in
  match seed with
  | Some s -> Experiments.Config.with_seed cfg s
  | None -> cfg

let progress_of verbose =
  if verbose then fun msg -> Printf.eprintf "  .. %s\n%!" msg
  else fun (_ : string) -> ()

let common =
  Term.(const build_config $ scale_arg $ repeats_arg $ seed_arg)

let table_num =
  Arg.(
    required
    & pos 0 (some int) None
    & info [] ~docv:"N" ~doc:"Table number, 1-6.")

let csv_arg =
  Arg.(
    value & flag
    & info [ "csv" ]
        ~doc:
          "Print machine-readable CSV instead of the formatted table \
           (accuracy tables 1, 2, 3 and 5 only).")

let run_table cfg verbose csv n =
  let progress = progress_of verbose in
  if csv then begin
    let acc =
      match n with
      | 1 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.power_index
      | 2 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.phase_noise_index
      | 3 ->
          Experiments.Tables.ro_accuracy ~progress cfg
            ~metric:Circuit.Ring_oscillator.frequency_index
      | 5 -> Experiments.Tables.sram_accuracy ~progress cfg
      | _ ->
          prerr_endline "--csv supports accuracy tables 1, 2, 3 and 5";
          exit 2
    in
    print_string (Experiments.Report.accuracy_csv acc)
  end
  else begin
    let render =
      match n with
      | 1 -> Experiments.Tables.table1 ~progress
      | 2 -> Experiments.Tables.table2 ~progress
      | 3 -> Experiments.Tables.table3 ~progress
      | 4 -> Experiments.Tables.table4 ~progress
      | 5 -> Experiments.Tables.table5 ~progress
      | 6 -> Experiments.Tables.table6 ~progress
      | _ ->
          prerr_endline "table number must be 1-6";
          exit 2
    in
    print_string (render cfg)
  end

let table_cmd =
  let doc = "Regenerate one of the paper's tables (I-VI)." in
  Cmd.v
    (Cmd.info "table" ~doc)
    Term.(const run_table $ common $ verbose_arg $ csv_arg $ table_num)

let fig_num =
  Arg.(
    required
    & pos 0 (some int) None
    & info [] ~docv:"N" ~doc:"Figure number, 1-8.")

let run_fig cfg _verbose n =
  let render =
    match n with
    | 1 -> fun _ -> Experiments.Figures.fig1 ()
    | 2 -> fun _ -> Experiments.Figures.fig2 ()
    | 3 -> Experiments.Figures.fig3
    | 4 -> Experiments.Figures.fig4 ?samples:None
    | 5 -> Experiments.Figures.fig5 ?with_direct:None
    | 6 -> Experiments.Figures.fig6
    | 7 -> Experiments.Figures.fig7 ?samples:None
    | 8 -> Experiments.Figures.fig8
    | _ ->
        prerr_endline "figure number must be 1-8";
        exit 2
  in
  print_string (render cfg)

let fig_cmd =
  let doc = "Regenerate one of the paper's figures (1-8)." in
  Cmd.v (Cmd.info "fig" ~doc) Term.(const run_fig $ common $ verbose_arg $ fig_num)

let run_all cfg verbose =
  let progress = progress_of verbose in
  let banner title =
    Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title
      (String.make 72 '=')
  in
  banner "Figures 1-4";
  print_string (Experiments.Figures.fig1 ());
  print_string (Experiments.Figures.fig2 ());
  print_string (Experiments.Figures.fig3 cfg);
  print_string (Experiments.Figures.fig4 cfg);
  banner "Tables I-IV (ring oscillator)";
  print_string (Experiments.Tables.table1 ~progress cfg);
  print_string (Experiments.Tables.table2 ~progress cfg);
  print_string (Experiments.Tables.table3 ~progress cfg);
  print_string (Experiments.Figures.fig5 cfg);
  print_string (Experiments.Tables.table4 ~progress cfg);
  banner "Figures 6-8 and Tables V-VI (SRAM read path)";
  print_string (Experiments.Figures.fig6 cfg);
  print_string (Experiments.Figures.fig7 cfg);
  print_string (Experiments.Tables.table5 ~progress cfg);
  print_string (Experiments.Figures.fig8 cfg);
  print_string (Experiments.Tables.table6 ~progress cfg)

let all_cmd =
  let doc = "Regenerate every table and figure, in paper order." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run_all $ common $ verbose_arg)

let ablation_name =
  Arg.(
    value
    & pos 0 string "all"
    & info [] ~docv:"NAME"
        ~doc:
          "prior-quality | sampling | missing-prior | early-fit | \
           nonlinear | baselines | hyper-selection | solver | all")

let run_ablation cfg verbose name =
  let progress = progress_of verbose in
  let render =
    match name with
    | "prior-quality" -> Experiments.Ablation.prior_quality ~progress
    | "sampling" -> Experiments.Ablation.sampling_scheme ~progress
    | "missing-prior" -> Experiments.Ablation.missing_prior ~progress
    | "early-fit" -> Experiments.Ablation.early_fit ~progress
    | "nonlinear" -> Experiments.Ablation.nonlinear_basis ~progress
    | "baselines" -> Experiments.Ablation.baselines ~progress
    | "hyper-selection" -> Experiments.Ablation.hyper_selection ~progress
    | "solver" -> Experiments.Ablation.solver_exactness ~progress
    | "all" -> Experiments.Ablation.all ~progress
    | s ->
        Printf.eprintf "unknown ablation %S\n" s;
        exit 2
  in
  print_string (render cfg)

let ablation_cmd =
  let doc = "Run an ablation study (DESIGN.md Sec. 6)." in
  Cmd.v
    (Cmd.info "ablation" ~doc)
    Term.(const run_ablation $ common $ verbose_arg $ ablation_name)

let run_info (cfg : Experiments.Config.t) _verbose =
  Format.printf "configuration: %a@." Experiments.Config.pp cfg;
  let ro = Circuit.Ring_oscillator.create ~config:cfg.ro cfg.seed in
  let ro_tb = Circuit.Ring_oscillator.testbench ro in
  let sram = Circuit.Sram.create ~config:cfg.sram cfg.seed in
  let sram_tb = Circuit.Sram.testbench sram in
  let show (tb : Circuit.Testbench.t) =
    Format.printf "@.%a@." Circuit.Netlist.summary tb.netlist;
    Format.printf
      "  variables: %d schematic -> %d post-layout; metrics: %s@."
      tb.schematic_dim tb.layout_dim
      (String.concat ", " (Array.to_list tb.metrics));
    Format.printf "  simulated cost/sample: %.1f s (schematic), %.1f s \
                   (post-layout)@."
      (tb.sim_cost_seconds Circuit.Stage.Schematic)
      (tb.sim_cost_seconds Circuit.Stage.Layout)
  in
  let amp = Circuit.Amplifier.create cfg.seed in
  show ro_tb;
  show sram_tb;
  show (Circuit.Amplifier.testbench amp)

let info_cmd =
  let doc = "Print the benchmark circuits and configuration." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ common $ verbose_arg)

let () =
  let doc =
    "Reproduction of 'Bayesian Model Fusion: Large-Scale Performance \
     Modeling of Analog and Mixed-Signal Circuits by Reusing Early-Stage \
     Data' (DAC 2013 / TCAD 2016)."
  in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table_cmd; fig_cmd; all_cmd; ablation_cmd; info_cmd ]))
