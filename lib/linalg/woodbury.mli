(** Sherman-Morrison-Woodbury solves for diagonal-plus-low-rank systems.

    Solves [(diag d + scale * g^T g) x = b] where [g] is [k] x [m] with
    [k << m], using only a [k] x [k] Cholesky factorization:

    [(D + s G^T G)^-1 = D^-1 - D^-1 G^T (s^-1 I + G D^-1 G^T)^-1 G D^-1].

    This is the paper's "fast solver" (Sec. IV-C, eq. 53-58): exact, no
    approximation, with cost O(k^2 m + k^3) instead of O(m^3). *)

type t
(** A reusable factorization for a fixed [(d, g, scale)] triple. *)

val factorize : d:Vec.t -> g:Mat.t -> scale:float -> t
(** Prepares solves of [(diag d + scale * g^T g) x = b].
    Requirements: [d] has length [cols g], every [d.(i) > 0], and
    [scale > 0]; violations raise [Invalid_argument]. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] returns the exact solution [x] (length [cols g]). *)

val solve_many : t -> Vec.t list -> Vec.t list
(** Shares the small factorization across several right-hand sides. *)

val dim : t -> int
(** Size [m] of the full system. *)

val rank : t -> int
(** Rank [k] of the low-rank update (number of rows of [g]). *)

val cond_estimate : t -> float
(** {!Cholesky.cond_estimate} of the small core
    [s^-1 I + G D^-1 G^T]. *)

val solve_system : d:Vec.t -> g:Mat.t -> scale:float -> Vec.t -> Vec.t
(** One-shot convenience: factorize then solve. *)
