type t = float array

let create n = Array.make n 0.

let init = Array.init

let make = Array.make

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let fill v c = Array.fill v 0 (Array.length v) c

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

(* Scaled two-norm: factor out the largest magnitude so that squaring never
   overflows even for huge entries. *)
let nrm2 x =
  let n = Array.length x in
  if n = 0 then 0.
  else begin
    let amax = ref 0. in
    for i = 0 to n - 1 do
      let a = Float.abs (Array.unsafe_get x i) in
      if a > !amax then amax := a
    done;
    if !amax = 0. || not (Float.is_finite !amax) then !amax
    else begin
      let s = ref 0. in
      let m = !amax in
      for i = 0 to n - 1 do
        let r = Array.unsafe_get x i /. m in
        s := !s +. (r *. r)
      done;
      m *. sqrt !s
    end
  end

let norm1 x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get x i)
  done;
  !acc

let norm_inf x =
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs (Array.unsafe_get x i) in
    if a > !acc then acc := a
  done;
  !acc

let asum = norm1

let scale a v = Array.map (fun x -> a *. x) v

let scale_inplace a v =
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (a *. Array.unsafe_get v i)
  done

let neg v = Array.map (fun x -> -.x) v

let map2 f x y =
  check_same_dim "map2" x y;
  Array.init (Array.length x) (fun i ->
      f (Array.unsafe_get x i) (Array.unsafe_get y i))

let add x y = map2 ( +. ) x y

let sub x y = map2 ( -. ) x y

let mul x y = map2 ( *. ) x y

let div x y = map2 ( /. ) x y

(* In-place twins with preallocated destinations; same element order as
   the allocating versions, so results are bit-identical. [dst] may
   alias either input. *)
let check_into name x y dst =
  check_same_dim name x y;
  if Array.length dst <> Array.length x then
    invalid_arg
      (Printf.sprintf "Vec.%s: destination length mismatch (%d vs %d)" name
         (Array.length dst) (Array.length x))

let add_into x y dst =
  check_into "add_into" x y dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i +. Array.unsafe_get y i)
  done

let sub_into x y dst =
  check_into "sub_into" x y dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i -. Array.unsafe_get y i)
  done

let mul_into x y dst =
  check_into "mul_into" x y dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i *. Array.unsafe_get y i)
  done

let copy_into src dst =
  check_same_dim "copy_into" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let add_inplace x y = axpy 1. x y

let sub_inplace x y =
  check_same_dim "sub_inplace" x y;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i (Array.unsafe_get y i -. Array.unsafe_get x i)
  done

let map = Array.map

let mapi = Array.mapi

let iteri = Array.iteri

let fold = Array.fold_left

let sum x =
  (* Kahan compensated summation. *)
  let s = ref 0. and c = ref 0. in
  for i = 0 to Array.length x - 1 do
    let y = Array.unsafe_get x i -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let mean x =
  if Array.length x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (Array.length x)

let min x =
  if Array.length x = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Float.min x.(0) x

let max x =
  if Array.length x = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Float.max x.(0) x

let argmax_abs x =
  if Array.length x = 0 then invalid_arg "Vec.argmax_abs: empty vector";
  let best = ref 0 and best_v = ref (Float.abs x.(0)) in
  for i = 1 to Array.length x - 1 do
    let a = Float.abs (Array.unsafe_get x i) in
    if a > !best_v then begin
      best := i;
      best_v := a
    end
  done;
  !best

let dist2 x y = nrm2 (sub x y)

let rel_error approx exact =
  let d = dist2 approx exact in
  let n = nrm2 exact in
  if n = 0. then nrm2 approx else d /. n

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    let a = x.(i) and b = y.(i) in
    let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
    if Float.abs (a -. b) > tol *. scale then ok := false
  done;
  !ok

let concat = Array.concat

let slice v pos len = Array.sub v pos len

let pp fmt v =
  let n = Array.length v in
  let shown = Stdlib.min n 8 in
  Format.fprintf fmt "[";
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" v.(i)
  done;
  if n > shown then Format.fprintf fmt "; ...(%d)" n;
  Format.fprintf fmt "]"
