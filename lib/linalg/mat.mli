(** Dense row-major matrices over unboxed [Bigarray] float64 storage.

    The representation is a flat [(float, float64_elt, c_layout)
    Bigarray.Array1.t] of length [rows * cols]; entry (i, j) lives at
    index [i * cols + j]. Rows are therefore contiguous, and all hot
    kernels below iterate row-wise. The storage lives outside the OCaml
    heap: the GC never scans or moves it, and access in float context
    compiles to unboxed loads/stores.

    Every kernel keeps the summation order of the original
    [float array] implementation, so results are bit-identical to the
    seed kernels (golden-fingerprint-enforced). The [_into] variants
    write into preallocated destinations and allocate nothing. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The flat row-major storage plane. *)

type t = private { rows : int; cols : int; data : buf }

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at (i, j). *)

val make : int -> int -> float -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Builds from an array of rows; all rows must have equal length. *)

val to_arrays : t -> float array array

val of_rows : Vec.t list -> t

val copy : t -> t
(** Fresh tight copy of the first [rows * cols] entries (so copying a
    {!view_rows} view of a larger arena yields an exact matrix). *)

val dims : t -> int * int

val rows : t -> int

val cols : t -> int

val data : t -> buf
(** The underlying storage, row-major. Borrowed, not copied. *)

val to_flat : t -> float array
(** Row-major copy of the storage as a plain [float array] (codecs). *)

val of_flat : rows:int -> cols:int -> float array -> t
(** Inverse of {!to_flat}; [Invalid_argument] on length mismatch. *)

val view_rows : t -> int -> t
(** [view_rows a k] is a borrowed view of the first [k] rows sharing
    [a]'s storage — writes through either alias are visible in both.
    This is how scratch arenas expose a capacity buffer to kernels
    sized for the live batch. *)

val fill : t -> float -> unit
(** Sets every entry (of the full underlying buffer) in place. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** Copy of row [i]. *)

val row_into : t -> int -> Vec.t -> unit
(** [row_into a i dst] copies row [i] into preallocated [dst]
    (length exactly [cols]); allocation-free. *)

val row_dot : t -> int -> Vec.t -> float
(** [row_dot a i x] is [Vec.dot (row a i) x] without the row copy;
    identical summation order, so bit-identical results. *)

val col : t -> int -> Vec.t
(** Copy of column [j]. *)

val col_nrm2 : t -> int -> float
(** [col_nrm2 a j] is [Vec.nrm2 (col a j)] with stride-aware access and
    no intermediate column copy (same two-pass scaled algorithm, so
    bit-identical). *)

val set_row : t -> int -> Vec.t -> unit

val set_col : t -> int -> Vec.t -> unit

val blit_rows : src:t -> dst:t -> dst_row:int -> unit
(** Copies all rows of [src] into [dst] starting at row [dst_row];
    both must have the same width. Allocation-free. *)

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_diag : t -> Vec.t -> t
(** [add_diag a d] adds [d] to the main diagonal of square [a] (fresh). *)

val diag : t -> Vec.t
(** Main diagonal of a square matrix. *)

val of_diag : Vec.t -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

val gemv : t -> Vec.t -> Vec.t
(** [gemv a x] is [a * x]. *)

val gemv_into : t -> Vec.t -> Vec.t -> unit
(** [gemv_into a x y] writes [a * x] into [y.(0 .. rows-1)] in place
    ([y] may be longer than [rows]); allocation-free, bit-identical to
    {!gemv}. *)

val gemv_t : t -> Vec.t -> Vec.t
(** [gemv_t a x] is [a^T * x], computed without materializing [a^T]. *)

val gemv_t_into : t -> Vec.t -> Vec.t -> unit
(** In-place twin of {!gemv_t}: writes into [y.(0 .. cols-1)]. *)

val gemm : t -> t -> t
(** [gemm a b] is [a * b], cache-blocked (ikj loop order). *)

val gemm_into : t -> t -> t -> unit
(** [gemm_into a b c] writes [a * b] into exactly-sized [c] in place;
    allocation-free, bit-identical to {!gemm}. *)

val gram : t -> t
(** [gram a] is [a^T * a] ([cols] x [cols]), symmetric, built from rank-1
    row updates so access stays contiguous. Unweighted fast path of
    {!weighted_gram}: bit-identical to an all-ones weighting without
    materializing the weight vector. *)

val weighted_gram : t -> Vec.t -> t
(** [weighted_gram a w] is [a^T * diag(w) * a]. *)

val outer_gram : t -> t
(** [outer_gram a] is [a * a^T] ([rows] x [rows]); unweighted fast path
    of {!weighted_outer_gram} (no all-ones vector per call). *)

val weighted_outer_gram : t -> Vec.t -> t
(** [weighted_outer_gram a w] is [a * diag(w) * a^T]; the kernel at the
    heart of the Sherman-Morrison-Woodbury fast solver (eq. 55/58). *)

val mul_cols : t -> Vec.t -> t
(** [mul_cols a w] scales column [j] of [a] by [w.(j)] (fresh matrix),
    i.e. [a * diag(w)]. *)

val sym_mirror_upper : t -> unit
(** Copies the strict upper triangle onto the lower one in place. *)

val frobenius : t -> float

val equal : t -> t -> bool
(** Exact bitwise equality of dimensions and every entry
    ([Float.equal], so NaNs compare equal to themselves). *)

val approx_equal : ?tol:float -> t -> t -> bool

val is_symmetric : ?tol:float -> t -> bool

val swap_rows : t -> int -> int -> unit

val map : (float -> float) -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a small corner of the matrix with its dimensions. *)
