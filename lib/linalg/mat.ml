(* Dense row-major matrices over Bigarray float64 storage.

   The data plane lives outside the OCaml heap: the GC never scans,
   copies or compacts it, domains can share it without write barriers,
   and reads/writes in float context compile to unboxed loads/stores.
   Every kernel below keeps the exact loop order of the original
   [float array] implementation, so results are bit-identical — this is
   test-enforced against golden fingerprints captured from the seed
   kernels. *)

module A = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = { rows : int; cols : int; data : buf }

(* Fully-applied wrappers, not eta-reduced aliases: an alias of
   [A.unsafe_get] is a closure whose generic call boxes every float it
   returns. As one-expression functions these inline at each use site,
   where the fully-applied primitive compiles to an unboxed load/store. *)
let[@inline] uget (d : buf) i : float = A.unsafe_get d i

let[@inline] uset (d : buf) i (v : float) = A.unsafe_set d i v

let buf_create n : buf =
  let b = A.create Bigarray.float64 Bigarray.c_layout n in
  A.fill b 0.;
  b

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Mat: negative dimension"

let create r c =
  check_dims r c;
  { rows = r; cols = c; data = buf_create (r * c) }

let init r c f =
  check_dims r c;
  let data = buf_create (r * c) in
  for i = 0 to r - 1 do
    let base = i * c in
    for j = 0 to c - 1 do
      uset data (base + j) (f i j)
    done
  done;
  { rows = r; cols = c; data }

let make r c v =
  check_dims r c;
  let data = buf_create (r * c) in
  A.fill data v;
  { rows = r; cols = c; data }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then { rows = 0; cols = 0; data = buf_create 0 }
  else begin
    let c = Array.length rows_arr.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init r c (fun i j -> rows_arr.(i).(j))
  end

let to_arrays a =
  Array.init a.rows (fun i ->
      let base = i * a.cols in
      Array.init a.cols (fun j -> uget a.data (base + j)))

let of_rows rows_list = of_arrays (Array.of_list rows_list)

(* [copy] walks exactly [rows * cols] entries so that copying a
   row-count view of a larger capacity buffer yields a tight matrix. *)
let copy a =
  let n = a.rows * a.cols in
  let data = buf_create n in
  for i = 0 to n - 1 do
    uset data i (uget a.data i)
  done;
  { a with data }

let dims a = (a.rows, a.cols)

let rows a = a.rows

let cols a = a.cols

let data a = a.data

let to_flat a =
  let n = a.rows * a.cols in
  Array.init n (fun i -> uget a.data i)

let of_flat ~rows ~cols flat =
  if Array.length flat <> rows * cols then
    invalid_arg "Mat.of_flat: length mismatch";
  init rows cols (fun i j -> flat.((i * cols) + j))

(* A borrowed view of the first [k] rows: shares storage with [a], so
   writes through either alias are visible in both. The backbone of the
   scratch-arena contract — kernels run on a view sized to the live
   batch while the arena keeps its full capacity. *)
let view_rows a k =
  if k < 0 || k * a.cols > A.dim a.data then
    invalid_arg "Mat.view_rows: row count out of range";
  { a with rows = k }

let fill a v = A.fill a.data v

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.get: index out of bounds";
  uget a.data ((i * a.cols) + j)

let set a i j v =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg "Mat.set: index out of bounds";
  uset a.data ((i * a.cols) + j) v

let row_into a i (dst : Vec.t) =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row_into: index out of bounds";
  if Array.length dst <> a.cols then
    invalid_arg "Mat.row_into: length mismatch";
  let base = i * a.cols in
  for j = 0 to a.cols - 1 do
    Array.unsafe_set dst j (uget a.data (base + j))
  done

let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: index out of bounds";
  let dst = Array.make a.cols 0. in
  row_into a i dst;
  dst

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: index out of bounds";
  Array.init a.rows (fun i -> uget a.data ((i * a.cols) + j))

let set_row a i v =
  if i < 0 || i >= a.rows then invalid_arg "Mat.set_row: index out of bounds";
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: length mismatch";
  let base = i * a.cols in
  for j = 0 to a.cols - 1 do
    uset a.data (base + j) (Array.unsafe_get v j)
  done

let set_col a j v =
  if j < 0 || j >= a.cols then invalid_arg "Mat.set_col: index out of bounds";
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: length mismatch";
  for i = 0 to a.rows - 1 do
    uset a.data ((i * a.cols) + j) (Array.unsafe_get v i)
  done

(* Same-width bulk row copy between matrices (daemon batch fusing). *)
let blit_rows ~src ~dst ~dst_row =
  if src.cols <> dst.cols then invalid_arg "Mat.blit_rows: width mismatch";
  if dst_row < 0 || dst_row + src.rows > dst.rows then
    invalid_arg "Mat.blit_rows: rows out of range";
  let n = src.rows * src.cols in
  let off = dst_row * dst.cols in
  for i = 0 to n - 1 do
    uset dst.data (off + i) (uget src.data i)
  done

let transpose a =
  let b = create a.cols a.rows in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      uset b.data ((j * b.cols) + i) (uget a.data (base + j))
    done
  done;
  b

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name
         a.rows a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  let n = a.rows * a.cols in
  let data = buf_create n in
  for i = 0 to n - 1 do
    uset data i (uget a.data i +. uget b.data i)
  done;
  { a with data }

let sub a b =
  check_same "sub" a b;
  let n = a.rows * a.cols in
  let data = buf_create n in
  for i = 0 to n - 1 do
    uset data i (uget a.data i -. uget b.data i)
  done;
  { a with data }

let scale s a =
  let n = a.rows * a.cols in
  let data = buf_create n in
  for i = 0 to n - 1 do
    uset data i (s *. uget a.data i)
  done;
  { a with data }

let add_diag a d =
  if a.rows <> a.cols then invalid_arg "Mat.add_diag: not square";
  if Array.length d <> a.rows then invalid_arg "Mat.add_diag: length mismatch";
  let b = copy a in
  for i = 0 to a.rows - 1 do
    let k = (i * a.cols) + i in
    uset b.data k (uget b.data k +. Array.unsafe_get d i)
  done;
  b

let diag a =
  if a.rows <> a.cols then invalid_arg "Mat.diag: not square";
  Array.init a.rows (fun i -> uget a.data ((i * a.cols) + i))

let of_diag d =
  let n = Array.length d in
  init n n (fun i j -> if i = j then d.(i) else 0.)

let gemv_into a x (y : Vec.t) =
  if Array.length x <> a.cols then invalid_arg "Mat.gemv_into: length mismatch";
  if Array.length y < a.rows then
    invalid_arg "Mat.gemv_into: destination too short";
  let data = a.data and c = a.cols in
  (* accumulate in the destination cell: float-array loads/stores stay
     unboxed under vanilla ocamlopt, where a [float ref] accumulator
     boxes on every iteration. Same summation order as a ref. *)
  for i = 0 to a.rows - 1 do
    let base = i * c in
    Array.unsafe_set y i 0.;
    for j = 0 to c - 1 do
      Array.unsafe_set y i
        (Array.unsafe_get y i
        +. (uget data (base + j) *. Array.unsafe_get x j))
    done
  done

let gemv a x =
  if Array.length x <> a.cols then invalid_arg "Mat.gemv: length mismatch";
  let y = Array.make a.rows 0. in
  gemv_into a x y;
  y

let gemv_t_into a x (y : Vec.t) =
  if Array.length x <> a.rows then
    invalid_arg "Mat.gemv_t_into: length mismatch";
  if Array.length y < a.cols then
    invalid_arg "Mat.gemv_t_into: destination too short";
  Array.fill y 0 a.cols 0.;
  let data = a.data and c = a.cols in
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let base = i * c in
      for j = 0 to c - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. uget data (base + j)))
      done
    end
  done

let gemv_t a x =
  if Array.length x <> a.rows then invalid_arg "Mat.gemv_t: length mismatch";
  let y = Array.make a.cols 0. in
  gemv_t_into a x y;
  y

(* Row-major dot of row [i] against a plain vector, no intermediate
   copy; summation order matches [Vec.dot] on the copied row. *)
let row_dot a i (x : Vec.t) =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row_dot: index out of bounds";
  if Array.length x <> a.cols then invalid_arg "Mat.row_dot: length mismatch";
  let base = i * a.cols in
  let acc = ref 0. in
  for j = 0 to a.cols - 1 do
    acc := !acc +. (uget a.data (base + j) *. Array.unsafe_get x j)
  done;
  !acc

(* ikj loop order: the inner loop walks both [b] and [c] rows contiguously. *)
let gemm_into a b c =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.gemm_into: dimension mismatch (%dx%d * %dx%d)"
         a.rows a.cols b.rows b.cols);
  if c.rows <> a.rows || c.cols <> b.cols then
    invalid_arg "Mat.gemm_into: destination dimension mismatch";
  let n = b.cols in
  for i = 0 to (a.rows * n) - 1 do
    uset c.data i 0.
  done;
  for i = 0 to a.rows - 1 do
    let abase = i * a.cols and cbase = i * n in
    for k = 0 to a.cols - 1 do
      let aik = uget a.data (abase + k) in
      if aik <> 0. then begin
        let bbase = k * n in
        for j = 0 to n - 1 do
          uset c.data (cbase + j)
            (uget c.data (cbase + j) +. (aik *. uget b.data (bbase + j)))
        done
      end
    done
  done

let gemm a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.gemm: dimension mismatch (%dx%d * %dx%d)" a.rows
         a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  gemm_into a b c;
  c

let sym_mirror_upper a =
  if a.rows <> a.cols then invalid_arg "Mat.sym_mirror_upper: not square";
  let n = a.rows in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      uset a.data ((j * n) + i) (uget a.data ((i * n) + j))
    done
  done

(* a^T a via accumulated rank-1 updates of the rows: upper triangle only,
   then mirrored. Every access is contiguous in the row. *)
let weighted_gram a w =
  if Array.length w <> a.rows then
    invalid_arg "Mat.weighted_gram: weight length mismatch";
  let m = a.cols in
  let c = create m m in
  for k = 0 to a.rows - 1 do
    let base = k * m in
    let wk = Array.unsafe_get w k in
    if wk <> 0. then
      for i = 0 to m - 1 do
        let v = wk *. uget a.data (base + i) in
        if v <> 0. then begin
          let cbase = i * m in
          for j = i to m - 1 do
            uset c.data (cbase + j)
              (uget c.data (cbase + j) +. (v *. uget a.data (base + j)))
          done
        end
      done
  done;
  sym_mirror_upper c;
  c

(* Unweighted fast path: with w_k = 1 everywhere, [1. *. x] is exactly
   [x], so this produces bit-identical results to [weighted_gram] with
   an all-ones vector — without materializing that vector per call. *)
let gram a =
  let m = a.cols in
  let c = create m m in
  for k = 0 to a.rows - 1 do
    let base = k * m in
    for i = 0 to m - 1 do
      let v = uget a.data (base + i) in
      if v <> 0. then begin
        let cbase = i * m in
        for j = i to m - 1 do
          uset c.data (cbase + j)
            (uget c.data (cbase + j) +. (v *. uget a.data (base + j)))
        done
      end
    done
  done;
  sym_mirror_upper c;
  c

(* a diag(w) a^T: rows are contiguous so the triple loop is fully
   sequential; upper triangle then mirror. *)
let weighted_outer_gram a w =
  if Array.length w <> a.cols then
    invalid_arg "Mat.weighted_outer_gram: weight length mismatch";
  let k = a.rows and m = a.cols in
  let c = create k k in
  for i = 0 to k - 1 do
    let ibase = i * m in
    for j = i to k - 1 do
      let jbase = j * m in
      let acc = ref 0. in
      for t = 0 to m - 1 do
        acc :=
          !acc
          +. uget a.data (ibase + t)
             *. Array.unsafe_get w t
             *. uget a.data (jbase + t)
      done;
      uset c.data ((i * k) + j) !acc
    done
  done;
  sym_mirror_upper c;
  c

(* Unweighted fast path of [weighted_outer_gram]; [x *. 1. *. y] is
   exactly [x *. y], so no all-ones weight vector is allocated. *)
let outer_gram a =
  let k = a.rows and m = a.cols in
  let c = create k k in
  for i = 0 to k - 1 do
    let ibase = i * m in
    for j = i to k - 1 do
      let jbase = j * m in
      let acc = ref 0. in
      for t = 0 to m - 1 do
        acc := !acc +. (uget a.data (ibase + t) *. uget a.data (jbase + t))
      done;
      uset c.data ((i * k) + j) !acc
    done
  done;
  sym_mirror_upper c;
  c

let mul_cols a w =
  if Array.length w <> a.cols then
    invalid_arg "Mat.mul_cols: weight length mismatch";
  let b = copy a in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      uset b.data (base + j) (uget b.data (base + j) *. Array.unsafe_get w j)
    done
  done;
  b

(* Scaled two-norm over the flat storage, entry-for-entry the same
   two-pass algorithm as [Vec.nrm2]. *)
let frobenius a =
  let n = a.rows * a.cols in
  if n = 0 then 0.
  else begin
    let amax = ref 0. in
    for i = 0 to n - 1 do
      let v = Float.abs (uget a.data i) in
      if v > !amax then amax := v
    done;
    if !amax = 0. || not (Float.is_finite !amax) then !amax
    else begin
      let s = ref 0. in
      let m = !amax in
      for i = 0 to n - 1 do
        let r = uget a.data i /. m in
        s := !s +. (r *. r)
      done;
      m *. sqrt !s
    end
  end

(* Column two-norm with strided access and no intermediate column copy:
   the same two-pass scaled algorithm as [Vec.nrm2] on a copied column,
   so the result is bit-identical. *)
let col_nrm2 a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col_nrm2: index out of bounds";
  let n = a.rows and c = a.cols in
  if n = 0 then 0.
  else begin
    let amax = ref 0. in
    for i = 0 to n - 1 do
      let v = Float.abs (uget a.data ((i * c) + j)) in
      if v > !amax then amax := v
    done;
    if !amax = 0. || not (Float.is_finite !amax) then !amax
    else begin
      let s = ref 0. in
      let m = !amax in
      for i = 0 to n - 1 do
        let r = uget a.data ((i * c) + j) /. m in
        s := !s +. (r *. r)
      done;
      m *. sqrt !s
    end
  end

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let n = a.rows * a.cols in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Float.equal (uget a.data i) (uget b.data i)) then ok := false
  done;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let n = a.rows * a.cols in
  let ok = ref true in
  for i = 0 to n - 1 do
    let x = uget a.data i and y = uget b.data i in
    let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
    if Float.abs (x -. y) > tol *. scale then ok := false
  done;
  !ok

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      let x = get a i j and y = get a j i in
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      if Float.abs (x -. y) > tol *. scale then ok := false
    done
  done;
  !ok

let swap_rows a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.rows then
    invalid_arg "Mat.swap_rows: index out of bounds";
  if i <> j then begin
    let c = a.cols in
    for t = 0 to c - 1 do
      let x = uget a.data ((i * c) + t) in
      uset a.data ((i * c) + t) (uget a.data ((j * c) + t));
      uset a.data ((j * c) + t) x
    done
  end

let map f a =
  let n = a.rows * a.cols in
  let data = buf_create n in
  for i = 0 to n - 1 do
    uset data i (f (uget a.data i))
  done;
  { a with data }

let pp fmt a =
  Format.fprintf fmt "@[<v>matrix %dx%d" a.rows a.cols;
  let rmax = Stdlib.min a.rows 6 and cmax = Stdlib.min a.cols 6 in
  for i = 0 to rmax - 1 do
    Format.fprintf fmt "@,| ";
    for j = 0 to cmax - 1 do
      Format.fprintf fmt "%10.4g " (get a i j)
    done;
    if a.cols > cmax then Format.fprintf fmt "..."
  done;
  if a.rows > rmax then Format.fprintf fmt "@,| ...";
  Format.fprintf fmt "@]"
