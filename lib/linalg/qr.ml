exception Rank_deficient of int

module A = Bigarray.Array1

(* Compact Householder storage: the strict lower triangle of [h] plus
   [betas] hold the reflectors v (with v.(k) = 1 implicit); the upper
   triangle of [h] holds r. *)
type t = { h : Mat.t; betas : float array; m : int; n : int }

let factorize a =
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Qr.factorize: need rows >= cols";
  let h = Mat.copy a in
  let d = (h : Mat.t).data in
  let betas = Array.make n 0. in
  let v = Array.make m 0. in
  for k = 0 to n - 1 do
    (* Build the Householder vector for column k below the diagonal. *)
    let alpha = ref 0. in
    for i = k to m - 1 do
      let x = A.unsafe_get d ((i * n) + k) in
      alpha := !alpha +. (x *. x)
    done;
    let alpha = sqrt !alpha in
    let x0 = A.unsafe_get d ((k * n) + k) in
    if alpha = 0. then betas.(k) <- 0.
    else begin
      let alpha = if x0 > 0. then -.alpha else alpha in
      v.(k) <- x0 -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- A.unsafe_get d ((i * n) + k)
      done;
      let vnorm2 = ref 0. in
      for i = k to m - 1 do
        vnorm2 := !vnorm2 +. (v.(i) *. v.(i))
      done;
      if !vnorm2 = 0. then betas.(k) <- 0.
      else begin
        let beta = 2. /. !vnorm2 in
        betas.(k) <- beta;
        (* Apply the reflector to the remaining columns k..n-1. *)
        for j = k to n - 1 do
          let s = ref 0. in
          for i = k to m - 1 do
            s := !s +. (v.(i) *. A.unsafe_get d ((i * n) + j))
          done;
          let s = beta *. !s in
          for i = k to m - 1 do
            A.unsafe_set d ((i * n) + j)
              (A.unsafe_get d ((i * n) + j) -. (s *. v.(i)))
          done
        done;
        (* r_kk now holds alpha; store the reflector below the diagonal,
           normalized so that its first entry is 1. *)
        Mat.set h k k alpha;
        let v0 = v.(k) in
        if v0 <> 0. then begin
          for i = k + 1 to m - 1 do
            A.unsafe_set d ((i * n) + k) (v.(i) /. v0)
          done;
          betas.(k) <- beta *. v0 *. v0
        end
      end
    end
  done;
  { h; betas; m; n }

let r f =
  Mat.init f.n f.n (fun i j -> if j >= i then Mat.get f.h i j else 0.)

let apply_qt f b =
  if Array.length b <> f.m then invalid_arg "Qr.apply_qt: length mismatch";
  let d = (f.h : Mat.t).data and n = f.n in
  let y = Array.copy b in
  for k = 0 to f.n - 1 do
    let beta = f.betas.(k) in
    if beta <> 0. then begin
      (* v has implicit 1 at position k. *)
      let s = ref y.(k) in
      for i = k + 1 to f.m - 1 do
        s := !s +. (A.unsafe_get d ((i * n) + k) *. y.(i))
      done;
      let s = beta *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to f.m - 1 do
        y.(i) <- y.(i) -. (s *. A.unsafe_get d ((i * n) + k))
      done
    end
  done;
  y

let q_thin f =
  (* Apply the reflectors in reverse to the first n columns of the
     identity. *)
  let q = Mat.create f.m f.n in
  for j = 0 to f.n - 1 do
    let e = Array.make f.m 0. in
    e.(j) <- 1.;
    let d = (f.h : Mat.t).data and n = f.n in
    for k = f.n - 1 downto 0 do
      let beta = f.betas.(k) in
      if beta <> 0. then begin
        let s = ref e.(k) in
        for i = k + 1 to f.m - 1 do
          s := !s +. (A.unsafe_get d ((i * n) + k) *. e.(i))
        done;
        let s = beta *. !s in
        e.(k) <- e.(k) -. s;
        for i = k + 1 to f.m - 1 do
          e.(i) <- e.(i) -. (s *. A.unsafe_get d ((i * n) + k))
        done
      end
    done;
    Mat.set_col q j e
  done;
  q

let solve_ls f b =
  let y = apply_qt f b in
  let x = Array.make f.n 0. in
  for i = f.n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to f.n - 1 do
      acc := !acc -. (Mat.get f.h i k *. x.(k))
    done;
    let rii = Mat.get f.h i i in
    if Float.abs rii < 1e-300 then raise (Rank_deficient i);
    x.(i) <- !acc /. rii
  done;
  x

let least_squares a b = solve_ls (factorize a) b

let residual_norm f b =
  let y = apply_qt f b in
  let acc = ref 0. in
  for i = f.n to f.m - 1 do
    acc := !acc +. (y.(i) *. y.(i))
  done;
  sqrt !acc
