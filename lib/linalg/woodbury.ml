type t = {
  d_inv : Vec.t; (* m *)
  g : Mat.t; (* k x m *)
  small : Cholesky.t; (* k x k factor of s^-1 I + G D^-1 G^T *)
}

let m_cond =
  Obs.Metrics.gauge
    ~help:"Condition estimate of the last factorized Woodbury core"
    "bmf_woodbury_cond"

let m_solves =
  Obs.Metrics.counter ~help:"Woodbury solves performed"
    "bmf_woodbury_solves_total"

let factorize ~d ~g ~scale =
  let k, m = Mat.dims g in
  if Array.length d <> m then
    invalid_arg "Woodbury.factorize: diagonal length must equal cols g";
  if scale <= 0. || not (Float.is_finite scale) then
    invalid_arg "Woodbury.factorize: scale must be positive and finite";
  Array.iteri
    (fun i di ->
      if di <= 0. || not (Float.is_finite di) then
        invalid_arg
          (Printf.sprintf "Woodbury.factorize: d.(%d) must be positive" i))
    d;
  let d_inv = Array.map (fun x -> 1. /. x) d in
  (* s^-1 I + G D^-1 G^T, a k x k SPD matrix. *)
  let core = Mat.weighted_outer_gram g d_inv in
  let shifted = Mat.add_diag core (Array.make k (1. /. scale)) in
  let small = Cholesky.factorize shifted in
  if Obs.live () then
    Obs.Metrics.set m_cond (Cholesky.cond_estimate small);
  { d_inv; g; small }

let dim f = Mat.cols f.g

let rank f = Mat.rows f.g

let cond_estimate f = Cholesky.cond_estimate f.small

let solve f b =
  let m = Mat.cols f.g in
  if Array.length b <> m then invalid_arg "Woodbury.solve: length mismatch";
  Obs.Metrics.inc m_solves;
  (* u = D^-1 b *)
  let u = Vec.mul f.d_inv b in
  (* w = (s^-1 I + G D^-1 G^T)^-1 (G u) *)
  let gu = Mat.gemv f.g u in
  let w = Cholesky.solve f.small gu in
  (* x = u - D^-1 G^T w *)
  let gtw = Mat.gemv_t f.g w in
  let x = Array.make m 0. in
  for i = 0 to m - 1 do
    x.(i) <- u.(i) -. (f.d_inv.(i) *. gtw.(i))
  done;
  x

let solve_many f bs = List.map (solve f) bs

let solve_system ~d ~g ~scale b = solve (factorize ~d ~g ~scale) b
