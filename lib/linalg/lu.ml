exception Singular of int

module A = Bigarray.Array1

type t = { lu : Mat.t; perm : int array; sign : float }

(* Doolittle with partial pivoting; l (unit diagonal) and u share [lu]. *)
let factorize a =
  let n, c = Mat.dims a in
  if n <> c then invalid_arg "Lu.factorize: not square";
  let lu = Mat.copy a in
  let d = (lu : Mat.t).data in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* pivot search in column k *)
    let piv = ref k and pmax = ref (Float.abs (A.unsafe_get d ((k * n) + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (A.unsafe_get d ((i * n) + k)) in
      if v > !pmax then begin
        piv := i;
        pmax := v
      end
    done;
    if !pmax = 0. || not (Float.is_finite !pmax) then raise (Singular k);
    if !piv <> k then begin
      Mat.swap_rows lu k !piv;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- t;
      sign := -. !sign
    end;
    let pivot = A.unsafe_get d ((k * n) + k) in
    for i = k + 1 to n - 1 do
      let f = A.unsafe_get d ((i * n) + k) /. pivot in
      A.unsafe_set d ((i * n) + k) f;
      if f <> 0. then
        for j = k + 1 to n - 1 do
          A.unsafe_set d ((i * n) + j)
            (A.unsafe_get d ((i * n) + j)
            -. (f *. A.unsafe_get d ((k * n) + j)))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve f b =
  let n = Mat.rows f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  let d = (f.lu : Mat.t).data in
  (* forward with permutation: l y = p b *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(f.perm.(i)) in
    for k = 0 to i - 1 do
      acc := !acc -. (A.unsafe_get d ((i * n) + k) *. y.(k))
    done;
    y.(i) <- !acc
  done;
  (* backward: u x = y *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (A.unsafe_get d ((i * n) + k) *. x.(k))
    done;
    x.(i) <- !acc /. A.unsafe_get d ((i * n) + i)
  done;
  x

let solve_mat f b =
  let n = Mat.rows f.lu in
  if Mat.rows b <> n then invalid_arg "Lu.solve_mat: dimension mismatch";
  let x = Mat.create n (Mat.cols b) in
  for j = 0 to Mat.cols b - 1 do
    Mat.set_col x j (solve f (Mat.col b j))
  done;
  x

let inverse f = solve_mat f (Mat.identity (Mat.rows f.lu))

let det f =
  let n = Mat.rows f.lu in
  let acc = ref f.sign in
  for i = 0 to n - 1 do
    acc := !acc *. Mat.get f.lu i i
  done;
  !acc

let solve_system a b = solve (factorize a) b
