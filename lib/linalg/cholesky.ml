exception Not_positive_definite of int

module A = Bigarray.Array1

type t = { l : Mat.t }

(* Numerical-health metrics: registered once at module init, recorded
   only when a sink is live — factorize runs inside CV inner loops, so
   the off path must stay a couple of branches. *)
let m_factorizations =
  Obs.Metrics.counter ~help:"Cholesky factorizations performed"
    "bmf_cholesky_factorizations_total"

let m_not_spd =
  Obs.Metrics.counter ~help:"Cholesky factorizations that lost positive definiteness"
    "bmf_cholesky_not_spd_total"

let m_pivot_min =
  Obs.Metrics.gauge ~help:"Smallest diagonal pivot of the last Cholesky factor"
    "bmf_cholesky_pivot_min"

let m_seconds =
  Obs.Metrics.histogram ~help:"Cholesky factorization latency (seconds)"
    "bmf_cholesky_factorize_seconds"

(* Row-oriented (Cholesky-Crout) factorization: for each row i we compute
   l_ij for j < i, then the diagonal pivot. Inner products walk rows of l,
   which are contiguous in the row-major layout, so we index the flat data
   array directly. *)
let factorize_impl a =
  let n, c = Mat.dims a in
  if n <> c then invalid_arg "Cholesky.factorize: not square";
  let l = Mat.create n n in
  let ld = (l : Mat.t).data and ad = (a : Mat.t).data in
  for i = 0 to n - 1 do
    let ibase = i * n in
    for j = 0 to i - 1 do
      let jbase = j * n in
      let acc = ref (A.unsafe_get ad (ibase + j)) in
      for k = 0 to j - 1 do
        acc :=
          !acc
          -. A.unsafe_get ld (ibase + k) *. A.unsafe_get ld (jbase + k)
      done;
      A.unsafe_set ld (ibase + j) (!acc /. A.unsafe_get ld (jbase + j))
    done;
    let acc = ref (A.unsafe_get ad (ibase + i)) in
    for k = 0 to i - 1 do
      let v = A.unsafe_get ld (ibase + k) in
      acc := !acc -. (v *. v)
    done;
    if !acc <= 0. || not (Float.is_finite !acc) then
      raise (Not_positive_definite i);
    A.unsafe_set ld (ibase + i) (sqrt !acc)
  done;
  { l }

let pivot_extrema f =
  let n = Mat.rows f.l in
  let mn = ref infinity and mx = ref neg_infinity in
  for i = 0 to n - 1 do
    let d = Mat.get f.l i i in
    if d < !mn then mn := d;
    if d > !mx then mx := d
  done;
  (!mn, !mx)

(* Cheap 2-norm condition estimate of a = l l^T from the pivot spread:
   (max_i l_ii / min_i l_ii)^2 lower-bounds cond_2(a) and tracks it well
   for the diagonally-shifted Gram matrices solved here. *)
let cond_estimate f =
  let mn, mx = pivot_extrema f in
  if mn <= 0. then infinity else (mx /. mn) ** 2.

let factorize a =
  if not (Obs.live ()) then factorize_impl a
  else begin
    let t0 = Obs.Clock.now_s () in
    match factorize_impl a with
    | f ->
        Obs.Metrics.observe m_seconds (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc m_factorizations;
        let mn, _ = pivot_extrema f in
        Obs.Metrics.set m_pivot_min mn;
        f
    | exception (Not_positive_definite _ as e) ->
        Obs.Metrics.inc m_not_spd;
        raise e
  end

let factor f = Mat.copy f.l

let of_factor l =
  let n, c = Mat.dims l in
  if n <> c then invalid_arg "Cholesky.of_factor: not square";
  let copy = Mat.copy l in
  for i = 0 to n - 1 do
    let d = Mat.get copy i i in
    if d <= 0. || not (Float.is_finite d) then
      invalid_arg "Cholesky.of_factor: non-positive diagonal";
    for j = i + 1 to n - 1 do
      Mat.set copy i j 0.
    done
  done;
  { l = copy }

(* In-place solve against preallocated buffers ([y] holds the forward
   intermediate, [dst] the solution; both length >= n). Allocation-free
   and bit-identical to {!solve}, which it implements. *)
let solve_into f b ~y ~dst =
  let n = Mat.rows f.l in
  if Array.length b <> n then
    invalid_arg "Cholesky.solve_into: length mismatch";
  if Array.length y < n || Array.length dst < n then
    invalid_arg "Cholesky.solve_into: scratch too short";
  let ld = (f.l : Mat.t).data in
  (* accumulate in the destination cells (unboxed float-array traffic —
     a [float ref] would box per iteration under vanilla ocamlopt);
     same subtraction order as the ref formulation *)
  (* forward: l y = b *)
  for i = 0 to n - 1 do
    let ibase = i * n in
    Array.unsafe_set y i (Array.unsafe_get b i);
    for k = 0 to i - 1 do
      Array.unsafe_set y i
        (Array.unsafe_get y i
        -. (A.unsafe_get ld (ibase + k) *. Array.unsafe_get y k))
    done;
    Array.unsafe_set y i
      (Array.unsafe_get y i /. A.unsafe_get ld (ibase + i))
  done;
  (* backward: l^T x = y *)
  for i = n - 1 downto 0 do
    Array.unsafe_set dst i (Array.unsafe_get y i);
    for k = i + 1 to n - 1 do
      Array.unsafe_set dst i
        (Array.unsafe_get dst i
        -. (A.unsafe_get ld ((k * n) + i) *. Array.unsafe_get dst k))
    done;
    Array.unsafe_set dst i
      (Array.unsafe_get dst i /. A.unsafe_get ld ((i * n) + i))
  done

let solve f b =
  let n = Mat.rows f.l in
  if Array.length b <> n then invalid_arg "Cholesky.solve: length mismatch";
  let y = Array.make n 0. in
  let x = Array.make n 0. in
  solve_into f b ~y ~dst:x;
  x

let solve_mat f b =
  let n = Mat.rows f.l in
  if Mat.rows b <> n then invalid_arg "Cholesky.solve_mat: dimension mismatch";
  let x = Mat.create n (Mat.cols b) in
  for j = 0 to Mat.cols b - 1 do
    Mat.set_col x j (solve f (Mat.col b j))
  done;
  x

let inverse f = solve_mat f (Mat.identity (Mat.rows f.l))

let log_det f =
  let n = Mat.rows f.l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get f.l i i)
  done;
  2. *. !acc

let solve_system a b = solve (factorize a) b
