type result = {
  solution : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
}

let solve ?max_iter ?(tol = 1e-10) ?(precondition = true) a b =
  let n, c = Sparse.dims a in
  if n <> c then invalid_arg "Conj_grad.solve: not square";
  if Array.length b <> n then invalid_arg "Conj_grad.solve: length mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let d = Sparse.diag a in
  let use_precond =
    precondition && Array.for_all (fun x -> x > 0. && Float.is_finite x) d
  in
  (* one preconditioner scratch vector reused across iterations instead
     of a fresh allocation per [apply_m_inv] call *)
  let z = Array.make n 0. in
  let apply_m_inv r =
    if use_precond then
      for i = 0 to n - 1 do
        Array.unsafe_set z i (Array.unsafe_get r i /. Array.unsafe_get d i)
      done
    else Vec.copy_into r z
  in
  let x = Array.make n 0. in
  let r = Vec.copy b in
  apply_m_inv r;
  let p = Vec.copy z in
  let rz = ref (Vec.dot r z) in
  let bnorm = Float.max 1e-300 (Vec.nrm2 b) in
  let iterations = ref 0 in
  let rnorm = ref (Vec.nrm2 r) in
  while !rnorm > tol *. bnorm && !iterations < max_iter do
    incr iterations;
    let ap = Sparse.mv a p in
    let pap = Vec.dot p ap in
    if pap <= 0. then
      (* Not SPD along this direction; bail out and report non-convergence
         through the residual. *)
      iterations := max_iter
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      apply_m_inv r;
      let rz_new = Vec.dot r z in
      (* Guard the direction update: if [rz] underflowed to exactly 0
         (denormal preconditioner diagonal) while the residual is still
         above tolerance, [beta = rz_new / rz] would go NaN and poison
         [p]; treat it like the non-SPD bail-out instead. *)
      if !rz = 0. || not (Float.is_finite (rz_new /. !rz)) then
        iterations := max_iter
      else begin
        let beta = rz_new /. !rz in
        rz := rz_new;
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done;
        rnorm := Vec.nrm2 r
      end
    end
  done;
  {
    solution = x;
    iterations = !iterations;
    residual_norm = !rnorm;
    converged = !rnorm <= tol *. bnorm;
  }
