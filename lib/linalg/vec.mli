(** Dense vectors of unboxed floats.

    A vector is a plain [float array]; this module collects the numerical
    operations used throughout the repository so that callers never write
    index loops by hand. All binary operations require equal lengths and
    raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val make : int -> float -> t
(** [make n c] is a length-[n] vector filled with [c]. *)

val copy : t -> t
(** Fresh copy. *)

val dim : t -> int
(** Number of entries. *)

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit
(** [fill v c] sets every entry of [v] to [c] in place. *)

val dot : t -> t -> float
(** Inner product. *)

val nrm2 : t -> float
(** Euclidean norm, computed with scaling to avoid overflow on large
    entries. *)

val norm1 : t -> float
(** Sum of absolute values. *)

val norm_inf : t -> float
(** Maximum absolute value; [0.] for the empty vector. *)

val asum : t -> float
(** Alias of {!norm1} (BLAS naming). *)

val scale : float -> t -> t
(** [scale a v] is a fresh vector [a*v]. *)

val scale_inplace : float -> t -> unit

val neg : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Elementwise (Hadamard) product. *)

val div : t -> t -> t
(** Elementwise quotient. *)

val add_into : t -> t -> t -> unit
(** [add_into x y dst] writes [x + y] into preallocated [dst] (which may
    alias either input); allocation-free, bit-identical to {!add}. *)

val sub_into : t -> t -> t -> unit
(** In-place twin of {!sub}. *)

val mul_into : t -> t -> t -> unit
(** In-place twin of {!mul} (Hadamard product into [dst]). *)

val copy_into : t -> t -> unit
(** [copy_into src dst] blits [src] over equal-length [dst]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val add_inplace : t -> t -> unit
(** [add_inplace x y] performs [y <- x + y]. *)

val sub_inplace : t -> t -> unit
(** [sub_inplace x y] performs [y <- y - x]. *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val sum : t -> float
(** Kahan-compensated sum of entries. *)

val mean : t -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty vector. *)

val min : t -> float
(** Smallest entry; raises [Invalid_argument] on the empty vector. *)

val max : t -> float
(** Largest entry; raises [Invalid_argument] on the empty vector. *)

val argmax_abs : t -> int
(** Index of the entry with the largest absolute value. *)

val dist2 : t -> t -> float
(** Euclidean distance between two vectors. *)

val rel_error : t -> t -> float
(** [rel_error approx exact] is [||approx - exact||_2 / ||exact||_2]
    (eq. 59 of the paper). Returns the absolute norm of [approx] when
    [exact] is the zero vector. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison with absolute-plus-relative tolerance
    (default [tol = 1e-9]). Vectors of different lengths are unequal. *)

val concat : t list -> t

val slice : t -> int -> int -> t
(** [slice v pos len] copies [len] entries starting at [pos]. *)

val pp : Format.formatter -> t -> unit
(** Prints like [[1.5; 2; ...]] (truncates long vectors). *)
