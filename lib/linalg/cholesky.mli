(** Cholesky factorization of symmetric positive-definite matrices.

    This is the "conventional solver" the paper's fast solver is benchmarked
    against (Sec. IV-C, refs to Golub & Van Loan). *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when a non-positive pivot is
    encountered. *)

type t
(** A computed factorization [a = l * l^T]. *)

val factorize : Mat.t -> t
(** Factorizes a symmetric positive-definite matrix. Only the lower triangle
    (including the diagonal) of the input is read. When an observability
    sink is live ({!Obs.live}) each call records latency, a factorization
    counter and the minimum pivot; the numerical path is unchanged.
    @raise Not_positive_definite if a pivot is [<= 0] or not finite. *)

val pivot_extrema : t -> float * float
(** [(min, max)] of the factor's diagonal pivots. *)

val cond_estimate : t -> float
(** Cheap 2-norm condition estimate of [a = l l^T] from the pivot spread,
    [(max pivot / min pivot)^2] — a lower bound on [cond_2 a]. *)

val factor : t -> Mat.t
(** The lower-triangular factor [l]. *)

val of_factor : Mat.t -> t
(** [of_factor l] wraps an existing lower-triangular factor as the
    factorization of [l * l^T] (the strict upper triangle is ignored).
    Used to resume solves from a factor restored from disk.
    @raise Invalid_argument if [l] is not square or a diagonal entry is
    not strictly positive and finite. *)

val solve : t -> Vec.t -> Vec.t
(** [solve f b] solves [a * x = b] by forward and back substitution. *)

val solve_into : t -> Vec.t -> y:Vec.t -> dst:Vec.t -> unit
(** [solve_into f b ~y ~dst] is {!solve} into preallocated buffers:
    [y] receives the forward-substitution intermediate and [dst] the
    solution (both of length at least [n]; only the first [n] entries
    are written). Allocation-free and bit-identical to {!solve}. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Column-wise {!solve}: solves [a * x = b] for a matrix right-hand side. *)

val inverse : t -> Mat.t
(** Explicit inverse of [a] (used only in tests and small problems). *)

val log_det : t -> float
(** Log-determinant of [a], i.e. [2 * sum (log l_ii)]. *)

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot convenience: factorize then solve. *)
