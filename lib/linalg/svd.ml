type t = { u : Mat.t; s : Vec.t; v : Mat.t }

(* One-sided Jacobi: orthogonalize the columns of a working copy of [a]
   by plane rotations, accumulating them into [v]. On convergence the
   columns of the work matrix are u_i * s_i. *)
let decompose ?(max_sweeps = 60) ?(tol = 1e-12) a =
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Svd.decompose: need rows >= cols";
  let w = Mat.copy a in
  let v = Mat.identity n in
  let col_dot i j =
    let acc = ref 0. in
    for k = 0 to m - 1 do
      acc := !acc +. (Mat.get w k i *. Mat.get w k j)
    done;
    !acc
  in
  let rotate_cols mat p q c s =
    let rows = Mat.rows mat in
    for k = 0 to rows - 1 do
      let xp = Mat.get mat k p and xq = Mat.get mat k q in
      Mat.set mat k p ((c *. xp) -. (s *. xq));
      Mat.set mat k q ((s *. xp) +. (c *. xq))
    done
  in
  let converged = ref false and sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let app = col_dot p p and aqq = col_dot q q and apq = col_dot p q in
        if Float.abs apq > tol *. sqrt (app *. aqq) +. 1e-300 then begin
          converged := false;
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          rotate_cols w p q c s;
          rotate_cols v p q c s
        end
      done
    done
  done;
  (* extract singular values with stride-aware column norms — no
     intermediate column copy ([Mat.col_nrm2] runs the same two-pass
     scaled algorithm as [Vec.nrm2], so values are bit-identical) *)
  let s = Array.init n (fun j -> Mat.col_nrm2 w j) in
  (* sort descending, permuting u and v columns *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare s.(j) s.(i)) order;
  let sorted_s = Array.map (fun i -> s.(i)) order in
  let u = Mat.create m n in
  let v_sorted = Mat.create n n in
  (* normalize straight into [u] and permute straight into [v_sorted]:
     entrywise [(1 / norm) *. w_kj], the same product [Vec.scale]
     computed on the copied column *)
  Array.iteri
    (fun dst src ->
      let norm = s.(src) in
      if norm > 0. then begin
        let inv = 1. /. norm in
        for k = 0 to m - 1 do
          Mat.set u k dst (inv *. Mat.get w k src)
        done
      end;
      for k = 0 to n - 1 do
        Mat.set v_sorted k dst (Mat.get v k src)
      done)
    order;
  { u; s = sorted_s; v = v_sorted }

let reconstruct { u; s; v } =
  Mat.gemm (Mat.mul_cols u s) (Mat.transpose v)

let rank ?(tol = 1e-10) { s; _ } =
  if Array.length s = 0 then 0
  else begin
    let smax = s.(0) in
    Array.fold_left (fun acc x -> if x > tol *. smax then acc + 1 else acc) 0 s
  end

let condition_number { s; _ } =
  let n = Array.length s in
  if n = 0 then invalid_arg "Svd.condition_number: empty";
  if s.(n - 1) = 0. then infinity else s.(0) /. s.(n - 1)

let pseudo_inverse ?(tol = 1e-10) { u; s; v } =
  let smax = if Array.length s = 0 then 0. else s.(0) in
  let s_inv =
    Array.map (fun x -> if x > tol *. smax then 1. /. x else 0.) s
  in
  Mat.gemm (Mat.mul_cols v s_inv) (Mat.transpose u)

let solve_min_norm ?tol f b =
  Mat.gemv (pseudo_inverse ?tol f) b
