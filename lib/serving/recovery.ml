(* Restart-time recovery: sweep interrupted-save temp files, re-verify
   every artifact checksum, replay the journal tail for updates whose
   artifact save never completed, and leave the journal clean. *)

type report = {
  scanned : int;
  verified : int;
  corrupt : (string * string) list;
  temps_removed : int;
  replayed : int;
  discarded : int;
  replay_errors : (string * string) list;
  journal_tail_error : string option;
}

let m_recovered =
  Obs.Metrics.counter
    ~help:"Journaled updates replayed into the store at recovery"
    "bmf_server_recovered_updates_total"

let meta_key (m : Artifact.meta) =
  Printf.sprintf "%s/%s scale=%s seed=%d" m.circuit m.metric m.scale m.seed

let replay_entry ~durability ~root (e : Journal.entry) =
  match Store.load ~root e.Journal.meta with
  | Error msg ->
      (* no base artifact to apply on — nothing replayable; the entry
         pre-dated an artifact that has since vanished or never landed *)
      `Discarded (Printf.sprintf "no base artifact (%s)" msg)
  | Ok art ->
      if art.Artifact.rev > e.base_rev then
        (* the save completed before the crash: already reflected *)
        `Discarded
          (Printf.sprintf "already applied (rev %d > base %d)"
             art.Artifact.rev e.base_rev)
      else if art.Artifact.rev < e.base_rev then
        `Failed
          (Printf.sprintf "artifact rev %d behind journal base %d"
             art.Artifact.rev e.base_rev)
      else begin
        match
          let inc = Incremental.of_artifact art in
          Incremental.add_batch inc ~xs:e.xs ~f:e.f;
          let updated = Incremental.to_artifact inc in
          ignore (Store.save ~durability ~root updated)
        with
        | () -> `Replayed
        | exception exn -> `Failed (Printexc.to_string exn)
      end

let recover ?(durability = `Durable) ~root () =
  Obs.Trace.with_span ~cat:"serving" "recovery" @@ fun sp ->
  (* 1. orphaned temp files from saves that died before their rename —
     never visible to readers, but swept so they cannot accumulate *)
  let temps = Store.list_temp_files ~root in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) temps;
  (* 2. full store verification (decode + checksum of every artifact) *)
  let entries = Store.list ~root in
  let corrupt =
    List.filter_map
      (fun (e : Store.entry) ->
        match e.status with
        | Ok _ -> None
        | Error msg -> Some (e.file, msg))
      entries
  in
  (* 3. journal replay: entries whose artifact save did not complete *)
  let journal, journal_tail_error = Journal.read ~root in
  let replayed = ref 0 and discarded = ref 0 in
  let replay_errors = ref [] in
  List.iter
    (fun (e : Journal.entry) ->
      match replay_entry ~durability ~root e with
      | `Replayed -> incr replayed
      | `Discarded _ -> incr discarded
      | `Failed msg ->
          replay_errors := (meta_key e.Journal.meta, msg) :: !replay_errors)
    journal;
  (* 4. the journal's work is done (replayed or provably stale):
     reset it to a clean header so the next crash starts from zero *)
  if Sys.file_exists (Journal.file ~root) then
    Journal.close (Journal.open_ ~durability ~root ());
  Obs.Metrics.inc ~by:(float_of_int !replayed) m_recovered;
  let report =
    {
      scanned = List.length entries;
      verified = List.length entries - List.length corrupt;
      corrupt;
      temps_removed = List.length temps;
      replayed = !replayed;
      discarded = !discarded;
      replay_errors = List.rev !replay_errors;
      journal_tail_error;
    }
  in
  Obs.Trace.set_attr sp "scanned" (Obs.Trace.Int report.scanned);
  Obs.Trace.set_attr sp "replayed" (Obs.Trace.Int report.replayed);
  report

let clean r = r.corrupt = [] && r.replay_errors = []

let summary r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "recovery: %d artifact(s) scanned, %d verified, %d corrupt; %d temp \
     file(s) removed; journal: %d replayed, %d discarded"
    r.scanned r.verified (List.length r.corrupt) r.temps_removed r.replayed
    r.discarded;
  (match r.journal_tail_error with
  | None -> ()
  | Some e -> Printf.bprintf b "; torn tail discarded (%s)" e);
  List.iter
    (fun (f, msg) -> Printf.bprintf b "\n  corrupt: %s: %s" f msg)
    r.corrupt;
  List.iter
    (fun (k, msg) -> Printf.bprintf b "\n  replay failed: %s: %s" k msg)
    r.replay_errors;
  Buffer.contents b
