(* Atomic-swap model snapshots. Design notes:

   - Views are immutable association lists (registries are a handful of
     models, not thousands); replacing one model copies the spine but
     shares every untouched entry, so a publish is O(models) tiny
     allocations and readers never see a half-updated table.
   - The handle is a single [Atomic.t]. [Atomic.set] has release
     semantics and [Atomic.get] acquire semantics in the OCaml 5 memory
     model, so an entry (artifact + pre-computed predictor) is fully
     visible to any reader that observes the view containing it.
   - Single writer by contract: the daemon's writer domain is the only
     mutator, which is what keeps version numbers strictly increasing
     without a CAS loop. *)

type entry = { artifact : Artifact.t; predictor : Predictor.t }

type view = { version : int; table : (Artifact.meta * entry) list }

type t = view Atomic.t

let create () : t = Atomic.make { version = 0; table = [] }

let current (t : t) = Atomic.get t

let version v = v.version

let find v meta = List.assoc_opt meta v.table

let models v = v.table

let entry_of artifact =
  { artifact; predictor = Predictor.of_artifact artifact }

let publish (t : t) (artifact : Artifact.t) =
  let e = entry_of artifact in
  let v = Atomic.get t in
  let table =
    (artifact.Artifact.meta, e)
    :: List.filter (fun (m, _) -> m <> artifact.Artifact.meta) v.table
  in
  Atomic.set t { version = v.version + 1; table };
  e

let drop (t : t) meta =
  let v = Atomic.get t in
  Atomic.set t
    {
      version = v.version + 1;
      table = List.filter (fun (m, _) -> m <> meta) v.table;
    }

let load_all ~root (t : t) =
  let v = Atomic.get t in
  let table =
    Store.list ~root
    |> List.filter_map (fun (e : Store.entry) ->
           match e.status with
           | Error _ -> None
           | Ok a -> Some (a.Artifact.meta, entry_of a))
  in
  Atomic.set t { version = v.version + 1; table };
  List.length table
