(** Restart-time store recovery.

    Run before serving from a registry that may have been killed
    mid-write. In order: removes orphaned save temp files, re-verifies
    the checksum of every stored artifact, replays any {!Journal} tail
    whose artifact save did not complete (entries whose base revision
    still matches the stored artifact; entries the store already
    reflects are discarded), and resets the journal. Replays increment
    the [bmf_server_recovered_updates_total] metric.

    Invariant delivered (and enforced by the kill−9 harness in [test/]
    and CI): after recovery every artifact passes verification, every
    {e acknowledged} update is present, and no torn artifact or journal
    entry is observable. *)

type report = {
  scanned : int;  (** Artifact files examined. *)
  verified : int;  (** Artifacts that passed checksum verification. *)
  corrupt : (string * string) list;  (** (file, error) failures. *)
  temps_removed : int;  (** Orphaned [.*.tmp.*] files swept. *)
  replayed : int;  (** Journal entries applied to the store. *)
  discarded : int;
      (** Journal entries already reflected by the store (the crash hit
          after the artifact save) or with no base artifact. *)
  replay_errors : (string * string) list;
      (** (model key, error) — entries that should have replayed but
          failed; the store needs operator attention. *)
  journal_tail_error : string option;
      (** Why a torn journal tail was discarded, when one was. *)
}

val recover : ?durability:Store.durability -> root:string -> unit -> report
(** Full recovery pass over [root]. [durability] governs the replayed
    artifact saves (default [`Durable]). Idempotent: a second run
    scans, replays nothing and changes nothing. *)

val clean : report -> bool
(** No corrupt artifacts and no replay errors. *)

val summary : report -> string
(** Human-readable multi-line description (the [repro recover]
    output). *)
