(* Online posterior-calibration telemetry.

   Every accepted [update] carries observed late-stage responses for
   points the model has just predicted with a full predictive
   distribution. Scoring those observations against the PRE-update
   posterior — mean mu, predictive std sigma — gives standardized
   residuals z = (f - mu) / sigma whose distribution is ~N(0,1) when
   the fused model is calibrated. A rolling window per model turns the
   stream into coverage-at-k*sigma and RMSE gauges: coverage far below
   the Gaussian reference (68% / 95% / 99.7%) flags over-confidence,
   far above flags a too-wide posterior, and a drifting RMSE flags a
   stale early-stage prior.

   Pure telemetry: recording never touches model state, and every entry
   point is gated on [Obs.Metrics.enabled] so uninstrumented runs do no
   work at all (the bit-identity bar of the obs layer). *)

type window = {
  z : float array; (* standardized residuals, ring *)
  r : float array; (* raw residuals, ring *)
  mutable head : int;
  mutable count : int; (* total recorded; min count (Array.length z) live *)
}

type stats = {
  samples : int;  (* total ever recorded *)
  window : int;   (* samples currently in the window *)
  coverage1 : float;
  coverage2 : float;
  coverage3 : float;
  rmse : float;
  z_mean : float;
}

let default_window = 256

let window_size = ref default_window

let set_window n = window_size := Stdlib.max 1 n

let mu = Mutex.create ()

let windows : (Artifact.meta, window) Hashtbl.t = Hashtbl.create 8

let model_label (m : Artifact.meta) =
  Printf.sprintf "%s/%s@%s#%d" m.circuit m.metric m.scale m.seed

let reset () =
  Mutex.lock mu;
  Hashtbl.reset windows;
  Mutex.unlock mu

let get_window meta =
  match Hashtbl.find_opt windows meta with
  | Some w -> w
  | None ->
      let n = !window_size in
      let w = { z = Array.make n 0.; r = Array.make n 0.; head = 0; count = 0 } in
      Hashtbl.add windows meta w;
      w

let push w ~z ~r =
  w.z.(w.head) <- z;
  w.r.(w.head) <- r;
  w.head <- (w.head + 1) mod Array.length w.z;
  w.count <- w.count + 1

let stats_of_window w =
  let live = Stdlib.min w.count (Array.length w.z) in
  if live = 0 then
    {
      samples = 0;
      window = 0;
      coverage1 = nan;
      coverage2 = nan;
      coverage3 = nan;
      rmse = nan;
      z_mean = nan;
    }
  else begin
    let c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
    let sq = ref 0. and zsum = ref 0. in
    for i = 0 to live - 1 do
      let z = Float.abs w.z.(i) in
      if z <= 1. then incr c1;
      if z <= 2. then incr c2;
      if z <= 3. then incr c3;
      sq := !sq +. (w.r.(i) *. w.r.(i));
      zsum := !zsum +. w.z.(i)
    done;
    let n = float_of_int live in
    {
      samples = w.count;
      window = live;
      coverage1 = float_of_int !c1 /. n;
      coverage2 = float_of_int !c2 /. n;
      coverage3 = float_of_int !c3 /. n;
      rmse = sqrt (!sq /. n);
      z_mean = !zsum /. n;
    }
  end

let stats meta =
  Mutex.lock mu;
  let s =
    match Hashtbl.find_opt windows meta with
    | Some w -> stats_of_window w
    | None -> stats_of_window { z = [||]; r = [||]; head = 0; count = 0 }
  in
  Mutex.unlock mu;
  s

let publish meta s =
  let labels = [ ("model", model_label meta) ] in
  let g name help =
    Obs.Metrics.gauge ~help ~labels name
  in
  Obs.Metrics.set
    (g "bmf_calibration_coverage_1s"
       "Fraction of windowed standardized residuals with |z| <= 1 (Gaussian reference 0.683)")
    s.coverage1;
  Obs.Metrics.set
    (g "bmf_calibration_coverage_2s"
       "Fraction of windowed standardized residuals with |z| <= 2 (Gaussian reference 0.954)")
    s.coverage2;
  Obs.Metrics.set
    (g "bmf_calibration_coverage_3s"
       "Fraction of windowed standardized residuals with |z| <= 3 (Gaussian reference 0.997)")
    s.coverage3;
  Obs.Metrics.set
    (g "bmf_calibration_rmse"
       "Rolling RMSE of raw residuals (observed - predicted mean) over the calibration window")
    s.rmse;
  Obs.Metrics.set
    (g "bmf_calibration_zmean"
       "Rolling mean standardized residual (bias indicator; 0 when centered)")
    s.z_mean;
  Obs.Metrics.set
    (Obs.Metrics.gauge
       ~help:"Total late-stage observations scored against the pre-update posterior"
       ~labels "bmf_calibration_samples")
    (float_of_int s.samples)

(* Score one update batch: [mean]/[std] are the pre-update posterior's
   predictions at the update's sample points, [observed] the late-stage
   values the update carries. Rows with a non-finite or non-positive
   predictive std are scored as infinitely surprising (z = +inf): a
   collapsed posterior that then sees data is exactly the
   over-confidence this telemetry exists to expose. *)
let record ~meta ~mean ~std ~observed =
  if Obs.Metrics.enabled () then begin
    let n = Array.length observed in
    if Array.length mean <> n || Array.length std <> n then
      invalid_arg "Calibration.record: length mismatch";
    Mutex.lock mu;
    let w = get_window meta in
    for i = 0 to n - 1 do
      let r = observed.(i) -. mean.(i) in
      (* a degenerate sigma is always a coverage miss — even a zero
         residual: a posterior claiming certainty earned no credit *)
      let z =
        if Float.is_finite std.(i) && std.(i) > 0. then r /. std.(i)
        else infinity
      in
      push w ~z ~r
    done;
    let s = stats_of_window w in
    Mutex.unlock mu;
    publish meta s
  end

(* Convenience for the daemon/replication apply path: run the pre-update
   predictor over the update's sample matrix and score the batch. *)
let record_update ~predictor ~meta ~xs ~f =
  if Obs.Metrics.enabled () then
    match Predictor.predict_with_std predictor xs with
    | mean, std -> record ~meta ~mean ~std ~observed:f
    | exception _ -> ()
