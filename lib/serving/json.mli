(** Minimal JSON tree, canonical printer and parser — enough for the
    model artifact codec, with no external dependencies.

    The printer is canonical: fixed field order (as constructed), no
    whitespace, floats via [%.17g] (integers without a fraction part) so
    every IEEE double round-trips exactly. Artifact checksums are
    defined over this canonical text, so [to_string (parse s) = s] for
    any [s] the printer produced. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Canonical rendering.
    @raise Invalid_argument on non-finite numbers (encode those as
    strings upstream). *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an object; [None] on missing field or non-object. *)

val to_float : t -> float option

val to_int : t -> int option
(** Numbers with an integral value only. *)

val to_str : t -> string option

val to_arr : t -> t list option
