(* Test-only fault injection: count down durability-relevant syscalls
   (write, fsync, rename, unlink) and SIGKILL the process when the
   budget runs out. Disarmed — the default — every [step] is a single
   branch on [None], so production paths pay nothing measurable. *)

let env_var = "BMF_CRASH_AFTER_N_WRITES"

(* [None] = disarmed; [Some n] = allow [n] more steps, then die. *)
let budget : int option ref = ref None

let initialized = ref false

let init_from_env () =
  if not !initialized then begin
    initialized := true;
    match Sys.getenv_opt env_var with
    | None -> ()
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> budget := Some n
        | _ ->
            (* A malformed value must not silently disable the harness:
               the crash tests would "pass" without ever crashing. *)
            failwith
              (Printf.sprintf "%s: expected a non-negative integer, got %S"
                 env_var s))
  end

let arm n =
  if n < 0 then invalid_arg "Crashpoint.arm: negative budget";
  initialized := true;
  budget := Some n

let disarm () =
  initialized := true;
  budget := None

let reset () =
  initialized := false;
  budget := None

let armed () =
  init_from_env ();
  Option.is_some !budget

let step () =
  init_from_env ();
  match !budget with
  | None -> ()
  | Some 0 ->
      (* SIGKILL cannot be caught: the process disappears exactly as it
         would on power loss, with no atexit/finalizer cleanup. *)
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      (* unreachable, but keep the typechecker honest if kill returns *)
      exit 137
  | Some n -> budget := Some (n - 1)
