let default_root () =
  match Sys.getenv_opt "BMF_MODEL_DIR" with Some d -> d | None -> "models"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    s

let extension = function Artifact.Json -> ".bmfa.json" | Artifact.Binary -> ".bmfa"

let filename (meta : Artifact.meta) format =
  Printf.sprintf "%s__%s__%s__s%d%s" (sanitize meta.circuit)
    (sanitize meta.metric) (sanitize meta.scale) meta.seed (extension format)

let path ~root meta format = Filename.concat root (filename meta format)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let m_bytes_written =
  Obs.Metrics.counter ~help:"Artifact bytes written to the store"
    "bmf_store_bytes_written_total"

let m_bytes_read =
  Obs.Metrics.counter ~help:"Artifact bytes read from the store"
    "bmf_store_bytes_read_total"

let m_saves =
  Obs.Metrics.counter ~help:"Artifacts saved" "bmf_store_saves_total"

let m_loads =
  Obs.Metrics.counter ~help:"Artifact load attempts" "bmf_store_loads_total"

let m_corrupt =
  Obs.Metrics.counter ~help:"Artifact loads that failed verification"
    "bmf_store_corrupt_total"

let m_verify_seconds =
  Obs.Metrics.histogram
    ~help:"Artifact decode + checksum verification latency (seconds)"
    "bmf_store_verify_seconds"

let save ?(format = Artifact.Binary) ~root artifact =
  mkdir_p root;
  let file = path ~root artifact.Artifact.meta format in
  Obs.Trace.with_span ~cat:"serving" "store_save" @@ fun sp ->
  let data = Artifact.to_string format artifact in
  (* Crash/race safety: write the full payload to a private temp file in
     the same directory, then atomically rename over the key. A reader
     (or a running server's model cache) always sees either the previous
     complete artifact or the new complete artifact — never a torn one. *)
  let tmp =
    Filename.concat root
      (Printf.sprintf ".%s.tmp.%d" (filename artifact.Artifact.meta format)
         (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc data)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename tmp file
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* only after the new artifact is durable, drop a stale copy in the
     other format so a key never resolves to an outdated revision *)
  let other =
    path ~root artifact.Artifact.meta
      (match format with Artifact.Json -> Artifact.Binary | Artifact.Binary -> Artifact.Json)
  in
  if Sys.file_exists other then (try Sys.remove other with Sys_error _ -> ());
  Obs.Trace.set_attr sp "file" (Obs.Trace.Str file);
  Obs.Trace.set_attr sp "bytes" (Obs.Trace.Int (String.length data));
  Obs.Metrics.inc ~by:(float_of_int (String.length data)) m_bytes_written;
  Obs.Metrics.inc m_saves;
  file

let find ~root meta =
  List.find_opt Sys.file_exists
    [ path ~root meta Artifact.Binary; path ~root meta Artifact.Json ]

(* Read + decode one artifact file, measuring payload size and the
   decode/checksum-verify time (reported by [repro models] and the store
   metrics). *)
let load_file file =
  Obs.Trace.with_span ~cat:"serving" "store_load" @@ fun sp ->
  Obs.Trace.set_attr sp "file" (Obs.Trace.Str file);
  Obs.Metrics.inc m_loads;
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Obs.Metrics.inc m_corrupt;
      (Error ("artifact: " ^ msg), 0, 0.)
  | contents ->
      let bytes = String.length contents in
      Obs.Trace.set_attr sp "bytes" (Obs.Trace.Int bytes);
      Obs.Metrics.inc ~by:(float_of_int bytes) m_bytes_read;
      let t0 = Obs.Clock.now_s () in
      let status = Artifact.of_string contents in
      let verify_seconds = Obs.Clock.now_s () -. t0 in
      Obs.Metrics.observe m_verify_seconds verify_seconds;
      if Result.is_error status then Obs.Metrics.inc m_corrupt;
      (status, bytes, verify_seconds)

let load ~root meta =
  match find ~root meta with
  | Some file ->
      let status, _, _ = load_file file in
      status
  | None ->
      Error
        (Printf.sprintf
           "store: no artifact for %s/%s scale=%s seed=%d under %s"
           meta.Artifact.circuit meta.Artifact.metric meta.Artifact.scale
           meta.Artifact.seed root)

type entry = {
  file : string;
  format : Artifact.format;
  bytes : int;
  verify_seconds : float;
  status : (Artifact.t, string) result;
}

let list ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun name ->
           let format =
             if Filename.check_suffix name ".bmfa.json" then Some Artifact.Json
             else if Filename.check_suffix name ".bmfa" then Some Artifact.Binary
             else None
           in
           Option.map
             (fun format ->
               let file = Filename.concat root name in
               let status, bytes, verify_seconds = load_file file in
               { file; format; bytes; verify_seconds; status })
             format)

let verify ~root meta =
  match load ~root meta with Ok _ -> Ok () | Error e -> Error e
