let default_root () =
  match Sys.getenv_opt "BMF_MODEL_DIR" with Some d -> d | None -> "models"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    s

let extension = function Artifact.Json -> ".bmfa.json" | Artifact.Binary -> ".bmfa"

let filename (meta : Artifact.meta) format =
  Printf.sprintf "%s__%s__%s__s%d%s" (sanitize meta.circuit)
    (sanitize meta.metric) (sanitize meta.scale) meta.seed (extension format)

let path ~root meta format = Filename.concat root (filename meta format)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ?(format = Artifact.Binary) ~root artifact =
  mkdir_p root;
  let file = path ~root artifact.Artifact.meta format in
  (* drop a stale copy in the other format so a key never resolves to an
     outdated revision *)
  let other =
    path ~root artifact.Artifact.meta
      (match format with Artifact.Json -> Artifact.Binary | Artifact.Binary -> Artifact.Json)
  in
  if Sys.file_exists other then Sys.remove other;
  Artifact.save ~format file artifact;
  file

let find ~root meta =
  List.find_opt Sys.file_exists
    [ path ~root meta Artifact.Binary; path ~root meta Artifact.Json ]

let load ~root meta =
  match find ~root meta with
  | Some file -> Artifact.load file
  | None ->
      Error
        (Printf.sprintf
           "store: no artifact for %s/%s scale=%s seed=%d under %s"
           meta.Artifact.circuit meta.Artifact.metric meta.Artifact.scale
           meta.Artifact.seed root)

type entry = {
  file : string;
  format : Artifact.format;
  status : (Artifact.t, string) result;
}

let list ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun name ->
           let format =
             if Filename.check_suffix name ".bmfa.json" then Some Artifact.Json
             else if Filename.check_suffix name ".bmfa" then Some Artifact.Binary
             else None
           in
           Option.map
             (fun format ->
               let file = Filename.concat root name in
               { file; format; status = Artifact.load file })
             format)

let verify ~root meta =
  match load ~root meta with Ok _ -> Ok () | Error e -> Error e
