let default_root () =
  match Sys.getenv_opt "BMF_MODEL_DIR" with Some d -> d | None -> "models"

type durability = [ `Fast | `Durable ]

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    s

let extension = function Artifact.Json -> ".bmfa.json" | Artifact.Binary -> ".bmfa"

(* [sanitize] is lossy ("gain+bw" and "gain_bw" both map to "gain_bw",
   and a circuit named "a__b" collides with the field separator), so the
   filename also carries a short digest of the raw key triple. NUL
   separators make the digest input unambiguous — no raw field can
   contain one. *)
let key_digest (meta : Artifact.meta) =
  let raw =
    String.concat "\x00" [ meta.circuit; meta.metric; meta.scale ]
  in
  String.sub (Printf.sprintf "%016Lx" (Artifact.fnv64 raw)) 0 8

let filename (meta : Artifact.meta) format =
  Printf.sprintf "%s__%s__%s__s%d__h%s%s" (sanitize meta.circuit)
    (sanitize meta.metric) (sanitize meta.scale) meta.seed (key_digest meta)
    (extension format)

(* Pre-digest filename (PR 4 and earlier); still probed by [find] so
   stores written by old builds keep loading. *)
let legacy_filename (meta : Artifact.meta) format =
  Printf.sprintf "%s__%s__%s__s%d%s" (sanitize meta.circuit)
    (sanitize meta.metric) (sanitize meta.scale) meta.seed (extension format)

let path ~root meta format = Filename.concat root (filename meta format)

let legacy_path ~root meta format =
  Filename.concat root (legacy_filename meta format)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let m_bytes_written =
  Obs.Metrics.counter ~help:"Artifact bytes written to the store"
    "bmf_store_bytes_written_total"

let m_bytes_read =
  Obs.Metrics.counter ~help:"Artifact bytes read from the store"
    "bmf_store_bytes_read_total"

let m_saves =
  Obs.Metrics.counter ~help:"Artifacts saved" "bmf_store_saves_total"

let m_loads =
  Obs.Metrics.counter ~help:"Artifact load attempts" "bmf_store_loads_total"

let m_corrupt =
  Obs.Metrics.counter ~help:"Artifact loads that failed verification"
    "bmf_store_corrupt_total"

let m_verify_seconds =
  Obs.Metrics.histogram
    ~help:"Artifact decode + checksum verification latency (seconds)"
    "bmf_store_verify_seconds"

let m_fsync_seconds =
  Obs.Metrics.histogram
    ~help:"Time spent in fsync (file + directory) per durable save"
    "bmf_store_fsync_seconds"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

(* Make a completed rename durable: fsync the directory so the new
   directory entry itself survives power loss (POSIX does not promise
   this from the file fsync alone). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let remove_if_exists file =
  if Sys.file_exists file then begin
    Crashpoint.step ();
    try Sys.remove file with Sys_error _ -> ()
  end

let save ?(format = Artifact.Binary) ?(durability = `Fast) ~root artifact =
  mkdir_p root;
  let file = path ~root artifact.Artifact.meta format in
  Obs.Trace.with_span ~cat:"serving" "store_save" @@ fun sp ->
  let data = Artifact.to_string format artifact in
  (* Crash/race safety: write the full payload to a private temp file in
     the same directory, then atomically rename over the key. A reader
     (or a running server's model cache) always sees either the previous
     complete artifact or the new complete artifact — never a torn one.
     Under [`Durable] the temp file is fsynced before the rename and the
     directory after it, so the new revision also survives power loss;
     [`Fast] leaves flushing to the kernel (same guarantees as PR 4). *)
  let tmp =
    Filename.concat root
      (Printf.sprintf ".%s.tmp.%d" (filename artifact.Artifact.meta format)
         (Unix.getpid ()))
  in
  let fsync_s = ref 0. in
  let timed_fsync fd =
    let t0 = Obs.Clock.now_s () in
    Unix.fsync fd;
    fsync_s := !fsync_s +. (Obs.Clock.now_s () -. t0)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         Crashpoint.step ();
         write_all fd data;
         match durability with
         | `Fast -> ()
         | `Durable ->
             Crashpoint.step ();
             timed_fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try
     Crashpoint.step ();
     Sys.rename tmp file
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (match durability with
  | `Fast -> ()
  | `Durable ->
      Crashpoint.step ();
      let t0 = Obs.Clock.now_s () in
      fsync_dir root;
      fsync_s := !fsync_s +. (Obs.Clock.now_s () -. t0);
      Obs.Metrics.observe m_fsync_seconds !fsync_s);
  (* only after the new artifact is in place, drop stale copies under
     the other codec's name and under the pre-digest legacy names so a
     key never resolves to an outdated revision *)
  let other =
    match format with
    | Artifact.Json -> Artifact.Binary
    | Artifact.Binary -> Artifact.Json
  in
  remove_if_exists (path ~root artifact.Artifact.meta other);
  remove_if_exists (legacy_path ~root artifact.Artifact.meta Artifact.Binary);
  remove_if_exists (legacy_path ~root artifact.Artifact.meta Artifact.Json);
  Obs.Trace.set_attr sp "file" (Obs.Trace.Str file);
  Obs.Trace.set_attr sp "bytes" (Obs.Trace.Int (String.length data));
  Obs.Metrics.inc ~by:(float_of_int (String.length data)) m_bytes_written;
  Obs.Metrics.inc m_saves;
  file

let find ~root meta =
  List.find_opt Sys.file_exists
    [
      path ~root meta Artifact.Binary;
      path ~root meta Artifact.Json;
      legacy_path ~root meta Artifact.Binary;
      legacy_path ~root meta Artifact.Json;
    ]

(* Read + decode one artifact file, measuring payload size and the
   decode/checksum-verify time (reported by [repro models] and the store
   metrics). *)
let load_file file =
  Obs.Trace.with_span ~cat:"serving" "store_load" @@ fun sp ->
  Obs.Trace.set_attr sp "file" (Obs.Trace.Str file);
  Obs.Metrics.inc m_loads;
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Obs.Metrics.inc m_corrupt;
      (* Sys_error text is not guaranteed to carry the path; prefix it
         so a failed read is attributable to its store file *)
      let msg =
        if String.length msg >= String.length file
           && String.sub msg 0 (String.length file) = file
        then msg
        else file ^ ": " ^ msg
      in
      (Error ("artifact: " ^ msg), 0, 0.)
  | contents ->
      let bytes = String.length contents in
      Obs.Trace.set_attr sp "bytes" (Obs.Trace.Int bytes);
      Obs.Metrics.inc ~by:(float_of_int bytes) m_bytes_read;
      let t0 = Obs.Clock.now_s () in
      let status = Artifact.of_string contents in
      let verify_seconds = Obs.Clock.now_s () -. t0 in
      Obs.Metrics.observe m_verify_seconds verify_seconds;
      if Result.is_error status then Obs.Metrics.inc m_corrupt;
      (status, bytes, verify_seconds)

let load ~root meta =
  match find ~root meta with
  | Some file ->
      let status, _, _ = load_file file in
      status
  | None ->
      (* name the directory that was searched AND the filename the key
         resolves to — the sanitized key alone is useless when several
         stores (or a mistyped --dir) are in play *)
      Error
        (Printf.sprintf
           "store: no artifact for %s/%s scale=%s seed=%d under %s (expected \
            %s)"
           meta.Artifact.circuit meta.Artifact.metric meta.Artifact.scale
           meta.Artifact.seed root
           (filename meta Artifact.Binary))

type entry = {
  file : string;
  format : Artifact.format;
  bytes : int;
  verify_seconds : float;
  status : (Artifact.t, string) result;
}

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let is_temp name =
  String.length name > 0 && name.[0] = '.' && contains_substring name ".tmp."

let list ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun name ->
           let format =
             if is_temp name then None
             else if Filename.check_suffix name ".bmfa.json" then
               Some Artifact.Json
             else if Filename.check_suffix name ".bmfa" then
               Some Artifact.Binary
             else None
           in
           Option.map
             (fun format ->
               let file = Filename.concat root name in
               let status, bytes, verify_seconds = load_file file in
               { file; format; bytes; verify_seconds; status })
             format)

(* Orphaned temp files: a crash between temp-write and rename leaves a
   [.<name>.tmp.<pid>] behind. They are invisible to [find]/[list] but
   recovery sweeps them out. *)
let list_temp_files ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.filter is_temp
    |> List.map (Filename.concat root)

let verify ~root meta =
  match load ~root meta with Ok _ -> Ok () | Error e -> Error e
