(** Versioned, checksummed on-disk format for a fitted BMF model.

    An artifact captures everything needed to serve a late-stage model
    without refitting: the basis (multi-index terms), the MAP
    coefficients, the prior and its selected hyper-parameter, and the
    K x K Cholesky factor of the Woodbury core
    [C = hyper I + G W^-1 G^T] together with the training design — the
    posterior state that powers both predictive variance
    ({!Predictor}) and exact rank-1 incremental updates
    ({!Incremental}).

    Two codecs share one payload schema: a canonical JSON text form
    (debuggable, diffable) and a compact little-endian binary form
    (~2.5x smaller). Both embed an FNV-1a 64-bit checksum of the
    payload; [load] verifies it and rejects corrupt files. *)

val format_version : int

type meta = { circuit : string; metric : string; scale : string; seed : int }
(** Identity of a fit — the registry key in {!Store}. *)

type t = {
  meta : meta;
  rev : int;  (** Update revision: 0 = initial fit, +1 per [repro update]. *)
  hyper : float;  (** Selected hyper-parameter (sigma_0^2 or eta). *)
  cv_error : float;  (** CV error at selection time ([nan] if unknown). *)
  sigma0_sq : float;  (** Residual noise variance estimate. *)
  basis_dim : int;
  terms : Polybasis.Multi_index.t array;
  prior : Bmf.Prior.t;
  coeffs : Linalg.Vec.t;  (** MAP coefficients, length M. *)
  g : Linalg.Mat.t;  (** Training design matrix, K x M. *)
  f : Linalg.Vec.t;  (** Training responses, length K. *)
  chol : Linalg.Mat.t;
      (** Lower Cholesky factor of [hyper I + G W^-1 G^T], K x K. *)
}

type format = Json | Binary

val of_fit :
  meta:meta ->
  ?rev:int ->
  basis:Polybasis.Basis.t ->
  prior:Bmf.Prior.t ->
  hyper:float ->
  ?cv_error:float ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  unit ->
  t
(** Captures a fit from its raw ingredients. The MAP solve replays
    [Map_solver]'s fast path operation for operation, so [coeffs] is
    bit-identical to [Map_solver.solve ~solver:Fast_woodbury].
    @raise Invalid_argument on dimension mismatches or [hyper <= 0]. *)

val basis : t -> Polybasis.Basis.t
(** Reconstructs the basis from the stored terms. *)

val num_samples : t -> int

val num_terms : t -> int

val method_name : t -> string
(** ["BMF-ZM"] or ["BMF-NZM"], from the stored prior kind. *)

val to_string : format -> t -> string

val of_string : string -> (t, string) result
(** Sniffs the format (binary magic, else JSON), verifies the checksum
    and all structural invariants. *)

val save : ?format:format -> string -> t -> unit
(** Writes to a path. Default format: [Json] when the path ends in
    [.json], [Binary] otherwise. *)

val load : string -> (t, string) result

val fingerprint : Linalg.Vec.t -> string
(** Checksum over the exact IEEE bits of a float vector — used to
    assert bit-identical predictions across save/load and processes. *)

val fnv64 : string -> int64
(** FNV-1a 64-bit hash — the checksum primitive shared by both codecs,
    the {!Store} filename digest and the {!Journal} entry checksums. *)

val checksum_hex : string -> string
(** [fnv64] rendered as 16 lowercase hex digits. *)
