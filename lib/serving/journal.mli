(** Checksummed write-ahead journal for incremental updates.

    Before the daemon applies an [update] to a model, it appends the
    raw samples here and (under [`Durable]) fsyncs; only then does it
    compute the new posterior and save the artifact. Once the artifact
    save is itself durable the journal is truncated. A crash at any
    point therefore leaves one of two recoverable shapes: the journal
    holds the update and the artifact is still at the base revision
    (recovery replays it), or the artifact already advanced (recovery
    discards the entry). Acknowledged updates survive either way.

    On-disk format, mirroring the {!Artifact} binary codec conventions
    (little-endian i64 integers, IEEE-754 float bits, length-prefixed
    strings/arrays): an 8-byte magic ["BMFJRNL1"], then per entry

    {v u64 payload_len | u64 fnv64(payload) | payload v}

    A torn tail — short header, short payload, checksum mismatch or
    undecodable payload — terminates the scan; the intact prefix is
    still returned. *)

type entry = {
  meta : Artifact.meta;
  base_rev : int;
      (** Artifact revision the update applies on top of; the replayed
          artifact gets revision [base_rev + 1]. *)
  xs : Linalg.Mat.t;  (** New sample points, rows x dim. *)
  f : Linalg.Vec.t;  (** New responses, length rows. *)
}

val file : root:string -> string
(** [root/journal.bmfj] — excluded from {!Store.list} by extension. *)

(** {2 Append handle (daemon side)} *)

type t

val open_ : ?durability:Store.durability -> root:string -> unit -> t
(** Opens (creating [root] and the file as needed) and resets the
    journal to a clean header-only state — run {!Recovery.recover}
    {e first}; any tail still present is discarded here. Default
    durability: [`Durable]. *)

val append : t -> entry -> unit
(** Appends one checksummed entry; under [`Durable] the entry is
    fsynced before [append] returns, so the caller may apply the update
    and acknowledge it knowing a crash can no longer lose it. *)

val truncate : t -> unit
(** Drops every journaled entry (call only after the updated artifact
    is durably saved). *)

val entries : t -> int
(** Entries appended since the last {!truncate} (or open). *)

val close : t -> unit

(** {2 Reading (recovery + tests)} *)

val read : root:string -> entry list * string option
(** The longest valid prefix of the journal, plus a description of why
    the tail was discarded (if it was). A missing file is ([], None). *)

val encode_entry : entry -> string
(** The exact on-disk framing of one entry (codec tests). *)

val decode_entries : string -> entry list * string option
(** {!read} over an in-memory byte string (magic included). *)
