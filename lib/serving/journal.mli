(** Checksummed write-ahead journal for incremental updates.

    Before the daemon applies an [update] to a model, it appends the
    raw samples here and (under [`Durable]) fsyncs; only then does it
    compute the new posterior and save the artifact. Once the artifact
    save is itself durable the journal is truncated. A crash at any
    point therefore leaves one of two recoverable shapes: the journal
    holds the update and the artifact is still at the base revision
    (recovery replays it), or the artifact already advanced (recovery
    discards the entry). Acknowledged updates survive either way.

    On-disk format, mirroring the {!Artifact} binary codec conventions
    (little-endian i64 integers, IEEE-754 float bits, length-prefixed
    strings/arrays): an 8-byte magic ["BMFJRNL1"], then per entry

    {v u64 payload_len | u64 fnv64(payload) | payload v}

    A torn tail — short header, short payload, checksum mismatch or
    undecodable payload — terminates the scan; the intact prefix is
    still returned. *)

type entry = {
  meta : Artifact.meta;
  base_rev : int;
      (** Artifact revision the update applies on top of; the replayed
          artifact gets revision [base_rev + 1]. *)
  xs : Linalg.Mat.t;  (** New sample points, rows x dim. *)
  f : Linalg.Vec.t;  (** New responses, length rows. *)
}

val file : root:string -> string
(** [root/journal.bmfj] — excluded from {!Store.list} by extension. *)

(** {2 Append handle (daemon side)} *)

type t

val open_ : ?durability:Store.durability -> root:string -> unit -> t
(** Opens (creating [root] and the file as needed) and resets the
    journal to a clean header-only state — run {!Recovery.recover}
    {e first}; any tail still present is discarded here. Default
    durability: [`Durable]. *)

val append : t -> entry -> unit
(** Appends one checksummed entry; under [`Durable] the entry is
    fsynced before [append] returns, so the caller may apply the update
    and acknowledge it knowing a crash can no longer lose it. *)

val truncate : t -> unit
(** Drops every journaled entry (call only after the updated artifact
    is durably saved). *)

val entries : t -> int
(** Entries appended since the last {!truncate} (or open). *)

val close : t -> unit

(** {2 Reading (recovery + tests)} *)

val read : root:string -> entry list * string option
(** The longest valid prefix of the journal, plus a description of why
    the tail was discarded (if it was). A missing file is ([], None). *)

val encode_entry : entry -> string
(** The exact on-disk framing of one entry (codec tests). *)

val decode_entries : string -> entry list * string option
(** {!read} over an in-memory byte string (magic included). *)

val decode_entry : string -> (entry, string) result
(** Decodes exactly one framed entry ([u64 len | u64 fnv64 | payload],
    nothing before or after), verifying the checksum — the validation a
    replication follower runs on every wire-shipped WAL record. *)

(** {2 Tail reader (replication + tests)}

    Observes entries appended to a live journal by {e another} process.
    The reader tracks a byte offset and, on every {!Tail.poll}, decodes
    any whole entries appended since the last poll. A torn final entry —
    the writer's append racing the read, or a crash mid-append — is left
    pending and returned whole by a later poll once the bytes complete.
    A file shrink (the writer's {!truncate} after a durable artifact
    save, or a journal reset) restarts the reader from the header, so
    entries appended after the reset are delivered from scratch. *)
module Tail : sig
  type t

  val create : root:string -> t
  (** No file access happens until the first {!poll}; a journal that does
      not exist yet simply yields no entries. *)

  val poll : t -> entry list * string option
  (** Whole entries appended since the last poll, in append order, plus a
      diagnostic when the scan parked before end-of-file (torn tail still
      in flight, or a checksum/decoding failure — the latter stalls the
      tail at the bad entry rather than skipping it). A writer-side
      {!truncate} is detected even when the new incarnation has regrown
      past the consumed offset — the consumed prefix is checksummed on
      every poll — and resets the tail to the top, redelivering the new
      incarnation's entries from scratch. *)

  val offset : t -> int
  (** Bytes consumed so far (0 until the header has been verified). *)
end
