(** On-disk model registry: fitted-model artifacts keyed by
    (circuit, metric, scale, seed) — {!Artifact.meta} — in a flat
    directory with self-describing filenames like
    [ro__frequency__default__s20130602__h1a2b3c4d.bmfa]. The [__h…]
    component is a digest of the {e raw} key triple: the human-readable
    fields are sanitized lossily, so without it distinct keys
    ("gain+bw" vs "gain_bw") would collide on one file. One key holds
    at most one artifact; saving replaces any stale copy in the other
    codec and under the pre-digest legacy name. *)

val default_root : unit -> string
(** [$BMF_MODEL_DIR] when set, else ["models"]. *)

type durability = [ `Fast | `Durable ]
(** [`Fast] leaves flushing to the kernel — the file is atomically
    visible but may be lost on power failure until the kernel writes it
    back. [`Durable] fsyncs the temp file before the rename and the
    directory after it, so once {!save} returns the new revision
    survives SIGKILL {e and} power loss. The daemon saves [`Durable];
    benches and one-shot CLI fits default to [`Fast]. *)

val filename : Artifact.meta -> Artifact.format -> string
(** The registry filename for a key (components sanitized, digest
    suffix appended). *)

val save :
  ?format:Artifact.format ->
  ?durability:durability ->
  root:string ->
  Artifact.t ->
  string
(** Persists an artifact under its own key, creating [root] as needed
    (default format [Binary], default durability [`Fast]); returns the
    file path written.

    The write is crash- and race-safe: the payload goes to a private
    temp file in [root] first and is atomically renamed over the key,
    so a concurrent reader — e.g. a running serving daemon reloading
    its model cache while [repro update] saves — can never observe a
    torn artifact. Stale copies (other codec, legacy pre-digest names)
    are removed only after the new file is in place. *)

val find : root:string -> Artifact.meta -> string option
(** The stored file for a key, if present (binary preferred; legacy
    pre-digest filenames are probed after digest-suffixed ones). *)

val load : root:string -> Artifact.meta -> (Artifact.t, string) result
(** Loads and checksum-verifies the artifact for a key. *)

type entry = {
  file : string;
  format : Artifact.format;
  bytes : int;  (** On-disk size of the artifact file. *)
  verify_seconds : float;
      (** Wall-clock decode + checksum-verification time. *)
  status : (Artifact.t, string) result;
      (** [Error] = unreadable or corrupt (checksum mismatch). *)
}

val list : root:string -> entry list
(** Every artifact file in the registry, loaded and verified, sorted by
    filename. An empty or missing root yields []. Temp files from
    interrupted saves are excluded. *)

val list_temp_files : root:string -> string list
(** Orphaned [.*.tmp.*] files left by a save that crashed between the
    temp write and the rename — {!Recovery} removes them. *)

val verify : root:string -> Artifact.meta -> (unit, string) result
(** Checksum verification of one key's stored artifact. *)
