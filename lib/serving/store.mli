(** On-disk model registry: fitted-model artifacts keyed by
    (circuit, metric, scale, seed) — {!Artifact.meta} — in a flat
    directory with self-describing filenames like
    [ro__frequency__default__s20130602.bmfa]. One key holds at most one
    artifact; saving replaces any stale copy in the other codec. *)

val default_root : unit -> string
(** [$BMF_MODEL_DIR] when set, else ["models"]. *)

val filename : Artifact.meta -> Artifact.format -> string
(** The registry filename for a key (components sanitized). *)

val save : ?format:Artifact.format -> root:string -> Artifact.t -> string
(** Persists an artifact under its own key, creating [root] as needed
    (default format [Binary]); returns the file path written.

    The write is crash- and race-safe: the payload goes to a private
    temp file in [root] first and is atomically renamed over the key,
    so a concurrent reader — e.g. a running serving daemon reloading
    its model cache while [repro update] saves — can never observe a
    torn artifact. Any stale copy in the other codec is removed only
    after the new file is in place. *)

val find : root:string -> Artifact.meta -> string option
(** The stored file for a key, if present (binary preferred). *)

val load : root:string -> Artifact.meta -> (Artifact.t, string) result
(** Loads and checksum-verifies the artifact for a key. *)

type entry = {
  file : string;
  format : Artifact.format;
  bytes : int;  (** On-disk size of the artifact file. *)
  verify_seconds : float;
      (** Wall-clock decode + checksum-verification time. *)
  status : (Artifact.t, string) result;
      (** [Error] = unreadable or corrupt (checksum mismatch). *)
}

val list : root:string -> entry list
(** Every artifact file in the registry, loaded and verified, sorted by
    filename. An empty or missing root yields []. *)

val verify : root:string -> Artifact.meta -> (unit, string) result
(** Checksum verification of one key's stored artifact. *)
