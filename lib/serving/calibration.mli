(** Online posterior-calibration telemetry.

    Every accepted [update] carries observed late-stage responses; this
    module scores them against the {e pre-update} posterior as
    standardized residuals [z = (f - mu) / sigma] and maintains a
    per-model rolling window (default 256 samples) from which it
    publishes labeled gauges:

    - [bmf_calibration_coverage_{1s,2s,3s}{model=...}] — fraction of
      windowed residuals with |z| <= k. A calibrated Gaussian posterior
      sits near 0.683 / 0.954 / 0.997; well below flags over-confidence
      (intervals too tight to trust for yield estimation), well above
      an over-wide posterior.
    - [bmf_calibration_rmse{model=...}] — rolling RMSE of the raw
      residuals.
    - [bmf_calibration_zmean{model=...}] — rolling mean z (bias).
    - [bmf_calibration_samples{model=...}] — total observations scored.

    Pure telemetry: nothing here reads back into the model, and every
    entry point is a no-op unless [Obs.Metrics.enabled ()] — serving
    results stay bit-identical with calibration on or off. Domain-safe
    (one internal mutex). *)

type stats = {
  samples : int;  (** Total observations ever recorded for the model. *)
  window : int;  (** Samples currently in the rolling window. *)
  coverage1 : float;  (** Fraction with |z| <= 1 ([nan] when empty). *)
  coverage2 : float;
  coverage3 : float;
  rmse : float;  (** sqrt(mean((observed - mean)^2)) over the window. *)
  z_mean : float;
}

val model_label : Artifact.meta -> string
(** The [model] label value: ["circuit/metric\@scale#seed"]. *)

val set_window : int -> unit
(** Rolling-window length for models created after the call (clamped to
    >= 1; default 256). *)

val record :
  meta:Artifact.meta ->
  mean:float array ->
  std:float array ->
  observed:float array ->
  unit
(** Score one batch of observations against pre-update predictions and
    republish the model's gauges. Rows with a non-finite or
    non-positive [std] count as infinitely surprising (coverage
    misses). No-op when metrics are disabled.
    @raise Invalid_argument on a length mismatch. *)

val record_update :
  predictor:Predictor.t ->
  meta:Artifact.meta ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  unit
(** {!record} for an update batch: predicts mean/std at [xs] with the
    pre-update [predictor] and scores [f] against them. Prediction
    failures (e.g. dimension mismatch on a corrupt entry) are swallowed
    — telemetry must never take down the apply path. *)

val stats : Artifact.meta -> stats
(** Current window statistics for a model (zeros/[nan]s if the model
    has never recorded). *)

val reset : unit -> unit
(** Drop all windows (tests). Registered gauges keep their last
    published values until the next record. *)
