(** Batch prediction against a loaded model artifact.

    The serving hot path: basis evaluation is amortized across the
    whole query batch ({!Polybasis.Basis.design_matrix_blocked}), the
    mean is one [gemv] against the stored coefficients, and predictive
    variance comes from the stored K x K posterior core at
    O(KM + K^2) per query — the M x M covariance of [Bmf.Posterior] is
    never formed. *)

type t

val of_artifact : Artifact.t -> t
(** Pre-computes the serving state (basis, inverse prior weights,
    Cholesky handle on the stored posterior core). *)

val basis : t -> Polybasis.Basis.t

val predict : t -> Linalg.Mat.t -> Linalg.Vec.t
(** Predicted means for every row of a query-point matrix
    (rows = points in the variation space, dimension {!basis} dim).
    @raise Invalid_argument when the batch width is not the model's
    variation-space dimension — validated once per batch, with the
    model name and the expected/actual dimensions in the message. *)

val predict_with_std : t -> Linalg.Mat.t -> Linalg.Vec.t * Linalg.Vec.t
(** Means and predictive standard deviations (includes the observation
    noise [sigma0_sq], matching [Bmf.Posterior.predict]).
    @raise Invalid_argument on a batch-width mismatch, as {!predict}. *)

val predict_point : t -> Linalg.Vec.t -> float
(** Single-point convenience. *)

val predict_point_with_std : t -> Linalg.Vec.t -> float * float

val predict_row : t -> Linalg.Vec.t -> float
(** Prediction from an already-evaluated basis row (length M).
    @raise Invalid_argument on a length mismatch. *)

(** Preallocated serving arena for the allocation-free predict path: a
    capacity x M design arena, the basis evaluation scratch, and the
    per-query variance work vectors. A scratch belongs to one predictor
    value (physical identity) — build a new one after a model swap. *)
module Scratch : sig
  type pred := t

  type t

  val create : ?capacity:int -> pred -> t
  (** [create ?capacity pred] sizes the arena for batches of up to
      [capacity] rows (default 64; grows geometrically if exceeded). *)

  val for_predictor : t -> pred -> bool
  (** Whether this scratch was built for exactly this predictor. *)
end

val predict_into : t -> scratch:Scratch.t -> Linalg.Mat.t -> means:Linalg.Vec.t -> unit
(** Allocation-free twin of {!predict}: writes the first
    [rows xs] entries of [means] (which may be longer). In steady state
    (batch within scratch capacity) performs zero minor-heap float-array
    allocation. Bit-identical to {!predict}.
    @raise Invalid_argument on batch-width mismatch, a foreign scratch,
    or a too-short output buffer. *)

val predict_with_std_into :
  t ->
  scratch:Scratch.t ->
  Linalg.Mat.t ->
  means:Linalg.Vec.t ->
  stds:Linalg.Vec.t ->
  unit
(** Allocation-free twin of {!predict_with_std}; same buffer contract as
    {!predict_into}. Variances run sequentially in the calling domain
    (the serving daemon shards queries across domains above this). *)
