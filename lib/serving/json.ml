type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Canonical printing: fixed field order (the caller's), no whitespace,
   floats via %.17g so every IEEE double round-trips exactly. The
   artifact checksum is defined over this canonical form, so the printer
   must be a pure function of the value. *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if not (Float.is_finite f) then invalid_arg "Json: non-finite number";
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf name;
          Buffer.add_char buf ':';
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser. Accepts standard JSON; numbers are parsed
   with [float_of_string], which reads back everything the printer
   emits. *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
            if st.pos + 4 >= String.length st.src then
              fail st "truncated \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail st "bad \\u escape"
            in
            (* our printer only emits \u for control characters *)
            if code > 0xff then fail st "unsupported \\u escape"
            else Buffer.add_char buf (Char.chr code);
            st.pos <- st.pos + 4
        | _ -> fail st "bad escape");
        advance st;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected number";
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let name = parse_string st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((name, value) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((name, value) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec items acc =
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (value :: acc)
          | Some ']' ->
              advance st;
              List.rev (value :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | value ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok value
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors used by the artifact decoder. *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_arr = function Arr items -> Some items | _ -> None
