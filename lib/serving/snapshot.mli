(** Immutable published view of served models.

    The sharded serving plane needs one read-mostly source of truth for
    "which artifact (and pre-computed predictor) does model X serve
    right now" that any number of reader domains can consult without a
    lock while a single writer domain replaces it. A {!t} is an
    [Atomic.t] holding an immutable {!view}: readers grab the current
    view once per batch with {!current} and every lookup inside that
    batch is coherent; the writer builds a fresh view and publishes it
    with one [Atomic.set] (release semantics in the OCaml 5 memory
    model, so a reader that observes the new view observes the fully
    constructed entries behind it).

    Single-writer contract: {!publish}, {!load_all} and {!drop} must
    only ever be called from one domain at a time (the daemon's writer
    domain). Readers may call {!current}/{!find} from any domain. *)

type entry = {
  artifact : Artifact.t;
  predictor : Predictor.t;  (** Pre-computed serving state for [artifact]. *)
}

type view
(** An immutable model table. Lookups against one view are coherent:
    the set of models and their revisions cannot change underneath a
    reader holding it. *)

type t

val create : unit -> t
(** A handle whose current view is empty (version 0). *)

val current : t -> view
(** The most recently published view ([Atomic.get]). *)

val version : view -> int
(** Monotonically increasing publication counter; bumped by every
    {!publish}, {!load_all} and {!drop}. Two physically distinct views
    never share a version. *)

val find : view -> Artifact.meta -> entry option

val models : view -> (Artifact.meta * entry) list

val publish : t -> Artifact.t -> entry
(** Writer only: swap in a fresh view in which [artifact]'s model serves
    [artifact] (replacing any previous revision). Returns the published
    entry so the writer can reuse the predictor it just paid for. *)

val drop : t -> Artifact.meta -> unit
(** Writer only: swap in a fresh view without the model (no-op when it
    was absent). *)

val load_all : root:string -> t -> int
(** Writer only: publish every loadable artifact in the store under
    [root] in one swap, returning how many models the new view holds.
    Artifacts that fail verification are skipped (the store's recovery
    pass has already reported them). *)
