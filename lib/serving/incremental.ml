(* The Woodbury core C = hyper I + G W^-1 G^T is the only dense object
   whose factorization the MAP solve needs (Map_solver's fast path,
   eq. 53-58). Appending a late-stage sample grows C by one bordering
   row/column, and a Cholesky factor extends under bordering in O(K^2):

     C' = [ C  c ]      L' = [ L      0 ]    with  L l = c
          [ c^T d ]          [ l^T  sqrt(d - l.l) ]

   so folding K' new samples into a fitted model costs
   O(K' (KM + K^2)) — versus O(K^2 M + K^3) for a cold refit — and
   never touches an M x M system. The result is exact: the same C gives
   the same posterior, so coefficients match a cold refit to roundoff
   (test-enforced at 1e-8).

   Storage lives in capacity-doubling Bigarray-backed matrices: [g]
   holds the basis rows (cap x M) and [l] the growing Cholesky factor's
   lower triangle (cap x cap); only the first [k] rows are live. The
   bordering arithmetic reads them through the same row-major order the
   ragged float-array representation used, so update trajectories are
   bit-identical to it. *)

type t = {
  meta : Artifact.meta;
  rev : int;
  cv_error : float;
  basis : Polybasis.Basis.t;
  prior : Bmf.Prior.t;
  hyper : float;
  w_inv : Linalg.Vec.t;
  mutable k : int;
  mutable cap : int; (* row capacity of [g] and [l] *)
  mutable g : Linalg.Mat.t; (* cap x M basis rows; first k live *)
  mutable l : Linalg.Mat.t; (* cap x cap lower-triangular factor *)
  mutable f : float array; (* observed responses *)
  mutable resid : float array; (* f_i - g_i . mu *)
  h_scratch : float array; (* length M: W^-1 row, reused per add_row *)
}

let num_samples t = t.k

let num_terms t = Bmf.Prior.size t.prior

let m_samples =
  Obs.Metrics.counter ~help:"Samples folded in by incremental updates"
    "bmf_incremental_samples_total"

let m_batches =
  Obs.Metrics.counter ~help:"Incremental update batches applied"
    "bmf_incremental_batches_total"

let m_seconds =
  Obs.Metrics.histogram ~help:"Incremental batch update latency (seconds)"
    "bmf_incremental_update_seconds"

let m_pivot_min =
  Obs.Metrics.gauge
    ~help:"Smallest new Cholesky pivot across the last incremental batch"
    "bmf_incremental_pivot_min"

let of_artifact (a : Artifact.t) =
  let k = Artifact.num_samples a in
  let m = Linalg.Mat.cols a.Artifact.g in
  let means = a.Artifact.prior.Bmf.Prior.means in
  let cap = Stdlib.max 8 k in
  let g = Linalg.Mat.create cap m in
  Linalg.Mat.blit_rows ~src:a.Artifact.g ~dst:g ~dst_row:0;
  let l = Linalg.Mat.create cap cap in
  for i = 0 to k - 1 do
    for j = 0 to i do
      Linalg.Mat.set l i j (Linalg.Mat.get a.Artifact.chol i j)
    done
  done;
  let resid =
    Array.init k (fun i ->
        a.Artifact.f.(i) -. Linalg.Mat.row_dot a.Artifact.g i means)
  in
  let f = Array.make cap 0. in
  Array.blit a.Artifact.f 0 f 0 k;
  let resid_buf = Array.make cap 0. in
  Array.blit resid 0 resid_buf 0 k;
  {
    meta = a.Artifact.meta;
    rev = a.Artifact.rev;
    cv_error = a.Artifact.cv_error;
    basis = Artifact.basis a;
    prior = a.Artifact.prior;
    hyper = a.Artifact.hyper;
    w_inv = Array.map (fun w -> 1. /. w) a.Artifact.prior.Bmf.Prior.weights;
    k;
    cap;
    g;
    l;
    f;
    resid = resid_buf;
    h_scratch = Array.make m 0.;
  }

(* Double the row capacity, copying live rows (and for [l], the live
   lower triangle) into the fresh storage. *)
let grow t =
  let m = num_terms t in
  let cap = 2 * t.cap in
  let g = Linalg.Mat.create cap m in
  Linalg.Mat.blit_rows ~src:(Linalg.Mat.view_rows t.g t.k) ~dst:g ~dst_row:0;
  let l = Linalg.Mat.create cap cap in
  for i = 0 to t.k - 1 do
    for j = 0 to i do
      Linalg.Mat.set l i j (Linalg.Mat.get t.l i j)
    done
  done;
  let f = Array.make cap 0. in
  Array.blit t.f 0 f 0 t.k;
  let resid = Array.make cap 0. in
  Array.blit t.resid 0 resid 0 t.k;
  t.cap <- cap;
  t.g <- g;
  t.l <- l;
  t.f <- f;
  t.resid <- resid

let add_row t ~row ~value =
  let m = num_terms t in
  if Array.length row <> m then
    invalid_arg "Incremental.add_row: basis row length mismatch";
  if t.k >= t.cap then grow t;
  let k = t.k in
  (* new bordering column of C: c_i = g_i . (W^-1 row), d = row . (W^-1 row) + hyper *)
  let h = t.h_scratch in
  Linalg.Vec.mul_into t.w_inv row h;
  let diag = Linalg.Vec.dot row h +. t.hyper in
  (* forward solve L l_new = c straight into row k of the factor *)
  let lmat = t.l in
  for i = 0 to k - 1 do
    let acc = ref (Linalg.Mat.row_dot t.g i h) in
    for j = 0 to i - 1 do
      acc := !acc -. (Linalg.Mat.get lmat i j *. Linalg.Mat.get lmat k j)
    done;
    Linalg.Mat.set lmat k i (!acc /. Linalg.Mat.get lmat i i)
  done;
  let d_sq = ref diag in
  for i = 0 to k - 1 do
    let li = Linalg.Mat.get lmat k i in
    d_sq := !d_sq -. (li *. li)
  done;
  let d_sq = !d_sq in
  if d_sq <= 0. || not (Float.is_finite d_sq) then
    failwith "Incremental.add_row: update lost positive definiteness";
  Linalg.Mat.set lmat k k (sqrt d_sq);
  Linalg.Mat.set_row t.g k row;
  t.f.(k) <- value;
  t.resid.(k) <- value -. Linalg.Vec.dot row t.prior.Bmf.Prior.means;
  t.k <- k + 1

let add_point t ~x ~value =
  add_row t ~row:(Polybasis.Basis.eval_row t.basis x) ~value

let add_batch t ~xs ~f =
  let n = Linalg.Mat.rows xs in
  if Array.length f <> n then
    invalid_arg "Incremental.add_batch: sample count mismatch";
  if not (Obs.live ()) then begin
    let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
    for i = 0 to n - 1 do
      add_row t ~row:(Linalg.Mat.row gq i) ~value:f.(i)
    done
  end
  else
    Obs.Trace.with_span ~cat:"serving" "incremental_update" @@ fun sp ->
    Obs.Trace.set_attr sp "new_samples" (Obs.Trace.Int n);
    Obs.Trace.set_attr sp "samples_before" (Obs.Trace.Int t.k);
    let t0 = Obs.Clock.now_s () in
    let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
    let k0 = t.k in
    for i = 0 to n - 1 do
      add_row t ~row:(Linalg.Mat.row gq i) ~value:f.(i)
    done;
    Obs.Metrics.observe m_seconds (Obs.Clock.now_s () -. t0);
    Obs.Metrics.inc ~by:(float_of_int n) m_samples;
    Obs.Metrics.inc m_batches;
    (* smallest bordering pivot accepted in this batch: the tightest
       margin to losing positive definiteness *)
    let mn = ref infinity in
    for i = k0 to t.k - 1 do
      let d = Linalg.Mat.get t.l i i in
      if d < !mn then mn := d
    done;
    if Float.is_finite !mn then begin
      Obs.Metrics.set m_pivot_min !mn;
      Obs.Trace.set_attr sp "pivot_min" (Obs.Trace.Float !mn)
    end

(* Solve C v = resid through the growing factor, then map back to the
   coefficient space: alpha = mu + W^-1 G^T v. *)
let coeffs t =
  let k = t.k and m = num_terms t in
  let lmat = t.l in
  let y = Array.make k 0. in
  for i = 0 to k - 1 do
    let acc = ref t.resid.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Linalg.Mat.get lmat i j *. y.(j))
    done;
    y.(i) <- !acc /. Linalg.Mat.get lmat i i
  done;
  let v = Array.make k 0. in
  for i = k - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to k - 1 do
      acc := !acc -. (Linalg.Mat.get lmat j i *. v.(j))
    done;
    v.(i) <- !acc /. Linalg.Mat.get lmat i i
  done;
  (* axpy accumulation row by row, in the axpy expression order *)
  let gtv = Array.make m 0. in
  for i = 0 to k - 1 do
    let vi = v.(i) in
    for j = 0 to m - 1 do
      gtv.(j) <- (vi *. Linalg.Mat.get t.g i j) +. gtv.(j)
    done
  done;
  let means = t.prior.Bmf.Prior.means in
  Array.init m (fun j -> means.(j) +. (t.w_inv.(j) *. gtv.(j)))

let to_artifact t =
  let k = t.k in
  let g = Linalg.Mat.copy (Linalg.Mat.view_rows t.g k) in
  let f = Array.sub t.f 0 k in
  let chol = Linalg.Mat.create k k in
  for i = 0 to k - 1 do
    for j = 0 to i do
      Linalg.Mat.set chol i j (Linalg.Mat.get t.l i j)
    done
  done;
  let coeffs = coeffs t in
  let resid = Linalg.Vec.sub f (Linalg.Mat.gemv g coeffs) in
  let sigma0_sq =
    Float.max 1e-300
      (Linalg.Vec.dot resid resid /. float_of_int (Stdlib.max 1 k))
  in
  {
    Artifact.meta = t.meta;
    rev = t.rev + 1;
    hyper = t.hyper;
    cv_error = t.cv_error;
    sigma0_sq;
    basis_dim = Polybasis.Basis.dim t.basis;
    terms = Polybasis.Basis.terms t.basis;
    prior = t.prior;
    coeffs;
    g;
    f;
    chol;
  }
