(* The Woodbury core C = hyper I + G W^-1 G^T is the only dense object
   whose factorization the MAP solve needs (Map_solver's fast path,
   eq. 53-58). Appending a late-stage sample grows C by one bordering
   row/column, and a Cholesky factor extends under bordering in O(K^2):

     C' = [ C  c ]      L' = [ L      0 ]    with  L l = c
          [ c^T d ]          [ l^T  sqrt(d - l.l) ]

   so folding K' new samples into a fitted model costs
   O(K' (KM + K^2)) — versus O(K^2 M + K^3) for a cold refit — and
   never touches an M x M system. The result is exact: the same C gives
   the same posterior, so coefficients match a cold refit to roundoff
   (test-enforced at 1e-8). *)

type t = {
  meta : Artifact.meta;
  rev : int;
  cv_error : float;
  basis : Polybasis.Basis.t;
  prior : Bmf.Prior.t;
  hyper : float;
  w_inv : Linalg.Vec.t;
  mutable k : int;
  mutable rows : float array array;  (* basis rows, length m each *)
  mutable f : float array;  (* observed responses *)
  mutable resid : float array;  (* f_i - g_i . mu *)
  mutable lrows : float array array;  (* ragged Cholesky rows, row i: i+1 *)
}

let num_samples t = t.k

let num_terms t = Bmf.Prior.size t.prior

let m_samples =
  Obs.Metrics.counter ~help:"Samples folded in by incremental updates"
    "bmf_incremental_samples_total"

let m_batches =
  Obs.Metrics.counter ~help:"Incremental update batches applied"
    "bmf_incremental_batches_total"

let m_seconds =
  Obs.Metrics.histogram ~help:"Incremental batch update latency (seconds)"
    "bmf_incremental_update_seconds"

let m_pivot_min =
  Obs.Metrics.gauge
    ~help:"Smallest new Cholesky pivot across the last incremental batch"
    "bmf_incremental_pivot_min"

let of_artifact (a : Artifact.t) =
  let k = Artifact.num_samples a in
  let means = a.Artifact.prior.Bmf.Prior.means in
  let rows = Array.init k (fun i -> Linalg.Mat.row a.Artifact.g i) in
  let resid =
    Array.init k (fun i -> a.Artifact.f.(i) -. Linalg.Vec.dot rows.(i) means)
  in
  {
    meta = a.Artifact.meta;
    rev = a.Artifact.rev;
    cv_error = a.Artifact.cv_error;
    basis = Artifact.basis a;
    prior = a.Artifact.prior;
    hyper = a.Artifact.hyper;
    w_inv = Array.map (fun w -> 1. /. w) a.Artifact.prior.Bmf.Prior.weights;
    k;
    rows;
    f = Linalg.Vec.copy a.Artifact.f;
    resid;
    lrows = Array.init k (fun i -> Array.init (i + 1) (Linalg.Mat.get a.Artifact.chol i));
  }

let grow arr len filler =
  if Array.length arr > len then arr
  else begin
    let bigger = Array.make (Stdlib.max 8 (2 * (len + 1))) filler in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let add_row t ~row ~value =
  let m = num_terms t in
  if Array.length row <> m then
    invalid_arg "Incremental.add_row: basis row length mismatch";
  let k = t.k in
  (* new bordering column of C: c_i = g_i . (W^-1 row), d = row . (W^-1 row) + hyper *)
  let h = Linalg.Vec.mul t.w_inv row in
  let c = Array.init k (fun i -> Linalg.Vec.dot t.rows.(i) h) in
  let diag = Linalg.Vec.dot row h +. t.hyper in
  (* forward solve L l = c against the ragged rows *)
  let l = Array.make (k + 1) 0. in
  for i = 0 to k - 1 do
    let li = t.lrows.(i) in
    let acc = ref c.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (li.(j) *. l.(j))
    done;
    l.(i) <- !acc /. li.(i)
  done;
  let d_sq = ref diag in
  for i = 0 to k - 1 do
    d_sq := !d_sq -. (l.(i) *. l.(i))
  done;
  let d_sq = !d_sq in
  if d_sq <= 0. || not (Float.is_finite d_sq) then
    failwith "Incremental.add_row: update lost positive definiteness";
  l.(k) <- sqrt d_sq;
  t.rows <- grow t.rows k [||];
  t.f <- grow t.f k 0.;
  t.resid <- grow t.resid k 0.;
  t.lrows <- grow t.lrows k [||];
  t.rows.(k) <- Linalg.Vec.copy row;
  t.f.(k) <- value;
  t.resid.(k) <- value -. Linalg.Vec.dot row t.prior.Bmf.Prior.means;
  t.lrows.(k) <- l;
  t.k <- k + 1

let add_point t ~x ~value =
  add_row t ~row:(Polybasis.Basis.eval_row t.basis x) ~value

let add_batch t ~xs ~f =
  let n = Linalg.Mat.rows xs in
  if Array.length f <> n then
    invalid_arg "Incremental.add_batch: sample count mismatch";
  if not (Obs.live ()) then begin
    let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
    for i = 0 to n - 1 do
      add_row t ~row:(Linalg.Mat.row gq i) ~value:f.(i)
    done
  end
  else
    Obs.Trace.with_span ~cat:"serving" "incremental_update" @@ fun sp ->
    Obs.Trace.set_attr sp "new_samples" (Obs.Trace.Int n);
    Obs.Trace.set_attr sp "samples_before" (Obs.Trace.Int t.k);
    let t0 = Obs.Clock.now_s () in
    let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
    let k0 = t.k in
    for i = 0 to n - 1 do
      add_row t ~row:(Linalg.Mat.row gq i) ~value:f.(i)
    done;
    Obs.Metrics.observe m_seconds (Obs.Clock.now_s () -. t0);
    Obs.Metrics.inc ~by:(float_of_int n) m_samples;
    Obs.Metrics.inc m_batches;
    (* smallest bordering pivot accepted in this batch: the tightest
       margin to losing positive definiteness *)
    let mn = ref infinity in
    for i = k0 to t.k - 1 do
      let li = t.lrows.(i) in
      let d = li.(i) in
      if d < !mn then mn := d
    done;
    if Float.is_finite !mn then begin
      Obs.Metrics.set m_pivot_min !mn;
      Obs.Trace.set_attr sp "pivot_min" (Obs.Trace.Float !mn)
    end

(* Solve C v = resid through the ragged factor, then map back to the
   coefficient space: alpha = mu + W^-1 G^T v. *)
let coeffs t =
  let k = t.k and m = num_terms t in
  let y = Array.make k 0. in
  for i = 0 to k - 1 do
    let li = t.lrows.(i) in
    let acc = ref t.resid.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (li.(j) *. y.(j))
    done;
    y.(i) <- !acc /. li.(i)
  done;
  let v = Array.make k 0. in
  for i = k - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to k - 1 do
      acc := !acc -. (t.lrows.(j).(i) *. v.(j))
    done;
    v.(i) <- !acc /. t.lrows.(i).(i)
  done;
  let gtv = Array.make m 0. in
  for i = 0 to k - 1 do
    Linalg.Vec.axpy v.(i) t.rows.(i) gtv
  done;
  let means = t.prior.Bmf.Prior.means in
  Array.init m (fun j -> means.(j) +. (t.w_inv.(j) *. gtv.(j)))

let to_artifact t =
  let k = t.k and m = num_terms t in
  let g = Linalg.Mat.init k m (fun i j -> t.rows.(i).(j)) in
  let f = Array.sub t.f 0 k in
  let chol = Linalg.Mat.create k k in
  for i = 0 to k - 1 do
    for j = 0 to i do
      Linalg.Mat.set chol i j t.lrows.(i).(j)
    done
  done;
  let coeffs = coeffs t in
  let resid = Linalg.Vec.sub f (Linalg.Mat.gemv g coeffs) in
  let sigma0_sq =
    Float.max 1e-300
      (Linalg.Vec.dot resid resid /. float_of_int (Stdlib.max 1 k))
  in
  {
    Artifact.meta = t.meta;
    rev = t.rev + 1;
    hyper = t.hyper;
    cv_error = t.cv_error;
    sigma0_sq;
    basis_dim = Polybasis.Basis.dim t.basis;
    terms = Polybasis.Basis.terms t.basis;
    prior = t.prior;
    coeffs;
    g;
    f;
    chol;
  }
