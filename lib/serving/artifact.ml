let format_version = 1

type meta = { circuit : string; metric : string; scale : string; seed : int }

type t = {
  meta : meta;
  rev : int;
  hyper : float;
  cv_error : float;
  sigma0_sq : float;
  basis_dim : int;
  terms : Polybasis.Multi_index.t array;
  prior : Bmf.Prior.t;
  coeffs : Linalg.Vec.t;
  g : Linalg.Mat.t;
  f : Linalg.Vec.t;
  chol : Linalg.Mat.t;
}

type format = Json | Binary

let num_samples a = Linalg.Mat.rows a.g

let num_terms a = Array.length a.coeffs

let basis a = Polybasis.Basis.of_terms ~dim:a.basis_dim (Array.to_list a.terms)

let method_name a = Bmf.Prior.kind_name a.prior.Bmf.Prior.kind

(* ------------------------------------------------------------------ *)
(* Checksums: FNV-1a 64-bit over the serialized payload. *)

(* Row-major flat copy of a matrix (codec input; Mat storage is a
   Bigarray off the OCaml heap). *)
let mat_flat (m : Linalg.Mat.t) = Linalg.Mat.to_flat m

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let checksum_hex s = Printf.sprintf "%016Lx" (fnv64 s)

let fingerprint values =
  let buf = Buffer.create (8 * Array.length values) in
  Array.iter (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v)) values;
  checksum_hex (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Capture a fit. The MAP solve below replays Map_solver's fast path
   operation for operation, so the stored coefficients are bit-identical
   to what [Map_solver.solve ~solver:Fast_woodbury] returns — and the
   K x K Cholesky factor of [hyper I + G W^-1 G^T] is kept: it is the
   posterior core reused by the predictor (predictive variance) and the
   incremental updater (rank-1 extension). *)

let of_fit ~meta ?(rev = 0) ~basis ~prior ~hyper ?(cv_error = nan) ~g ~f () =
  let k, m = Linalg.Mat.dims g in
  if Polybasis.Basis.size basis <> m then
    invalid_arg "Artifact.of_fit: basis size mismatch";
  if Bmf.Prior.size prior <> m then
    invalid_arg "Artifact.of_fit: prior size mismatch";
  if Array.length f <> k then
    invalid_arg "Artifact.of_fit: sample count mismatch";
  if hyper <= 0. || not (Float.is_finite hyper) then
    invalid_arg "Artifact.of_fit: hyper must be positive and finite";
  let means = prior.Bmf.Prior.means and weights = prior.Bmf.Prior.weights in
  let w_inv = Array.map (fun w -> 1. /. w) weights in
  let r =
    if Array.for_all (fun x -> x = 0.) means then f
    else Linalg.Vec.sub f (Linalg.Mat.gemv g means)
  in
  let core = Linalg.Mat.weighted_outer_gram g w_inv in
  let shifted = Linalg.Mat.add_diag core (Array.make k hyper) in
  let fact = Linalg.Cholesky.factorize shifted in
  (match Obs.Metrics.find_gauge "bmf_fit_woodbury_cond" with
  | Some gauge when Obs.live () ->
      Obs.Metrics.set gauge (Linalg.Cholesky.cond_estimate fact)
  | _ -> ());
  let v = Linalg.Cholesky.solve fact r in
  let gtv = Linalg.Mat.gemv_t g v in
  let coeffs = Array.init m (fun i -> means.(i) +. (w_inv.(i) *. gtv.(i))) in
  let resid = Linalg.Vec.sub f (Linalg.Mat.gemv g coeffs) in
  let sigma0_sq =
    Float.max 1e-300
      (Linalg.Vec.dot resid resid /. float_of_int (Stdlib.max 1 k))
  in
  {
    meta;
    rev;
    hyper;
    cv_error;
    sigma0_sq;
    basis_dim = Polybasis.Basis.dim basis;
    terms = Polybasis.Basis.terms basis;
    prior;
    coeffs;
    g = Linalg.Mat.copy g;
    f = Linalg.Vec.copy f;
    chol = Linalg.Cholesky.factor fact;
  }

(* ------------------------------------------------------------------ *)
(* Shared (de)serialization helpers. *)

let pack_chol chol =
  let k = Linalg.Mat.rows chol in
  let packed = Array.make (k * (k + 1) / 2) 0. in
  let idx = ref 0 in
  for i = 0 to k - 1 do
    for j = 0 to i do
      packed.(!idx) <- Linalg.Mat.get chol i j;
      incr idx
    done
  done;
  packed

let unpack_chol k packed =
  if Array.length packed <> k * (k + 1) / 2 then
    Error "chol: packed length mismatch"
  else begin
    let chol = Linalg.Mat.create k k in
    let idx = ref 0 in
    for i = 0 to k - 1 do
      for j = 0 to i do
        Linalg.Mat.set chol i j packed.(!idx);
        incr idx
      done
    done;
    Ok chol
  end

let kind_to_string = function
  | Bmf.Prior.Zero_mean -> "zero-mean"
  | Bmf.Prior.Nonzero_mean -> "nonzero-mean"

let kind_of_string = function
  | "zero-mean" -> Ok Bmf.Prior.Zero_mean
  | "nonzero-mean" -> Ok Bmf.Prior.Nonzero_mean
  | s -> Error (Printf.sprintf "unknown prior kind %S" s)

(* Structural validation shared by both decoders, so a truncated or
   inconsistent payload is rejected with a message instead of failing
   deep inside a solve. *)
let validate a =
  let k, m = Linalg.Mat.dims a.g in
  let check cond msg = if cond then Ok () else Error ("artifact: " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (Array.length a.coeffs = m) "coeffs length mismatch" in
  let* () = check (Array.length a.f = k) "responses length mismatch" in
  let* () = check (Bmf.Prior.size a.prior = m) "prior size mismatch" in
  let* () = check (Array.length a.terms = m) "term count mismatch" in
  let* () = check (Linalg.Mat.rows a.chol = k) "chol dimension mismatch" in
  let* () =
    check
      (Array.for_all
         (fun t -> Polybasis.Multi_index.max_variable t < a.basis_dim)
         a.terms)
      "term references variable outside basis"
  in
  let* () =
    check
      (a.hyper > 0. && Float.is_finite a.hyper)
      "hyper must be positive and finite"
  in
  check (a.sigma0_sq > 0.) "sigma0_sq must be positive"

(* ------------------------------------------------------------------ *)
(* JSON codec. *)

let fnum f =
  if Float.is_finite f then Json.Num f
  else
    Json.Str
      (if Float.is_nan f then "nan" else if f > 0. then "inf" else "-inf")

let fnum_back = function
  | Json.Num f -> Some f
  | Json.Str "nan" -> Some Float.nan
  | Json.Str "inf" -> Some Float.infinity
  | Json.Str "-inf" -> Some Float.neg_infinity
  | _ -> None

let float_arr values = Json.Arr (Array.to_list (Array.map fnum values))

let payload_to_json a =
  let k = num_samples a in
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("circuit", Json.Str a.meta.circuit);
            ("metric", Json.Str a.meta.metric);
            ("scale", Json.Str a.meta.scale);
            ("seed", Json.Num (float_of_int a.meta.seed));
          ] );
      ("rev", Json.Num (float_of_int a.rev));
      ("hyper", fnum a.hyper);
      ("cv_error", fnum a.cv_error);
      ("sigma0_sq", fnum a.sigma0_sq);
      ( "basis",
        Json.Obj
          [
            ("dim", Json.Num (float_of_int a.basis_dim));
            ( "terms",
              Json.Arr
                (Array.to_list
                   (Array.map
                      (fun term ->
                        Json.Arr
                          (Array.to_list
                             (Array.map
                                (fun (v, d) ->
                                  Json.Arr
                                    [
                                      Json.Num (float_of_int v);
                                      Json.Num (float_of_int d);
                                    ])
                                term)))
                      a.terms)) );
          ] );
      ( "prior",
        Json.Obj
          [
            ("kind", Json.Str (kind_to_string a.prior.Bmf.Prior.kind));
            ("means", float_arr a.prior.Bmf.Prior.means);
            ("weights", float_arr a.prior.Bmf.Prior.weights);
            ( "informed",
              Json.Arr
                (Array.to_list
                   (Array.map (fun b -> Json.Bool b) a.prior.Bmf.Prior.informed))
            );
          ] );
      ("coeffs", float_arr a.coeffs);
      ("samples", Json.Num (float_of_int k));
      ("g", float_arr (mat_flat a.g));
      ("f", float_arr a.f);
      ("chol", float_arr (pack_chol a.chol));
    ]

let to_json_string a =
  let payload = Json.to_string (payload_to_json a) in
  let buf = Buffer.create (String.length payload + 128) in
  Buffer.add_string buf "{\"format\":\"bmf-model-artifact\",\"version\":";
  Buffer.add_string buf (string_of_int format_version);
  Buffer.add_string buf ",\"checksum\":\"";
  Buffer.add_string buf (checksum_hex payload);
  Buffer.add_string buf "\",\"payload\":";
  Buffer.add_string buf payload;
  Buffer.add_string buf "}";
  Buffer.contents buf

let ( let* ) = Result.bind

let need what = function Some v -> Ok v | None -> Error ("artifact: " ^ what)

let json_floats what value =
  let* items = need (what ^ " missing") (Json.to_arr value) in
  let arr = Array.make (List.length items) 0. in
  let rec fill i = function
    | [] -> Ok arr
    | item :: rest -> (
        match fnum_back item with
        | Some f ->
            arr.(i) <- f;
            fill (i + 1) rest
        | None -> Error ("artifact: bad float in " ^ what))
  in
  fill 0 items

let of_json_value doc =
  let* version = need "version missing" (Option.bind (Json.member "version" doc) Json.to_int) in
  let* () =
    if version = format_version then Ok ()
    else Error (Printf.sprintf "artifact: unsupported version %d" version)
  in
  let* stored = need "checksum missing" (Option.bind (Json.member "checksum" doc) Json.to_str) in
  let* payload = need "payload missing" (Json.member "payload" doc) in
  let canonical = Json.to_string payload in
  let* () =
    if String.equal (checksum_hex canonical) stored then Ok ()
    else Error "artifact: checksum mismatch (corrupt file)"
  in
  let field name = Json.member name payload in
  let* meta_obj = need "meta missing" (field "meta") in
  let mfield name conv = need ("meta." ^ name) (Option.bind (Json.member name meta_obj) conv) in
  let* circuit = mfield "circuit" Json.to_str in
  let* metric = mfield "metric" Json.to_str in
  let* scale = mfield "scale" Json.to_str in
  let* seed = mfield "seed" Json.to_int in
  let* rev = need "rev" (Option.bind (field "rev") Json.to_int) in
  let ffield name = need name (Option.bind (field name) fnum_back) in
  let* hyper = ffield "hyper" in
  let* cv_error = ffield "cv_error" in
  let* sigma0_sq = ffield "sigma0_sq" in
  let* basis_obj = need "basis missing" (field "basis") in
  let* basis_dim = need "basis.dim" (Option.bind (Json.member "dim" basis_obj) Json.to_int) in
  let* term_items = need "basis.terms" (Option.bind (Json.member "terms" basis_obj) Json.to_arr) in
  let* terms =
    let decode_pair = function
      | Json.Arr [ v; d ] -> (
          match (Json.to_int v, Json.to_int d) with
          | Some v, Some d -> Ok (v, d)
          | _ -> Error "artifact: bad term pair")
      | _ -> Error "artifact: bad term pair"
    in
    let decode_term item =
      let* pairs = need "bad term" (Json.to_arr item) in
      List.fold_left
        (fun acc pair ->
          let* acc = acc in
          let* p = decode_pair pair in
          Ok (p :: acc))
        (Ok []) pairs
      |> Result.map (fun ps -> Polybasis.Multi_index.of_pairs (List.rev ps))
    in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* t = decode_term item in
        Ok (t :: acc))
      (Ok []) term_items
    |> Result.map (fun ts -> Array.of_list (List.rev ts))
  in
  let* prior_obj = need "prior missing" (field "prior") in
  let* kind_str = need "prior.kind" (Option.bind (Json.member "kind" prior_obj) Json.to_str) in
  let* kind = kind_of_string kind_str in
  let* means = json_floats "prior.means" (Option.value ~default:Json.Null (Json.member "means" prior_obj)) in
  let* weights = json_floats "prior.weights" (Option.value ~default:Json.Null (Json.member "weights" prior_obj)) in
  let* informed =
    let* items = need "prior.informed" (Option.bind (Json.member "informed" prior_obj) Json.to_arr) in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Json.Bool b -> Ok (b :: acc)
        | _ -> Error "artifact: bad prior.informed entry")
      (Ok []) items
    |> Result.map (fun bs -> Array.of_list (List.rev bs))
  in
  let* prior =
    try Ok (Bmf.Prior.of_raw ~kind ~means ~weights ~informed)
    with Invalid_argument msg -> Error ("artifact: " ^ msg)
  in
  let* coeffs = json_floats "coeffs" (Option.value ~default:Json.Null (field "coeffs")) in
  let* k = need "samples" (Option.bind (field "samples") Json.to_int) in
  let* g_flat = json_floats "g" (Option.value ~default:Json.Null (field "g")) in
  let* f = json_floats "f" (Option.value ~default:Json.Null (field "f")) in
  let* chol_flat = json_floats "chol" (Option.value ~default:Json.Null (field "chol")) in
  let m = Array.length coeffs in
  let* () =
    if k >= 0 && Array.length g_flat = k * m then Ok ()
    else Error "artifact: design matrix size mismatch"
  in
  let g = Linalg.Mat.init k m (fun i j -> g_flat.((i * m) + j)) in
  let* chol = unpack_chol k chol_flat in
  let a =
    {
      meta = { circuit; metric; scale; seed };
      rev;
      hyper;
      cv_error;
      sigma0_sq;
      basis_dim;
      terms;
      prior;
      coeffs;
      g;
      f;
      chol;
    }
  in
  let* () = validate a in
  Ok a

let of_json_string s =
  let* doc = Result.map_error (fun e -> "artifact: bad JSON: " ^ e) (Json.of_string s) in
  of_json_value doc

(* ------------------------------------------------------------------ *)
(* Binary codec: a fixed-order little-endian layout,

     magic "BMFART01" | u64 checksum of payload | payload

   with ints as i64, floats as IEEE bits, strings and arrays
   length-prefixed. Roughly 8 bytes per number versus ~20 for JSON. *)

let magic = "BMFART01"

let put_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_floats buf arr =
  put_int buf (Array.length arr);
  Array.iter (put_float buf) arr

let payload_to_binary a =
  let buf = Buffer.create (8 * (Array.length a.coeffs * (num_samples a + 4))) in
  put_string buf a.meta.circuit;
  put_string buf a.meta.metric;
  put_string buf a.meta.scale;
  put_int buf a.meta.seed;
  put_int buf a.rev;
  put_float buf a.hyper;
  put_float buf a.cv_error;
  put_float buf a.sigma0_sq;
  put_int buf a.basis_dim;
  put_int buf (Array.length a.terms);
  Array.iter
    (fun term ->
      put_int buf (Array.length term);
      Array.iter
        (fun (v, d) ->
          put_int buf v;
          put_int buf d)
        term)
    a.terms;
  put_int buf (match a.prior.Bmf.Prior.kind with Bmf.Prior.Zero_mean -> 0 | Bmf.Prior.Nonzero_mean -> 1);
  put_floats buf a.prior.Bmf.Prior.means;
  put_floats buf a.prior.Bmf.Prior.weights;
  put_int buf (Array.length a.prior.Bmf.Prior.informed);
  Array.iter
    (fun b -> Buffer.add_char buf (if b then '\001' else '\000'))
    a.prior.Bmf.Prior.informed;
  put_floats buf a.coeffs;
  put_int buf (num_samples a);
  put_floats buf (mat_flat a.g);
  put_floats buf a.f;
  put_floats buf (pack_chol a.chol);
  Buffer.contents buf

let to_binary_string a =
  let payload = payload_to_binary a in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (fnv64 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

exception Short of string

type reader = { data : string; mutable at : int }

let take rd n =
  if rd.at + n > String.length rd.data then raise (Short "truncated payload");
  let at = rd.at in
  rd.at <- rd.at + n;
  at

let get_int rd = Int64.to_int (String.get_int64_le rd.data (take rd 8))

let get_float rd = Int64.float_of_bits (String.get_int64_le rd.data (take rd 8))

let get_string rd =
  let n = get_int rd in
  if n < 0 then raise (Short "negative length");
  String.sub rd.data (take rd n) n

let get_len rd what limit =
  let n = get_int rd in
  if n < 0 || n > limit then raise (Short ("implausible " ^ what ^ " length"));
  n

let get_floats rd what =
  let n = get_len rd what ((String.length rd.data - rd.at) / 8) in
  Array.init n (fun _ -> get_float rd)

let of_binary_string s =
  if String.length s < String.length magic + 8 then Error "artifact: truncated file"
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error "artifact: bad magic"
  else begin
    let stored = String.get_int64_le s (String.length magic) in
    let payload_at = String.length magic + 8 in
    let payload = String.sub s payload_at (String.length s - payload_at) in
    if not (Int64.equal (fnv64 payload) stored) then
      Error "artifact: checksum mismatch (corrupt file)"
    else
      try
        let rd = { data = payload; at = 0 } in
        let circuit = get_string rd in
        let metric = get_string rd in
        let scale = get_string rd in
        let seed = get_int rd in
        let rev = get_int rd in
        let hyper = get_float rd in
        let cv_error = get_float rd in
        let sigma0_sq = get_float rd in
        let basis_dim = get_int rd in
        let n_terms = get_len rd "terms" (String.length payload) in
        let terms =
          Array.init n_terms (fun _ ->
              let n_pairs = get_len rd "term" 4096 in
              Polybasis.Multi_index.of_pairs
                (List.init n_pairs (fun _ ->
                     let v = get_int rd in
                     let d = get_int rd in
                     (v, d))))
        in
        let kind =
          match get_int rd with
          | 0 -> Bmf.Prior.Zero_mean
          | 1 -> Bmf.Prior.Nonzero_mean
          | n -> raise (Short (Printf.sprintf "bad prior kind %d" n))
        in
        let means = get_floats rd "means" in
        let weights = get_floats rd "weights" in
        let n_informed = get_len rd "informed" (String.length payload) in
        let informed =
          Array.init n_informed (fun _ ->
              String.get payload (take rd 1) <> '\000')
        in
        let prior = Bmf.Prior.of_raw ~kind ~means ~weights ~informed in
        let coeffs = get_floats rd "coeffs" in
        let k = get_int rd in
        let g_flat = get_floats rd "g" in
        let f = get_floats rd "f" in
        let chol_flat = get_floats rd "chol" in
        if rd.at <> String.length payload then Error "artifact: trailing bytes"
        else begin
          let m = Array.length coeffs in
          if k < 0 || Array.length g_flat <> k * m then
            Error "artifact: design matrix size mismatch"
          else begin
            let g = Linalg.Mat.init k m (fun i j -> g_flat.((i * m) + j)) in
            let* chol = unpack_chol k chol_flat in
            let a =
              {
                meta = { circuit; metric; scale; seed };
                rev;
                hyper;
                cv_error;
                sigma0_sq;
                basis_dim;
                terms;
                prior;
                coeffs;
                g;
                f;
                chol;
              }
            in
            let* () = validate a in
            Ok a
          end
        end
      with
      | Short msg -> Error ("artifact: " ^ msg)
      | Invalid_argument msg -> Error ("artifact: " ^ msg)
  end

(* ------------------------------------------------------------------ *)

let to_string format a =
  match format with Json -> to_json_string a | Binary -> to_binary_string a

let of_string s =
  if String.length s >= String.length magic
     && String.equal (String.sub s 0 (String.length magic)) magic
  then of_binary_string s
  else of_json_string s

let save ?format path a =
  let format =
    match format with
    | Some f -> f
    | None -> if Filename.check_suffix path ".json" then Json else Binary
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string format a))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error ("artifact: " ^ msg)
