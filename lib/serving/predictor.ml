type t = {
  label : string;  (* "circuit/metric", for error messages *)
  basis : Polybasis.Basis.t;
  coeffs : Linalg.Vec.t;
  w_inv : Linalg.Vec.t;
  hyper : float;
  sigma0_sq : float;
  g : Linalg.Mat.t;
  chol : Linalg.Cholesky.t;
}

let m_predictions =
  Obs.Metrics.counter ~help:"Points served by the batch predictor"
    "bmf_predictions_total"

let m_batches =
  Obs.Metrics.counter ~help:"Prediction batches served"
    "bmf_predict_batches_total"

let m_seconds =
  Obs.Metrics.histogram ~help:"Batch predict latency (seconds)"
    "bmf_predict_seconds"

(* Shared batch bracket: span + latency histogram + served-point
   counters around the untouched numerical body. *)
let observed name ~batch ~with_std impl =
  if not (Obs.live ()) then impl ()
  else
    Obs.Trace.with_span ~cat:"serving" name (fun sp ->
        Obs.Trace.set_attr sp "batch" (Obs.Trace.Int batch);
        Obs.Trace.set_attr sp "with_std" (Obs.Trace.Bool with_std);
        let t0 = Obs.Clock.now_s () in
        let out = impl () in
        Obs.Metrics.observe m_seconds (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc ~by:(float_of_int batch) m_predictions;
        Obs.Metrics.inc m_batches;
        out)

let of_artifact (a : Artifact.t) =
  {
    label =
      a.Artifact.meta.Artifact.circuit ^ "/" ^ a.Artifact.meta.Artifact.metric;
    basis = Artifact.basis a;
    coeffs = a.Artifact.coeffs;
    w_inv = Array.map (fun w -> 1. /. w) a.Artifact.prior.Bmf.Prior.weights;
    hyper = a.Artifact.hyper;
    sigma0_sq = a.Artifact.sigma0_sq;
    g = a.Artifact.g;
    chol = Linalg.Cholesky.of_factor a.Artifact.chol;
  }

let basis t = t.basis

(* Validate the whole batch once, up front: a wrong query width should
   name the model and the expected dimension instead of surfacing as an
   index error deep inside the Hermite recurrences. *)
let check_batch t what (xs : Linalg.Mat.t) =
  let dim = Polybasis.Basis.dim t.basis in
  if Linalg.Mat.cols xs <> dim then
    invalid_arg
      (Printf.sprintf
         "Predictor.%s (model %s): query dimension mismatch: expected %d \
          variables per point, got %d"
         what t.label dim (Linalg.Mat.cols xs))

let predict_row t row =
  if Array.length row <> Array.length t.coeffs then
    invalid_arg "Predictor.predict_row: basis row length mismatch";
  Linalg.Vec.dot row t.coeffs

let predict_point t x = predict_row t (Polybasis.Basis.eval_row t.basis x)

let predict t xs =
  check_batch t "predict" xs;
  observed "predict" ~batch:(Linalg.Mat.rows xs) ~with_std:false (fun () ->
      let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
      Linalg.Mat.gemv gq t.coeffs)

(* Predictive variance from the stored posterior core, in the dual form
   that never touches the M x M covariance:

     Sigma = sigma0^2 (G^T G + hyper W)^-1
           = (sigma0^2 / hyper) [W^-1 - W^-1 G^T C^-1 G W^-1]

   with C = hyper I + G W^-1 G^T, whose Cholesky factor the artifact
   stores. Per query: h = W^-1 g0, u = G h, then
   var = sigma0^2/hyper (g0.h - u^T C^-1 u) + sigma0^2, at
   O(KM + K^2) instead of O(M^2). Exactly [Posterior.predict] in exact
   arithmetic. *)
let variance_row t row =
  let h = Linalg.Vec.mul t.w_inv row in
  let q = Linalg.Vec.dot row h in
  let u = Linalg.Mat.gemv t.g h in
  let v = Linalg.Cholesky.solve t.chol u in
  let var =
    (t.sigma0_sq /. t.hyper *. (q -. Linalg.Vec.dot u v)) +. t.sigma0_sq
  in
  Float.max 0. var

let predict_with_std t xs =
  check_batch t "predict_with_std" xs;
  observed "predict_with_std" ~batch:(Linalg.Mat.rows xs) ~with_std:true
    (fun () ->
      let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
      let means = Linalg.Mat.gemv gq t.coeffs in
      let k = Linalg.Mat.rows gq in
      (* Per-query variances are independent K x K solves against the
         stored factor; shard the query range across domains — each
         domain writes its own slice, so the output is bit-identical at
         any -j. *)
      let stds = Array.make k 0. in
      Parallel.Pool.parallel_chunks ~grain:16 ~n:k (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            stds.(i) <- sqrt (variance_row t (Linalg.Mat.row gq i))
          done);
      (means, stds))

let predict_point_with_std t x =
  let row = Polybasis.Basis.eval_row t.basis x in
  (predict_row t row, sqrt (variance_row t row))
