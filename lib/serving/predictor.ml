type t = {
  label : string;  (* "circuit/metric", for error messages *)
  basis : Polybasis.Basis.t;
  coeffs : Linalg.Vec.t;
  w_inv : Linalg.Vec.t;
  hyper : float;
  sigma0_sq : float;
  g : Linalg.Mat.t;
  chol : Linalg.Cholesky.t;
}

let m_predictions =
  Obs.Metrics.counter ~help:"Points served by the batch predictor"
    "bmf_predictions_total"

let m_batches =
  Obs.Metrics.counter ~help:"Prediction batches served"
    "bmf_predict_batches_total"

let m_seconds =
  Obs.Metrics.histogram ~help:"Batch predict latency (seconds)"
    "bmf_predict_seconds"

(* Shared batch bracket: span + latency histogram + served-point
   counters around the untouched numerical body. *)
let observed name ~batch ~with_std impl =
  if not (Obs.live ()) then impl ()
  else
    Obs.Trace.with_span ~cat:"serving" name (fun sp ->
        Obs.Trace.set_attr sp "batch" (Obs.Trace.Int batch);
        Obs.Trace.set_attr sp "with_std" (Obs.Trace.Bool with_std);
        let t0 = Obs.Clock.now_s () in
        let out = impl () in
        Obs.Metrics.observe m_seconds (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc ~by:(float_of_int batch) m_predictions;
        Obs.Metrics.inc m_batches;
        out)

let of_artifact (a : Artifact.t) =
  {
    label =
      a.Artifact.meta.Artifact.circuit ^ "/" ^ a.Artifact.meta.Artifact.metric;
    basis = Artifact.basis a;
    coeffs = a.Artifact.coeffs;
    w_inv = Array.map (fun w -> 1. /. w) a.Artifact.prior.Bmf.Prior.weights;
    hyper = a.Artifact.hyper;
    sigma0_sq = a.Artifact.sigma0_sq;
    g = a.Artifact.g;
    chol = Linalg.Cholesky.of_factor a.Artifact.chol;
  }

let basis t = t.basis

(* Validate the whole batch once, up front: a wrong query width should
   name the model and the expected dimension instead of surfacing as an
   index error deep inside the Hermite recurrences. *)
let check_batch t what (xs : Linalg.Mat.t) =
  let dim = Polybasis.Basis.dim t.basis in
  if Linalg.Mat.cols xs <> dim then
    invalid_arg
      (Printf.sprintf
         "Predictor.%s (model %s): query dimension mismatch: expected %d \
          variables per point, got %d"
         what t.label dim (Linalg.Mat.cols xs))

let predict_row t row =
  if Array.length row <> Array.length t.coeffs then
    invalid_arg "Predictor.predict_row: basis row length mismatch";
  Linalg.Vec.dot row t.coeffs

let predict_point t x = predict_row t (Polybasis.Basis.eval_row t.basis x)

let predict t xs =
  check_batch t "predict" xs;
  observed "predict" ~batch:(Linalg.Mat.rows xs) ~with_std:false (fun () ->
      let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
      Linalg.Mat.gemv gq t.coeffs)

(* Predictive variance from the stored posterior core, in the dual form
   that never touches the M x M covariance:

     Sigma = sigma0^2 (G^T G + hyper W)^-1
           = (sigma0^2 / hyper) [W^-1 - W^-1 G^T C^-1 G W^-1]

   with C = hyper I + G W^-1 G^T, whose Cholesky factor the artifact
   stores. Per query: h = W^-1 g0, u = G h, then
   var = sigma0^2/hyper (g0.h - u^T C^-1 u) + sigma0^2, at
   O(KM + K^2) instead of O(M^2). Exactly [Posterior.predict] in exact
   arithmetic. *)
let variance_row t row =
  let h = Linalg.Vec.mul t.w_inv row in
  let q = Linalg.Vec.dot row h in
  let u = Linalg.Mat.gemv t.g h in
  let v = Linalg.Cholesky.solve t.chol u in
  let var =
    (t.sigma0_sq /. t.hyper *. (q -. Linalg.Vec.dot u v)) +. t.sigma0_sq
  in
  Float.max 0. var

let predict_with_std t xs =
  check_batch t "predict_with_std" xs;
  observed "predict_with_std" ~batch:(Linalg.Mat.rows xs) ~with_std:true
    (fun () ->
      let gq = Polybasis.Basis.design_matrix_blocked t.basis xs in
      let means = Linalg.Mat.gemv gq t.coeffs in
      let k = Linalg.Mat.rows gq in
      (* Per-query variances are independent K x K solves against the
         stored factor; shard the query range across domains — each
         domain writes its own slice, so the output is bit-identical at
         any -j. *)
      let stds = Array.make k 0. in
      Parallel.Pool.parallel_chunks ~grain:16 ~n:k (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            stds.(i) <- sqrt (variance_row t (Linalg.Mat.row gq i))
          done);
      (means, stds))

let predict_point_with_std t x =
  let row = Polybasis.Basis.eval_row t.basis x in
  (predict_row t row, sqrt (variance_row t row))

(* Preallocated serving arena for the [_into] predict path. One scratch
   belongs to one predictor value (physical identity): the design arena
   is sized for that model's basis and posterior core, and the embedded
   basis scratch is only valid for that exact basis. The daemon keeps
   one per (executor, model) and rebuilds on model swap. *)
module Scratch = struct
  type pred = t

  type t = {
    pred : pred;
    mutable capacity : int; (* rows the design arena can hold *)
    mutable gq : Linalg.Mat.t; (* capacity x M design arena *)
    bscratch : Polybasis.Basis.Scratch.t;
    row : Linalg.Vec.t; (* length M: one design row *)
    h : Linalg.Vec.t; (* length M: W^-1 g0 *)
    u : Linalg.Vec.t; (* length K: G h *)
    y : Linalg.Vec.t; (* length K: forward-solve intermediate *)
    v : Linalg.Vec.t; (* length K: C^-1 u *)
    acc : Linalg.Vec.t; (* 1 cell: unboxed dot accumulator *)
  }

  let create ?(capacity = 64) pred =
    let m = Polybasis.Basis.size pred.basis in
    let k_core = Linalg.Mat.rows pred.g in
    let capacity = Stdlib.max 1 capacity in
    {
      pred;
      capacity;
      gq = Linalg.Mat.create capacity m;
      bscratch = Polybasis.Basis.Scratch.create pred.basis;
      row = Linalg.Vec.create m;
      h = Linalg.Vec.create m;
      u = Linalg.Vec.create k_core;
      y = Linalg.Vec.create k_core;
      v = Linalg.Vec.create k_core;
      acc = Linalg.Vec.create 1;
    }

  let for_predictor s pred = s.pred == pred

  (* Grow the design arena geometrically; steady state never hits this. *)
  let ensure s rows =
    if rows > s.capacity then begin
      let cap = ref s.capacity in
      while rows > !cap do
        cap := !cap * 2
      done;
      s.capacity <- !cap;
      s.gq <- Linalg.Mat.create !cap (Polybasis.Basis.size s.pred.basis)
    end
end

let check_scratch t what (scratch : Scratch.t) =
  if not (Scratch.for_predictor scratch t) then
    invalid_arg
      (Printf.sprintf
         "Predictor.%s (model %s): scratch belongs to a different predictor"
         what t.label)

let check_dst t what name dst needed =
  if Array.length dst < needed then
    invalid_arg
      (Printf.sprintf
         "Predictor.%s (model %s): %s buffer too short: need %d, got %d" what
         t.label name needed (Array.length dst))

(* Allocation-free twin of [predict]: basis rows land in the scratch
   design arena, the mean gemv writes into the caller's buffer. Output
   values are bit-identical to [predict] (same basis recurrences, same
   gemv summation order). *)
let predict_into t ~scratch xs ~means =
  check_batch t "predict_into" xs;
  check_scratch t "predict_into" scratch;
  let k = Linalg.Mat.rows xs in
  check_dst t "predict_into" "means" means k;
  observed "predict_into" ~batch:k ~with_std:false @@ fun () ->
  Scratch.ensure scratch k;
  let gq = Linalg.Mat.view_rows scratch.Scratch.gq k in
  Polybasis.Basis.design_matrix_into t.basis ~scratch:scratch.Scratch.bscratch
    xs ~dst:gq;
  Linalg.Mat.gemv_into gq t.coeffs means

(* Dot product through the scratch accumulator cell: float-array
   traffic stays unboxed under vanilla ocamlopt, where both a [ref]
   accumulator and [Vec.dot]'s boxed float return would allocate.
   Summation order is [Vec.dot]'s. *)
let dot_acc (s : Scratch.t) (x : Linalg.Vec.t) (y : Linalg.Vec.t) n =
  let acc = s.Scratch.acc in
  Array.unsafe_set acc 0 0.;
  for i = 0 to n - 1 do
    Array.unsafe_set acc 0
      (Array.unsafe_get acc 0
      +. (Array.unsafe_get x i *. Array.unsafe_get y i))
  done

(* [variance_row] against the scratch buffers, writing [sqrt var]
   straight into [stds.(i)]: identical arithmetic in identical order,
   zero per-query allocation. [if var > 0. then var else ...] is
   [Float.max 0. var] spelled without the function call (bit-identical
   for negative zero and NaN). *)
let variance_into t (s : Scratch.t) gq i (stds : Linalg.Vec.t) =
  Linalg.Mat.row_into gq i s.Scratch.row;
  Linalg.Vec.mul_into t.w_inv s.Scratch.row s.Scratch.h;
  let m = Array.length s.Scratch.row in
  let k_core = Array.length s.Scratch.u in
  dot_acc s s.Scratch.row s.Scratch.h m;
  let q = Array.unsafe_get s.Scratch.acc 0 in
  Linalg.Mat.gemv_into t.g s.Scratch.h s.Scratch.u;
  Linalg.Cholesky.solve_into t.chol s.Scratch.u ~y:s.Scratch.y
    ~dst:s.Scratch.v;
  dot_acc s s.Scratch.u s.Scratch.v k_core;
  let var =
    t.sigma0_sq /. t.hyper
    *. (q -. Array.unsafe_get s.Scratch.acc 0)
    +. t.sigma0_sq
  in
  Array.unsafe_set stds i
    (sqrt (if var > 0. then var else if var <> var then var else 0.))

let predict_with_std_into t ~scratch xs ~means ~stds =
  check_batch t "predict_with_std_into" xs;
  check_scratch t "predict_with_std_into" scratch;
  let k = Linalg.Mat.rows xs in
  check_dst t "predict_with_std_into" "means" means k;
  check_dst t "predict_with_std_into" "stds" stds k;
  observed "predict_with_std_into" ~batch:k ~with_std:true @@ fun () ->
  Scratch.ensure scratch k;
  let gq = Linalg.Mat.view_rows scratch.Scratch.gq k in
  Polybasis.Basis.design_matrix_into t.basis ~scratch:scratch.Scratch.bscratch
    xs ~dst:gq;
  Linalg.Mat.gemv_into gq t.coeffs means;
  (* Sequential per-query variances: the daemon already shards queries
     across worker domains, so the serving plane keeps its parallelism
     while each domain's loop stays allocation-free. Values match
     [predict_with_std] exactly — the sharded loop there is bit-identical
     to sequential by construction. *)
  for i = 0 to k - 1 do
    variance_into t scratch gq i stds
  done
