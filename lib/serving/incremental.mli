(** Online posterior updates: fold newly arrived late-stage samples
    into a fitted model without a full refit.

    The MAP solve only ever factorizes the K x K Woodbury core
    [C = hyper I + G W^-1 G^T] (Map_solver's fast path, eq. 53-58).
    Appending a sample borders C by one row/column, and the stored
    Cholesky factor extends under bordering in O(K^2) (one forward
    substitution plus a rank-1 diagonal correction) — so K' new samples
    cost O(K' (KM + K^2)) against O(K^2 M + K^3) for a cold refit, and
    the M x M system is never touched. The update is exact: refreshed
    coefficients match a cold refit on the union of the samples to
    roundoff (test-enforced at 1e-8).

    The prior and hyper-parameter are carried over from the artifact;
    re-selecting them (cross-validation over the enlarged sample set)
    requires a full refit by construction. *)

type t

val of_artifact : Artifact.t -> t
(** Resumes the posterior state stored in an artifact. *)

val num_samples : t -> int
(** Current K (grows with every added sample). *)

val num_terms : t -> int

val add_row : t -> row:Linalg.Vec.t -> value:float -> unit
(** Folds in one sample given its evaluated basis row (length M).
    @raise Invalid_argument on a length mismatch.
    @raise Failure if the bordered core loses positive definiteness
    (numerically degenerate sample). *)

val add_point : t -> x:Linalg.Vec.t -> value:float -> unit
(** Folds in one sample given the raw variation-space point. *)

val add_batch : t -> xs:Linalg.Mat.t -> f:Linalg.Vec.t -> unit
(** Folds in a batch (rows of [xs], responses [f]), amortizing basis
    evaluation across the batch. *)

val coeffs : t -> Linalg.Vec.t
(** Refreshed MAP coefficients over all samples seen so far, at
    O(K^2 + KM) from the maintained factor. *)

val to_artifact : t -> Artifact.t
(** Snapshots the updated posterior as a new artifact (revision +1),
    ready to be saved back to the {!Store}. *)
