(* Write-ahead journal for incremental updates.

   Framing mirrors the Artifact binary codec conventions: every integer
   is a little-endian i64, floats are IEEE-754 bit patterns, strings and
   float arrays are length-prefixed. An entry on disk is

     u64 payload_len | u64 fnv64(payload) | payload

   so a torn tail (crash mid-append) is detected by either a short read
   or a checksum mismatch, and the intact prefix is still replayable. *)

let magic = "BMFJRNL1"

let default_basename = "journal.bmfj"

let file ~root = Filename.concat root default_basename

type entry = {
  meta : Artifact.meta;
  base_rev : int;
  xs : Linalg.Mat.t;
  f : Linalg.Vec.t;
}

(* ------------------------------------------------------------------ *)
(* Codec.                                                              *)

let put_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_float buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_floats buf arr =
  put_int buf (Array.length arr);
  Array.iter (put_float buf) arr

let encode_payload e =
  let buf = Buffer.create 256 in
  put_string buf e.meta.Artifact.circuit;
  put_string buf e.meta.Artifact.metric;
  put_string buf e.meta.Artifact.scale;
  put_int buf e.meta.Artifact.seed;
  put_int buf e.base_rev;
  put_int buf (Linalg.Mat.rows e.xs);
  put_int buf (Linalg.Mat.cols e.xs);
  put_floats buf (Linalg.Mat.to_flat e.xs);
  put_floats buf e.f;
  Buffer.contents buf

let encode_entry e =
  let payload = encode_payload e in
  let buf = Buffer.create (16 + String.length payload) in
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_int64_le buf (Artifact.fnv64 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

exception Bad of string

type reader = { data : string; mutable at : int }

let take rd n =
  if n < 0 || n > String.length rd.data - rd.at then raise (Bad "truncated");
  let at = rd.at in
  rd.at <- rd.at + n;
  at

let get_int rd = Int64.to_int (String.get_int64_le rd.data (take rd 8))

let get_float rd = Int64.float_of_bits (String.get_int64_le rd.data (take rd 8))

let get_string rd =
  let n = get_int rd in
  if n < 0 then raise (Bad "negative string length");
  String.sub rd.data (take rd n) n

let get_floats rd =
  let n = get_int rd in
  if n < 0 || n > (String.length rd.data - rd.at) / 8 then
    raise (Bad "implausible float-array length");
  Array.init n (fun _ -> get_float rd)

let decode_payload payload =
  let rd = { data = payload; at = 0 } in
  let circuit = get_string rd in
  let metric = get_string rd in
  let scale = get_string rd in
  let seed = get_int rd in
  let base_rev = get_int rd in
  let rows = get_int rd in
  let cols = get_int rd in
  if rows < 0 || cols < 0 then raise (Bad "negative dims");
  let data = get_floats rd in
  let f = get_floats rd in
  if rd.at <> String.length payload then raise (Bad "trailing bytes");
  if Array.length data <> rows * cols then raise (Bad "xs size mismatch");
  if Array.length f <> rows then raise (Bad "xs/f row count mismatch");
  if base_rev < 0 then raise (Bad "negative base_rev");
  let xs = Linalg.Mat.init rows cols (fun i j -> data.((i * cols) + j)) in
  { meta = { Artifact.circuit; metric; scale; seed }; base_rev; xs; f }

(* Tolerant scan: decode the longest valid prefix; describe why the
   tail (if any) was discarded. A crash mid-append leaves exactly this
   shape, so a truncated or garbage tail is expected, not an error. *)
let decode_entries data =
  if String.length data < String.length magic then
    ([], Some "missing journal header")
  else if String.sub data 0 (String.length magic) <> magic then
    ([], Some "bad journal magic")
  else begin
    let len = String.length data in
    let rec go at acc =
      if at = len then (List.rev acc, None)
      else if len - at < 16 then
        (List.rev acc, Some "truncated entry header")
      else begin
        let payload_len = Int64.to_int (String.get_int64_le data at) in
        let stored = String.get_int64_le data (at + 8) in
        if payload_len < 0 || payload_len > len - at - 16 then
          (List.rev acc, Some "truncated entry payload")
        else begin
          let payload = String.sub data (at + 16) payload_len in
          if not (Int64.equal (Artifact.fnv64 payload) stored) then
            (List.rev acc, Some "entry checksum mismatch")
          else
            match decode_payload payload with
            | exception Bad msg -> (List.rev acc, Some ("bad entry: " ^ msg))
            | e -> go (at + 16 + payload_len) (e :: acc)
        end
      end
    in
    go (String.length magic) []
  end

let read ~root =
  let f = file ~root in
  if not (Sys.file_exists f) then ([], None)
  else begin
    let ic = open_in_bin f in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode_entries data
  end

(* One wire-shipped entry in the exact on-disk framing (len | fnv | payload),
   nothing before or after. Used by replication to validate streamed WAL
   records end to end with the same checksum the durability layer trusts. *)
let decode_entry data =
  let len = String.length data in
  if len < 16 then Stdlib.Error "truncated entry header"
  else begin
    let payload_len = Int64.to_int (String.get_int64_le data 0) in
    let stored = String.get_int64_le data 8 in
    if payload_len < 0 || payload_len <> len - 16 then
      Stdlib.Error "entry length mismatch"
    else begin
      let payload = String.sub data 16 payload_len in
      if not (Int64.equal (Artifact.fnv64 payload) stored) then
        Stdlib.Error "entry checksum mismatch"
      else
        match decode_payload payload with
        | exception Bad msg -> Stdlib.Error ("bad entry: " ^ msg)
        | e -> Ok e
    end
  end

(* ------------------------------------------------------------------ *)
(* Tail reader: observe entries appended by another process.           *)

module Tail = struct
  let empty_fnv = Artifact.fnv64 ""

  type t = {
    path : string;
    mutable offset : int;
        (* bytes durably consumed; 0 = header not yet verified *)
    mutable seen : int64;  (* fnv64 of the consumed prefix *)
  }

  let create ~root = { path = file ~root; offset = 0; seen = empty_fnv }

  let offset t = t.offset

  let with_file t f =
    if not (Sys.file_exists t.path) then ([], None)
    else begin
      let ic = open_in_bin t.path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
    end

  (* Scan whole entries out of [data]; anything short or not yet
     checksummable stays pending for the next poll. A writer appends the
     16-byte header before the payload, so a reader racing the writer can
     observe any prefix of an entry — all such prefixes park here without
     advancing. A checksum mismatch over a *complete* payload is reported
     but also left pending: it is indistinguishable from bytes still in
     flight, and a real corruption simply stalls the tail at that entry. *)
  let scan data =
    let len = String.length data in
    let rec go at acc =
      if len - at < 16 then (at, List.rev acc, None)
      else begin
        let payload_len = Int64.to_int (String.get_int64_le data at) in
        let stored = String.get_int64_le data (at + 8) in
        if payload_len < 0 then
          (at, List.rev acc, Some "negative entry length")
        else if payload_len > len - at - 16 then (at, List.rev acc, None)
        else begin
          let payload = String.sub data (at + 16) payload_len in
          if not (Int64.equal (Artifact.fnv64 payload) stored) then
            (at, List.rev acc, Some "entry checksum mismatch (pending)")
          else
            match decode_payload payload with
            | exception Bad msg -> (at, List.rev acc, Some ("bad entry: " ^ msg))
            | e -> go (at + 16 + payload_len) (e :: acc)
        end
      end
    in
    go 0 []

  let poll t =
    with_file t (fun ic ->
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        (* A shrink means the writer truncated (commit completed) and the
           tail starts over from the header. But ftruncate keeps the
           inode, so a new incarnation that already regrew to (or past)
           the consumed offset is only visible in the bytes themselves —
           the consumed prefix no longer hashes to what was consumed.
           (An incarnation byte-identical to the consumed prefix is
           indistinguishable, and redelivering it would be a no-op.) *)
        if
          len < t.offset
          || (t.offset > 0
             && not
                  (Int64.equal
                     (Artifact.fnv64 (String.sub data 0 t.offset))
                     t.seen))
        then begin
          t.offset <- 0;
          t.seen <- empty_fnv
        end;
        let header_ok =
          if t.offset > 0 then true
          else if len < String.length magic then false
          else String.equal (String.sub data 0 (String.length magic)) magic
        in
        if not header_ok then
          (if len >= String.length magic then ([], Some "bad journal magic")
           else ([], None))
        else begin
          if t.offset = 0 then t.offset <- String.length magic;
          let consumed, entries, diag =
            scan (String.sub data t.offset (len - t.offset))
          in
          t.offset <- t.offset + consumed;
          t.seen <- Artifact.fnv64 (String.sub data 0 t.offset);
          (entries, diag)
        end)
end

(* ------------------------------------------------------------------ *)
(* Append handle.                                                      *)

type t = {
  fd : Unix.file_descr;
  durability : Store.durability;
  mutable entries : int;  (* entries currently in the live file *)
}

let m_appends =
  Obs.Metrics.counter ~help:"Journal entries appended"
    "bmf_journal_appends_total"

let m_bytes =
  Obs.Metrics.counter ~help:"Journal bytes written"
    "bmf_journal_bytes_written_total"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

let maybe_fsync t =
  match t.durability with
  | `Fast -> ()
  | `Durable ->
      Crashpoint.step ();
      Unix.fsync t.fd

let open_ ?(durability = `Durable) ~root () =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let path = file ~root in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let t = { fd; durability; entries = 0 } in
  (* existing tails are the recovery module's business (replayed before
     the daemon opens its handle): an append handle always starts from
     a clean, header-only file *)
  Crashpoint.step ();
  Unix.ftruncate fd 0;
  Crashpoint.step ();
  write_all fd magic;
  maybe_fsync t;
  t

let append t entry =
  let bytes = encode_entry entry in
  Crashpoint.step ();
  write_all t.fd bytes;
  (* fsync BEFORE the caller applies the update: once [append] returns
     the entry survives SIGKILL, so an acknowledged update can always be
     replayed even if the artifact save never completes *)
  maybe_fsync t;
  t.entries <- t.entries + 1;
  Obs.Metrics.inc m_appends;
  Obs.Metrics.inc ~by:(float_of_int (String.length bytes)) m_bytes

let truncate t =
  Crashpoint.step ();
  Unix.ftruncate t.fd (String.length magic);
  ignore (Unix.lseek t.fd (String.length magic) Unix.SEEK_SET);
  maybe_fsync t;
  t.entries <- 0

let entries t = t.entries

let close t = Unix.close t.fd
