(** Test-only crash fault injection for the durability layer.

    The store and journal call {!step} immediately {e before} every
    durability-relevant syscall (write, fsync, rename, unlink). When the
    harness is armed with a budget of [n], the first [n] steps proceed
    and the [n+1]-th delivers SIGKILL to the process itself — an
    uncatchable stop that models power loss at that exact point in the
    write protocol. Recovery tests sweep [n = 0, 1, 2, ...] to kill the
    process at {e every} distinct step and assert the store always
    recovers to a verified state.

    Disarmed (the default) every {!step} is one branch; the production
    write path is unaffected. *)

val env_var : string
(** ["BMF_CRASH_AFTER_N_WRITES"] — setting it to [n] arms the process
    at startup (first {!step} or {!armed} call) with budget [n].
    @raise Failure on a malformed value: the harness must never be
    silently disabled by a typo. *)

val arm : int -> unit
(** [arm n] allows [n] more steps, then kills. Overrides the
    environment. @raise Invalid_argument if [n < 0]. *)

val disarm : unit -> unit
(** Disable injection (also suppresses any environment arming). *)

val reset : unit -> unit
(** Forget any arming {e and} re-read {!env_var} on the next {!step} or
    {!armed} call — the environment is normally consulted only once per
    process. Test hook. *)

val armed : unit -> bool

val step : unit -> unit
(** Count one durability-relevant operation; SIGKILLs the process when
    the armed budget is exhausted. No-op when disarmed. *)
