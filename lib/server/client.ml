(* Synchronous wire-protocol client: blocking socket, one in-flight
   request at a time, responses matched by id. *)

exception Transport of string

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable inbuf : string;
  mutable closed : bool;
}

let sockaddr_of = function
  | Daemon.Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path

let connect ?(retries = 50) ?(retry_delay_s = 0.1) addr =
  let sockaddr = sockaddr_of addr in
  let domain =
    match addr with
    | Daemon.Tcp _ -> Unix.PF_INET
    | Daemon.Unix_socket _ -> Unix.PF_UNIX
  in
  let rec attempt left =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 0 ->
        Unix.close fd;
        Unix.sleepf retry_delay_s;
        attempt (left - 1)
    | exception e ->
        Unix.close fd;
        (match e with
        | Unix.Unix_error (err, _, _) ->
            raise
              (Transport
                 (Format.asprintf "connect %a: %s" Daemon.pp_address addr
                    (Unix.error_message err)))
        | e -> raise e)
  in
  { fd = attempt retries; next_id = 1; inbuf = ""; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_all t s =
  let n = String.length s in
  let at = ref 0 in
  try
    while !at < n do
      at := !at + Unix.single_write_substring t.fd s !at (n - !at)
    done
  with Unix.Unix_error (err, _, _) ->
    close t;
    raise (Transport ("write: " ^ Unix.error_message err))

let chunk = 65536

let recv_frame t =
  let buf = Bytes.create chunk in
  let rec loop () =
    match Wire.peek t.inbuf ~off:0 with
    | `Frame (frame, next) ->
        t.inbuf <-
          String.sub t.inbuf next (String.length t.inbuf - next);
        frame
    | `Bad msg ->
        close t;
        raise (Transport ("protocol: " ^ msg))
    | `Need _ -> (
        match Unix.read t.fd buf 0 chunk with
        | 0 ->
            close t;
            raise (Transport "connection closed by server")
        | n ->
            t.inbuf <- t.inbuf ^ Bytes.sub_string buf 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (err, _, _) ->
            close t;
            raise (Transport ("read: " ^ Unix.error_message err)))
  in
  loop ()

let roundtrip t ?deadline_ms req =
  if t.closed then raise (Transport "client is closed");
  let id = t.next_id in
  t.next_id <- id + 1;
  send_all t (Wire.encode_request ~id ?deadline_ms req);
  (* responses arrive in request order on this connection; skip any
     stray frame with an older id (e.g. after an abandoned call) *)
  let rec await () =
    let frame = recv_frame t in
    if frame.Wire.frame_id = id then frame
    else if frame.Wire.frame_id < id then await ()
    else begin
      close t;
      raise
        (Transport
           (Printf.sprintf "response id %d does not match request %d"
              frame.Wire.frame_id id))
    end
  in
  let frame = await () in
  match
    Wire.decode_response ~expect:(Wire.opcode_of_request req) frame
  with
  | Error msg ->
      close t;
      raise (Transport ("decode: " ^ msg))
  | Ok (Wire.Error e) -> Error e
  | Ok resp -> Ok resp

let unexpected () = raise (Transport "unexpected response payload")

let ping t =
  match roundtrip t Wire.Ping_req with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> unexpected ()
  | Error e -> Error e

let predict t ?deadline_ms meta points =
  match
    roundtrip t ?deadline_ms
      (Wire.Predict_req { meta; points; with_std = false })
  with
  | Ok (Wire.Predicted { means; _ }) -> Ok means
  | Ok _ -> unexpected ()
  | Error e -> Error e

let predict_with_std t ?deadline_ms meta points =
  match
    roundtrip t ?deadline_ms
      (Wire.Predict_req { meta; points; with_std = true })
  with
  | Ok (Wire.Predicted { means; stds = Some stds }) -> Ok (means, stds)
  | Ok _ -> unexpected ()
  | Error e -> Error e

let update t ?deadline_ms meta ~xs ~f =
  match roundtrip t ?deadline_ms (Wire.Update_req { meta; xs; f }) with
  | Ok (Wire.Updated { rev; samples }) -> Ok (rev, samples)
  | Ok _ -> unexpected ()
  | Error e -> Error e

let list_models t =
  match roundtrip t Wire.List_models_req with
  | Ok (Wire.Models infos) -> Ok infos
  | Ok _ -> unexpected ()
  | Error e -> Error e

let stats t =
  match roundtrip t Wire.Stats_req with
  | Ok (Wire.Stats_payload { uptime_s; requests; recovered_updates; metrics_json })
    ->
      Ok (uptime_s, requests, recovered_updates, metrics_json)
  | Ok _ -> unexpected ()
  | Error e -> Error e
