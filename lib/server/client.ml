(* Synchronous wire-protocol client: blocking socket, one in-flight
   request at a time, responses matched by id. *)

exception Transport of string

type t = {
  addr : Daemon.address;
  mutable fd : Unix.file_descr;
  mutable next_id : int;
  mutable inbuf : string;
  mutable closed : bool;
  backoff : Replication.Backoff.t;
}

type server_stats = {
  uptime_s : float;
  requests : float;
  recovered_updates : float;
  role : string;
  journal_seq : int;
  shards : int;
  metrics_json : string;
}

let sockaddr_of = function
  | Daemon.Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path

let connect_fd ~retries ~retry_delay_s addr =
  let sockaddr = sockaddr_of addr in
  let domain =
    match addr with
    | Daemon.Tcp _ -> Unix.PF_INET
    | Daemon.Unix_socket _ -> Unix.PF_UNIX
  in
  let rec attempt left =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 0 ->
        Unix.close fd;
        Unix.sleepf retry_delay_s;
        attempt (left - 1)
    | exception e ->
        Unix.close fd;
        (match e with
        | Unix.Unix_error (err, _, _) ->
            raise
              (Transport
                 (Format.asprintf "connect %a: %s" Daemon.pp_address addr
                    (Unix.error_message err)))
        | e -> raise e)
  in
  attempt retries

let connect ?(retries = 50) ?(retry_delay_s = 0.1) addr =
  {
    addr;
    fd = connect_fd ~retries ~retry_delay_s addr;
    next_id = 1;
    inbuf = "";
    closed = false;
    backoff = Replication.Backoff.create ();
  }

let address t = t.addr

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* A blip (ECONNREFUSED while the daemon restarts, EPIPE/reset on a
   dropped socket) used to kill the connection permanently; reconnect
   dials again under the shared capped-exponential backoff. Attempts are
   bounded by the policy; success rearms it. *)
let reconnect t =
  close t;
  let rec attempt () =
    if Replication.Backoff.exhausted t.backoff then
      raise
        (Transport
           (Format.asprintf "reconnect %a: %d attempts exhausted"
              Daemon.pp_address t.addr
              (Replication.Backoff.attempts t.backoff)));
    Unix.sleepf (Replication.Backoff.next_delay_s t.backoff);
    match connect_fd ~retries:0 ~retry_delay_s:0. t.addr with
    | fd -> fd
    | exception Transport _ -> attempt ()
  in
  let fd = attempt () in
  t.fd <- fd;
  t.inbuf <- "";
  t.closed <- false;
  Replication.Backoff.reset t.backoff

let with_reconnect ?(retries = 3) t f =
  let rec go tries =
    try f t
    with Transport _ when tries > 0 ->
      reconnect t;
      go (tries - 1)
  in
  go (Stdlib.max 0 retries)

let send_all t s =
  let n = String.length s in
  let at = ref 0 in
  try
    while !at < n do
      at := !at + Unix.single_write_substring t.fd s !at (n - !at)
    done
  with Unix.Unix_error (err, _, _) ->
    close t;
    raise (Transport ("write: " ^ Unix.error_message err))

let chunk = 65536

let recv_frame t =
  let buf = Bytes.create chunk in
  let rec loop () =
    match Wire.peek t.inbuf ~off:0 with
    | `Frame (frame, next) ->
        t.inbuf <-
          String.sub t.inbuf next (String.length t.inbuf - next);
        frame
    | `Bad msg ->
        close t;
        raise (Transport ("protocol: " ^ msg))
    | `Need _ -> (
        match Unix.read t.fd buf 0 chunk with
        | 0 ->
            close t;
            raise (Transport "connection closed by server")
        | n ->
            t.inbuf <- t.inbuf ^ Bytes.sub_string buf 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (err, _, _) ->
            close t;
            raise (Transport ("read: " ^ Unix.error_message err)))
  in
  loop ()

let roundtrip t ?deadline_ms req =
  if t.closed then raise (Transport "client is closed");
  let id = t.next_id in
  t.next_id <- id + 1;
  let op = Wire.opcode_name (Wire.opcode_of_request req) in
  (* each call runs inside a client span; the span's (trace, id) rides
     the frame header so the server's spans become its children. When
     tracing is off [current] is [None] and the frame stays v1. *)
  Obs.Trace.with_span ~cat:"client"
    ~attrs:[ ("op", Obs.Trace.Str op) ]
    ("cli_" ^ op)
  @@ fun _span ->
  let trace = Obs.Trace.current () in
  send_all t (Wire.encode_request ~id ?deadline_ms ?trace req);
  (* responses arrive in request order on this connection; skip any
     stray frame with an older id (e.g. after an abandoned call) *)
  let rec await () =
    let frame = recv_frame t in
    if frame.Wire.frame_id = id then frame
    else if frame.Wire.frame_id < id then await ()
    else begin
      close t;
      raise
        (Transport
           (Printf.sprintf "response id %d does not match request %d"
              frame.Wire.frame_id id))
    end
  in
  let frame = await () in
  match
    Wire.decode_response ~expect:(Wire.opcode_of_request req) frame
  with
  | Error msg ->
      close t;
      raise (Transport ("decode: " ^ msg))
  | Ok (Wire.Error e) -> Error e
  | Ok resp -> Ok resp

let unexpected () = raise (Transport "unexpected response payload")

let ping t =
  match roundtrip t Wire.Ping_req with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> unexpected ()
  | Error e -> Error e

let predict t ?deadline_ms meta points =
  match
    roundtrip t ?deadline_ms
      (Wire.Predict_req { meta; points; with_std = false })
  with
  | Ok (Wire.Predicted { means; _ }) -> Ok means
  | Ok _ -> unexpected ()
  | Error e -> Error e

let predict_with_std t ?deadline_ms meta points =
  match
    roundtrip t ?deadline_ms
      (Wire.Predict_req { meta; points; with_std = true })
  with
  | Ok (Wire.Predicted { means; stds = Some stds }) -> Ok (means, stds)
  | Ok _ -> unexpected ()
  | Error e -> Error e

let update t ?deadline_ms meta ~xs ~f =
  match roundtrip t ?deadline_ms (Wire.Update_req { meta; xs; f }) with
  | Ok (Wire.Updated { rev; samples }) -> Ok (rev, samples)
  | Ok _ -> unexpected ()
  | Error e -> Error e

let list_models t =
  match roundtrip t Wire.List_models_req with
  | Ok (Wire.Models infos) -> Ok infos
  | Ok _ -> unexpected ()
  | Error e -> Error e

let stats t =
  match roundtrip t Wire.Stats_req with
  | Ok
      (Wire.Stats_payload
        {
          uptime_s;
          requests;
          recovered_updates;
          role;
          journal_seq;
          shards;
          metrics_json;
        }) ->
      Ok
        {
          uptime_s;
          requests;
          recovered_updates;
          role;
          journal_seq;
          shards;
          metrics_json;
        }
  | Ok _ -> unexpected ()
  | Error e -> Error e

let predict_ensemble t ?deadline_ms ~name points =
  match
    roundtrip t ?deadline_ms (Wire.Predict_ensemble_req { name; points })
  with
  | Ok (Wire.Ensemble_predicted { means; within; between }) ->
      Ok (means, within, between)
  | Ok _ -> unexpected ()
  | Error e -> Error e

let ensemble_stats t ?(name = "") () =
  match roundtrip t (Wire.Ensemble_stats_req { name }) with
  | Ok (Wire.Ensemble_stats_payload { json }) -> Ok json
  | Ok _ -> unexpected ()
  | Error e -> Error e

let events t =
  match roundtrip t Wire.Events_req with
  | Ok (Wire.Events_payload { json }) -> Ok json
  | Ok _ -> unexpected ()
  | Error e -> Error e

let promote t =
  match roundtrip t Wire.Promote_req with
  | Ok (Wire.Promoted { was_follower; journal_seq }) ->
      Ok (was_follower, journal_seq)
  | Ok _ -> unexpected ()
  | Error e -> Error e

(* The Not_leader message embeds the leader address in the canonical
   [tcp://...]/[unix://...] rendering; fish it back out. *)
let leader_hint (e : Wire.error) =
  match e.Wire.code with
  | Wire.Not_leader ->
      let msg = e.Wire.message in
      let find sub =
        let ls = String.length sub and lm = String.length msg in
        let rec go i =
          if i + ls > lm then None
          else if String.sub msg i ls = sub then Some i
          else go (i + 1)
        in
        go 0
      in
      let at =
        match (find "tcp://", find "unix://") with
        | Some a, Some b -> Some (Stdlib.min a b)
        | (Some _ as s), None | None, (Some _ as s) -> s
        | None, None -> None
      in
      Option.bind at (fun i ->
          Daemon.parse_address (String.sub msg i (String.length msg - i)))
  | _ -> None

let update_with_redirect t ?deadline_ms meta ~xs ~f =
  match update t ?deadline_ms meta ~xs ~f with
  | Error e as r -> (
      match leader_hint e with
      | None -> (r, None)
      | Some leader ->
          (* one transparent retry against the leader the follower named,
             over a short-lived connection of its own *)
          let c = connect ~retries:5 ~retry_delay_s:0.05 leader in
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () -> (update c ?deadline_ms meta ~xs ~f, Some leader)))
  | r -> (r, None)
