(** Closed-loop load generator for the prediction daemon.

    Spawns one domain per connection; every connection runs a blocking
    request loop (send one predict, wait for the response, repeat) for
    the configured duration, so offered load self-regulates to what the
    daemon sustains — the classic closed-loop harness. Per-request
    latencies are recorded client-side and merged into percentiles.

    Query points are deterministic per (seed, connection index), so a
    run is reproducible against a fixed model. *)

type op_stats = {
  op : string;
      (** ["predict"], ["predict_var"], ["predict_ensemble"], ["update"],
          ["stats"]. *)
  ok : int;
  busy : int;
  op_errors : int;
  op_mean_s : float;
  op_p50_s : float;
  op_p90_s : float;
  op_p99_s : float;
  op_max_s : float;
}
(** Latency/outcome breakdown for one opcode of the traffic mix. *)

type summary = {
  connections : int;
  endpoints : int;
      (** Distinct daemon addresses the connections fan out over —
          connection [i] dials endpoint [i mod endpoints], so a
          leader/follower pair splits the read load evenly. *)
  duration_s : float;  (** Actual wall-clock measurement window. *)
  batch : int;  (** Query points per request. *)
  with_std : bool;
  requests : int;  (** Successful predict responses. *)
  points : int;  (** Total predicted points ([requests * batch]). *)
  busy : int;  (** [Busy] refusals (backpressure hits). *)
  errors : int;  (** Other error responses. *)
  reconnects : int;
      (** Successful {!Client.reconnect}s after a transport drop (daemon
          restart or failover) — each costs one in-flight request. *)
  throughput_rps : float;  (** Successful requests per second. *)
  throughput_pps : float;  (** Predicted points per second. *)
  latency_mean_s : float;
  latency_p50_s : float;
  latency_p90_s : float;
  latency_p99_s : float;
  latency_max_s : float;
  ops : op_stats list;
      (** Per-opcode breakdown, predict first. Opcodes absent from the
          traffic mix are omitted. *)
}

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0, 1] over an ascending-sorted
    array: linear interpolation between the two nearest ranks (the
    "type 7" estimator), [nan] on an empty array. Exposed for unit
    tests against known fixtures. *)

val run :
  ?connections:int ->
  ?duration_s:float ->
  ?batch:int ->
  ?with_std:bool ->
  ?deadline_ms:int ->
  ?update_every:int ->
  ?stats_every:int ->
  ?ensemble:string ->
  ?seed:int ->
  meta:Serving.Artifact.meta ->
  Daemon.address list ->
  summary
(** Defaults: 4 connections, 5 s, 64 points per request, means only.
    Connections round-robin over the endpoint list (a single-element
    list is the classic one-daemon run; a [leader; follower] pair
    measures replicated read fan-out). The model's variation-space
    dimension is discovered via [list_models] on the first endpoint.
    A connection whose socket drops mid-run reconnects under the
    client's capped backoff and keeps going (counted in [reconnects]);
    it stops early only when the backoff budget is exhausted.

    [update_every = n] (> 0) turns every n-th request of each worker
    into an [update] carrying a few random observation rows —
    {e mutating} the served model, so point it at scratch stores only;
    updates must reach the leader or they count as errors.
    [stats_every = m] mixes in [stats] requests the same way. The
    [ops] field of the summary then breaks latency down per opcode.
    Both default to 0 (pure predict load, summary identical in shape
    and semantics to earlier releases apart from [ops]).

    [ensemble = name] routes every second predict slot through
    [predict_ensemble] against that ensemble (same points matrix), so
    the report contrasts single-model and BMA serving latency under one
    load; its breakdown appears as the ["predict_ensemble"] op.
    @raise Invalid_argument on an empty endpoint list;
    @raise Failure when the first endpoint does not serve [meta];
    @raise Client.Transport when the initial connections fail. *)

val to_json : summary -> string
(** One flat JSON object (the [repro loadgen] / bench record). *)

val pp : Format.formatter -> summary -> unit
(** Human-readable multi-line report. *)
