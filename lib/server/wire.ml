(* Frame layout (little-endian):

     u32 length of the rest | u8 version | u8 kind | u64 id
     | u32 deadline_ms | [v2: u64 trace_id | u64 span_id] | body

   Version 1 frames carry no trace context; version 2 appends a
   trace/span-id pair to the header so a request (or a shipped WAL
   entry) can join a distributed trace. Decoders accept both, so a v1
   peer keeps working against a v2 daemon and vice versa.

   Body primitives match the Artifact binary codec: i64 ints, IEEE-754
   floats, length-prefixed strings and float arrays. Every decoder
   bounds-checks against the actual bytes received before allocating,
   so advertised lengths can never drive allocation. *)

let version = 2

let min_version = 1

let max_frame_len = 16 * 1024 * 1024

let header_len = 1 + 1 + 8 + 4

let header_len_v2 = header_len + 8 + 8

(* Largest predict batch whose [Predicted] response — u64 count, 8 bytes
   per mean, the std-presence byte, and (with variance) another counted
   float array — still fits under [max_frame_len]. Sized against the
   larger v2 header so it holds whichever version frames the response.
   Servers enforce this at admission so encoding a legitimate response
   can never overflow a frame. *)
let max_predict_rows ~with_std =
  let per_row = if with_std then 16 else 8 in
  let fixed = header_len_v2 + 8 + 1 + if with_std then 8 else 0 in
  (max_frame_len - fixed) / per_row

(* Same admission bound for [Ensemble_predicted]: three counted float
   arrays (mean, within-variance, between-variance), 24 bytes per row. *)
let max_ensemble_rows =
  let per_row = 24 in
  let fixed = header_len_v2 + (3 * 8) in
  (max_frame_len - fixed) / per_row

type opcode =
  | Ping
  | Predict
  | Predict_var
  | Update
  | List_models
  | Stats
  | Subscribe
  | Repl_ack
  | Promote
  | Events
  | Predict_ensemble
  | Ensemble_stats

let opcode_name = function
  | Ping -> "ping"
  | Predict -> "predict"
  | Predict_var -> "predict_with_variance"
  | Update -> "update"
  | List_models -> "list_models"
  | Stats -> "stats"
  | Subscribe -> "subscribe"
  | Repl_ack -> "repl_ack"
  | Promote -> "promote"
  | Events -> "events"
  | Predict_ensemble -> "predict_ensemble"
  | Ensemble_stats -> "ensemble_stats"

let opcode_byte = function
  | Ping -> 1
  | Predict -> 2
  | Predict_var -> 3
  | Update -> 4
  | List_models -> 5
  | Stats -> 6
  | Subscribe -> 7
  | Repl_ack -> 8
  | Promote -> 9
  | Events -> 10
  | Predict_ensemble -> 11
  | Ensemble_stats -> 12

let opcode_of_byte = function
  | 1 -> Some Ping
  | 2 -> Some Predict
  | 3 -> Some Predict_var
  | 4 -> Some Update
  | 5 -> Some List_models
  | 6 -> Some Stats
  | 7 -> Some Subscribe
  | 8 -> Some Repl_ack
  | 9 -> Some Promote
  | 10 -> Some Events
  | 11 -> Some Predict_ensemble
  | 12 -> Some Ensemble_stats
  | _ -> None

type request =
  | Ping_req
  | Predict_req of {
      meta : Serving.Artifact.meta;
      points : Linalg.Mat.t;
      with_std : bool;
    }
  | Update_req of {
      meta : Serving.Artifact.meta;
      xs : Linalg.Mat.t;
      f : Linalg.Vec.t;
    }
  | List_models_req
  | Stats_req
  | Subscribe_req of { vector : (Serving.Artifact.meta * int) list }
  | Repl_ack_req of { seq : int }
  | Promote_req
  | Events_req
  | Predict_ensemble_req of { name : string; points : Linalg.Mat.t }
  | Ensemble_stats_req of { name : string }

let opcode_of_request = function
  | Ping_req -> Ping
  | Predict_req { with_std; _ } -> if with_std then Predict_var else Predict
  | Update_req _ -> Update
  | List_models_req -> List_models
  | Stats_req -> Stats
  | Subscribe_req _ -> Subscribe
  | Repl_ack_req _ -> Repl_ack
  | Promote_req -> Promote
  | Events_req -> Events
  | Predict_ensemble_req _ -> Predict_ensemble
  | Ensemble_stats_req _ -> Ensemble_stats

type error_code =
  | Busy
  | Deadline_exceeded
  | Model_not_found
  | Bad_request
  | Internal
  | Shutting_down
  | Protocol
  | Not_leader

let error_code_name = function
  | Busy -> "busy"
  | Deadline_exceeded -> "deadline_exceeded"
  | Model_not_found -> "model_not_found"
  | Bad_request -> "bad_request"
  | Internal -> "internal"
  | Shutting_down -> "shutting_down"
  | Protocol -> "protocol"
  | Not_leader -> "not_leader"

(* Response kind byte: 0 = OK, else one of these. *)
let error_byte = function
  | Busy -> 1
  | Deadline_exceeded -> 2
  | Model_not_found -> 3
  | Bad_request -> 4
  | Internal -> 5
  | Shutting_down -> 6
  | Protocol -> 7
  | Not_leader -> 8

let error_of_byte = function
  | 1 -> Some Busy
  | 2 -> Some Deadline_exceeded
  | 3 -> Some Model_not_found
  | 4 -> Some Bad_request
  | 5 -> Some Internal
  | 6 -> Some Shutting_down
  | 7 -> Some Protocol
  | 8 -> Some Not_leader
  | _ -> None

type error = { code : error_code; message : string }

type model_info = {
  meta : Serving.Artifact.meta;
  rev : int;
  samples : int;
  terms : int;
  dim : int;
  file : string;
  bytes : int;
}

type response =
  | Pong
  | Predicted of { means : Linalg.Vec.t; stds : Linalg.Vec.t option }
  | Updated of { rev : int; samples : int }
  | Models of model_info list
  | Stats_payload of {
      uptime_s : float;
      requests : float;
      recovered_updates : float;
      role : string;
      journal_seq : int;
      shards : int;
      metrics_json : string;
    }
  | Promoted of { was_follower : bool; journal_seq : int }
  | Events_payload of { json : string }
  | Ensemble_predicted of {
      means : Linalg.Vec.t;
      within : Linalg.Vec.t;
      between : Linalg.Vec.t;
    }
  | Ensemble_stats_payload of { json : string }
  | Error of error

(* Pushes: unsolicited leader-to-subscriber frames on a replication
   link. Their kind bytes live in a disjoint space (32+) so a confused
   peer can never mistake one for a response (0-15) or request (1-12). *)

type push =
  | Snapshot_chunk of {
      meta : Serving.Artifact.meta;
      rev : int;
      total : int;
      offset : int;
      data : string;
    }
  | Journal_entry of { seq : int; ts : float; entry : string }
  | Repl_status of { seq : int; snapshots : int; ts : float }
  | Repl_heartbeat of { seq : int; ts : float }

let push_byte = function
  | Snapshot_chunk _ -> 32
  | Journal_entry _ -> 33
  | Repl_status _ -> 34
  | Repl_heartbeat _ -> 35

let is_push_kind k = k >= 32 && k <= 35

(* Room left for the chunk payload once the frame header, the meta
   (generously bounded) and the fixed ints are accounted for. *)
let max_snapshot_chunk = max_frame_len - header_len_v2 - 4096

(* ------------------------------------------------------------------ *)
(* Body primitives.                                                    *)

let put_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_floats buf arr =
  put_int buf (Array.length arr);
  Array.iter (put_float buf) arr

let put_meta buf (m : Serving.Artifact.meta) =
  put_string buf m.circuit;
  put_string buf m.metric;
  put_string buf m.scale;
  put_int buf m.seed

let put_mat buf (m : Linalg.Mat.t) =
  put_int buf (Linalg.Mat.rows m);
  put_int buf (Linalg.Mat.cols m);
  let d = Linalg.Mat.data m in
  for i = 0 to (Linalg.Mat.rows m * Linalg.Mat.cols m) - 1 do
    put_float buf (Bigarray.Array1.unsafe_get d i)
  done

exception Short of string

type reader = { data : string; mutable at : int }

let take rd n =
  (* [String.length rd.data - rd.at] never overflows ([rd.at] is a valid
     offset), whereas [rd.at + n] wraps for n near max_int *)
  if n < 0 || n > String.length rd.data - rd.at then
    raise (Short "truncated body");
  let at = rd.at in
  rd.at <- rd.at + n;
  at

let get_int rd = Int64.to_int (String.get_int64_le rd.data (take rd 8))

let get_float rd = Int64.float_of_bits (String.get_int64_le rd.data (take rd 8))

let get_string rd =
  let n = get_int rd in
  if n < 0 then raise (Short "negative string length");
  String.sub rd.data (take rd n) n

let get_floats rd what =
  let n = get_int rd in
  if n < 0 || n > (String.length rd.data - rd.at) / 8 then
    raise (Short ("implausible " ^ what ^ " length"));
  Array.init n (fun _ -> get_float rd)

let get_meta rd =
  let circuit = get_string rd in
  let metric = get_string rd in
  let scale = get_string rd in
  let seed = get_int rd in
  { Serving.Artifact.circuit; metric; scale; seed }

let get_mat rd what =
  let rows = get_int rd in
  let cols = get_int rd in
  if rows < 0 || cols < 0 then raise (Short ("negative " ^ what ^ " dims"));
  if
    cols > 0
    && rows > (String.length rd.data - rd.at) / 8 / (Stdlib.max 1 cols)
  then raise (Short ("implausible " ^ what ^ " size"));
  Linalg.Mat.init rows cols (fun _ _ -> get_float rd)

let finished rd =
  if rd.at <> String.length rd.data then raise (Short "trailing bytes")

(* ------------------------------------------------------------------ *)
(* Framing.                                                            *)

(* [?trace] is the (trace_id, span_id) distributed-trace context. A
   frame with context is emitted as v2; without, as v1 — so an
   uninstrumented fleet keeps producing byte-identical v1 streams and
   both header layouts stay exercised. [~ver:2] forces the v2 header
   even with a zero context (push frames, whose v2 bodies carry
   timestamps regardless of tracing). *)
let frame ?ver ?trace ~kind ~id ~deadline_ms body =
  if id < 0 then invalid_arg "Wire: negative request id";
  if deadline_ms < 0 then invalid_arg "Wire: negative deadline";
  let trace_id, span_id = match trace with Some t -> t | None -> (0, 0) in
  if trace_id < 0 || span_id < 0 then
    invalid_arg "Wire: negative trace context";
  let v =
    match ver with
    | Some v ->
        if v < min_version || v > version then
          invalid_arg "Wire: bad frame version";
        if v = 1 && (trace_id <> 0 || span_id <> 0) then
          invalid_arg "Wire: trace context requires a v2 frame";
        v
    | None -> if trace_id <> 0 || span_id <> 0 then 2 else 1
  in
  let hlen = if v = 1 then header_len else header_len_v2 in
  let n = hlen + String.length body in
  if n > max_frame_len then invalid_arg "Wire: frame exceeds max_frame_len";
  let buf = Buffer.create (4 + n) in
  Buffer.add_int32_le buf (Int32.of_int n);
  Buffer.add_uint8 buf v;
  Buffer.add_uint8 buf kind;
  Buffer.add_int64_le buf (Int64.of_int id);
  Buffer.add_int32_le buf (Int32.of_int deadline_ms);
  if v >= 2 then begin
    Buffer.add_int64_le buf (Int64.of_int trace_id);
    Buffer.add_int64_le buf (Int64.of_int span_id)
  end;
  Buffer.add_string buf body;
  Buffer.contents buf

type frame = {
  frame_version : int;
  frame_kind : int;
  frame_id : int;
  frame_deadline_ms : int;
  frame_trace : int;
  frame_span : int;
  body : string;
}

let peek s ~off =
  let have = String.length s - off in
  if have < 4 then `Need (4 - have)
  else begin
    let n = Int32.to_int (String.get_int32_le s off) in
    if n < header_len then `Bad (Printf.sprintf "frame length %d too small" n)
    else if n > max_frame_len then
      `Bad (Printf.sprintf "frame length %d exceeds limit %d" n max_frame_len)
    else if have < 4 + n then `Need (4 + n - have)
    else begin
      let v = Char.code s.[off + 4] in
      if v < min_version || v > version then
        `Bad (Printf.sprintf "unsupported version %d" v)
      else if v >= 2 && n < header_len_v2 then
        `Bad (Printf.sprintf "v2 frame length %d too small" n)
      else begin
        let frame_kind = Char.code s.[off + 5] in
        let frame_id = Int64.to_int (String.get_int64_le s (off + 6)) in
        if frame_id < 0 then
          (* a u64 id with the top bits set; we could never echo it back
             ([frame] refuses negative ids), so refuse the stream *)
          `Bad "request id exceeds the representable range"
        else begin
          let frame_deadline_ms =
            Int32.to_int (String.get_int32_le s (off + 14))
          in
          (* Trace context is advisory: a u64 that does not fit the
             positive int range (garbage, or a foreign id scheme) is
             dropped to 0 rather than poisoning the stream. *)
          let u64_or_zero at =
            let x = Int64.to_int (String.get_int64_le s at) in
            if x < 0 then 0 else x
          in
          let frame_trace = if v >= 2 then u64_or_zero (off + 18) else 0 in
          let frame_span = if v >= 2 then u64_or_zero (off + 26) else 0 in
          let hlen = if v >= 2 then header_len_v2 else header_len in
          let body = String.sub s (off + 4 + hlen) (n - hlen) in
          `Frame
            ( {
                frame_version = v;
                frame_kind;
                frame_id;
                frame_deadline_ms;
                frame_trace;
                frame_span;
                body;
              },
              off + 4 + n )
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Requests.                                                           *)

let encode_request ~id ?(deadline_ms = 0) ?trace req =
  let buf = Buffer.create 256 in
  (match req with
  | Ping_req | List_models_req | Stats_req | Promote_req | Events_req -> ()
  | Predict_req { meta; points; _ } ->
      put_meta buf meta;
      put_mat buf points
  | Update_req { meta; xs; f } ->
      put_meta buf meta;
      put_mat buf xs;
      put_floats buf f
  | Subscribe_req { vector } ->
      put_int buf (List.length vector);
      List.iter
        (fun (m, rev) ->
          put_meta buf m;
          put_int buf rev)
        vector
  | Repl_ack_req { seq } -> put_int buf seq
  | Predict_ensemble_req { name; points } ->
      put_string buf name;
      put_mat buf points
  | Ensemble_stats_req { name } -> put_string buf name);
  frame ?trace
    ~kind:(opcode_byte (opcode_of_request req))
    ~id ~deadline_ms (Buffer.contents buf)

let decode_request f =
  match opcode_of_byte f.frame_kind with
  | None -> Stdlib.Error (Printf.sprintf "unknown opcode %d" f.frame_kind)
  | Some op -> (
      let rd = { data = f.body; at = 0 } in
      try
        let req =
          match op with
          | Ping -> Ping_req
          | List_models -> List_models_req
          | Stats -> Stats_req
          | Predict | Predict_var ->
              let meta = get_meta rd in
              let points = get_mat rd "points" in
              Predict_req { meta; points; with_std = op = Predict_var }
          | Update ->
              let meta = get_meta rd in
              let xs = get_mat rd "xs" in
              let f = get_floats rd "f" in
              if Array.length f <> Linalg.Mat.rows xs then
                raise (Short "xs/f row count mismatch");
              Update_req { meta; xs; f }
          | Subscribe ->
              let n = get_int rd in
              (* a vector element is at least 40 bytes (three length
                 prefixes + seed + rev), so bound n by the bytes held *)
              if n < 0 || n > (String.length rd.data - rd.at) / 40 then
                raise (Short "implausible revision-vector length");
              let vector =
                List.init n (fun _ ->
                    let m = get_meta rd in
                    let rev = get_int rd in
                    if rev < 0 then raise (Short "negative revision");
                    (m, rev))
              in
              Subscribe_req { vector }
          | Repl_ack ->
              let seq = get_int rd in
              if seq < 0 then raise (Short "negative sequence");
              Repl_ack_req { seq }
          | Promote -> Promote_req
          | Events -> Events_req
          | Predict_ensemble ->
              let name = get_string rd in
              let points = get_mat rd "points" in
              if String.length name = 0 then raise (Short "empty ensemble name");
              Predict_ensemble_req { name; points }
          | Ensemble_stats ->
              (* an empty name means "every ensemble" *)
              let name = get_string rd in
              Ensemble_stats_req { name }
        in
        finished rd;
        Ok req
      with Short msg -> Stdlib.Error (opcode_name op ^ ": " ^ msg))

(* ------------------------------------------------------------------ *)
(* Responses.                                                          *)

let encode_response ~id resp =
  let buf = Buffer.create 256 in
  let kind =
    match resp with
    | Pong -> 0
    | Predicted { means; stds } ->
        put_floats buf means;
        (match stds with
        | None -> Buffer.add_uint8 buf 0
        | Some stds ->
            Buffer.add_uint8 buf 1;
            put_floats buf stds);
        0
    | Updated { rev; samples } ->
        put_int buf rev;
        put_int buf samples;
        0
    | Models infos ->
        put_int buf (List.length infos);
        List.iter
          (fun i ->
            put_meta buf i.meta;
            put_int buf i.rev;
            put_int buf i.samples;
            put_int buf i.terms;
            put_int buf i.dim;
            put_string buf i.file;
            put_int buf i.bytes)
          infos;
        0
    | Stats_payload
        {
          uptime_s;
          requests;
          recovered_updates;
          role;
          journal_seq;
          shards;
          metrics_json;
        } ->
        put_float buf uptime_s;
        put_float buf recovered_updates;
        put_float buf requests;
        put_string buf role;
        put_int buf journal_seq;
        put_int buf shards;
        put_string buf metrics_json;
        0
    | Promoted { was_follower; journal_seq } ->
        put_int buf (if was_follower then 1 else 0);
        put_int buf journal_seq;
        0
    | Events_payload { json } ->
        put_string buf json;
        0
    | Ensemble_predicted { means; within; between } ->
        put_floats buf means;
        put_floats buf within;
        put_floats buf between;
        0
    | Ensemble_stats_payload { json } ->
        put_string buf json;
        0
    | Error { code; message } ->
        put_string buf message;
        error_byte code
  in
  frame ~kind ~id ~deadline_ms:0 (Buffer.contents buf)

let decode_response ~expect f =
  if f.frame_kind <> 0 then
    match error_of_byte f.frame_kind with
    | None ->
        Stdlib.Error (Printf.sprintf "unknown response kind %d" f.frame_kind)
    | Some code -> (
        let rd = { data = f.body; at = 0 } in
        try
          let message = get_string rd in
          finished rd;
          Ok (Error { code; message })
        with Short msg -> Stdlib.Error ("error frame: " ^ msg))
  else
    let rd = { data = f.body; at = 0 } in
    try
      let resp =
        match expect with
        | Ping -> Pong
        | Predict | Predict_var ->
            let means = get_floats rd "means" in
            let has_std = Char.code f.body.[take rd 1] <> 0 in
            let stds = if has_std then Some (get_floats rd "stds") else None in
            Predicted { means; stds }
        | Update ->
            let rev = get_int rd in
            let samples = get_int rd in
            Updated { rev; samples }
        | List_models ->
            let n = get_int rd in
            if n < 0 || n > String.length f.body then
              raise (Short "implausible model count");
            let infos =
              List.init n (fun _ ->
                  let meta = get_meta rd in
                  let rev = get_int rd in
                  let samples = get_int rd in
                  let terms = get_int rd in
                  let dim = get_int rd in
                  let file = get_string rd in
                  let bytes = get_int rd in
                  { meta; rev; samples; terms; dim; file; bytes })
            in
            Models infos
        | Stats ->
            let uptime_s = get_float rd in
            let recovered_updates = get_float rd in
            let requests = get_float rd in
            let role = get_string rd in
            let journal_seq = get_int rd in
            let shards = get_int rd in
            let metrics_json = get_string rd in
            Stats_payload
              {
                uptime_s;
                requests;
                recovered_updates;
                role;
                journal_seq;
                shards;
                metrics_json;
              }
        | Promote ->
            let was_follower = get_int rd <> 0 in
            let journal_seq = get_int rd in
            Promoted { was_follower; journal_seq }
        | Events ->
            let json = get_string rd in
            Events_payload { json }
        | Predict_ensemble ->
            let means = get_floats rd "means" in
            let within = get_floats rd "within" in
            let between = get_floats rd "between" in
            if
              Array.length within <> Array.length means
              || Array.length between <> Array.length means
            then raise (Short "variance array length mismatch");
            Ensemble_predicted { means; within; between }
        | Ensemble_stats ->
            let json = get_string rd in
            Ensemble_stats_payload { json }
        | Subscribe | Repl_ack ->
            (* subscribe is answered by pushes on the same stream and
               repl_ack is fire-and-forget; only error frames (handled
               above) are legal replies *)
            raise (Short "no success response defined")
      in
      finished rd;
      Ok resp
    with Short msg -> Stdlib.Error (opcode_name expect ^ " response: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Pushes.                                                             *)

(* Pushes always frame as v2: their v2 bodies carry the leader's
   wall-clock commit timestamp (the basis of follower lag-in-seconds),
   which exists whether or not any trace is active. [?trace] tags a
   [Journal_entry] with the originating update's context so the
   follower's apply span joins the client's trace. *)
let encode_push ?trace p =
  let buf = Buffer.create 256 in
  (match p with
  | Snapshot_chunk { meta; rev; total; offset; data } ->
      put_meta buf meta;
      put_int buf rev;
      put_int buf total;
      put_int buf offset;
      put_string buf data
  | Journal_entry { seq; ts; entry } ->
      put_int buf seq;
      put_float buf ts;
      put_string buf entry
  | Repl_status { seq; snapshots; ts } ->
      put_int buf seq;
      put_int buf snapshots;
      put_float buf ts
  | Repl_heartbeat { seq; ts } ->
      put_int buf seq;
      put_float buf ts);
  frame ~ver:2 ?trace ~kind:(push_byte p) ~id:0 ~deadline_ms:0
    (Buffer.contents buf)

(* v1 peers encoded [Journal_entry] as [seq | entry] and [Repl_status]
   as [seq | snapshots] — no timestamp. Decode both layouts, keyed on
   the frame version, with [ts = 0.] standing in for "unknown". *)
let decode_push f =
  let rd = { data = f.body; at = 0 } in
  let what =
    match f.frame_kind with
    | 32 -> "snapshot_chunk"
    | 33 -> "journal_entry"
    | 34 -> "repl_status"
    | 35 -> "repl_heartbeat"
    | k -> Printf.sprintf "push kind %d" k
  in
  try
    let p =
      match f.frame_kind with
      | 32 ->
          let meta = get_meta rd in
          let rev = get_int rd in
          let total = get_int rd in
          let offset = get_int rd in
          let data = get_string rd in
          if rev < 0 then raise (Short "negative revision");
          if total < 0 || offset < 0 || offset > total then
            raise (Short "inconsistent chunk geometry");
          if offset + String.length data > total then
            raise (Short "chunk overruns advertised total");
          Snapshot_chunk { meta; rev; total; offset; data }
      | 33 ->
          let seq = get_int rd in
          let ts = if f.frame_version >= 2 then get_float rd else 0. in
          let entry = get_string rd in
          if seq < 0 then raise (Short "negative sequence");
          Journal_entry { seq; ts; entry }
      | 34 ->
          let seq = get_int rd in
          let snapshots = get_int rd in
          let ts = if f.frame_version >= 2 then get_float rd else 0. in
          if seq < 0 || snapshots < 0 then raise (Short "negative counts");
          Repl_status { seq; snapshots; ts }
      | 35 ->
          let seq = get_int rd in
          let ts = get_float rd in
          if seq < 0 then raise (Short "negative sequence");
          Repl_heartbeat { seq; ts }
      | k -> raise (Short (Printf.sprintf "unknown push kind %d" k))
    in
    finished rd;
    Ok p
  with Short msg -> Stdlib.Error (what ^ ": " ^ msg)
