(* Closed-loop multi-connection load generator: one domain per
   connection, blocking request loops, client-side latency capture. *)

type summary = {
  connections : int;
  endpoints : int;
  duration_s : float;
  batch : int;
  with_std : bool;
  requests : int;
  points : int;
  busy : int;
  errors : int;
  reconnects : int;
  throughput_rps : float;
  throughput_pps : float;
  latency_mean_s : float;
  latency_p50_s : float;
  latency_p90_s : float;
  latency_p99_s : float;
  latency_max_s : float;
}

type worker_out = {
  w_requests : int;
  w_busy : int;
  w_errors : int;
  w_reconnects : int;
  w_latencies : float list;  (* reverse order; merged later *)
}

let discover_dim addr meta =
  let c = Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.list_models c with
      | Error e ->
          failwith ("loadgen: list_models: " ^ e.Wire.message)
      | Ok infos -> (
          match
            List.find_opt (fun (i : Wire.model_info) -> i.meta = meta) infos
          with
          | Some i -> i.dim
          | None ->
              failwith
                (Printf.sprintf
                   "loadgen: daemon serves no model %s/%s scale=%s seed=%d"
                   meta.Serving.Artifact.circuit meta.Serving.Artifact.metric
                   meta.Serving.Artifact.scale meta.Serving.Artifact.seed)))

let worker addr meta ~dim ~batch ~with_std ~deadline_ms ~seed ~until () =
  let rng = Stats.Rng.create seed in
  let points =
    Linalg.Mat.init batch dim (fun _ _ -> Stats.Rng.gaussian rng)
  in
  let client = Client.connect addr in
  let requests = ref 0 and busy = ref 0 and errors = ref 0 in
  let reconnects = ref 0 in
  let latencies = ref [] in
  let give_up = ref false in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      while (not !give_up) && Unix.gettimeofday () < until do
        let t0 = Unix.gettimeofday () in
        match
          if with_std then
            Result.map ignore
              (Client.predict_with_std client ?deadline_ms meta points)
          else Result.map ignore (Client.predict client ?deadline_ms meta points)
        with
        | Ok () ->
            incr requests;
            latencies := (Unix.gettimeofday () -. t0) :: !latencies
        | Error { Wire.code = Wire.Busy; _ } ->
            incr busy;
            (* back off briefly so a saturated queue can drain *)
            Unix.sleepf 0.0005
        | Error _ -> incr errors
        | exception Client.Transport _ -> (
            (* the daemon dropped the socket (restart, failover): re-dial
               under the client's capped backoff instead of dying *)
            match Client.reconnect client with
            | () -> incr reconnects
            | exception Client.Transport _ -> give_up := true)
      done);
  {
    w_requests = !requests;
    w_busy = !busy;
    w_errors = !errors;
    w_reconnects = !reconnects;
    w_latencies = !latencies;
  }

(* Linear interpolation between ranks (the "type 7" estimator most
   stats packages default to). The old truncating index biased p90/p99
   low on small samples: with 10 latencies, p99 returned sorted.(8). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let run ?(connections = 4) ?(duration_s = 5.) ?(batch = 64)
    ?(with_std = false) ?deadline_ms ?(seed = 20130602) ~meta addrs =
  if connections < 1 then invalid_arg "Loadgen.run: connections < 1";
  if batch < 1 then invalid_arg "Loadgen.run: batch < 1";
  let addrs = Array.of_list addrs in
  let endpoints = Array.length addrs in
  if endpoints = 0 then invalid_arg "Loadgen.run: no endpoints";
  (* the model's dimension must agree across replicas; discover on the
     first endpoint and trust replication for the rest *)
  let dim = discover_dim addrs.(0) meta in
  let t0 = Unix.gettimeofday () in
  let until = t0 +. duration_s in
  let domains =
    Array.init connections (fun i ->
        Domain.spawn
          (worker addrs.(i mod endpoints) meta ~dim ~batch ~with_std
             ~deadline_ms ~seed:(seed + (7919 * i)) ~until))
  in
  let outs = Array.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let requests = Array.fold_left (fun a w -> a + w.w_requests) 0 outs in
  let busy = Array.fold_left (fun a w -> a + w.w_busy) 0 outs in
  let errors = Array.fold_left (fun a w -> a + w.w_errors) 0 outs in
  let reconnects =
    Array.fold_left (fun a w -> a + w.w_reconnects) 0 outs
  in
  let latencies =
    Array.to_list outs
    |> List.concat_map (fun w -> w.w_latencies)
    |> Array.of_list
  in
  (* Float.compare, not polymorphic compare: the latter orders NaN
     inconsistently inside sort's comparisons and can leave the array
     mis-sorted if a latency was ever NaN *)
  Array.sort Float.compare latencies;
  let mean =
    if Array.length latencies = 0 then nan
    else
      Array.fold_left ( +. ) 0. latencies
      /. float_of_int (Array.length latencies)
  in
  {
    connections;
    endpoints;
    duration_s = wall;
    batch;
    with_std;
    requests;
    points = requests * batch;
    busy;
    errors;
    reconnects;
    throughput_rps = float_of_int requests /. Float.max 1e-9 wall;
    throughput_pps = float_of_int (requests * batch) /. Float.max 1e-9 wall;
    latency_mean_s = mean;
    latency_p50_s = percentile latencies 0.50;
    latency_p90_s = percentile latencies 0.90;
    latency_p99_s = percentile latencies 0.99;
    latency_max_s =
      (if Array.length latencies = 0 then nan
       else latencies.(Array.length latencies - 1));
  }

let jf f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let to_json s =
  Printf.sprintf
    "{\"connections\":%d,\"endpoints\":%d,\"duration_s\":%s,\"batch\":%d,\
     \"with_std\":%b,\
     \"requests\":%d,\"points\":%d,\"busy\":%d,\"errors\":%d,\
     \"reconnects\":%d,\
     \"throughput_rps\":%s,\"throughput_pps\":%s,\
     \"latency_mean_s\":%s,\"latency_p50_s\":%s,\"latency_p90_s\":%s,\
     \"latency_p99_s\":%s,\"latency_max_s\":%s}"
    s.connections s.endpoints (jf s.duration_s) s.batch s.with_std
    s.requests s.points s.busy s.errors s.reconnects
    (jf s.throughput_rps) (jf s.throughput_pps) (jf s.latency_mean_s)
    (jf s.latency_p50_s) (jf s.latency_p90_s) (jf s.latency_p99_s)
    (jf s.latency_max_s)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>closed-loop loadgen: %d connection(s) over %d endpoint(s), %.2f s, \
     %d point(s)/request%s@,\
     requests: %d ok, %d busy, %d error(s), %d reconnect(s)@,\
     throughput: %.0f requests/s = %.0f predictions/s@,\
     latency: mean %.3f ms  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms@]"
    s.connections s.endpoints s.duration_s s.batch
    (if s.with_std then " (with variance)" else "")
    s.requests s.busy s.errors s.reconnects s.throughput_rps s.throughput_pps
    (1e3 *. s.latency_mean_s) (1e3 *. s.latency_p50_s)
    (1e3 *. s.latency_p90_s) (1e3 *. s.latency_p99_s)
    (1e3 *. s.latency_max_s)
