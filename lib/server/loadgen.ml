(* Closed-loop multi-connection load generator: one domain per
   connection, blocking request loops, client-side latency capture. *)

type op_stats = {
  op : string;
  ok : int;
  busy : int;
  op_errors : int;
  op_mean_s : float;
  op_p50_s : float;
  op_p90_s : float;
  op_p99_s : float;
  op_max_s : float;
}

type summary = {
  connections : int;
  endpoints : int;
  duration_s : float;
  batch : int;
  with_std : bool;
  requests : int;
  points : int;
  busy : int;
  errors : int;
  reconnects : int;
  throughput_rps : float;
  throughput_pps : float;
  latency_mean_s : float;
  latency_p50_s : float;
  latency_p90_s : float;
  latency_p99_s : float;
  latency_max_s : float;
  ops : op_stats list;
}

(* Per-opcode accumulator inside one worker. *)
type op_acc = {
  mutable a_ok : int;
  mutable a_busy : int;
  mutable a_errors : int;
  mutable a_lat : float list;  (* reverse order; merged later *)
}

let fresh_acc () = { a_ok = 0; a_busy = 0; a_errors = 0; a_lat = [] }

type worker_out = {
  w_reconnects : int;
  w_predict : op_acc;
  w_update : op_acc;
  w_stats : op_acc;
  w_ensemble : op_acc;
}

let discover_dim addr meta =
  let c = Client.connect addr in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.list_models c with
      | Error e ->
          failwith ("loadgen: list_models: " ^ e.Wire.message)
      | Ok infos -> (
          match
            List.find_opt (fun (i : Wire.model_info) -> i.meta = meta) infos
          with
          | Some i -> i.dim
          | None ->
              failwith
                (Printf.sprintf
                   "loadgen: daemon serves no model %s/%s scale=%s seed=%d"
                   meta.Serving.Artifact.circuit meta.Serving.Artifact.metric
                   meta.Serving.Artifact.scale meta.Serving.Artifact.seed)))

(* How many observation rows an injected update carries — small, so the
   update path cost measured is journal+apply, not sample generation. *)
let update_rows = 4

let worker addr meta ~dim ~batch ~with_std ~deadline_ms ~update_every
    ~stats_every ~ensemble ~seed ~until () =
  let rng = Stats.Rng.create seed in
  let points =
    Linalg.Mat.init batch dim (fun _ _ -> Stats.Rng.gaussian rng)
  in
  let client = Client.connect addr in
  let reconnects = ref 0 in
  let predict_acc = fresh_acc () in
  let update_acc = fresh_acc () in
  let stats_acc = fresh_acc () in
  let ensemble_acc = fresh_acc () in
  let give_up = ref false in
  let iter = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      (* worker domains own a private trace lane: hand it to the merge
         buffer or its client spans die with the domain *)
      Obs.Trace.flush_lane ())
    (fun () ->
      while (not !give_up) && Unix.gettimeofday () < until do
        let i = !iter in
        incr iter;
        let acc, call =
          if update_every > 0 && i mod update_every = update_every - 1 then
            ( update_acc,
              fun () ->
                let xs =
                  Linalg.Mat.init update_rows dim (fun _ _ ->
                      Stats.Rng.gaussian rng)
                in
                let f =
                  Array.init update_rows (fun _ -> Stats.Rng.gaussian rng)
                in
                Result.map ignore (Client.update client ?deadline_ms meta ~xs ~f)
            )
          (* stats fires at phase 0 (after the first request), updates
             at phase n-1: the triggers stay disjoint even when one
             period divides the other *)
          else if stats_every > 0 && i > 0 && i mod stats_every = 0 then
            (stats_acc, fun () -> Result.map ignore (Client.stats client))
          (* with --ensemble, every second predict slot goes through the
             BMA path — deterministic, so runs are reproducible and the
             single-model and ensemble mixes stay comparable *)
          else if (match ensemble with Some _ -> true | None -> false)
                  && i mod 2 = 1 then
            ( ensemble_acc,
              fun () ->
                let name = Option.get ensemble in
                Result.map ignore
                  (Client.predict_ensemble client ?deadline_ms ~name points) )
          else
            ( predict_acc,
              fun () ->
                if with_std then
                  Result.map ignore
                    (Client.predict_with_std client ?deadline_ms meta points)
                else
                  Result.map ignore
                    (Client.predict client ?deadline_ms meta points) )
        in
        let t0 = Unix.gettimeofday () in
        match call () with
        | Ok () ->
            acc.a_ok <- acc.a_ok + 1;
            acc.a_lat <- (Unix.gettimeofday () -. t0) :: acc.a_lat
        | Error { Wire.code = Wire.Busy; _ } ->
            acc.a_busy <- acc.a_busy + 1;
            (* back off briefly so a saturated queue can drain *)
            Unix.sleepf 0.0005
        | Error _ -> acc.a_errors <- acc.a_errors + 1
        | exception Client.Transport _ -> (
            (* the daemon dropped the socket (restart, failover): re-dial
               under the client's capped backoff instead of dying *)
            match Client.reconnect client with
            | () -> incr reconnects
            | exception Client.Transport _ -> give_up := true)
      done);
  {
    w_reconnects = !reconnects;
    w_predict = predict_acc;
    w_update = update_acc;
    w_stats = stats_acc;
    w_ensemble = ensemble_acc;
  }

(* Linear interpolation between ranks (the "type 7" estimator most
   stats packages default to). The old truncating index biased p90/p99
   low on small samples: with 10 latencies, p99 returned sorted.(8). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

(* Float.compare, not polymorphic compare: the latter orders NaN
   inconsistently inside sort's comparisons and can leave the array
   mis-sorted if a latency was ever NaN *)
let sorted_latencies accs =
  let arr =
    List.concat_map (fun a -> a.a_lat) accs |> Array.of_list
  in
  Array.sort Float.compare arr;
  arr

let mean_of arr =
  if Array.length arr = 0 then nan
  else Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)

let op_stats_of op accs =
  let lat = sorted_latencies accs in
  {
    op;
    ok = List.fold_left (fun n a -> n + a.a_ok) 0 accs;
    busy = List.fold_left (fun n a -> n + a.a_busy) 0 accs;
    op_errors = List.fold_left (fun n a -> n + a.a_errors) 0 accs;
    op_mean_s = mean_of lat;
    op_p50_s = percentile lat 0.50;
    op_p90_s = percentile lat 0.90;
    op_p99_s = percentile lat 0.99;
    op_max_s =
      (if Array.length lat = 0 then nan else lat.(Array.length lat - 1));
  }

let run ?(connections = 4) ?(duration_s = 5.) ?(batch = 64)
    ?(with_std = false) ?deadline_ms ?(update_every = 0) ?(stats_every = 0)
    ?ensemble ?(seed = 20130602) ~meta addrs =
  if connections < 1 then invalid_arg "Loadgen.run: connections < 1";
  if batch < 1 then invalid_arg "Loadgen.run: batch < 1";
  let addrs = Array.of_list addrs in
  let endpoints = Array.length addrs in
  if endpoints = 0 then invalid_arg "Loadgen.run: no endpoints";
  (* the model's dimension must agree across replicas; discover on the
     first endpoint and trust replication for the rest *)
  let dim = discover_dim addrs.(0) meta in
  let t0 = Unix.gettimeofday () in
  let until = t0 +. duration_s in
  let domains =
    Array.init connections (fun i ->
        Domain.spawn
          (worker addrs.(i mod endpoints) meta ~dim ~batch ~with_std
             ~deadline_ms ~update_every ~stats_every ~ensemble
             ~seed:(seed + (7919 * i)) ~until))
  in
  let outs = Array.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let outs = Array.to_list outs in
  let predict_accs = List.map (fun w -> w.w_predict) outs in
  let update_accs = List.map (fun w -> w.w_update) outs in
  let stats_accs = List.map (fun w -> w.w_stats) outs in
  let ensemble_accs = List.map (fun w -> w.w_ensemble) outs in
  let all_accs = predict_accs @ update_accs @ stats_accs @ ensemble_accs in
  let requests = List.fold_left (fun n a -> n + a.a_ok) 0 all_accs in
  let busy = List.fold_left (fun n a -> n + a.a_busy) 0 all_accs in
  let errors = List.fold_left (fun n a -> n + a.a_errors) 0 all_accs in
  let reconnects = List.fold_left (fun n w -> n + w.w_reconnects) 0 outs in
  let predict_ok =
    List.fold_left (fun n a -> n + a.a_ok) 0 (predict_accs @ ensemble_accs)
  in
  let latencies = sorted_latencies all_accs in
  let predict_op = if with_std then "predict_var" else "predict" in
  let ops =
    op_stats_of predict_op predict_accs
    :: (if ensemble <> None then
          [ op_stats_of "predict_ensemble" ensemble_accs ]
        else [])
    @ (if update_every > 0 then [ op_stats_of "update" update_accs ] else [])
    @ if stats_every > 0 then [ op_stats_of "stats" stats_accs ] else []
  in
  {
    connections;
    endpoints;
    duration_s = wall;
    batch;
    with_std;
    requests;
    points = predict_ok * batch;
    busy;
    errors;
    reconnects;
    throughput_rps = float_of_int requests /. Float.max 1e-9 wall;
    throughput_pps =
      float_of_int (predict_ok * batch) /. Float.max 1e-9 wall;
    latency_mean_s = mean_of latencies;
    latency_p50_s = percentile latencies 0.50;
    latency_p90_s = percentile latencies 0.90;
    latency_p99_s = percentile latencies 0.99;
    latency_max_s =
      (if Array.length latencies = 0 then nan
       else latencies.(Array.length latencies - 1));
    ops;
  }

let jf f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let op_to_json o =
  Printf.sprintf
    "{\"op\":\"%s\",\"ok\":%d,\"busy\":%d,\"errors\":%d,\
     \"latency_mean_s\":%s,\"latency_p50_s\":%s,\"latency_p90_s\":%s,\
     \"latency_p99_s\":%s,\"latency_max_s\":%s}"
    o.op o.ok o.busy o.op_errors (jf o.op_mean_s) (jf o.op_p50_s)
    (jf o.op_p90_s) (jf o.op_p99_s) (jf o.op_max_s)

let to_json s =
  Printf.sprintf
    "{\"connections\":%d,\"endpoints\":%d,\"duration_s\":%s,\"batch\":%d,\
     \"with_std\":%b,\
     \"requests\":%d,\"points\":%d,\"busy\":%d,\"errors\":%d,\
     \"reconnects\":%d,\
     \"throughput_rps\":%s,\"throughput_pps\":%s,\
     \"latency_mean_s\":%s,\"latency_p50_s\":%s,\"latency_p90_s\":%s,\
     \"latency_p99_s\":%s,\"latency_max_s\":%s,\"ops\":[%s]}"
    s.connections s.endpoints (jf s.duration_s) s.batch s.with_std
    s.requests s.points s.busy s.errors s.reconnects
    (jf s.throughput_rps) (jf s.throughput_pps) (jf s.latency_mean_s)
    (jf s.latency_p50_s) (jf s.latency_p90_s) (jf s.latency_p99_s)
    (jf s.latency_max_s)
    (String.concat "," (List.map op_to_json s.ops))

let pp fmt s =
  Format.fprintf fmt
    "@[<v>closed-loop loadgen: %d connection(s) over %d endpoint(s), %.2f s, \
     %d point(s)/request%s@,\
     requests: %d ok, %d busy, %d error(s), %d reconnect(s)@,\
     throughput: %.0f requests/s = %.0f predictions/s@,\
     latency: mean %.3f ms  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms"
    s.connections s.endpoints s.duration_s s.batch
    (if s.with_std then " (with variance)" else "")
    s.requests s.busy s.errors s.reconnects s.throughput_rps s.throughput_pps
    (1e3 *. s.latency_mean_s) (1e3 *. s.latency_p50_s)
    (1e3 *. s.latency_p90_s) (1e3 *. s.latency_p99_s)
    (1e3 *. s.latency_max_s);
  (* the per-opcode breakdown only earns its lines when the mix has
     more than one opcode *)
  if List.length s.ops > 1 then
    List.iter
      (fun o ->
        Format.fprintf fmt
          "@,%-11s %d ok, %d busy, %d error(s)  mean %.3f ms  p50 %.3f ms  \
           p99 %.3f ms"
          o.op o.ok o.busy o.op_errors (1e3 *. o.op_mean_s)
          (1e3 *. o.op_p50_s) (1e3 *. o.op_p99_s))
      s.ops;
  Format.fprintf fmt "@]"
