(** Blocking client for the BMF prediction daemon.

    One connection, synchronous request/response: each call encodes a
    {!Wire} frame, writes it, and blocks until the matching response
    frame (by request id) arrives. Server-side refusals — backpressure
    ([Busy]), expired deadlines, unknown models — come back as
    [Error Wire.error]; transport and protocol breakage raise
    {!Transport}. *)

exception Transport of string
(** The connection died or the peer broke framing. *)

type t

val connect : ?retries:int -> ?retry_delay_s:float -> Daemon.address -> t
(** Connects, retrying [retries] times (default 50) every
    [retry_delay_s] (default 0.1 s) while the endpoint refuses or does
    not exist yet — lets a client start concurrently with the daemon.
    @raise Transport when the endpoint never comes up. *)

val close : t -> unit
(** Idempotent. *)

val ping : t -> (unit, Wire.error) result

val predict :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  Linalg.Mat.t ->
  (Linalg.Vec.t, Wire.error) result
(** Predicted means for each query row, bit-identical to
    [Serving.Predictor.predict] on the same artifact. *)

val predict_with_std :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  Linalg.Mat.t ->
  (Linalg.Vec.t * Linalg.Vec.t, Wire.error) result

val update :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  (int * int, Wire.error) result
(** Folds new samples into the stored model; returns (new revision,
    new sample count K). *)

val list_models : t -> (Wire.model_info list, Wire.error) result

val stats : t -> (float * float * float * string, Wire.error) result
(** (uptime seconds, requests served, updates replayed by recovery at
    the last restart, metrics JSON). *)
