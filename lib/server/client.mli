(** Blocking client for the BMF prediction daemon.

    One connection, synchronous request/response: each call encodes a
    {!Wire} frame, writes it, and blocks until the matching response
    frame (by request id) arrives. Server-side refusals — backpressure
    ([Busy]), expired deadlines, unknown models — come back as
    [Error Wire.error]; transport and protocol breakage raise
    {!Transport}.

    When [Obs.Trace] is recording, every call runs inside a [cli_<op>]
    span whose (trace id, span id) context is stamped on the outgoing
    frame (protocol v2) — the daemon's request spans, and for updates
    the follower's apply span, join the same distributed trace. With
    tracing off, frames stay v1 and nothing is recorded. *)

exception Transport of string
(** The connection died or the peer broke framing. *)

type t

val connect : ?retries:int -> ?retry_delay_s:float -> Daemon.address -> t
(** Connects, retrying [retries] times (default 50) every
    [retry_delay_s] (default 0.1 s) while the endpoint refuses or does
    not exist yet — lets a client start concurrently with the daemon.
    @raise Transport when the endpoint never comes up. *)

val address : t -> Daemon.address
(** The endpoint this client dials (and {!reconnect} re-dials). *)

val close : t -> unit
(** Idempotent. *)

val reconnect : t -> unit
(** Closes (if needed) and dials {!address} again under a capped
    exponential backoff with jitter — the recovery move after an
    [ECONNREFUSED] (daemon restarting) or [EPIPE]/reset (dropped
    socket) surfaced as {!Transport}. Attempts are bounded by the
    backoff policy; a successful reconnect rearms it.
    @raise Transport when the attempts are exhausted. *)

val with_reconnect : ?retries:int -> t -> (t -> 'a) -> 'a
(** [with_reconnect t f] runs [f t], transparently {!reconnect}ing and
    retrying up to [retries] (default 3) times when [f] raises
    {!Transport}. Loadgen workers and the CLI wrap their calls in this
    so a daemon blip costs a retry, not the run. *)

val ping : t -> (unit, Wire.error) result

val predict :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  Linalg.Mat.t ->
  (Linalg.Vec.t, Wire.error) result
(** Predicted means for each query row, bit-identical to
    [Serving.Predictor.predict] on the same artifact. *)

val predict_with_std :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  Linalg.Mat.t ->
  (Linalg.Vec.t * Linalg.Vec.t, Wire.error) result

val update :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  (int * int, Wire.error) result
(** Folds new samples into the stored model; returns (new revision,
    new sample count K). *)

val predict_ensemble :
  t ->
  ?deadline_ms:int ->
  name:string ->
  Linalg.Mat.t ->
  (Linalg.Vec.t * Linalg.Vec.t * Linalg.Vec.t, Wire.error) result
(** BMA-weighted prediction over the named ensemble: per query row the
    weighted mean, within-model variance (Σᵢ wᵢσᵢ²) and between-model
    variance (Σᵢ wᵢ(μᵢ − μ̄)²), bit-identical to
    [Ensemble.Predictor.predict] on the same state and artifacts. *)

val ensemble_stats : t -> ?name:string -> unit -> (string, Wire.error) result
(** The daemon's ensemble weight/evidence state as JSON — one object
    for [~name], an array of every loaded ensemble without it. Asking
    also makes the daemon re-read ensemble definitions from disk, so a
    freshly [repro ensemble add]ed canary is picked up live. *)

val list_models : t -> (Wire.model_info list, Wire.error) result

type server_stats = {
  uptime_s : float;
  requests : float;  (** Requests served since start. *)
  recovered_updates : float;
      (** Updates replayed by recovery at the last restart. *)
  role : string;  (** ["leader"] or ["follower"]. *)
  journal_seq : int;
      (** Leader: commits since start; follower: last leader sequence
          applied. *)
  shards : int;  (** Serving shards the daemon runs with. *)
  metrics_json : string;
}

val stats : t -> (server_stats, Wire.error) result

val events : t -> (string, Wire.error) result
(** The daemon's structured event ring as JSON (see
    [Obs.Events.to_json]): promotions, recovery, subscriber churn, slow
    requests. *)

val promote : t -> (bool * int, Wire.error) result
(** Asks the daemon to become leader; returns (was it a follower,
    journal sequence at takeover). Promoting a leader is a no-op that
    returns [(false, seq)]. *)

val leader_hint : Wire.error -> Daemon.address option
(** The leader address a [Not_leader] refusal names, if parseable. *)

val update_with_redirect :
  t ->
  ?deadline_ms:int ->
  Serving.Artifact.meta ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  ((int * int, Wire.error) result * Daemon.address option)
(** Like {!update}, but when a follower answers [Not_leader] the call
    retries once against the leader it named (over a short-lived
    connection) and returns that address as evidence of the redirect. *)
