(* Select loop + micro-batch executor, optionally sharded across
   domains. Design notes:

   - One writer domain owns all mutation of shared serving state: the
     accept loops, the model store/journal commit point, replication
     fan-out, the follower link and the HTTP scrape endpoint. With
     [shards = 1] (the default) it is also the only domain — the
     original single-threaded daemon, no domains spawned, fork-safe.
   - With [shards >= 2], N worker domains each run their own private
     select loop over a disjoint subset of client connections (the
     acceptor hands accepted fds across over an internal mailbox).
     Workers execute predict kernels against immutable model snapshots
     published by the writer via one [Atomic] swap ([Serving.Snapshot]),
     so reads take no locks; updates are forwarded to the writer and
     stay serialized through the single journal commit point. The
     writer publishes the new snapshot before the ack frame travels
     back, so an acked update is visible to every shard.
   - Bounded queue: admission happens at frame-parse time and a full
     queue answers Busy immediately — the daemon never buffers more
     compute than [queue_capacity] requests per executor. Connection
     memory is bounded too: predict batches whose response could not
     fit in one frame are refused at admission, and a connection that
     stops reading its responses stops being read once
     [max_buffered_out] bytes are queued for it.
   - Micro-batching: a batch window closes [batch_delay_s] after its
     oldest admission (immediately when 0); predicts group by
     (model, with_std) and run as single blocked predictor calls, so
     the per-batch costs (basis recurrences, pool dispatch) amortize
     across every connection that hit the window. Row-wise kernels
     make the re-split bit-identical to direct calls at any shard
     count.
   - The select timeout is computed from the nearest pending deadline,
     batch-window close, link retry, heartbeat or HTTP read deadline —
     capped at 0.25 s, never quantized to it.
   - Crash containment: any exception a request raises is turned into
     an error frame for that request; the loop itself never dies. *)

type address = Tcp of string * int | Unix_socket of string

let pp_address fmt = function
  | Tcp (host, port) -> Format.fprintf fmt "tcp://%s:%d" host port
  | Unix_socket path -> Format.fprintf fmt "unix://%s" path

let address_to_string a = Format.asprintf "%a" pp_address a

let parse_address s =
  let strip p =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match strip "unix://" with
  | Some path -> Some (Unix_socket path)
  | None -> (
      match strip "tcp://" with
      | None -> None
      | Some rest -> (
          match String.rindex_opt rest ':' with
          | None -> None
          | Some i -> (
              let host = String.sub rest 0 i in
              let port = String.sub rest (i + 1) (String.length rest - i - 1) in
              match int_of_string_opt port with
              | Some p when host <> "" && p >= 0 && p < 65536 ->
                  Some (Tcp (host, p))
              | _ -> None)))

type config = {
  queue_capacity : int;
  max_batch : int;
  cache_capacity : int;
  batch_delay_s : float;
  durability : Serving.Store.durability;
  http : address option;
      (* scrape endpoint (GET /metrics, /health, /ready, /events) served
         from a second listener in the same select loop *)
  slow_request_s : float;
      (* requests slower than this (admission to reply) emit a
         [slow_request] event when the event log is enabled *)
  shards : int;
      (* serving shards: 1 = the classic single-domain loop (no domains
         spawned); N >= 2 spawns N worker domains for predict traffic *)
  http_idle_s : float;
      (* a scrape connection that has not completed its request line
         within this many seconds of its last progress is dropped *)
}

let default_config =
  { queue_capacity = 256; max_batch = 4096; cache_capacity = 8;
    batch_delay_s = 0.; durability = `Durable; http = None;
    slow_request_s = 0.25; shards = 1; http_idle_s = 5. }

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

let m_requests =
  Obs.Metrics.counter ~help:"Requests received by the serving daemon"
    "bmf_server_requests_total"

let m_errors =
  Obs.Metrics.counter ~help:"Error frames sent by the serving daemon"
    "bmf_server_errors_total"

let m_busy =
  Obs.Metrics.counter ~help:"Requests refused with Busy (queue full)"
    "bmf_server_busy_total"

let m_deadline =
  Obs.Metrics.counter ~help:"Requests expired before execution"
    "bmf_server_deadline_total"

let m_connections =
  Obs.Metrics.counter ~help:"Connections accepted"
    "bmf_server_connections_total"

let m_microbatches =
  Obs.Metrics.counter ~help:"Micro-batched predictor calls executed"
    "bmf_server_microbatches_total"

let g_queue_depth =
  Obs.Metrics.gauge ~help:"Pending requests in the bounded queue"
    "bmf_server_queue_depth"

let g_batch_points =
  Obs.Metrics.gauge ~help:"Query points in the last micro-batched call"
    "bmf_server_batch_points"

let g_cache_entries =
  Obs.Metrics.gauge ~help:"Models resident in the LRU cache"
    "bmf_server_cache_entries"

let g_connections =
  Obs.Metrics.gauge ~help:"Open connections" "bmf_server_connections"

let h_predict =
  Obs.Metrics.histogram ~help:"predict latency, admission to response (seconds)"
    "bmf_server_predict_seconds"

let h_predict_var =
  Obs.Metrics.histogram
    ~help:"predict_with_variance latency, admission to response (seconds)"
    "bmf_server_predict_var_seconds"

let h_update =
  Obs.Metrics.histogram ~help:"update latency, admission to response (seconds)"
    "bmf_server_update_seconds"

let h_ensemble =
  Obs.Metrics.histogram
    ~help:"predict_ensemble latency, admission to response (seconds)"
    "bmf_server_predict_ensemble_seconds"

let h_admin =
  Obs.Metrics.histogram
    ~help:"ping/list_models/stats handling latency (seconds)"
    "bmf_server_admin_seconds"

let m_http_requests =
  Obs.Metrics.counter ~help:"Scrape-endpoint HTTP requests served"
    "bmf_server_http_requests_total"

let m_http_idle_drops =
  Obs.Metrics.counter
    ~help:"Scrape connections dropped for idling past the read deadline"
    "bmf_server_http_idle_drops_total"

(* Per-shard series complementing the process-wide families above; the
   unlabeled aggregates keep their meaning at any shard count. *)
let shard_label sid = [ ("shard", string_of_int sid) ]

let shard_requests_counter sid =
  Obs.Metrics.counter ~help:"Requests received, per serving shard"
    ~labels:(shard_label sid) "bmf_server_shard_requests_total"

let shard_queue_gauge sid =
  Obs.Metrics.gauge ~help:"Pending requests queued on a serving shard"
    ~labels:(shard_label sid) "bmf_server_shard_queue_depth"

let shard_conns_gauge sid =
  Obs.Metrics.gauge ~help:"Open connections owned by a serving shard"
    ~labels:(shard_label sid) "bmf_server_shard_connections"

(* Follower-side lag, complementing the leader-side
   [bmf_repl_lag_entries] gauge registered by [Replication.Source]. *)
let g_follower_lag_entries =
  Obs.Metrics.gauge
    ~help:"Leader commits not yet applied by this follower (0 on the leader)"
    "bmf_repl_follower_lag_entries"

let g_apply_delay =
  Obs.Metrics.gauge
    ~help:
      "Seconds between the leader's commit and this follower's apply, for \
       the newest applied entry"
    "bmf_repl_apply_delay_seconds"

(* One labeled series per role, 1 on the active one — the Prometheus
   idiom for enum state, so dashboards can plot failovers. *)
let set_role_metric role =
  let g r =
    Obs.Metrics.gauge ~help:"Daemon replication role (1 on the active series)"
      ~labels:[ ("role", r) ]
      "bmf_server_role"
  in
  Obs.Metrics.set (g "leader") (if role = `Leader then 1. else 0.);
  Obs.Metrics.set (g "follower") (if role = `Leader then 0. else 1.)

(* ------------------------------------------------------------------ *)
(* Connections.                                                        *)

(* What the far end of a connection is to us. [Client] covers ordinary
   request/response traffic; a client that sends [Subscribe] becomes a
   [Subscriber] and starts receiving pushes; [Link_pending]/[Link] are
   the follower's own outbound connection to its leader (non-blocking
   connect in flight / established); [Http] is a scrape-endpoint
   connection speaking HTTP/1.1 instead of the wire protocol. *)
type peer = Client | Subscriber | Link_pending | Link | Http

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* received, not yet framed *)
  mutable need : int;  (* inbuf bytes required before the next parse *)
  out : string Queue.t;  (* encoded frames awaiting write *)
  mutable out_bytes : int;  (* total bytes queued in [out] *)
  mutable out_off : int;  (* bytes of the head frame already written *)
  mutable close_after_flush : bool;
  mutable closed : bool;
  mutable peer : peer;
  read_deadline_s : float;
      (* monotonic instant after which an unfinished read side is
         dropped ([infinity] = none); only scrape peers get one *)
}

(* Read-side backpressure: once this many encoded bytes are queued for a
   connection we stop reading from it until the client drains some. *)
let max_buffered_out = 2 * Wire.max_frame_len

(* ------------------------------------------------------------------ *)
(* Cross-domain mailbox: a mutex-guarded queue plus a self-pipe so a
   push can wake the receiving domain out of its select. The mutex
   release/acquire pair is the happens-before edge that publishes the
   message payload to the receiver.                                    *)

module Mbox = struct
  type 'a t = {
    mu : Mutex.t;
    q : 'a Queue.t;
    r : Unix.file_descr;
    w : Unix.file_descr;
    wake_buf : Bytes.t;  (* preallocated: pushes must not allocate *)
  }

  let create () =
    let r, w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock r;
    Unix.set_nonblock w;
    { mu = Mutex.create (); q = Queue.create (); r; w;
      wake_buf = Bytes.make 1 '!' }

  (* A full pipe (EAGAIN) means a wake-up is already pending. *)
  let wake t =
    try ignore (Unix.write t.w t.wake_buf 0 1) with Unix.Unix_error _ -> ()

  let push t x =
    Mutex.lock t.mu;
    Queue.add x t.q;
    Mutex.unlock t.mu;
    wake t

  let drain t =
    Mutex.lock t.mu;
    let xs = Queue.fold (fun acc x -> x :: acc) [] t.q in
    Queue.clear t.q;
    Mutex.unlock t.mu;
    List.rev xs

  let clear_wake ~scratch t =
    try
      while Unix.read t.r scratch 0 64 > 0 do
        ()
      done
    with Unix.Unix_error _ -> ()

  let close t =
    (try Unix.close t.r with Unix.Unix_error _ -> ());
    try Unix.close t.w with Unix.Unix_error _ -> ()
end

type work =
  | Wpredict of {
      meta : Serving.Artifact.meta;
      points : Linalg.Mat.t;
      with_std : bool;
    }
  | Wupdate of {
      meta : Serving.Artifact.meta;
      xs : Linalg.Mat.t;
      f : Linalg.Vec.t;
    }
  | Wensemble of { name : string; points : Linalg.Mat.t }

type pending = {
  p_conn : conn;
  p_id : int;
  admitted_s : float;
  (* Raw-monotonic admission instant ({!Obs.Clock.monotonic_raw}) used
     only for batch-window pacing: a frozen injected test clock must
     suspend deadline expiry without also wedging the window close. *)
  admitted_mono : float;
  expires_s : float;  (* [infinity] = no deadline *)
  work : work;
  (* Distributed-trace context, all 0 when tracing is off: the trace id
     (inherited from the client's frame or freshly minted), the client's
     span id (the server span's parent), the pre-allocated id of this
     request's server span, and the admission timestamp in trace
     units. *)
  p_trace : int;
  p_span : int;
  p_req_span : int;
  admitted_us : float;
}

type cached = {
  mutable artifact : Serving.Artifact.t;
  mutable predictor : Serving.Predictor.t;
  mutable last_used : int;
}

(* Partial catch-up snapshot being reassembled on a follower. *)
type snap_acc = { s_rev : int; s_total : int; s_buf : Buffer.t }

(* Snapshots larger than this are refused at reassembly — the follower
   trusts its configured leader but not unboundedly. *)
let max_snapshot_bytes = 256 * 1024 * 1024

(* Acceptor -> shard traffic. [S_conn] hands a freshly accepted client
   fd across; [S_reply] routes a forwarded update's already-encoded
   response frame back to the shard that owns the connection (only the
   owning shard ever touches a [conn]). *)
type shard_msg =
  | S_conn of Unix.file_descr
  | S_reply of { r_conn : conn; r_frame : string }

(* Shard -> writer traffic. [W_update] is a client update admitted on a
   shard and forwarded to the single journal commit point ([u_conn] is
   an opaque routing token here — the writer never dereferences it).
   [W_adopt] hands a whole connection back to the writer because its
   latest frame ([a_frame], with [a_in]/[a_out] the unparsed input and
   unflushed output around it) needs the replication control plane
   (Subscribe/Promote). [W_publish] asks the writer to publish a model
   a shard found on disk but missing from the snapshot.               *)
type writer_msg =
  | W_update of {
      u_shard : int;
      u_conn : conn;
      u_id : int;
      u_admitted_s : float;
      u_expires_s : float;
      u_meta : Serving.Artifact.meta;
      u_xs : Linalg.Mat.t;
      u_f : Linalg.Vec.t;
      u_trace : int;
      u_span : int;
    }
  | W_adopt of {
      a_fd : Unix.file_descr;
      a_in : string;
      a_out : string list;
      a_out_off : int;
      a_frame : Wire.frame;
    }
  | W_publish of Serving.Artifact.meta

(* Per-model slice of an executor's serving arena: the predictor's
   preallocated scratch plus growing output buffers for the fused
   means/stds. Keyed by (model meta, ensemble slot) so two ensemble
   members that happen to share a model never alias output storage. *)
type model_arena = {
  ma_scratch : Serving.Predictor.Scratch.t;
  mutable ma_means : float array;
  mutable ma_stds : float array;
}

(* One serving arena per executor domain (writer, each shard) — never
   shared, so the steady-state predict path reuses the same storage
   window after window with zero minor-heap float-array allocation. *)
type arena = {
  ar_fused : Linalg.Mat.t option ref;  (* fused-batch design buffer *)
  ar_models : (Serving.Artifact.meta * int, model_arena) Hashtbl.t;
}

let arena_create () = { ar_fused = ref None; ar_models = Hashtbl.create 8 }

type shard = {
  sid : int;
  s_mbox : shard_msg Mbox.t;
  mutable s_conns : conn list;
  s_pending : pending Queue.t;
  s_scratch : Bytes.t;  (* per-shard read buffer *)
  s_arena : arena;  (* per-shard fused buffer + predictor scratches *)
  mutable s_outstanding : int;  (* updates forwarded, reply not yet back *)
  mutable s_stopped_mono : float;  (* when this shard first saw stop *)
  s_requests : Obs.Metrics.counter;
  s_queue_gauge : Obs.Metrics.gauge;
  s_conns_gauge : Obs.Metrics.gauge;
}

type t = {
  config : config;
  root : string;
  listen_fd : Unix.file_descr;
  addr : address;
  http_fd : Unix.file_descr option;
  http_addr : address option;  (* resolved (post-bind) scrape address *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_buf : Bytes.t;
      (* preallocated wake byte: [stop] runs from signal-handler context
         (and, sharded, from arbitrary domains) and must not allocate *)
  stop_flag : bool Atomic.t;
  mutable accepting : bool;
  mutable conns : conn list;
  pending : pending Queue.t;
  cache : (Serving.Artifact.meta, cached) Hashtbl.t;
  mutable cache_tick : int;
  served : int Atomic.t;  (* requests received, any outcome, any shard *)
  conn_count : int Atomic.t;  (* open connections across all domains *)
  scratch : Bytes.t;  (* per-instance read buffer *)
  arena : arena;  (* writer's fused buffer + predictor scratches *)
  started_s : float;  (* wall clock, human-facing only *)
  started_mono : float;  (* monotonic, for uptime *)
  mutable stopped_mono : float;  (* monotonic instant [stop] was first seen *)
  journal : Serving.Journal.t;
  recovery : Serving.Recovery.report;  (* what [create] found and replayed *)
  ensembles : Ensemble.Manager.t;
      (* BMA ensembles over the store; mutated by the writer only,
         published through the manager's own atomic view so shards read
         the identical state (and thus derive identical weights) *)
  (* --- sharding --- *)
  snapshot : Serving.Snapshot.t;
      (* immutable published model views; written by the writer domain
         at every commit, read lock-free by every shard *)
  writer_mbox : writer_msg Mbox.t;
  shards : shard array;  (* [||] in single-domain mode *)
  shards_live : int Atomic.t;  (* worker domains not yet drained *)
  mutable shard_rr : int;  (* round-robin cursor for fd handoff *)
  (* --- replication --- *)
  leader : address option Atomic.t;
      (* [Some _] = follower of that leader; atomic so shards can answer
         Not_leader without consulting the writer *)
  commit_seq : int Atomic.t;
      (* leader: updates committed since start; follower: last leader
         sequence durably applied or subsumed by a snapshot. Written by
         the writer only; read from any domain (stats). *)
  source : conn Replication.Source.t;
  mutable link : conn option;  (* follower's connection to the leader *)
  mutable link_next_s : float;  (* monotonic: next connect attempt *)
  link_backoff : Replication.Backoff.t;
  snap : (Serving.Artifact.meta, snap_acc) Hashtbl.t;
  (* --- observability --- *)
  mutable last_status_s : float;
      (* monotonic instant of the last leader heartbeat broadcast *)
  mutable leader_seq : int;  (* follower: newest leader commit seq seen *)
  mutable last_apply_delay : float;
      (* follower: leader-commit-to-local-apply delay of the newest
         applied entry, seconds ([nan] until one applies) *)
  mutable catch_up_done : bool;
      (* follower: a Repl_status arrived on the current link, i.e. the
         initial snapshot/entry catch-up completed at least once *)
  model_apply : (Serving.Artifact.meta, int * float) Hashtbl.t;
      (* follower: per-model (last applied leader seq, apply delay s) *)
}

let address t = t.addr

let http_address t = t.http_addr

let role t =
  match Atomic.get t.leader with None -> `Leader | Some a -> `Follower a

let journal_seq t = Atomic.get t.commit_seq

let recovery t = t.recovery

let started_s t = t.started_s

let stopping t = Atomic.get t.stop_flag

let shard_count t = max 1 (Array.length t.shards)

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    (* self-pipe: wake the select no matter which domain/signal context
       calls; a full pipe means a wake-up is already pending. The wake
       byte is preallocated at creation — this path must not allocate
       in signal-handler context. *)
    try ignore (Unix.write t.wake_w t.wake_buf 0 1)
    with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

let sockaddr_of = function
  | Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)

(* Bind + listen on [addr], returning the fd and the resolved address
   (a requested TCP port 0 resolves to the kernel-assigned port). *)
let bind_listener addr =
  (match addr with
  | Unix_socket path when Sys.file_exists path -> Unix.unlink path
  | _ -> ());
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_socket _ -> ());
     Unix.bind fd sockaddr;
     Unix.listen fd 128;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  let addr =
    match addr with
    | Unix_socket _ as a -> a
    | Tcp (host, _) -> (
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> addr)
  in
  (fd, addr)

let create ?(config = default_config) ?follow ~root addr =
  (* 0 is deliberately legal: an admin-only drain mode in which every
     predict/update answers Busy while ping/list_models/stats still
     work (and which lets tests exercise backpressure deterministically) *)
  if config.queue_capacity < 0 then
    invalid_arg "Daemon.create: negative queue capacity";
  if config.max_batch < 1 then invalid_arg "Daemon.create: max_batch < 1";
  if config.cache_capacity < 1 then
    invalid_arg "Daemon.create: cache_capacity < 1";
  if config.shards < 1 then invalid_arg "Daemon.create: shards < 1";
  if not (config.http_idle_s > 0.) then
    invalid_arg "Daemon.create: http_idle_s must be positive";
  (* recover BEFORE binding: sweep interrupted-save temps, verify every
     artifact checksum and replay any journal tail whose artifact save
     did not complete — the daemon never serves from an unverified
     store. The journal handle is opened only after recovery has
     consumed (or provably discarded) the previous incarnation's tail. *)
  let recovery =
    Serving.Recovery.recover ~durability:config.durability ~root ()
  in
  let journal =
    Serving.Journal.open_ ~durability:config.durability ~root ()
  in
  Obs.Events.emit "recovery"
    ~fields:
      [
        ("replayed", Obs.Trace.Int recovery.Serving.Recovery.replayed);
        ("discarded", Obs.Trace.Int recovery.Serving.Recovery.discarded);
        ( "corrupt",
          Obs.Trace.Int (List.length recovery.Serving.Recovery.corrupt) );
      ];
  let listen_fd, addr = bind_listener addr in
  let http_fd, http_addr =
    match config.http with
    | None -> (None, None)
    | Some haddr -> (
        match bind_listener haddr with
        | fd, resolved -> (Some fd, Some resolved)
        | exception e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            raise e)
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let ensembles = Ensemble.Manager.create ~root in
  (match Ensemble.Manager.load_all ensembles with
  | [] -> ()
  | failed ->
      Obs.Events.emit "ensemble_load_failed"
        ~fields:[ ("files", Obs.Trace.Int (List.length failed)) ]);
  set_role_metric (match follow with None -> `Leader | Some _ -> `Follower);
  let shards =
    if config.shards <= 1 then [||]
    else
      Array.init config.shards (fun sid ->
          {
            sid;
            s_mbox = Mbox.create ();
            s_conns = [];
            s_pending = Queue.create ();
            s_scratch = Bytes.create 65536;
            s_arena = arena_create ();
            s_outstanding = 0;
            s_stopped_mono = nan;
            s_requests = shard_requests_counter sid;
            s_queue_gauge = shard_queue_gauge sid;
            s_conns_gauge = shard_conns_gauge sid;
          })
  in
  {
    config;
    root;
    listen_fd;
    addr;
    http_fd;
    http_addr;
    wake_r;
    wake_w;
    wake_buf = Bytes.make 1 '!';
    stop_flag = Atomic.make false;
    accepting = true;
    conns = [];
    pending = Queue.create ();
    cache = Hashtbl.create 8;
    cache_tick = 0;
    served = Atomic.make 0;
    conn_count = Atomic.make 0;
    scratch = Bytes.create 65536;
    arena = arena_create ();
    started_s = Unix.gettimeofday ();
    started_mono = Obs.Clock.now_s ();
    stopped_mono = nan;
    journal;
    recovery;
    ensembles;
    snapshot = Serving.Snapshot.create ();
    writer_mbox = Mbox.create ();
    shards;
    shards_live = Atomic.make (Array.length shards);
    shard_rr = 0;
    leader = Atomic.make follow;
    commit_seq = Atomic.make 0;
    source = Replication.Source.create ();
    link = None;
    link_next_s = 0.;  (* connect on the first loop tick *)
    link_backoff = Replication.Backoff.create ();
    snap = Hashtbl.create 4;
    last_status_s = 0.;
    leader_seq = 0;
    last_apply_delay = nan;
    catch_up_done = false;
    model_apply = Hashtbl.create 4;
  }

(* ------------------------------------------------------------------ *)
(* Model cache (LRU over the store).                                   *)

let touch t cached =
  t.cache_tick <- t.cache_tick + 1;
  cached.last_used <- t.cache_tick

let evict_to_capacity t =
  while Hashtbl.length t.cache > t.config.cache_capacity do
    let victim =
      Hashtbl.fold
        (fun meta c acc ->
          match acc with
          | Some (_, best) when best.last_used <= c.last_used -> acc
          | _ -> Some (meta, c))
        t.cache None
    in
    match victim with
    | Some (meta, _) -> Hashtbl.remove t.cache meta
    | None -> ()
  done;
  Obs.Metrics.set g_cache_entries (float_of_int (Hashtbl.length t.cache))

let get_model t meta : (cached, Wire.error) result =
  match Hashtbl.find_opt t.cache meta with
  | Some c ->
      touch t c;
      Ok c
  | None -> (
      match Serving.Store.load ~root:t.root meta with
      | Error message -> Error { Wire.code = Wire.Model_not_found; message }
      | Ok artifact ->
          let c =
            {
              artifact;
              predictor = Serving.Predictor.of_artifact artifact;
              last_used = 0;
            }
          in
          touch t c;
          Hashtbl.replace t.cache meta c;
          evict_to_capacity t;
          Ok c)

let refresh_model t meta artifact =
  (* writer only. Publish the fresh revision to the shards BEFORE the
     caller queues any acknowledgement: a client that sees the ack and
     immediately predicts on another shard must see this revision. *)
  if Array.length t.shards > 0 then
    ignore (Serving.Snapshot.publish t.snapshot artifact);
  (match Hashtbl.find_opt t.cache meta with
  | Some c ->
      c.artifact <- artifact;
      c.predictor <- Serving.Predictor.of_artifact artifact;
      touch t c
  | None ->
      let c =
        {
          artifact;
          predictor = Serving.Predictor.of_artifact artifact;
          last_used = 0;
        }
      in
      touch t c;
      Hashtbl.replace t.cache meta c);
  evict_to_capacity t

(* ------------------------------------------------------------------ *)
(* Connection plumbing.                                                *)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    Atomic.decr t.conn_count;
    Obs.Metrics.set g_connections (float_of_int (Atomic.get t.conn_count));
    match conn.peer with
    | Subscriber ->
        Obs.Events.emit "subscriber_drop"
          ~fields:[ ("commit_seq", Obs.Trace.Int (Atomic.get t.commit_seq)) ];
        Replication.Source.drop t.source conn;
        Replication.Source.note_lag t.source ~seq:(Atomic.get t.commit_seq)
    | Link | Link_pending ->
        (* leader gone (or refused us): discard any half-reassembled
           snapshot and schedule a backed-off reconnect; the fresh
           subscription's revision vector makes catch-up self-healing *)
        if conn.peer = Link then
          Obs.Events.emit "link_down"
            ~fields:[ ("commit_seq", Obs.Trace.Int (Atomic.get t.commit_seq)) ];
        if (match t.link with Some l -> l == conn | None -> false) then
          t.link <- None;
        Hashtbl.reset t.snap;
        t.link_next_s <-
          Obs.Clock.now_s () +. Replication.Backoff.next_delay_s t.link_backoff
    | Client | Http -> ()
  end

let send conn frame_bytes =
  if not conn.closed then begin
    Queue.add frame_bytes conn.out;
    conn.out_bytes <- conn.out_bytes + String.length frame_bytes
  end

let bad_request message = Wire.Error { Wire.code = Wire.Bad_request; message }

let internal_error e =
  Wire.Error { Wire.code = Wire.Internal; message = Printexc.to_string e }

(* Error accounting + framing for a response, shared by the in-loop
   [reply] path and the cross-domain forwarded-update path. *)
let encode_reply ~id resp =
  (match resp with
  | Wire.Error e ->
      Obs.Metrics.inc m_errors;
      (match e.Wire.code with
      | Wire.Busy -> Obs.Metrics.inc m_busy
      | Wire.Deadline_exceeded -> Obs.Metrics.inc m_deadline
      | _ -> ())
  | _ -> ());
  match Wire.encode_response ~id resp with
  | s -> s
  | exception _ ->
      (* the response itself could not be framed (e.g. a stats or
         models payload past max_frame_len): degrade to a small error
         frame rather than killing the loop *)
      Obs.Metrics.inc m_errors;
      Wire.encode_response ~id
        (Wire.Error
           {
             Wire.code = Wire.Internal;
             message = "response exceeded the frame size limit";
           })

let reply t conn ~id resp =
  ignore t;
  send conn (encode_reply ~id resp)

(* Flush as much queued output as the socket accepts right now.
   [close] is the owner's teardown (writer vs shard bookkeeping). *)
let flush_conn_gen ~close conn =
  let progress = ref true in
  (try
     while (not conn.closed) && !progress && not (Queue.is_empty conn.out) do
       let head = Queue.peek conn.out in
       let len = String.length head - conn.out_off in
       let n =
         Unix.single_write_substring conn.fd head conn.out_off len
       in
       if n = len then begin
         ignore (Queue.pop conn.out);
         conn.out_bytes <- conn.out_bytes - String.length head;
         conn.out_off <- 0
       end
       else begin
         conn.out_off <- conn.out_off + n;
         progress := false
       end
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      close conn);
  if (not conn.closed) && conn.close_after_flush && Queue.is_empty conn.out
  then close conn

let flush_conn t conn = flush_conn_gen ~close:(close_conn t) conn

(* ------------------------------------------------------------------ *)
(* Request admission.                                                  *)

(* Monotonic: admission stamps, deadline expiry, uptime and drain grace
   must not move when NTP steps the wall clock — a step backwards would
   freeze expiry, a step forwards would mass-expire every queued
   request. Wall time ([t.started_s]) is kept for display only. *)
let now_s () = Obs.Clock.now_s ()

let model_infos t =
  Serving.Store.list ~root:t.root
  |> List.filter_map (fun (e : Serving.Store.entry) ->
         match e.status with
         | Error _ -> None
         | Ok a ->
             Some
               {
                 Wire.meta = a.Serving.Artifact.meta;
                 rev = a.Serving.Artifact.rev;
                 samples = Serving.Artifact.num_samples a;
                 terms = Serving.Artifact.num_terms a;
                 dim = a.Serving.Artifact.basis_dim;
                 file = Filename.basename e.file;
                 bytes = e.bytes;
               })

(* Called from the writer and from shard domains: everything it reads
   is atomic, monotonic or internally synchronized. *)
let stats_payload t =
  Wire.Stats_payload
    {
      uptime_s = now_s () -. t.started_mono;
      requests = float_of_int (Atomic.get t.served);
      recovered_updates = float_of_int t.recovery.Serving.Recovery.replayed;
      role =
        (match Atomic.get t.leader with
        | None -> "leader"
        | Some _ -> "follower");
      journal_seq = Atomic.get t.commit_seq;
      shards = shard_count t;
      metrics_json = Obs.Metrics.to_json ();
    }

(* ------------------------------------------------------------------ *)
(* Replication: leader side.                                           *)

let store_artifacts t =
  Serving.Store.list ~root:t.root
  |> List.filter_map (fun (e : Serving.Store.entry) ->
         match e.status with Ok a -> Some a | Error _ -> None)

let not_leader_error t =
  let where =
    match Atomic.get t.leader with
    | Some leader -> address_to_string leader
    | None -> address_to_string t.addr
  in
  Wire.Error
    {
      Wire.code = Wire.Not_leader;
      message = "not the leader; updates are accepted at " ^ where;
    }

(* Turn a client connection into a subscriber: snapshot every model the
   follower is missing or behind on, then mark the stream live. All the
   frames are queued here and drip out through the ordinary flush path,
   so catch-up never blocks the loop. *)
let handle_subscribe t conn ~id vector =
  if Atomic.get t.leader <> None then reply t conn ~id (not_leader_error t)
  else if stopping t then
    reply t conn ~id
      (Wire.Error
         {
           Wire.code = Wire.Shutting_down;
           message = "server is draining; not accepting subscribers";
         })
  else begin
    let snapshots =
      Replication.Source.plan_catchup ~have:(store_artifacts t) ~vector
    in
    List.iter
      (fun (meta, rev, bytes) ->
        let total = String.length bytes in
        let rec chunks offset =
          if offset < total || total = 0 then begin
            let n = Stdlib.min Wire.max_snapshot_chunk (total - offset) in
            send conn
              (Wire.encode_push
                 (Wire.Snapshot_chunk
                    { meta; rev; total; offset; data = String.sub bytes offset n }));
            if n > 0 then chunks (offset + n)
          end
        in
        chunks 0;
        Replication.Source.note_snapshot ~bytes:total)
      snapshots;
    send conn
      (Wire.encode_push
         (Wire.Repl_status
            {
              seq = Atomic.get t.commit_seq;
              snapshots = List.length snapshots;
              ts = Obs.Clock.wall ();
            }));
    conn.peer <- Subscriber;
    Obs.Events.emit "subscriber_connect"
      ~fields:
        [
          ("snapshots", Obs.Trace.Int (List.length snapshots));
          ("commit_seq", Obs.Trace.Int (Atomic.get t.commit_seq));
        ];
    Replication.Source.register t.source conn ~acked:(Atomic.get t.commit_seq);
    Replication.Source.note_lag t.source ~seq:(Atomic.get t.commit_seq)
  end

(* Fan one committed update out to every live subscriber. A subscriber
   that stopped draining its socket is dropped rather than buffered
   without bound — on reconnect the revision vector routes it through
   snapshot catch-up, so nothing is lost. [trace] is the originating
   update's distributed-trace context: it rides the push header so the
   follower's apply span joins the client's trace. The commit wall
   timestamp rides the body and feeds the follower's lag gauge. *)
let ship_commit ?(trace = (0, 0)) t entry =
  Atomic.incr t.commit_seq;
  (match Replication.Source.subscribers t.source with
  | [] -> ()
  | subs -> (
      match
        Wire.encode_push ~trace
          (Wire.Journal_entry
             {
               seq = Atomic.get t.commit_seq;
               ts = Obs.Clock.wall ();
               entry = Serving.Journal.encode_entry entry;
             })
      with
      | exception _ ->
          (* unframeable entry (pathologically large update): force the
             subscribers through snapshot catch-up instead *)
          List.iter (fun c -> close_conn t c) subs
      | encoded ->
          let shipped = ref 0 in
          List.iter
            (fun c ->
              if c.out_bytes >= max_buffered_out then close_conn t c
              else begin
                send c encoded;
                incr shipped
              end)
            subs;
          Replication.Source.note_shipped ~entries:!shipped));
  Replication.Source.note_lag t.source ~seq:(Atomic.get t.commit_seq)

let admit t conn (frame : Wire.frame) work =
  if stopping t then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Shutting_down;
           message = "server is draining; not accepting new work";
         })
  else if Queue.length t.pending >= t.config.queue_capacity then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Busy;
           message =
             Printf.sprintf "request queue full (capacity %d)"
               t.config.queue_capacity;
         })
  else begin
    let admitted_s = now_s () in
    let expires_s =
      if frame.Wire.frame_deadline_ms <= 0 then infinity
      else admitted_s +. (float_of_int frame.Wire.frame_deadline_ms /. 1e3)
    in
    (* The client's trace context is kept (and later forwarded on the
       replication push) even when local tracing is off — an untraced
       relay must not break the client-to-follower trace. With tracing
       on, the server span's id is pre-allocated so the
       queue/kernel/reply children recorded before the request finishes
       can already name their parent, and an untraced client's request
       gets a freshly minted trace id. *)
    let p_span = frame.Wire.frame_span in
    let admitted_us, p_trace, p_req_span =
      if Obs.Trace.enabled () then
        ( Obs.Clock.now_us (),
          (if frame.Wire.frame_trace > 0 then frame.Wire.frame_trace
           else Obs.Trace.fresh_trace_id ()),
          Obs.Trace.alloc_id () )
      else (0., frame.Wire.frame_trace, 0)
    in
    Queue.add
      {
        p_conn = conn;
        p_id = frame.Wire.frame_id;
        admitted_s;
        admitted_mono = Obs.Clock.monotonic_raw ();
        expires_s;
        work;
        p_trace;
        p_span;
        p_req_span;
        admitted_us;
      }
      t.pending;
    Obs.Metrics.set g_queue_depth (float_of_int (Queue.length t.pending))
  end

(* ------------------------------------------------------------------ *)
(* Incoming bytes -> frames (shared by client conns and the link).     *)

let slurp_gen ~scratch ~close conn =
  try
    let continue = ref true in
    while !continue && not conn.closed do
      match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
      | 0 ->
          close conn;
          continue := false
      | n ->
          Buffer.add_subbytes conn.inbuf scratch 0 n;
          if n < Bytes.length scratch then continue := false
    done
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF | Unix.EPIPE), _, _) ->
      close conn

let slurp t conn = slurp_gen ~scratch:t.scratch ~close:(close_conn t) conn

(* Only flatten the buffer once enough bytes for the next frame are in
   — a dribbled large frame costs one copy, not one per read. [stop]
   lets a dispatcher abort the parse after the current frame with the
   remaining bytes preserved (connection handoff between domains). *)
let parse_frames ?(stop = fun () -> false) conn ~dispatch ~on_bad =
  if (not conn.closed) && Buffer.length conn.inbuf >= conn.need then begin
    let data = Buffer.contents conn.inbuf in
    let off = ref 0 in
    let continue = ref true in
    while !continue do
      if stop () then begin
        conn.need <- 4;
        continue := false
      end
      else
        match Wire.peek data ~off:!off with
        | `Frame (frame, next) ->
            off := next;
            if not (conn.closed || conn.close_after_flush) then
              dispatch conn frame
        | `Need k ->
            conn.need <- String.length data - !off + k;
            continue := false
        | `Bad message ->
            on_bad conn message;
            Buffer.clear conn.inbuf;
            conn.need <- 4;
            off := 0;
            continue := false
    done;
    if !off > 0 && not conn.closed then begin
      let rest = String.sub data !off (String.length data - !off) in
      Buffer.clear conn.inbuf;
      Buffer.add_string conn.inbuf rest
    end
  end

(* ------------------------------------------------------------------ *)
(* Replication: follower side. Frames arriving on the leader link are
   pushes (or an error frame); anything unexpected drops the link and
   the backed-off resubscribe heals via snapshot catch-up.             *)

let link_ack conn seq =
  send conn (Wire.encode_request ~id:0 (Wire.Repl_ack_req { seq }))

let note_follower_lag t =
  Obs.Metrics.set g_follower_lag_entries
    (float_of_int (max 0 (t.leader_seq - Atomic.get t.commit_seq)))

let apply_snapshot_chunk t conn ~meta ~rev ~total ~offset ~data =
  if total > max_snapshot_bytes then close_conn t conn
  else begin
    let acc =
      match Hashtbl.find_opt t.snap meta with
      | Some a
        when a.s_rev = rev && a.s_total = total
             && Buffer.length a.s_buf = offset ->
          Some a
      | Some _ -> None (* inconsistent with the transfer in progress *)
      | None when offset = 0 ->
          let a =
            { s_rev = rev; s_total = total; s_buf = Buffer.create (max total 16) }
          in
          Hashtbl.replace t.snap meta a;
          Some a
      | None -> None
    in
    match acc with
    | None -> close_conn t conn
    | Some a ->
        Buffer.add_string a.s_buf data;
        if Buffer.length a.s_buf >= a.s_total then begin
          Hashtbl.remove t.snap meta;
          match
            Replication.Apply.snapshot ~durability:t.config.durability
              ~root:t.root (Buffer.contents a.s_buf)
          with
          | Error _ -> close_conn t conn
          | Ok art ->
              Obs.Events.emit "snapshot_install"
                ~fields:
                  [
                    ( "model",
                      Obs.Trace.Str (Serving.Calibration.model_label meta) );
                    ("rev", Obs.Trace.Int art.Serving.Artifact.rev);
                    ("bytes", Obs.Trace.Int a.s_total);
                  ];
              refresh_model t meta art
        end
  end

let on_link_frame t conn (frame : Wire.frame) =
  if not (Wire.is_push_kind frame.Wire.frame_kind) then
    (* only error frames are legal here (e.g. Not_leader from a peer
       that is itself a follower): drop and retry through the backoff *)
    close_conn t conn
  else
    match Wire.decode_push frame with
    | Error _ -> close_conn t conn
    | Ok (Wire.Snapshot_chunk { meta; rev; total; offset; data }) ->
        apply_snapshot_chunk t conn ~meta ~rev ~total ~offset ~data
    | Ok (Wire.Journal_entry { seq; ts; entry }) -> (
        match Serving.Journal.decode_entry entry with
        | Error _ -> close_conn t conn
        | Ok e -> (
            (* BMA evidence phase 1, follower side: score the shipped
               batch under the *pre-apply* predictors — the same data
               and the same pre-update models as on the leader, so the
               accumulated evidence is identical on both sides.
               Committed only if the entry actually applies. *)
            let scored_ensembles =
              match
                Ensemble.Manager.containing t.ensembles e.Serving.Journal.meta
              with
              | [] -> []
              | states ->
                  let predictor_of m =
                    match get_model t m with
                    | Ok c -> Some c.predictor
                    | Error _ -> None
                  in
                  List.filter_map
                    (fun s ->
                      match
                        Ensemble.Manager.score ~predictor_of s
                          ~xs:e.Serving.Journal.xs ~f:e.Serving.Journal.f
                      with
                      | s -> Some s
                      | exception _ -> None)
                    states
            in
            let apply_t0 =
              if Obs.Trace.enabled () then Obs.Clock.now_us () else 0.
            in
            match
              Replication.Apply.entry ~durability:t.config.durability
                ~root:t.root ~journal:t.journal e
            with
            | Replication.Apply.Applied art ->
                Atomic.set t.commit_seq seq;
                if seq > t.leader_seq then t.leader_seq <- seq;
                (* lag in seconds: leader commit wall time -> local apply *)
                let delay =
                  if ts > 0. then Obs.Clock.wall () -. ts else nan
                in
                t.last_apply_delay <- delay;
                Hashtbl.replace t.model_apply e.Serving.Journal.meta
                  (seq, delay);
                if Float.is_finite delay then
                  Obs.Metrics.set g_apply_delay delay;
                note_follower_lag t;
                (* the apply span joins the originating update's trace:
                   the push header carried the leader's server-span id *)
                if Obs.Trace.enabled () then
                  Obs.Trace.complete ~cat:"repl"
                    ~trace:frame.Wire.frame_trace
                    ~parent:frame.Wire.frame_span
                    ~attrs:[ ("seq", Obs.Trace.Int seq) ]
                    ~start_us:apply_t0
                    ~dur_us:(Obs.Clock.now_us () -. apply_t0)
                    "repl_apply";
                refresh_model t e.Serving.Journal.meta art;
                (* BMA evidence phase 2: the entry applied, so the
                   scored states commit here too (a [Stale] replay must
                   not double-count evidence) *)
                List.iter
                  (fun s ->
                    try
                      Ensemble.Manager.commit t.ensembles
                        ~durability:t.config.durability s
                    with _ -> ())
                  scored_ensembles;
                link_ack conn seq
            | Replication.Apply.Stale _ ->
                if seq > Atomic.get t.commit_seq then Atomic.set t.commit_seq seq;
                if seq > t.leader_seq then t.leader_seq <- seq;
                note_follower_lag t;
                link_ack conn seq
            | Replication.Apply.Gap _ -> close_conn t conn))
    | Ok (Wire.Repl_status { seq; snapshots = _; ts = _ }) ->
        (* catch-up complete: the snapshots embody every commit <= seq *)
        if seq > Atomic.get t.commit_seq then Atomic.set t.commit_seq seq;
        if seq > t.leader_seq then t.leader_seq <- seq;
        t.catch_up_done <- true;
        note_follower_lag t;
        link_ack conn seq
    | Ok (Wire.Repl_heartbeat { seq; ts = _ }) ->
        (* liveness only: a heartbeat promises nothing about shipping,
           so it refreshes the lag gauges but is never acked and never
           advances the applied sequence *)
        if seq > t.leader_seq then t.leader_seq <- seq;
        note_follower_lag t

let link_dispatch t conn frame =
  try on_link_frame t conn frame with _ -> close_conn t conn

let drain_link t =
  match t.link with
  | Some l when (not l.closed) && l.peer = Link ->
      slurp t l;
      parse_frames l
        ~dispatch:(link_dispatch t)
        ~on_bad:(fun c _ -> close_conn t c)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Request dispatch.                                                   *)

(* Writer-only: answering an ensemble stats query re-reads the [.bmfe]
   definitions from disk first, so a live daemon picks up
   [repro ensemble create/add] run against its store directory — the
   canary registration path. *)
let ensemble_stats_payload t name : Wire.response =
  let resolve meta =
    match Serving.Store.load ~root:t.root meta with
    | Ok a -> Some (a.Serving.Artifact.rev, a.Serving.Artifact.basis_dim)
    | Error _ -> None
  in
  if name = "" then begin
    ignore (Ensemble.Manager.load_all t.ensembles);
    Wire.Ensemble_stats_payload
      {
        json =
          Serving.Json.to_string
            (Serving.Json.Arr
               (List.map
                  (Ensemble.State.to_json ~resolve)
                  (Ensemble.Manager.list t.ensembles)));
      }
  end
  else
    match Ensemble.Manager.reload t.ensembles name with
    | Ok state ->
        Wire.Ensemble_stats_payload
          { json = Serving.Json.to_string (Ensemble.State.to_json ~resolve state) }
    | Error message -> Wire.Error { Wire.code = Wire.Model_not_found; message }

let on_frame t conn (frame : Wire.frame) =
  Atomic.incr t.served;
  Obs.Metrics.inc m_requests;
  let decode_t0 =
    if Obs.Trace.enabled () && frame.Wire.frame_trace > 0 then
      Obs.Clock.now_us ()
    else 0.
  in
  let decoded = Wire.decode_request frame in
  if decode_t0 > 0. then
    Obs.Trace.complete ~cat:"server" ~trace:frame.Wire.frame_trace
      ~parent:frame.Wire.frame_span ~start_us:decode_t0
      ~dur_us:(Obs.Clock.now_us () -. decode_t0)
      "srv_decode";
  match decoded with
  | Error message ->
      (* not speaking our dialect: answer once, then hang up *)
      reply t conn ~id:frame.Wire.frame_id
        (Wire.Error { Wire.code = Wire.Protocol; message });
      conn.close_after_flush <- true
  | Ok req -> (
      match req with
      | Wire.Ping_req ->
          Obs.Metrics.time h_admin (fun () ->
              reply t conn ~id:frame.Wire.frame_id Wire.Pong)
      | Wire.Stats_req ->
          Obs.Metrics.time h_admin (fun () ->
              reply t conn ~id:frame.Wire.frame_id (stats_payload t))
      | Wire.List_models_req ->
          Obs.Metrics.time h_admin (fun () ->
              reply t conn ~id:frame.Wire.frame_id (Wire.Models (model_infos t)))
      | Wire.Predict_req { meta; points; with_std } ->
          (* bound at admission so the response is guaranteed to frame *)
          let rows = Linalg.Mat.rows points in
          let limit = Wire.max_predict_rows ~with_std in
          if rows > limit then
            reply t conn ~id:frame.Wire.frame_id
              (bad_request
                 (Printf.sprintf
                    "batch of %d points exceeds the %d-point response \
                     limit for %s"
                    rows limit
                    (Wire.opcode_name (if with_std then Wire.Predict_var else Wire.Predict))))
          else admit t conn frame (Wpredict { meta; points; with_std })
      | Wire.Predict_ensemble_req { name; points } ->
          let rows = Linalg.Mat.rows points in
          if rows > Wire.max_ensemble_rows then
            reply t conn ~id:frame.Wire.frame_id
              (bad_request
                 (Printf.sprintf
                    "batch of %d points exceeds the %d-point response \
                     limit for predict_ensemble"
                    rows Wire.max_ensemble_rows))
          else admit t conn frame (Wensemble { name; points })
      | Wire.Ensemble_stats_req { name } ->
          Obs.Metrics.time h_admin (fun () ->
              reply t conn ~id:frame.Wire.frame_id
                (ensemble_stats_payload t name))
      | Wire.Update_req { meta; xs; f } ->
          if Atomic.get t.leader <> None then
            reply t conn ~id:frame.Wire.frame_id (not_leader_error t)
          else admit t conn frame (Wupdate { meta; xs; f })
      | Wire.Subscribe_req { vector } ->
          Obs.Metrics.time h_admin (fun () ->
              handle_subscribe t conn ~id:frame.Wire.frame_id vector)
      | Wire.Repl_ack_req { seq } ->
          (* fire-and-forget bookkeeping; never answered *)
          if conn.peer = Subscriber then begin
            Replication.Source.ack t.source conn ~seq;
            Replication.Source.note_lag t.source ~seq:(Atomic.get t.commit_seq)
          end
      | Wire.Events_req ->
          Obs.Metrics.time h_admin (fun () ->
              reply t conn ~id:frame.Wire.frame_id
                (Wire.Events_payload { json = Obs.Events.to_json () }))
      | Wire.Promote_req ->
          Obs.Metrics.time h_admin (fun () ->
              match Atomic.get t.leader with
              | None ->
                  reply t conn ~id:frame.Wire.frame_id
                    (Wire.Promoted
                       {
                         was_follower = false;
                         journal_seq = Atomic.get t.commit_seq;
                       })
              | Some _ ->
                  (* clean takeover: finish applying whatever the
                     (possibly dead) leader already streamed, cut the
                     link, flip the role — updates are accepted from the
                     next frame on *)
                  drain_link t;
                  (match t.link with
                  | Some l -> close_conn t l
                  | None -> ());
                  let was = Atomic.get t.leader in
                  Atomic.set t.leader None;
                  Hashtbl.reset t.snap;
                  set_role_metric `Leader;
                  Obs.Events.emit "promotion"
                    ~fields:
                      [
                        ( "old_leader",
                          Obs.Trace.Str
                            (match was with
                            | Some a -> address_to_string a
                            | None -> "") );
                        ("commit_seq", Obs.Trace.Int (Atomic.get t.commit_seq));
                      ];
                  reply t conn ~id:frame.Wire.frame_id
                    (Wire.Promoted
                       {
                         was_follower = true;
                         journal_seq = Atomic.get t.commit_seq;
                       })))

(* ------------------------------------------------------------------ *)
(* Scrape endpoint: a minimal HTTP/1.1 responder for GET /metrics,
   /health, /healthz, /ready and /events, served from the same select
   loop as the wire protocol — no threads, no parser beyond the request
   line. Every response closes the connection.                         *)

let http_request_limit = 8192

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* Readiness: a leader is ready the moment it serves (recovery completed
   in [create]); a follower is ready once the current link's catch-up
   finished, i.e. it has seen a [Repl_status] and is applying live. *)
let is_ready t =
  match Atomic.get t.leader with
  | None -> not (stopping t)
  | Some _ -> (not (stopping t)) && t.catch_up_done && t.link <> None

let health_json t =
  let ensembles =
    List.map
      (fun s -> Serving.Json.to_string (Ensemble.State.to_json s))
      (Ensemble.Manager.list t.ensembles)
  in
  let models =
    Hashtbl.fold
      (fun meta (seq, delay) acc ->
        Printf.sprintf
          "{\"model\":\"%s\",\"applied_seq\":%d,\"lag_entries\":%d,\
           \"lag_seconds\":%s}"
          (json_escape (Serving.Calibration.model_label meta))
          seq
          (max 0 (t.leader_seq - seq))
          (json_num delay)
        :: acc)
      t.model_apply []
  in
  Printf.sprintf
    "{\"role\":\"%s\",\"ready\":%b,\"uptime_s\":%s,\"shards\":%d,\
     \"queue_depth\":%d,\
     \"connections\":%d,\"commit_seq\":%d,\"leader_seq\":%d,\
     \"repl_lag_entries\":%d,\"repl_lag_seconds\":%s,\
     \"recovery\":{\"replayed\":%d,\"discarded\":%d,\"corrupt\":%d},\
     \"ensembles\":[%s],\"models\":[%s]}"
    (match Atomic.get t.leader with None -> "leader" | Some _ -> "follower")
    (is_ready t)
    (json_num (now_s () -. t.started_mono))
    (shard_count t)
    (Queue.length t.pending)
    (Atomic.get t.conn_count)
    (Atomic.get t.commit_seq) t.leader_seq
    (max 0 (t.leader_seq - Atomic.get t.commit_seq))
    (json_num t.last_apply_delay)
    t.recovery.Serving.Recovery.replayed t.recovery.Serving.Recovery.discarded
    (List.length t.recovery.Serving.Recovery.corrupt)
    (String.concat "," ensembles)
    (String.concat "," models)

let http_route t request_line =
  match String.split_on_char ' ' request_line with
  | meth :: target :: _ -> (
      if meth <> "GET" then
        http_response ~status:"405 Method Not Allowed"
          ~content_type:"text/plain" "only GET is supported\n"
      else
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        match path with
        | "/metrics" ->
            http_response ~status:"200 OK"
              ~content_type:"text/plain; version=0.0.4; charset=utf-8"
              (Obs.Metrics.to_prometheus ())
        | "/health" | "/healthz" ->
            http_response ~status:"200 OK" ~content_type:"application/json"
              (health_json t)
        | "/ready" ->
            http_response
              ~status:
                (if is_ready t then "200 OK" else "503 Service Unavailable")
              ~content_type:"application/json" (health_json t)
        | "/events" ->
            http_response ~status:"200 OK" ~content_type:"application/json"
              (Obs.Events.to_json ())
        | _ ->
            http_response ~status:"404 Not Found" ~content_type:"text/plain"
              "not found\n")
  | _ ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n"

(* Serve one request per connection: wait for the blank line ending the
   headers, answer, flush, close. Headers past [http_request_limit]
   bytes are refused — a scrape request fits in a fraction of that. *)
let handle_http t conn =
  let data = Buffer.contents conn.inbuf in
  let have_headers =
    let len = String.length data in
    let rec scan i =
      if i + 3 < len then
        if
          data.[i] = '\r' && data.[i + 1] = '\n' && data.[i + 2] = '\r'
          && data.[i + 3] = '\n'
        then true
        else if data.[i] = '\n' && data.[i + 1] = '\n' then true
        else scan (i + 1)
      else if i + 1 < len then data.[i] = '\n' && data.[i + 1] = '\n'
      else false
    in
    scan 0
  in
  if have_headers then begin
    Obs.Metrics.inc m_http_requests;
    let request_line =
      match String.index_opt data '\n' with
      | Some i ->
          let l = String.sub data 0 i in
          if l <> "" && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
      | None -> data
    in
    send conn
      (match http_route t request_line with
      | s -> s
      | exception _ ->
          http_response ~status:"500 Internal Server Error"
            ~content_type:"text/plain" "internal error\n");
    conn.close_after_flush <- true
  end
  else if String.length data > http_request_limit then begin
    send conn
      (http_response ~status:"431 Request Header Fields Too Large"
         ~content_type:"text/plain" "request too large\n");
    conn.close_after_flush <- true
  end

(* ------------------------------------------------------------------ *)
(* Incoming bytes -> frames.                                           *)

(* The writer's parse of a client/subscriber connection; also run over
   the residual bytes of a connection adopted from a shard. *)
let client_parse t conn =
  parse_frames conn
    ~dispatch:(fun c frame ->
      (* crash containment: no single request may kill the loop *)
      try on_frame t c frame
      with e ->
        reply t c ~id:frame.Wire.frame_id (internal_error e);
        c.close_after_flush <- true)
    ~on_bad:(fun c message ->
      reply t c ~id:0 (Wire.Error { Wire.code = Wire.Protocol; message });
      c.close_after_flush <- true)

let read_conn t conn =
  slurp t conn;
  match conn.peer with
  | Http -> if not conn.closed then handle_http t conn
  | Link_pending -> () (* nothing to parse until the connect completes *)
  | Link ->
      parse_frames conn
        ~dispatch:(link_dispatch t)
        ~on_bad:(fun c _ -> close_conn t c)
  | Client | Subscriber -> client_parse t conn

let mk_conn ~peer ~read_deadline_s fd =
  {
    fd;
    inbuf = Buffer.create 4096;
    need = 4;
    out = Queue.create ();
    out_bytes = 0;
    out_off = 0;
    close_after_flush = false;
    closed = false;
    peer;
    read_deadline_s;
  }

let accept_loop ?(peer = Client) t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Obs.Metrics.inc m_connections;
        Atomic.incr t.conn_count;
        Obs.Metrics.set g_connections (float_of_int (Atomic.get t.conn_count));
        if peer = Client && Array.length t.shards > 0 then begin
          (* sharded: the acceptor only accepts; the connection lives
             its whole life on one worker domain *)
          let sid = t.shard_rr mod Array.length t.shards in
          t.shard_rr <- t.shard_rr + 1;
          Mbox.push t.shards.(sid).s_mbox (S_conn fd)
        end
        else begin
          let read_deadline_s =
            (* scrape peers must complete a request promptly or vacate
               the slot; wire peers may idle between requests *)
            if peer = Http then now_s () +. t.config.http_idle_s
            else infinity
          in
          let conn = mk_conn ~peer ~read_deadline_s fd in
          t.conns <- conn :: t.conns
        end
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Micro-batch execution.                                              *)

let opcode_histogram = function
  | Wpredict { with_std = false; _ } -> h_predict
  | Wpredict { with_std = true; _ } -> h_predict_var
  | Wupdate _ -> h_update
  | Wensemble _ -> h_ensemble

let work_name = function
  | Wpredict { with_std = false; _ } -> "predict"
  | Wpredict { with_std = true; _ } -> "predict_var"
  | Wupdate _ -> "update"
  | Wensemble _ -> "predict_ensemble"

let finish t (p : pending) resp =
  let done_s = now_s () in
  Obs.Metrics.observe (opcode_histogram p.work) (done_s -. p.admitted_s);
  if Obs.Trace.enabled () && p.p_req_span > 0 then begin
    let r0 = Obs.Clock.now_us () in
    reply t p.p_conn ~id:p.p_id resp;
    let r1 = Obs.Clock.now_us () in
    Obs.Trace.complete ~cat:"server" ~trace:p.p_trace ~parent:p.p_req_span
      ~start_us:r0 ~dur_us:(r1 -. r0) "srv_reply";
    (* the whole request, admission to reply, child of the client span *)
    Obs.Trace.complete ~cat:"server" ~trace:p.p_trace ~parent:p.p_span
      ~id:p.p_req_span
      ~attrs:[ ("op", Obs.Trace.Str (work_name p.work)) ]
      ~start_us:p.admitted_us
      ~dur_us:(Float.max 0. (r1 -. p.admitted_us))
      "srv_request"
  end
  else reply t p.p_conn ~id:p.p_id resp;
  if
    Obs.Events.enabled ()
    && done_s -. p.admitted_s > t.config.slow_request_s
  then
    Obs.Events.emit "slow_request"
      ~fields:
        [
          ("op", Obs.Trace.Str (work_name p.work));
          ("id", Obs.Trace.Int p.p_id);
          ("seconds", Obs.Trace.Float (done_s -. p.admitted_s));
        ]

(* The fused design-matrix buffer is reused across windows when the
   shape repeats (the steady state under load): every cell is
   overwritten by the member blits before the kernel runs, so reuse
   cannot change a bit of any answer. One slot per executor domain. *)
let fused_buffer slot total dim =
  match !slot with
  | Some (m : Linalg.Mat.t)
    when m.Linalg.Mat.rows = total && m.Linalg.Mat.cols = dim ->
      m
  | _ ->
      let m = Linalg.Mat.create total dim in
      slot := Some m;
      m

(* The per-model arena slice for this executor: reused while the cached
   scratch still belongs to the live predictor, rebuilt on model swap
   (physical identity — a republished model always gets fresh state).
   Output buffers grow geometrically and are handed to the re-split
   code, which copies each member's slice out ([Array.sub]), so reuse
   across windows cannot alias a response. *)
let model_arena arena ~meta ~slot predictor total =
  let key = (meta, slot) in
  let ma =
    match Hashtbl.find_opt arena.ar_models key with
    | Some ma
      when Serving.Predictor.Scratch.for_predictor ma.ma_scratch predictor ->
        ma
    | _ ->
        let ma =
          {
            ma_scratch =
              Serving.Predictor.Scratch.create
                ~capacity:(Stdlib.max 64 total)
                predictor;
            ma_means = [||];
            ma_stds = [||];
          }
        in
        Hashtbl.replace arena.ar_models key ma;
        ma
  in
  if Array.length ma.ma_means < total then begin
    let n = ref (Stdlib.max 64 (Array.length ma.ma_means)) in
    while !n < total do
      n := 2 * !n
    done;
    ma.ma_means <- Array.make !n 0.;
    ma.ma_stds <- Array.make !n 0.
  end;
  ma

(* One group = same model, same opcode. Requests whose dimensionality
   does not match are answered individually; the rest fuse into blocked
   predictor calls of at most [max_batch] points (splitting only at
   request boundaries keeps the re-split trivial and the answers
   bit-identical). [predictor_of] is the executor's model lookup: the
   writer's LRU cache, or a shard's published snapshot. *)
let run_predict_group t ~predictor_of ~arena meta with_std members =
  match (predictor_of meta : (Serving.Predictor.t, Wire.error) result) with
  | Error e ->
      List.iter (fun (p, _) -> finish t p (Wire.Error e)) members
  | Ok predictor ->
      let dim = Polybasis.Basis.dim (Serving.Predictor.basis predictor) in
      let ok, bad =
        List.partition
          (fun (_, (points : Linalg.Mat.t)) -> Linalg.Mat.cols points = dim)
          members
      in
      List.iter
        (fun (p, (points : Linalg.Mat.t)) ->
          finish t p
            (bad_request
               (Printf.sprintf
                  "model %s/%s: query dimension mismatch: expected %d \
                   variables, got %d"
                  meta.Serving.Artifact.circuit meta.Serving.Artifact.metric
                  dim (Linalg.Mat.cols points))))
        bad;
      (* greedy sub-batches bounded by max_batch points *)
      let rec batches acc cur cur_rows = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | ((_, points) as m) :: rest ->
            let r = Linalg.Mat.rows points in
            if cur <> [] && cur_rows + r > t.config.max_batch then
              batches (List.rev cur :: acc) [ m ] r rest
            else batches acc (m :: cur) (cur_rows + r) rest
      in
      List.iter
        (fun batch ->
          let total =
            List.fold_left
              (fun acc (_, p) -> acc + Linalg.Mat.rows p)
              0 batch
          in
          if total = 0 then
            List.iter
              (fun (p, _) ->
                finish t p
                  (Wire.Predicted
                     {
                       means = [||];
                       stds = (if with_std then Some [||] else None);
                     }))
              batch
          else begin
            let fused = fused_buffer arena.ar_fused total dim in
            let at = ref 0 in
            List.iter
              (fun (_, (points : Linalg.Mat.t)) ->
                let rows = Linalg.Mat.rows points in
                Linalg.Mat.blit_rows ~src:points ~dst:fused ~dst_row:!at;
                at := !at + rows)
              batch;
            Obs.Metrics.inc m_microbatches;
            Obs.Metrics.set g_batch_points (float_of_int total);
            let k0 =
              if Obs.Trace.enabled () then Obs.Clock.now_us () else 0.
            in
            (* allocation-free kernels into this executor's arena; the
               [_into] twins are bit-identical to the allocating calls
               they replace, and the re-split below copies each
               request's slice out before the buffers are reused *)
            let ma = model_arena arena ~meta ~slot:0 predictor total in
            match
              if with_std then begin
                Serving.Predictor.predict_with_std_into predictor
                  ~scratch:ma.ma_scratch fused ~means:ma.ma_means
                  ~stds:ma.ma_stds;
                (ma.ma_means, Some ma.ma_stds)
              end
              else begin
                Serving.Predictor.predict_into predictor
                  ~scratch:ma.ma_scratch fused ~means:ma.ma_means;
                (ma.ma_means, None)
              end
            with
            | exception e ->
                List.iter (fun (p, _) -> finish t p (internal_error e)) batch
            | means, stds ->
                (* each member's trace shows the shared fused-kernel
                   window it rode in (same interval, own parent) *)
                (if Obs.Trace.enabled () then
                   let k1 = Obs.Clock.now_us () in
                   List.iter
                     (fun (p, _) ->
                       if p.p_req_span > 0 then
                         Obs.Trace.complete ~cat:"server" ~trace:p.p_trace
                           ~parent:p.p_req_span
                           ~attrs:[ ("points", Obs.Trace.Int total) ]
                           ~start_us:k0 ~dur_us:(k1 -. k0) "srv_kernel")
                     batch);
                let at = ref 0 in
                List.iter
                  (fun (p, (points : Linalg.Mat.t)) ->
                    let rows = Linalg.Mat.rows points in
                    let sub arr = Array.sub arr !at rows in
                    finish t p
                      (Wire.Predicted
                         {
                           means = sub means;
                           stds = Option.map sub stds;
                         });
                    at := !at + rows)
                  batch
          end)
        (batches [] [] 0 ok)

(* One group = same ensemble. The weight vector and member set come
   from the published state (identical on every shard), each
   positive-weight member's kernel runs once over the requests' fused
   rows, and the per-request re-split feeds
   [Ensemble.Predictor.combine] — whose row-wise fold makes the result
   bit-identical to a direct member-by-member computation at any shard
   count or pool width. *)
let run_ensemble_group t ~predictor_of ~arena name members =
  match Ensemble.Manager.find t.ensembles name with
  | None ->
      let e =
        {
          Wire.code = Wire.Model_not_found;
          message = Printf.sprintf "ensemble: no ensemble %S loaded" name;
        }
      in
      List.iter (fun (p, _) -> finish t p (Wire.Error e)) members
  | Some state ->
      let n = Array.length state.Ensemble.State.members in
      let weights = Ensemble.State.weights state in
      let first_err = ref None in
      (* resolve every positive-weight member's predictor up front; a
         missing member fails the whole group (a partial ensemble would
         answer with silently re-normalized weights) *)
      let preds =
        Array.init n (fun i ->
            if weights.(i) > 0. && !first_err = None then
              match
                predictor_of state.Ensemble.State.members.(i).Ensemble.State.meta
              with
              | Ok p -> Some p
              | Error e ->
                  first_err := Some e;
                  None
            else None)
      in
      let dim =
        let rec go i =
          if i >= n then None
          else
            match preds.(i) with
            | Some p ->
                Some (Polybasis.Basis.dim (Serving.Predictor.basis p))
            | None -> go (i + 1)
        in
        go 0
      in
      (match (!first_err, dim) with
      | Some e, _ ->
          List.iter (fun (p, _) -> finish t p (Wire.Error e)) members
      | None, None ->
          List.iter
            (fun (p, _) ->
              finish t p
                (bad_request
                   (Printf.sprintf "ensemble %S has no active member" name)))
            members
      | None, Some dim ->
          let ok, bad =
            List.partition
              (fun (_, (points : Linalg.Mat.t)) ->
                Linalg.Mat.cols points = dim)
              members
          in
          List.iter
            (fun (p, (points : Linalg.Mat.t)) ->
              finish t p
                (bad_request
                   (Printf.sprintf
                      "ensemble %S: query dimension mismatch: expected %d \
                       variables, got %d"
                      name dim (Linalg.Mat.cols points))))
            bad;
          let rec batches acc cur cur_rows = function
            | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
            | ((_, points) as m) :: rest ->
                let r = Linalg.Mat.rows points in
                if cur <> [] && cur_rows + r > t.config.max_batch then
                  batches (List.rev cur :: acc) [ m ] r rest
                else batches acc (m :: cur) (cur_rows + r) rest
          in
          List.iter
            (fun batch ->
              let total =
                List.fold_left
                  (fun acc (_, p) -> acc + Linalg.Mat.rows p)
                  0 batch
              in
              if total = 0 then
                List.iter
                  (fun (p, _) ->
                    finish t p
                      (Wire.Ensemble_predicted
                         { means = [||]; within = [||]; between = [||] }))
                  batch
              else begin
                let fused = fused_buffer arena.ar_fused total dim in
                let at = ref 0 in
                List.iter
                  (fun (_, (points : Linalg.Mat.t)) ->
                    let rows = Linalg.Mat.rows points in
                    Linalg.Mat.blit_rows ~src:points ~dst:fused ~dst_row:!at;
                    at := !at + rows)
                  batch;
                Obs.Metrics.inc m_microbatches;
                Obs.Metrics.set g_batch_points (float_of_int total);
                let k0 =
                  if Obs.Trace.enabled () then Obs.Clock.now_us () else 0.
                in
                match
                  (* each member slot gets its own arena slice
                     ([slot = i + 1]) so members sharing a model can
                     never alias output buffers *)
                  Array.mapi
                    (fun i -> function
                      | None -> ([||], [||])
                      | Some p ->
                          let meta =
                            state.Ensemble.State.members.(i)
                              .Ensemble.State.meta
                          in
                          let ma =
                            model_arena arena ~meta ~slot:(i + 1) p total
                          in
                          Serving.Predictor.predict_with_std_into p
                            ~scratch:ma.ma_scratch fused ~means:ma.ma_means
                            ~stds:ma.ma_stds;
                          (ma.ma_means, ma.ma_stds))
                    preds
                with
                | exception e ->
                    List.iter
                      (fun (p, _) -> finish t p (internal_error e))
                      batch
                | member_out ->
                    (if Obs.Trace.enabled () then
                       let k1 = Obs.Clock.now_us () in
                       List.iter
                         (fun (p, _) ->
                           if p.p_req_span > 0 then
                             Obs.Trace.complete ~cat:"server" ~trace:p.p_trace
                               ~parent:p.p_req_span
                               ~attrs:[ ("points", Obs.Trace.Int total) ]
                               ~start_us:k0 ~dur_us:(k1 -. k0) "srv_kernel")
                         batch);
                    let at = ref 0 in
                    List.iter
                      (fun (p, (points : Linalg.Mat.t)) ->
                        let rows = Linalg.Mat.rows points in
                        let resp =
                          match
                            (* inactive members carry empty arrays and
                               are never read by [combine] *)
                            let means =
                              Array.map
                                (fun ((m : float array), _) ->
                                  if Array.length m = 0 then [||]
                                  else Array.sub m !at rows)
                                member_out
                            in
                            let stds =
                              Array.map
                                (fun (_, (s : float array)) ->
                                  if Array.length s = 0 then [||]
                                  else Array.sub s !at rows)
                                member_out
                            in
                            Ensemble.Predictor.combine ~weights ~means ~stds
                          with
                          | mu, within, between ->
                              Wire.Ensemble_predicted
                                { means = mu; within; between }
                          | exception e -> internal_error e
                        in
                        finish t p resp;
                        at := !at + rows)
                      batch
              end)
            (batches [] [] 0 ok))

(* The single-writer commit path, shared by updates admitted on the
   writer's own connections and updates forwarded from shards: journal
   append -> incremental fold -> durable save -> journal truncate ->
   cache refresh + snapshot publish -> replication fan-out. Returns the
   response; never queues it ([trace_id]/[push_parent] ride the
   replication push, [req_span] parents the kernel span when > 0). *)
let commit_update t ~trace_id ~push_parent ~req_span meta xs f :
    Wire.response =
  match get_model t meta with
  | Error e -> Wire.Error e
  | Ok cached -> (
      let dim =
        Polybasis.Basis.dim (Serving.Predictor.basis cached.predictor)
      in
      if Linalg.Mat.cols xs <> dim then
        bad_request
          (Printf.sprintf
             "model %s/%s: update dimension mismatch: expected %d \
              variables, got %d"
             meta.Serving.Artifact.circuit meta.Serving.Artifact.metric dim
             (Linalg.Mat.cols xs))
      else
        let entry =
          {
            Serving.Journal.meta;
            base_rev = cached.artifact.Serving.Artifact.rev;
            xs;
            f;
          }
        in
        (* calibration scores the incoming observations against the
           PRE-update posterior (the model as it was when these samples
           arrived); a no-op unless metrics are on *)
        if Obs.Metrics.enabled () then
          Serving.Calibration.record_update ~predictor:cached.predictor
            ~meta ~xs ~f;
        (* BMA evidence, phase 1 (pure): every ensemble containing this
           model scores the incoming batch under its members'
           *pre-update* predictors — genuinely held-out density for the
           member about to absorb these samples. Committed only after
           the update itself commits. *)
        let scored_ensembles =
          match Ensemble.Manager.containing t.ensembles meta with
          | [] -> []
          | states ->
              let predictor_of m =
                match get_model t m with
                | Ok c -> Some c.predictor
                | Error _ -> None
              in
              List.filter_map
                (fun s ->
                  match Ensemble.Manager.score ~predictor_of s ~xs ~f with
                  | s -> Some s
                  | exception _ -> None)
                states
        in
        let k0 = if Obs.Trace.enabled () then Obs.Clock.now_us () else 0. in
        match
          (* write-ahead: journal + fsync the raw samples first, so a
             crash anywhere past this point can no longer lose the
             update — recovery replays it against the base revision *)
          Serving.Journal.append t.journal entry;
          let upd = Serving.Incremental.of_artifact cached.artifact in
          Serving.Incremental.add_batch upd ~xs ~f;
          let updated = Serving.Incremental.to_artifact upd in
          ignore
            (Serving.Store.save ~durability:t.config.durability ~root:t.root
               updated);
          (* the artifact is durable: the journal entry has served its
             purpose and must not be replayed on the next start *)
          Serving.Journal.truncate t.journal;
          updated
        with
        | exception e ->
            (* the update was rejected (degenerate sample, I/O error):
               roll the journal back so the refused entry cannot be
               replayed at restart as if it had been accepted *)
            (try Serving.Journal.truncate t.journal with _ -> ());
            internal_error e
        | updated ->
            if Obs.Trace.enabled () && req_span > 0 then
              Obs.Trace.complete ~cat:"server" ~trace:trace_id
                ~parent:req_span
                ~attrs:[ ("rev", Obs.Trace.Int updated.Serving.Artifact.rev) ]
                ~start_us:k0
                ~dur_us:(Obs.Clock.now_us () -. k0)
                "srv_kernel";
            refresh_model t meta updated;
            (* BMA evidence, phase 2: the update committed, so the
               scored ensemble states become durable and visible. A
               failed ensemble save must not fail the acked update. *)
            List.iter
              (fun s ->
                try
                  Ensemble.Manager.commit t.ensembles
                    ~durability:t.config.durability s
                with _ -> ())
              scored_ensembles;
            (* the commit is durable and published: ship it to
               subscribers before the acknowledgement is even queued.
               The push carries this update's trace context (the server
               span when tracing is on, the client's own context when
               relaying untraced) so the follower's apply joins the
               same trace. *)
            ship_commit ~trace:(trace_id, push_parent) t entry;
            Wire.Updated
              {
                rev = updated.Serving.Artifact.rev;
                samples = Serving.Artifact.num_samples updated;
              })

let run_update t (p : pending) meta xs f =
  finish t p
    (commit_update t ~trace_id:p.p_trace
       ~push_parent:(if p.p_req_span > 0 then p.p_req_span else p.p_span)
       ~req_span:p.p_req_span meta xs f)

(* ------------------------------------------------------------------ *)
(* Batch windows. A window opens at its oldest admission and closes
   [batch_delay_s] later (immediately when 0, or when draining).
   Expired requests are refused by a sweep that runs on every tick —
   never gated on the window — so deadline-expiry latency tracks the
   select timeout, not the batch cadence.                              *)

let refuse_expired t q ~now =
  let n = Queue.length q in
  for _ = 1 to n do
    let p = Queue.pop q in
    if p.p_conn.closed then () (* hung up: drop the work silently *)
    else if p.expires_s < now then
      finish t p
        (Wire.Error
           {
             Wire.code = Wire.Deadline_exceeded;
             message = "deadline expired before execution";
           })
    else Queue.add p q
  done

let window_due t q =
  (not (Queue.is_empty q))
  && (t.config.batch_delay_s <= 0.
     || stopping t
     || Obs.Clock.monotonic_raw () -. (Queue.peek q).admitted_mono
        >= t.config.batch_delay_s)

(* Drain the whole queue as one window: group + run predicts against the
   window-start model state, then apply updates in arrival order.
   Shared by the writer ([on_update] commits locally) and the shards
   (whose queues never hold updates — those forward at admission). *)
let process_window t q ~predictor_of ~arena ~on_update =
  let window = Queue.fold (fun acc p -> p :: acc) [] q in
  Queue.clear q;
  let window = List.rev window in
  let live = List.filter (fun p -> not p.p_conn.closed) window in
  (* queue spans: admission to window start, per surviving request *)
  (if Obs.Trace.enabled () then
     let wstart = Obs.Clock.now_us () in
     List.iter
       (fun p ->
         if p.p_req_span > 0 then
           Obs.Trace.complete ~cat:"server" ~trace:p.p_trace
             ~parent:p.p_req_span ~start_us:p.admitted_us
             ~dur_us:(Float.max 0. (wstart -. p.admitted_us))
             "srv_queue")
       live);
  (* group predicts by (meta, with_std) and ensemble calls by name,
     first-seen order *)
  let groups = ref [] in
  let egroups = ref [] in
  let updates = ref [] in
  List.iter
    (fun p ->
      match p.work with
      | Wupdate { meta; xs; f } -> updates := (p, meta, xs, f) :: !updates
      | Wpredict { meta; points; with_std } -> (
          let key = (meta, with_std) in
          match List.assoc_opt key !groups with
          | Some members -> members := (p, points) :: !members
          | None -> groups := (key, ref [ (p, points) ]) :: !groups)
      | Wensemble { name; points } -> (
          match List.assoc_opt name !egroups with
          | Some members -> members := (p, points) :: !members
          | None -> egroups := (name, ref [ (p, points) ]) :: !egroups))
    live;
  List.iter
    (fun ((meta, with_std), members) ->
      let members = List.rev !members in
      try run_predict_group t ~predictor_of ~arena meta with_std members
      with e ->
        List.iter (fun (p, _) -> finish t p (internal_error e)) members)
    (List.rev !groups);
  List.iter
    (fun (name, members) ->
      let members = List.rev !members in
      try run_ensemble_group t ~predictor_of ~arena name members
      with e ->
        List.iter (fun (p, _) -> finish t p (internal_error e)) members)
    (List.rev !egroups);
  List.iter
    (fun (p, meta, xs, f) ->
      try on_update p meta xs f
      with e -> finish t p (internal_error e))
    (List.rev !updates)

let writer_predictor_of t meta =
  match get_model t meta with
  | Error e -> Error e
  | Ok cached -> Ok cached.predictor

let process_pending t =
  let now = now_s () in
  refuse_expired t t.pending ~now;
  if window_due t t.pending then
    process_window t t.pending
      ~predictor_of:(writer_predictor_of t)
      ~arena:t.arena
      ~on_update:(fun p meta xs f -> run_update t p meta xs f);
  Obs.Metrics.set g_queue_depth (float_of_int (Queue.length t.pending))

(* ------------------------------------------------------------------ *)
(* Replication: the follower's leader link (non-blocking connect).     *)

let establish_link t conn =
  conn.peer <- Link;
  (* fresh link: readiness waits for this subscription's catch-up *)
  t.catch_up_done <- false;
  Replication.Backoff.reset t.link_backoff;
  Obs.Events.emit "link_up"
    ~fields:
      [
        ( "leader",
          Obs.Trace.Str
            (match Atomic.get t.leader with
            | Some a -> address_to_string a
            | None -> "") );
      ];
  let vector =
    List.map
      (fun (a : Serving.Artifact.t) -> (a.meta, a.rev))
      (store_artifacts t)
  in
  send conn (Wire.encode_request ~id:0 (Wire.Subscribe_req { vector }))

let complete_link t conn =
  match Unix.getsockopt_error conn.fd with
  | None -> establish_link t conn
  | Some _ -> close_conn t conn

let attempt_link t leader =
  match
    let domain, sockaddr = sockaddr_of leader in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (fd, sockaddr)
  with
  | exception _ ->
      (* unresolvable address: keep retrying on the backoff schedule *)
      t.link_next_s <-
        now_s () +. Replication.Backoff.next_delay_s t.link_backoff
  | fd, sockaddr -> (
      let conn = mk_conn ~peer:Link_pending ~read_deadline_s:infinity fd in
      t.conns <- conn :: t.conns;
      t.link <- Some conn;
      Atomic.incr t.conn_count;
      Obs.Metrics.set g_connections (float_of_int (Atomic.get t.conn_count));
      match Unix.connect fd sockaddr with
      | () -> establish_link t conn
      | exception
          Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          () (* completion surfaces as writability in the loop *)
      | exception Unix.Unix_error _ -> close_conn t conn)

(* ------------------------------------------------------------------ *)
(* Select timeouts. Computed from the nearest thing that needs the
   loop awake — queued deadline expiry, batch-window close, link retry,
   heartbeat, HTTP read deadline, drain grace — and capped at 0.25 s as
   an idle ceiling. Timed work is therefore handled when it is due, not
   on the next multiple of a hardcoded floor.                          *)

let drain_grace_s = 10.

let clamp_timeout x = if x < 0. then 0. else if x > 0.25 then 0.25 else x

(* Seconds until the queue next needs attention: its window close or
   its earliest deadline, whichever comes first. *)
let queue_wait_s config q ~now =
  if Queue.is_empty q then infinity
  else
    let head = Queue.peek q in
    let w =
      if config.batch_delay_s > 0. then
        (* pacing on the raw clock (see [pending.admitted_mono]) *)
        head.admitted_mono +. config.batch_delay_s
        -. Obs.Clock.monotonic_raw ()
      else 0.
    in
    Queue.fold (fun acc p -> Float.min acc (p.expires_s -. now)) w q

(* ------------------------------------------------------------------ *)
(* Shard workers. Each worker domain owns a disjoint set of client
   connections and a private pending queue, serves reads from the
   published snapshot, forwards updates to the writer, and hands
   replication control frames (Subscribe/Promote) back — connection
   included — over the writer mailbox.                                 *)

let shard_close t shard conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    shard.s_conns <- List.filter (fun c -> c != conn) shard.s_conns;
    Atomic.decr t.conn_count;
    Obs.Metrics.set g_connections (float_of_int (Atomic.get t.conn_count));
    Obs.Metrics.set shard.s_conns_gauge
      (float_of_int (List.length shard.s_conns))
  end

(* Lock-free model lookup against the published snapshot. A model that
   exists on disk but is not yet published (e.g. saved by a previous
   incarnation) is served from a locally built predictor while the
   writer is asked to publish it for every shard. *)
let shard_predictor_of t meta : (Serving.Predictor.t, Wire.error) result =
  match Serving.Snapshot.find (Serving.Snapshot.current t.snapshot) meta with
  | Some e -> Ok e.Serving.Snapshot.predictor
  | None -> (
      match Serving.Store.load ~root:t.root meta with
      | Error message -> Error { Wire.code = Wire.Model_not_found; message }
      | Ok artifact ->
          Mbox.push t.writer_mbox (W_publish meta);
          Ok (Serving.Predictor.of_artifact artifact))

(* Shard-side admission: same contract as [admit], against the shard's
   own queue. Forwarded updates still occupy admission slots until
   their reply returns, so [queue_capacity] bounds a shard's total
   outstanding work. *)
let shard_capacity_left t shard =
  Queue.length shard.s_pending + shard.s_outstanding
  < t.config.queue_capacity

let shard_admit t shard conn (frame : Wire.frame) work =
  if stopping t then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Shutting_down;
           message = "server is draining; not accepting new work";
         })
  else if not (shard_capacity_left t shard) then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Busy;
           message =
             Printf.sprintf "request queue full (capacity %d)"
               t.config.queue_capacity;
         })
  else begin
    let admitted_s = now_s () in
    let expires_s =
      if frame.Wire.frame_deadline_ms <= 0 then infinity
      else admitted_s +. (float_of_int frame.Wire.frame_deadline_ms /. 1e3)
    in
    let p_span = frame.Wire.frame_span in
    let admitted_us, p_trace, p_req_span =
      if Obs.Trace.enabled () then
        ( Obs.Clock.now_us (),
          (if frame.Wire.frame_trace > 0 then frame.Wire.frame_trace
           else Obs.Trace.fresh_trace_id ()),
          Obs.Trace.alloc_id () )
      else (0., frame.Wire.frame_trace, 0)
    in
    Queue.add
      {
        p_conn = conn;
        p_id = frame.Wire.frame_id;
        admitted_s;
        admitted_mono = Obs.Clock.monotonic_raw ();
        expires_s;
        work;
        p_trace;
        p_span;
        p_req_span;
        admitted_us;
      }
      shard.s_pending;
    Obs.Metrics.set shard.s_queue_gauge
      (float_of_int (Queue.length shard.s_pending))
  end

let shard_forward_update t shard conn (frame : Wire.frame) meta xs f =
  if stopping t then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Shutting_down;
           message = "server is draining; not accepting new work";
         })
  else if not (shard_capacity_left t shard) then
    reply t conn ~id:frame.Wire.frame_id
      (Wire.Error
         {
           Wire.code = Wire.Busy;
           message =
             Printf.sprintf "request queue full (capacity %d)"
               t.config.queue_capacity;
         })
  else begin
    let admitted_s = now_s () in
    let expires_s =
      if frame.Wire.frame_deadline_ms <= 0 then infinity
      else admitted_s +. (float_of_int frame.Wire.frame_deadline_ms /. 1e3)
    in
    shard.s_outstanding <- shard.s_outstanding + 1;
    Mbox.push t.writer_mbox
      (W_update
         {
           u_shard = shard.sid;
           u_conn = conn;
           u_id = frame.Wire.frame_id;
           u_admitted_s = admitted_s;
           u_expires_s = expires_s;
           u_meta = meta;
           u_xs = xs;
           u_f = f;
           u_trace = frame.Wire.frame_trace;
           u_span = frame.Wire.frame_span;
         })
  end

(* Worker-side dispatch. Returns [`Detach frame] for the frames only
   the writer may run — the replication control plane
   (Subscribe/Promote) and ensemble stats (whose disk reload mutates
   writer-owned state) — the connection is handed across wholesale and
   the worker must stop parsing it immediately. *)
let shard_on_frame t shard conn (frame : Wire.frame) =
  let decoded = Wire.decode_request frame in
  match decoded with
  | Ok (Wire.Subscribe_req _)
  | Ok Wire.Promote_req
  | Ok (Wire.Ensemble_stats_req _) ->
      `Detach
  | _ ->
      Atomic.incr t.served;
      Obs.Metrics.inc m_requests;
      Obs.Metrics.inc shard.s_requests;
      (match decoded with
      | Error message ->
          reply t conn ~id:frame.Wire.frame_id
            (Wire.Error { Wire.code = Wire.Protocol; message });
          conn.close_after_flush <- true
      | Ok req -> (
          match req with
          | Wire.Ping_req ->
              Obs.Metrics.time h_admin (fun () ->
                  reply t conn ~id:frame.Wire.frame_id Wire.Pong)
          | Wire.Stats_req ->
              Obs.Metrics.time h_admin (fun () ->
                  reply t conn ~id:frame.Wire.frame_id (stats_payload t))
          | Wire.List_models_req ->
              Obs.Metrics.time h_admin (fun () ->
                  reply t conn ~id:frame.Wire.frame_id
                    (Wire.Models (model_infos t)))
          | Wire.Events_req ->
              Obs.Metrics.time h_admin (fun () ->
                  reply t conn ~id:frame.Wire.frame_id
                    (Wire.Events_payload { json = Obs.Events.to_json () }))
          | Wire.Predict_req { meta; points; with_std } ->
              let rows = Linalg.Mat.rows points in
              let limit = Wire.max_predict_rows ~with_std in
              if rows > limit then
                reply t conn ~id:frame.Wire.frame_id
                  (bad_request
                     (Printf.sprintf
                        "batch of %d points exceeds the %d-point response \
                         limit for %s"
                        rows limit
                        (Wire.opcode_name
                           (if with_std then Wire.Predict_var
                            else Wire.Predict))))
              else
                shard_admit t shard conn frame
                  (Wpredict { meta; points; with_std })
          | Wire.Predict_ensemble_req { name; points } ->
              let rows = Linalg.Mat.rows points in
              if rows > Wire.max_ensemble_rows then
                reply t conn ~id:frame.Wire.frame_id
                  (bad_request
                     (Printf.sprintf
                        "batch of %d points exceeds the %d-point response \
                         limit for predict_ensemble"
                        rows Wire.max_ensemble_rows))
              else
                shard_admit t shard conn frame (Wensemble { name; points })
          | Wire.Update_req { meta; xs; f } ->
              if Atomic.get t.leader <> None then
                reply t conn ~id:frame.Wire.frame_id (not_leader_error t)
              else shard_forward_update t shard conn frame meta xs f
          | Wire.Repl_ack_req _ -> () (* subscribers never live on shards *)
          | Wire.Subscribe_req _ | Wire.Promote_req
          | Wire.Ensemble_stats_req _ ->
              assert false));
      `Continue

let shard_read t shard conn =
  slurp_gen ~scratch:shard.s_scratch ~close:(shard_close t shard) conn;
  let detach = ref None in
  parse_frames conn
    ~stop:(fun () -> !detach <> None)
    ~dispatch:(fun c frame ->
      match
        try shard_on_frame t shard c frame
        with e ->
          reply t c ~id:frame.Wire.frame_id (internal_error e);
          c.close_after_flush <- true;
          `Continue
      with
      | `Continue -> ()
      | `Detach -> detach := Some frame)
    ~on_bad:(fun c message ->
      reply t c ~id:0 (Wire.Error { Wire.code = Wire.Protocol; message });
      c.close_after_flush <- true);
  match !detach with
  | None -> ()
  | Some frame ->
      (* hand the whole connection to the writer: remaining input,
         unflushed output, and the control frame that triggered the
         move. The shard's conn record is orphaned, never closed here —
         the fd now belongs to the writer. Any of this connection's
         predicts still queued on the shard are dropped (marking the
         orphan closed), as for a hung-up peer. *)
      shard.s_conns <- List.filter (fun c -> c != conn) shard.s_conns;
      Obs.Metrics.set shard.s_conns_gauge
        (float_of_int (List.length shard.s_conns));
      let out_frames =
        List.rev (Queue.fold (fun acc s -> s :: acc) [] conn.out)
      in
      let residual = Buffer.contents conn.inbuf in
      let out_off = conn.out_off in
      conn.closed <- true;
      Mbox.push t.writer_mbox
        (W_adopt
           {
             a_fd = conn.fd;
             a_in = residual;
             a_out = out_frames;
             a_out_off = out_off;
             a_frame = frame;
           })

let shard_timeout t shard ~now =
  let cand = queue_wait_s t.config shard.s_pending ~now in
  let cand =
    if stopping t && not (Float.is_nan shard.s_stopped_mono) then
      Float.min cand (shard.s_stopped_mono +. drain_grace_s -. now)
    else cand
  in
  clamp_timeout cand

let shard_loop t shard =
  (* this domain owns one core: predictor kernels submitted from here
     run inline instead of contending on the shared pool *)
  Parallel.Pool.inline_in_domain ();
  let predictor_of = shard_predictor_of t in
  let drain_mbox () =
    List.iter
      (fun msg ->
        match msg with
        | S_conn fd ->
            let conn = mk_conn ~peer:Client ~read_deadline_s:infinity fd in
            shard.s_conns <- conn :: shard.s_conns;
            Obs.Metrics.set shard.s_conns_gauge
              (float_of_int (List.length shard.s_conns))
        | S_reply { r_conn; r_frame } ->
            shard.s_outstanding <- max 0 (shard.s_outstanding - 1);
            if not r_conn.closed then send r_conn r_frame)
      (Mbox.drain shard.s_mbox)
  in
  let process () =
    let now = now_s () in
    refuse_expired t shard.s_pending ~now;
    if window_due t shard.s_pending then
      process_window t shard.s_pending ~predictor_of ~arena:shard.s_arena
        ~on_update:(fun p _ _ _ ->
          (* updates forward at admission; one can never be queued here *)
          finish t p
            (Wire.Error
               {
                 Wire.code = Wire.Internal;
                 message = "update misrouted to a shard queue";
               }));
    Obs.Metrics.set shard.s_queue_gauge
      (float_of_int (Queue.length shard.s_pending))
  in
  let flush_all () =
    List.iter
      (fun c ->
        if not (Queue.is_empty c.out) then
          flush_conn_gen ~close:(shard_close t shard) c)
      shard.s_conns
  in
  let finished = ref false in
  while not !finished do
    if stopping t && Float.is_nan shard.s_stopped_mono then
      shard.s_stopped_mono <- now_s ();
    let rs =
      shard.s_mbox.Mbox.r
      :: List.filter_map
           (fun c ->
             if c.close_after_flush || c.out_bytes >= max_buffered_out then
               None
             else Some c.fd)
           shard.s_conns
    in
    let ws =
      List.filter_map
        (fun c -> if Queue.is_empty c.out then None else Some c.fd)
        shard.s_conns
    in
    (match Unix.select rs ws [] (shard_timeout t shard ~now:(now_s ())) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.mem shard.s_mbox.Mbox.r readable then
          Mbox.clear_wake ~scratch:shard.s_scratch shard.s_mbox;
        drain_mbox ();
        List.iter
          (fun c -> if List.mem c.fd readable then shard_read t shard c)
          shard.s_conns;
        process ();
        List.iter
          (fun c ->
            if List.mem c.fd writable || not (Queue.is_empty c.out) then
              flush_conn_gen ~close:(shard_close t shard) c)
          shard.s_conns);
    if Obs.Trace.enabled () then Obs.Trace.flush_lane ();
    if stopping t then begin
      drain_mbox ();
      process ();
      flush_all ();
      if
        (Queue.is_empty shard.s_pending
        && shard.s_outstanding = 0
        && List.for_all (fun c -> Queue.is_empty c.out) shard.s_conns)
        || now_s () -. shard.s_stopped_mono > drain_grace_s
      then begin
        List.iter (fun c -> shard_close t shard c) shard.s_conns;
        finished := true
      end
    end
  done;
  (* connections handed over after the drain decision: close them *)
  List.iter
    (fun msg ->
      match msg with
      | S_conn fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Atomic.decr t.conn_count
      | S_reply _ -> ())
    (Mbox.drain shard.s_mbox);
  Atomic.decr t.shards_live;
  (* the writer's drain waits for [shards_live]: wake its select *)
  (try ignore (Unix.write t.wake_w t.wake_buf 0 1)
   with Unix.Unix_error _ -> ());
  Obs.Trace.flush_lane ()

(* ------------------------------------------------------------------ *)
(* Writer side of the shard plane.                                     *)

(* A forwarded update commits exactly like a local one; the response is
   encoded here and routed back to the owning shard, which alone may
   touch the connection. The snapshot is published inside the commit —
   strictly before the ack frame crosses back — so an acked update is
   visible to a predict on any shard. *)
let apply_forwarded_update t ~u_shard ~u_conn ~u_id ~u_admitted_s
    ~u_expires_s ~u_meta ~u_xs ~u_f ~u_trace ~u_span =
  let resp =
    if Atomic.get t.leader <> None then not_leader_error t
    else if now_s () > u_expires_s then
      Wire.Error
        {
          Wire.code = Wire.Deadline_exceeded;
          message = "deadline expired before execution";
        }
    else
      match
        commit_update t ~trace_id:u_trace ~push_parent:u_span ~req_span:0
          u_meta u_xs u_f
      with
      | resp -> resp
      | exception e -> internal_error e
  in
  Obs.Metrics.observe h_update (now_s () -. u_admitted_s);
  let encoded = encode_reply ~id:u_id resp in
  Mbox.push t.shards.(u_shard).s_mbox
    (S_reply { r_conn = u_conn; r_frame = encoded })

(* Adopt a connection handed back by a shard: rebuild the conn record
   around the fd, replay the control frame through the writer's normal
   dispatch, then parse whatever else was already buffered. *)
let adopt_conn t ~a_fd ~a_in ~a_out ~a_out_off ~a_frame =
  let conn = mk_conn ~peer:Client ~read_deadline_s:infinity a_fd in
  conn.out_off <- a_out_off;
  List.iter
    (fun s ->
      Queue.add s conn.out;
      conn.out_bytes <- conn.out_bytes + String.length s)
    a_out;
  Buffer.add_string conn.inbuf a_in;
  t.conns <- conn :: t.conns;
  (try on_frame t conn a_frame
   with e ->
     reply t conn ~id:a_frame.Wire.frame_id (internal_error e);
     conn.close_after_flush <- true);
  client_parse t conn

let drain_writer_mbox t =
  List.iter
    (fun msg ->
      match msg with
      | W_update
          { u_shard; u_conn; u_id; u_admitted_s; u_expires_s; u_meta; u_xs;
            u_f; u_trace; u_span } ->
          apply_forwarded_update t ~u_shard ~u_conn ~u_id ~u_admitted_s
            ~u_expires_s ~u_meta ~u_xs ~u_f ~u_trace ~u_span
      | W_adopt { a_fd; a_in; a_out; a_out_off; a_frame } ->
          adopt_conn t ~a_fd ~a_in ~a_out ~a_out_off ~a_frame
      | W_publish meta -> (
          (* a shard found this model on disk but not in the snapshot:
             publish it once for everyone (skip if a newer or equal
             revision has landed meanwhile) *)
          match Serving.Store.load ~root:t.root meta with
          | Error _ -> ()
          | Ok artifact -> (
              match
                Serving.Snapshot.find
                  (Serving.Snapshot.current t.snapshot)
                  meta
              with
              | Some e
                when e.Serving.Snapshot.artifact.Serving.Artifact.rev
                     >= artifact.Serving.Artifact.rev ->
                  ()
              | _ -> ignore (Serving.Snapshot.publish t.snapshot artifact))))
    (Mbox.drain t.writer_mbox)

(* Satellite of the read-deadline sweep: scrape peers that trickle
   bytes (or never complete a request line) are dropped once their
   deadline passes, freeing the conn-table slot.                       *)
let sweep_read_deadlines t ~now =
  List.iter
    (fun c ->
      if (not c.closed) && c.read_deadline_s < now then begin
        Obs.Metrics.inc m_http_idle_drops;
        close_conn t c
      end)
    (List.filter (fun c -> c.read_deadline_s < infinity) t.conns)

let writer_timeout t ~now =
  let cand = queue_wait_s t.config t.pending ~now in
  (* follower: next link retry *)
  let cand =
    match Atomic.get t.leader with
    | Some _ when (not (stopping t)) && t.link = None ->
        Float.min cand (t.link_next_s -. now)
    | _ -> cand
  in
  (* leader with subscribers: next heartbeat *)
  let cand =
    match Atomic.get t.leader with
    | None
      when (not (stopping t))
           && Replication.Source.subscribers t.source <> [] ->
        Float.min cand (t.last_status_s +. 1. -. now)
    | _ -> cand
  in
  (* scrape read deadlines *)
  let cand =
    List.fold_left
      (fun acc c -> Float.min acc (c.read_deadline_s -. now))
      cand t.conns
  in
  (* draining: wake for the grace cutoff *)
  let cand =
    if stopping t && not (Float.is_nan t.stopped_mono) then
      Float.min cand (t.stopped_mono +. drain_grace_s -. now)
    else cand
  in
  clamp_timeout cand

(* ------------------------------------------------------------------ *)
(* The loop.                                                           *)

let stop_accepting t =
  if t.accepting then begin
    t.accepting <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.http_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (match t.addr with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    match t.http_addr with
    | Some (Unix_socket path) -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Some (Tcp _) | None -> ()
  end

let fully_flushed t =
  List.for_all (fun c -> Queue.is_empty c.out) t.conns

let run t =
  (* sharded: publish the recovered store once, then spawn the worker
     plane. [shards = 1] spawns nothing — the process stays fork-safe
     and behaves exactly like the classic single-domain daemon. *)
  let shard_domains =
    if Array.length t.shards = 0 then []
    else begin
      ignore (Serving.Snapshot.load_all ~root:t.root t.snapshot);
      Array.to_list
        (Array.map (fun s -> Domain.spawn (fun () -> shard_loop t s)) t.shards)
    end
  in
  let finished = ref false in
  while not !finished do
    if stopping t then begin
      if Float.is_nan t.stopped_mono then t.stopped_mono <- now_s ();
      stop_accepting t;
      (* keep nudging the workers: wakes are idempotent and cheap *)
      Array.iter (fun s -> Mbox.wake s.s_mbox) t.shards
    end;
    (* follower: (re)connect to the leader when the backoff allows *)
    (match Atomic.get t.leader with
    | Some leader
      when (not (stopping t)) && t.link = None && now_s () >= t.link_next_s ->
        attempt_link t leader
    | _ -> ());
    (* leader: liveness heartbeat about once a second, so idle
       followers keep a fresh view of the leader's commit sequence
       without any acknowledgement traffic *)
    (match Atomic.get t.leader with
    | None when not (stopping t) ->
        let now = now_s () in
        if now -. t.last_status_s >= 1. then begin
          t.last_status_s <- now;
          match Replication.Source.subscribers t.source with
          | [] -> ()
          | subs ->
              let hb =
                Wire.encode_push
                  (Wire.Repl_heartbeat
                     { seq = Atomic.get t.commit_seq; ts = Obs.Clock.wall () })
              in
              List.iter
                (fun c ->
                  if (not c.closed) && c.out_bytes < max_buffered_out then
                    send c hb)
                subs
        end
    | _ -> ());
    sweep_read_deadlines t ~now:(now_s ());
    let rs =
      t.wake_r
      :: (if Array.length t.shards > 0 then [ t.writer_mbox.Mbox.r ] else [])
      @ (if t.accepting then
           t.listen_fd
           :: (match t.http_fd with Some fd -> [ fd ] | None -> [])
         else [])
      @ List.filter_map
          (fun c ->
            if c.close_after_flush || c.out_bytes >= max_buffered_out then
              None
            else Some c.fd)
          t.conns
    in
    let ws =
      List.filter_map
        (fun c ->
          if c.peer = Link_pending then Some c.fd
          else if Queue.is_empty c.out then None
          else Some c.fd)
        t.conns
    in
    (match Unix.select rs ws [] (writer_timeout t ~now:(now_s ())) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.mem t.wake_r readable then begin
          try
            while Unix.read t.wake_r t.scratch 0 64 > 0 do
              ()
            done
          with Unix.Unix_error _ -> ()
        end;
        if
          Array.length t.shards > 0
          && List.mem t.writer_mbox.Mbox.r readable
        then Mbox.clear_wake ~scratch:t.scratch t.writer_mbox;
        if Array.length t.shards > 0 then drain_writer_mbox t;
        if t.accepting && List.mem t.listen_fd readable then
          accept_loop t t.listen_fd;
        (match t.http_fd with
        | Some fd when t.accepting && List.mem fd readable ->
            accept_loop ~peer:Http t fd
        | _ -> ());
        List.iter
          (fun c ->
            if c.peer = Link_pending && List.mem c.fd writable then
              complete_link t c)
          t.conns;
        List.iter
          (fun c -> if List.mem c.fd readable then read_conn t c)
          t.conns;
        process_pending t;
        List.iter
          (fun c ->
            if List.mem c.fd writable || not (Queue.is_empty c.out) then
              flush_conn t c)
          t.conns);
    if stopping t then begin
      (* drained and flushed (or out of grace): hang up and return.
         Updates forwarded by still-draining shards keep being served
         through the mailbox until every worker has quiesced. *)
      if Array.length t.shards > 0 then drain_writer_mbox t;
      process_pending t;
      List.iter (fun c -> flush_conn t c) t.conns;
      if
        (Queue.is_empty t.pending && fully_flushed t
        && Atomic.get t.shards_live = 0)
        || now_s () -. t.stopped_mono > drain_grace_s
      then begin
        List.iter (fun c -> close_conn t c) t.conns;
        finished := true
      end
    end
  done;
  stop_accepting t;
  List.iter Domain.join shard_domains;
  Array.iter (fun s -> Mbox.close s.s_mbox) t.shards;
  Mbox.close t.writer_mbox;
  (* when run was hosted on a spawned domain its trace lane would die
     with the domain; hand it to the merge buffer first *)
  Obs.Trace.flush_lane ();
  (try Serving.Journal.close t.journal with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
