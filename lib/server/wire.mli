(** Binary wire protocol for the BMF prediction daemon.

    Every message travels in one length-prefixed little-endian frame:

    {v
      u32  length of the rest of the frame (header + body)
      u8   protocol version (1 or 2)
      u8   kind: request opcode, 0 (OK) or an error code for responses
      u64  request id (echoed verbatim in the response)
      u32  request deadline in ms (0 = none; 0 in responses)
      u64  trace id   (v2 only; 0 = no distributed trace)
      u64  span id    (v2 only; the sender's open span)
      body
    v}

    Version 2 (this release) appends a distributed-trace context to the
    header; decoders accept both versions, so v1 peers interoperate
    with a v2 daemon in either direction. Requests frame as v1 unless a
    trace context is attached; pushes always frame as v2 because their
    v2 bodies carry the leader's commit timestamp.

    Bodies reuse the {!Serving.Artifact} binary conventions: ints as
    little-endian i64, floats as IEEE-754 bits, strings and float arrays
    length-prefixed. Frames larger than {!max_frame_len} are rejected
    before any allocation proportional to the advertised length, so a
    hostile or corrupt peer cannot force an out-of-memory. *)

val version : int
(** Newest protocol version this build speaks (2). *)

val min_version : int
(** Oldest version still decoded (1). *)

val max_frame_len : int
(** Upper bound on the post-length portion of a frame (16 MiB). *)

val header_len : int
(** Bytes of v1 header after the length word. *)

val header_len_v2 : int
(** Bytes of v2 header after the length word ({!header_len} + 16). *)

val max_predict_rows : with_std:bool -> int
(** Largest predict batch whose [Predicted] response still fits in one
    frame. Servers refuse larger batches with [Bad_request] at admission
    so response encoding can never exceed {!max_frame_len}. *)

val max_ensemble_rows : int
(** Largest ensemble batch whose [Ensemble_predicted] response (three
    float arrays per row) still fits in one frame. *)

(** {2 Message types} *)

type opcode =
  | Ping
  | Predict
  | Predict_var
  | Update
  | List_models
  | Stats
  | Subscribe  (** Open a replication stream; answered by pushes. *)
  | Repl_ack  (** Follower ack of applied entries; no response. *)
  | Promote  (** Flip a follower to leader. *)
  | Events  (** Dump the daemon's structured event ring. *)
  | Predict_ensemble  (** BMA-weighted prediction over a named ensemble. *)
  | Ensemble_stats  (** Ensemble weight/evidence state as JSON. *)

val opcode_name : opcode -> string

type request =
  | Ping_req
  | Predict_req of {
      meta : Serving.Artifact.meta;
      points : Linalg.Mat.t;  (** rows = query points. *)
      with_std : bool;
    }
  | Update_req of {
      meta : Serving.Artifact.meta;
      xs : Linalg.Mat.t;
      f : Linalg.Vec.t;
    }
  | List_models_req
  | Stats_req
  | Subscribe_req of { vector : (Serving.Artifact.meta * int) list }
      (** The follower's per-model revision vector; the leader snapshots
          every model that is missing or behind, then streams entries. *)
  | Repl_ack_req of { seq : int }
      (** Every entry up to leader-commit [seq] is durably applied. *)
  | Promote_req
  | Events_req
  | Predict_ensemble_req of {
      name : string;
      points : Linalg.Mat.t;  (** rows = query points. *)
    }
  | Ensemble_stats_req of { name : string }
      (** [""] asks for every loaded ensemble. *)

val opcode_of_request : request -> opcode

type error_code =
  | Busy  (** Request queue full — back off and retry. *)
  | Deadline_exceeded
  | Model_not_found
  | Bad_request
  | Internal
  | Shutting_down
  | Protocol  (** Malformed frame; the connection is closed after this. *)
  | Not_leader
      (** Updates (and subscriptions) must go to the leader; the message
          names its address ([tcp://host:port] or [unix://path]). *)

val error_code_name : error_code -> string

type error = { code : error_code; message : string }

type model_info = {
  meta : Serving.Artifact.meta;
  rev : int;
  samples : int;  (** K *)
  terms : int;  (** M *)
  dim : int;  (** Variation-space dimension of the basis. *)
  file : string;
  bytes : int;
}

type response =
  | Pong
  | Predicted of { means : Linalg.Vec.t; stds : Linalg.Vec.t option }
  | Updated of { rev : int; samples : int }
  | Models of model_info list
  | Stats_payload of {
      uptime_s : float;
      requests : float;
      recovered_updates : float;
          (** Journaled updates replayed at the last restart
              ([bmf_server_recovered_updates_total]). *)
      role : string;  (** ["leader"] or ["follower"]. *)
      journal_seq : int;
          (** Leader: updates committed since start. Follower: the last
              leader commit sequence durably applied or embodied in a
              catch-up snapshot. *)
      shards : int;
          (** Serving shards the daemon runs with ([config.shards]);
              [1] for the classic single-domain loop. *)
      metrics_json : string;
    }
  | Promoted of { was_follower : bool; journal_seq : int }
  | Events_payload of { json : string }
      (** The [Obs.Events] ring as JSON (see [Obs.Events.to_json]). *)
  | Ensemble_predicted of {
      means : Linalg.Vec.t;  (** BMA predictive mean per query point. *)
      within : Linalg.Vec.t;  (** Σᵢ wᵢσᵢ² — within-model variance. *)
      between : Linalg.Vec.t;  (** Σᵢ wᵢ(μᵢ − μ̄)² — model disagreement. *)
    }
  | Ensemble_stats_payload of { json : string }
      (** One [Ensemble.State.to_json] object, or an array of them for
          the all-ensembles query. *)
  | Error of error

(** {2 Replication pushes}

    Unsolicited leader-to-subscriber frames on a replication stream,
    sent after a [Subscribe_req]. Kind bytes occupy a disjoint space
    (32-35) from responses (0 or an error byte) and requests (1-12).
    The id and deadline header fields are 0. *)

type push =
  | Snapshot_chunk of {
      meta : Serving.Artifact.meta;
      rev : int;
      total : int;  (** Whole-artifact byte count (binary codec). *)
      offset : int;
      data : string;
    }
      (** One slice of a catch-up artifact transfer; the follower
          reassembles until [offset + length data = total]. *)
  | Journal_entry of { seq : int; ts : float; entry : string }
      (** One committed update in the exact on-disk WAL framing
          ([u64 len | u64 fnv64 | payload]) — the follower re-verifies
          the checksum with {!Serving.Journal.decode_entry}. [ts] is
          the leader's wall-clock commit time (0. from a v1 peer),
          the basis of the follower's lag-in-seconds gauge. *)
  | Repl_status of { seq : int; snapshots : int; ts : float }
      (** Catch-up complete: the stream is live at leader commit [seq],
          after [snapshots] snapshot transfers. [ts] is the leader's
          wall clock at send (0. from a v1 peer). Receiving one advances
          the follower's applied sequence, so it is only sent when every
          entry up to [seq] has actually been shipped. *)
  | Repl_heartbeat of { seq : int; ts : float }
      (** Periodic liveness beacon: the leader is alive at commit [seq].
          Unlike {!Repl_status} it carries no catch-up promise — the
          follower refreshes its lag gauges but neither acks nor
          advances its applied sequence. *)

val is_push_kind : int -> bool

val max_snapshot_chunk : int
(** Largest [Snapshot_chunk.data] slice that is guaranteed to frame. *)

(** {2 Encoding} *)

val encode_request :
  id:int -> ?deadline_ms:int -> ?trace:int * int -> request -> string
(** A complete frame, length prefix included. [deadline_ms] defaults to
    0 (none). [trace] is a [(trace_id, span_id)] context: with it the
    frame is v2, without it v1. @raise Invalid_argument on a negative
    id, deadline or trace context. *)

val encode_response : id:int -> response -> string

(** {2 Decoding}

    [peek] scans a receive buffer for one complete frame; request and
    response bodies are then decoded separately so the server never
    pays for a body it is about to refuse. *)

type frame = {
  frame_version : int;  (** 1 or 2. *)
  frame_kind : int;
  frame_id : int;
  frame_deadline_ms : int;
  frame_trace : int;
      (** Distributed trace id; 0 on v1 frames, when the sender had no
          trace, or when the wire value did not fit the positive int
          range (advisory data never kills a stream). *)
  frame_span : int;  (** The sender's span id; 0 as above. *)
  body : string;
}

val peek :
  string -> off:int -> [ `Need of int | `Frame of frame * int | `Bad of string ]
(** Examines [s] from [off]. [`Need n]: at least [n] more bytes are
    required. [`Frame (f, next)]: one complete frame, the next frame (if
    any) starts at [next]. [`Bad msg]: the stream is not speaking this
    protocol (bad version, implausible length) — close the connection. *)

val decode_request : frame -> (request, string) result

val decode_response : expect:opcode -> frame -> (response, string) result
(** Decodes a response frame. Error frames decode to [Error _] for any
    [expect]; success bodies are interpreted according to the opcode of
    the request the caller sent. [Subscribe] and [Repl_ack] define no
    success response — only an error frame decodes for them. *)

val encode_push : ?trace:int * int -> push -> string
(** A complete push frame, length prefix included — always v2 (the v2
    push bodies carry timestamps). [trace] tags a [Journal_entry] with
    the originating update's context so the follower's apply span joins
    the same distributed trace. *)

val decode_push : frame -> (push, string) result
(** Decodes v2 bodies and, keyed on [frame_version], the timestamp-less
    v1 layouts (with [ts = 0.]). *)
