(** Micro-batching BMF prediction daemon, optionally sharded over
    multiple cores.

    A [Unix.select] event loop accepts TCP or Unix-domain-socket
    connections speaking the {!Wire} protocol and feeds a {e bounded}
    request queue. A batch window closes [batch_delay_s] after its
    oldest admission (immediately when 0): all admitted [predict]
    requests are grouped by (model, with_std) and every group is served
    by {e one} blocked {!Serving.Predictor} call — basis evaluation and
    the per-query variance solves shard across the [Parallel.Pool] —
    then [update] requests apply in arrival order. Because the
    predictor kernels are row-independent and results are re-split by
    request, batched answers are bit-identical to direct in-process
    calls.

    With [config.shards = 1] (the default) everything runs on the
    single calling domain, exactly the classic daemon — no domains are
    spawned, so the process remains fork-safe. With [shards = N >= 2],
    {!run} spawns [N] worker domains: the calling domain becomes the
    {e acceptor/writer} (accept loops, journal commit point,
    replication fan-out, follower link, HTTP scrape endpoint) and hands
    each accepted client connection to one worker over an internal
    mailbox. Workers run predict kernels against immutable model
    snapshots published by the writer with a single [Atomic] swap
    ({!Serving.Snapshot}); updates are forwarded to the writer and stay
    serialized through the one write-ahead journal. The new snapshot is
    published before the update's acknowledgement is queued, so a
    client that sees the ack observes the new revision from any shard.
    Responses remain bit-identical to direct calls at every shard
    count.

    Consistency model: requests admitted in the same window are served
    against the model revision current at the start of the window;
    updates take effect at the end of it (and are persisted to the
    {!Serving.Store} before the response frame is queued).

    Backpressure is explicit: when the queue is full a [Busy] error
    frame is sent immediately — the daemon never buffers unboundedly.
    Predict batches whose response could not fit in one frame are
    refused with [Bad_request] at admission (see
    {!Wire.max_predict_rows}), and a connection that stops reading its
    responses stops being read once its queued output passes an
    internal bound, so per-connection memory stays bounded even against
    a client that pipelines but never reads.
    Requests carrying a deadline that expires before execution get a
    [Deadline_exceeded] error instead of stale work. On SIGTERM/SIGINT
    ({!install_signal_handlers}) the daemon stops accepting, refuses
    new requests with [Shutting_down], drains in-flight work, flushes
    every connection and returns from {!run}.

    Hot models are cached in an LRU over the registry; [update]
    refreshes the cached entry so later predictions see the new
    revision without a disk round-trip.

    Everything is instrumented through [Obs.Metrics]:
    [bmf_server_requests_total], per-opcode latency histograms
    ([bmf_server_predict_seconds], [bmf_server_predict_var_seconds],
    [bmf_server_update_seconds], [bmf_server_admin_seconds]), the
    [bmf_server_batch_points] gauge, [bmf_server_queue_depth] gauge and
    error counters ([bmf_server_busy_total],
    [bmf_server_deadline_total], [bmf_server_errors_total]). Replication
    publishes [bmf_server_role{role=...}] (1 on the active series),
    [bmf_repl_follower_lag_entries] and
    [bmf_repl_apply_delay_seconds]; accepted updates feed the
    per-model [bmf_calibration_*] gauges (see
    {!Serving.Calibration}). *)

type address = Tcp of string * int | Unix_socket of string

val pp_address : Format.formatter -> address -> unit

val address_to_string : address -> string
(** [tcp://host:port] or [unix://path] — the form {!parse_address}
    accepts and the [Not_leader] error message embeds. *)

val parse_address : string -> address option
(** Inverse of {!address_to_string}. [None] on anything else. *)

type config = {
  queue_capacity : int;
      (** Bounded request queue; a full queue answers [Busy]. 0 refuses
          every predict/update — useful to exercise backpressure. *)
  max_batch : int;
      (** Maximum query points fused into one blocked predictor call;
          larger groups split at request granularity. *)
  cache_capacity : int;  (** LRU model-cache entries (>= 1). *)
  batch_delay_s : float;
      (** A window closes this long after its oldest admission (0 =
          immediately) — a pacing/testing aid (lets deadlines expire
          deterministically in tests). The loop never sleeps past a
          nearer per-request deadline: expired requests are refused
          when they expire, not when the window closes. *)
  durability : Serving.Store.durability;
      (** [`Durable] (the default): every update is write-ahead
          journaled + fsynced before it is applied, and the artifact
          save fsyncs file and directory — an acknowledged update
          survives SIGKILL and power loss. [`Fast] skips the fsyncs
          (benchmarks). *)
  http : address option;
      (** Scrape endpoint: a second listener served from the same
          select loop (no threads) answering [GET /metrics] (Prometheus
          text exposition), [GET /health] / [/healthz] (liveness JSON:
          role, readiness, recovery report, replication lag overall and
          per model, queue depth), [GET /ready] (same JSON, status 503
          until ready — a follower is ready once its initial catch-up
          completed) and [GET /events] (the {!Obs.Events} ring).
          [None] (the default): no HTTP listener. *)
  slow_request_s : float;
      (** Requests slower than this (admission to reply) emit a
          [slow_request] event when the {!Obs.Events} log is on. *)
  shards : int;
      (** Serving shards (>= 1). [1]: the single-domain loop, no
          domains spawned. [N >= 2]: {!run} spawns [N] worker domains
          that serve predict traffic from published model snapshots;
          the queue/backpressure contract ([queue_capacity], [Busy])
          applies per shard. Each shard reports
          [bmf_server_shard_requests_total{shard=...}],
          [bmf_server_shard_queue_depth{shard=...}] and
          [bmf_server_shard_connections{shard=...}]. *)
  http_idle_s : float;
      (** Read deadline for scrape connections (> 0): an HTTP peer that
          has not completed its request within this many seconds is
          dropped and counted in
          [bmf_server_http_idle_drops_total], so stalled or trickling
          scrapers cannot occupy conn-table slots indefinitely. Wire
          clients are unaffected. *)
}

val default_config : config
(** [{ queue_capacity = 256; max_batch = 4096; cache_capacity = 8;
      batch_delay_s = 0.; durability = `Durable; http = None;
      slow_request_s = 0.25; shards = 1; http_idle_s = 5. }] *)

type t

val create : ?config:config -> ?follow:address -> root:string -> address -> t
(** Runs {!Serving.Recovery.recover} over [root] — temp-file sweep,
    full checksum verification, journal-tail replay — then opens the
    write-ahead journal, binds and listens. [Tcp (host, 0)] binds an
    ephemeral port — read it back with {!address}. A stale Unix-socket
    path is unlinked first.

    [~follow] starts the daemon as a {e follower} of the leader at that
    address: it connects (retrying with capped exponential backoff),
    subscribes with its per-model revision vector, catches up via
    snapshot-then-tail and applies every streamed WAL entry under the
    same journal-append-before-apply durability contract as a leader
    update — a follower killed mid-apply recovers with the ordinary
    recovery pass. A follower serves [predict]/[predict_with_variance]/
    [list_models]/[stats] and refuses [update] (and [subscribe]) with
    [Not_leader] naming the leader address. A [Promote] request flips
    it to leader after the buffered stream is applied.
    @raise Unix.Unix_error when binding fails. *)

val role : t -> [ `Leader | `Follower of address ]
(** Current replication role (changes on promote — also surfaced as the
    [role] field of the wire [stats] payload). *)

val journal_seq : t -> int
(** Leader: updates committed since start. Follower: last leader commit
    sequence durably applied or subsumed by a catch-up snapshot. *)

val started_s : t -> float
(** Wall-clock start time (seconds since the epoch) — human-facing
    display only. All internal timing (deadlines, drain grace, uptime)
    runs on the monotonic {!Obs.Clock} and is immune to NTP steps. *)

val recovery : t -> Serving.Recovery.report
(** What {!create}'s recovery pass found and replayed (also surfaced as
    [recovered_updates] in the wire [stats] response and the
    [bmf_server_recovered_updates_total] metric). *)

val address : t -> address
(** The actually-bound address (ephemeral TCP port resolved). *)

val http_address : t -> address option
(** The actually-bound scrape address when [config.http] was set
    (ephemeral TCP port resolved), [None] otherwise. *)

val stop : t -> unit
(** Request graceful shutdown: async-signal-safe and callable from any
    domain; {!run} drains and returns. Idempotent. *)

val stopping : t -> bool

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT invoke {!stop}; SIGPIPE is ignored. *)

val run : t -> unit
(** Serve until {!stop}. With [config.shards >= 2] this spawns the
    worker domains on entry and joins them before returning. Returns
    after the drain completed — every shard quiesced (in-flight work
    finished or refused, connections flushed) — and every socket is
    closed; the listening socket (and Unix socket path) are
    released. *)
