(** N-fold cross-validation (paper Sec. IV-D).

    The data set is partitioned into [n] non-overlapping groups; each run
    trains on [n - 1] groups and scores on the held-out one, and the final
    score is the average of the [n] runs. *)

type fold = { train : int array; test : int array }
(** Index sets into the original data set; disjoint, and together they
    cover [0 .. size - 1]. *)

val folds : ?shuffle:Rng.t -> n:int -> size:int -> unit -> fold list
(** [folds ~n ~size ()] partitions [0 .. size - 1] into [min n size]
    folds whose test groups differ in size by at most one — the
    remainder of [size mod n] is spread round-robin across the first
    folds, and [n > size] clamps to leave-one-out, so no fold is ever
    empty. With [shuffle] the indices are permuted first (recommended).
    @raise Invalid_argument unless [n >= 2] and [size >= 2]. *)

val score :
  ?shuffle:Rng.t ->
  n:int ->
  size:int ->
  (train:int array -> test:int array -> float) ->
  float
(** [score ~n ~size run] averages [run] over the folds. Folds whose run
    returns a non-finite score are skipped explicitly (the divisor
    shrinks with them) instead of being averaged into the total.
    @raise Invalid_argument if every fold scores non-finite. *)

val select :
  ?shuffle:Rng.t ->
  n:int ->
  size:int ->
  candidates:'a list ->
  ('a -> train:int array -> test:int array -> float) ->
  'a * float
(** Evaluates every candidate on the same folds and returns the one with
    the smallest average score over its finite folds (ties keep the
    earliest candidate). Candidates with no finite fold score at all are
    excluded from the ranking.
    @raise Invalid_argument on an empty candidate list, or when every
    candidate scores non-finite on every fold. *)
