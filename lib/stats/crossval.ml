type fold = { train : int array; test : int array }

let folds ?shuffle ~n ~size () =
  if n < 2 then invalid_arg "Crossval.folds: need at least 2 folds";
  if size < 2 then invalid_arg "Crossval.folds: need at least 2 data points";
  (* Asking for more folds than points degenerates gracefully to
     leave-one-out instead of failing: the clamp keeps every test group
     non-empty. *)
  let n = Stdlib.min n size in
  let order =
    match shuffle with
    | Some rng -> Rng.permutation rng size
    | None -> Array.init size (fun i -> i)
  in
  (* Fold f gets indices at positions f, f + n, f + 2n, ... of the order,
     which spreads the remainder of [size mod n] across the first folds:
     test sizes differ by at most one and no fold is ever empty. *)
  let build f =
    let test = ref [] and train = ref [] in
    for pos = size - 1 downto 0 do
      if pos mod n = f then test := order.(pos) :: !test
      else train := order.(pos) :: !train
    done;
    { train = Array.of_list !train; test = Array.of_list !test }
  in
  List.init n build

(* Averaging treats non-finite fold scores explicitly: a fold whose run
   returns NaN/inf is skipped (and the divisor shrinks with it) rather
   than silently poisoning the mean; if every fold is non-finite there
   is no meaningful score and we raise. *)
let finite_mean ~what scores =
  let total, counted =
    List.fold_left
      (fun (total, counted) s ->
        if Float.is_finite s then (total +. s, counted + 1)
        else (total, counted))
      (0., 0) scores
  in
  if counted = 0 then
    invalid_arg (what ^ ": every fold produced a non-finite score");
  total /. float_of_int counted

let score ?shuffle ~n ~size run =
  let fs = folds ?shuffle ~n ~size () in
  finite_mean ~what:"Crossval.score"
    (List.map (fun { train; test } -> run ~train ~test) fs)

let select ?shuffle ~n ~size ~candidates run =
  if candidates = [] then invalid_arg "Crossval.select: no candidates";
  let fs = folds ?shuffle ~n ~size () in
  (* Mean over the finite folds only; a candidate with no finite fold at
     all is excluded from the ranking entirely. *)
  let evaluate c =
    let total = ref 0. and counted = ref 0 in
    List.iter
      (fun { train; test } ->
        let s = run c ~train ~test in
        if Float.is_finite s then begin
          total := !total +. s;
          incr counted
        end)
      fs;
    if !counted = 0 then None else Some (!total /. float_of_int !counted)
  in
  let best =
    List.fold_left
      (fun best c ->
        match (evaluate c, best) with
        | None, best -> best
        | Some s, Some (_, bs) when s >= bs -> best
        | Some s, _ -> Some (c, s))
      None candidates
  in
  match best with
  | Some b -> b
  | None ->
      invalid_arg
        "Crossval.select: every candidate scored non-finite on every fold"
