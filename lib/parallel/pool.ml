(* Chunked Domains work pool. Design notes:

   - Determinism first: batches return results slotted by input index
     and the callers merge in index order, so parallel runs are
     bit-identical to sequential ones. Nothing here depends on task
     completion order.
   - The submitting domain helps drain the queue rather than blocking,
     so `jobs = 2` really is two lanes (one worker + the caller), and a
     pool is useful even while the queue is short.
   - No work stealing, no per-task allocation beyond one closure: the
     hot paths submit a handful of coarse chunks, not thousands of
     fine-grained tasks. *)

let m_tasks =
  Obs.Metrics.counter ~help:"Tasks executed by the Domains pool"
    "bmf_pool_tasks_total"

let m_queue_seconds =
  Obs.Metrics.histogram
    ~help:"Pool task queue latency, submit to start (seconds)"
    "bmf_pool_queue_seconds"

let m_batches =
  Obs.Metrics.counter ~help:"Task batches submitted to the Domains pool"
    "bmf_pool_batches_total"

type task = { submitted_s : float; run : unit -> unit }

type t = {
  lanes : int; (* workers + the submitting domain *)
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* True on a pool worker domain: batches submitted from inside a task
   run inline so the pool cannot wait on itself. *)
let on_worker_key = Domain.DLS.new_key (fun () -> false)

let on_worker () = Domain.DLS.get on_worker_key

let inline_in_domain () = Domain.DLS.set on_worker_key true

let exec task =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.inc m_tasks;
    Obs.Metrics.observe m_queue_seconds
      (Float.max 0. (Obs.Clock.now_s () -. task.submitted_s))
  end;
  task.run ()

let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.mu
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mu (* stop, fully drained *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mu;
    exec task;
    if Obs.Trace.enabled () then Obs.Trace.flush_lane ();
    worker_loop t
  end

let worker_main t () =
  Domain.DLS.set on_worker_key true;
  Fun.protect ~finally:Obs.Trace.flush_lane (fun () -> worker_loop t)

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let t =
    {
      lanes = jobs;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker_main t));
  t

let jobs t = t.lanes

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let try_pop t =
  Mutex.lock t.mu;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mu;
  task

let reraise_first failures =
  let n = Array.length failures in
  let rec scan i =
    if i < n then
      match failures.(i) with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> scan (i + 1)
  in
  scan 0

let run_on t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if t.lanes <= 1 || n <= 1 || t.stop || on_worker () then
    Array.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let left = Atomic.make n in
    let done_mu = Mutex.create () in
    let done_cond = Condition.create () in
    let finish () =
      if Atomic.fetch_and_add left (-1) = 1 then begin
        Mutex.lock done_mu;
        Condition.signal done_cond;
        Mutex.unlock done_mu
      end
    in
    let submitted_s = if Obs.Metrics.enabled () then Obs.Clock.now_s () else 0. in
    let task i =
      {
        submitted_s;
        run =
          (fun () ->
            (try results.(i) <- Some (thunks.(i) ())
             with e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            finish ());
      }
    in
    Obs.Metrics.inc m_batches;
    Mutex.lock t.mu;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    (* the submitting domain is a lane too: help drain, then wait for
       tasks still running on workers *)
    let rec help () =
      match try_pop t with
      | Some task ->
          exec task;
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_mu;
    while Atomic.get left > 0 do
      Condition.wait done_cond done_mu
    done;
    Mutex.unlock done_mu;
    reraise_first failures;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every slot resolved or re-raised above *))
      results
  end

let map_on t f xs = run_on t (Array.map (fun x () -> f x) xs)

let chunk_ranges ~lanes ~grain n =
  let grain = Stdlib.max 1 grain in
  let chunks = Stdlib.max 1 (Stdlib.min lanes (n / grain)) in
  let base = n / chunks and rem = n mod chunks in
  List.init chunks (fun c ->
      let lo = (c * base) + Stdlib.min c rem in
      let hi = lo + base + (if c < rem then 1 else 0) in
      (lo, hi))

let chunks_on t ?(grain = 1) ~n f =
  if n > 0 then
    if t.lanes <= 1 || n <= grain || t.stop || on_worker () then f ~lo:0 ~hi:n
    else
      let ranges = chunk_ranges ~lanes:t.lanes ~grain n in
      ignore
        (run_on t
           (Array.of_list
              (List.map (fun (lo, hi) () -> f ~lo ~hi) ranges)))

(* ------------------------------------------------------------------ *)
(* Shared default pool.                                               *)

let jobs_cap = 8

let env_jobs () =
  match Sys.getenv_opt "BMF_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let auto_jobs () =
  Stdlib.min jobs_cap (Stdlib.max 1 (Domain.recommended_domain_count ()))

let requested = ref 0 (* 0 = automatic *)

let default_jobs () =
  if !requested >= 1 then !requested
  else match env_jobs () with Some j -> j | None -> auto_jobs ()

let shared : t option ref = ref None

let shutdown_shared () =
  match !shared with
  | Some t ->
      shared := None;
      shutdown t
  | None -> ()

let () = at_exit shutdown_shared

let set_default_jobs j =
  if j < 0 then invalid_arg "Pool.set_default_jobs: negative job count";
  requested := j;
  (* drop a mis-sized pool; the next use rebuilds it lazily *)
  match !shared with
  | Some t when t.lanes <> default_jobs () -> shutdown_shared ()
  | _ -> ()

let shared_pool () =
  let want = default_jobs () in
  match !shared with
  | Some t when t.lanes = want -> t
  | existing ->
      (match existing with Some _ -> shutdown_shared () | None -> ());
      let t = create ~jobs:want in
      shared := Some t;
      t

let run thunks =
  if default_jobs () <= 1 || Array.length thunks <= 1 || on_worker () then
    Array.map (fun f -> f ()) thunks
  else run_on (shared_pool ()) thunks

let map f xs = run (Array.map (fun x () -> f x) xs)

let parallel_chunks ?(grain = 1) ~n f =
  if n > 0 then
    if default_jobs () <= 1 || n <= grain || on_worker () then f ~lo:0 ~hi:n
    else chunks_on (shared_pool ()) ~grain ~n f
