(** Fixed-size OCaml 5 Domains work pool with deterministic ordered
    results.

    The pool runs batches of independent thunks across a fixed set of
    worker domains plus the submitting domain (which helps drain the
    queue instead of idling). Scheduling is a plain shared queue — no
    work stealing — and every batch API returns results slotted by input
    index, so reductions performed over those results in index order are
    bit-identical to a sequential run regardless of how the work was
    interleaved: the ordering of floating-point accumulation never
    depends on the number of domains.

    Exceptions raised inside a task are captured with their backtrace
    and re-raised on the submitting domain once the batch has fully
    drained; when several tasks fail, the lowest-index failure wins
    (again: deterministic).

    Observability: each worker domain records trace spans into its own
    [Obs.Trace] lane, flushed after every task, so `--trace` output
    shows one timeline row per domain. The pool also feeds
    [bmf_pool_tasks_total] and the [bmf_pool_queue_seconds]
    submit-to-start latency histogram when metrics collection is on.

    Nested use is safe: a batch submitted from inside a pool task runs
    sequentially on the calling domain, so the pool can never deadlock
    on itself. *)

type t

val create : jobs:int -> t
(** [create ~jobs] builds a pool with [jobs] parallel lanes: [jobs - 1]
    worker domains are spawned, the submitting domain is the last lane.
    [jobs = 1] spawns nothing and every batch runs sequentially.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
(** Parallel lanes, including the submitting domain. *)

val shutdown : t -> unit
(** Drain, stop and join every worker domain (their trace lanes are
    flushed on exit). Idempotent; the pool must not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

val run_on : t -> (unit -> 'a) array -> 'a array
(** Execute every thunk and return their results in input order. *)

val map_on : t -> ('a -> 'b) -> 'a array -> 'b array
(** [run_on] over [fun () -> f x]; one task per element. *)

val chunks_on : t -> ?grain:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** Cover [0, n) with contiguous chunks [f ~lo ~hi] (half-open). At most
    [jobs] chunks are formed and none smaller than [grain] (default 1),
    so small [n] degrades gracefully to a single sequential call. *)

(** {2 The shared default pool}

    Library hot paths (CV fold sweeps, blocked design matrices, batch
    prediction) draw from one lazily-created process-wide pool so the
    [-j] flag set once at the CLI reaches every layer. The pool is
    resized on the next use after {!set_default_jobs} and shut down at
    process exit. *)

val default_jobs : unit -> int
(** Effective lane count for the shared pool: the last
    {!set_default_jobs} value, else the [BMF_JOBS] environment variable,
    else [Domain.recommended_domain_count ()] capped at 8. *)

val set_default_jobs : int -> unit
(** Override the shared lane count ([-j N]). [0] restores automatic
    selection. @raise Invalid_argument when negative. *)

val run : (unit -> 'a) array -> 'a array
(** {!run_on} on the shared pool; sequential when {!default_jobs} is 1. *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** {!map_on} on the shared pool. *)

val parallel_chunks : ?grain:int -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** {!chunks_on} on the shared pool. *)

val inline_in_domain : unit -> unit
(** Mark the calling domain so every batch it submits — to any pool,
    including the shared default — runs sequentially inline, exactly as
    if submitted from inside a pool task. Irreversible for the domain's
    lifetime. Serving shards use this: each shard domain owns one core,
    so fanning kernels back out through the shared pool would only add
    queue contention, and inline execution keeps per-shard results
    bit-identical to a sequential run. *)
