(** The experiment engine: prepares the two-stage modeling problem for a
    benchmark circuit and runs the paper's comparisons.

    Protocol per (circuit, metric), following Sec. V:
    + draw [early_samples] schematic Monte Carlo samples and fit the
      early-stage model — with OMP (as in the paper) or least squares;
    + map its coefficients onto the layout basis (prior mapping +
      missing priors);
    + per repeat: draw a fresh training pool and test set post-layout,
      fit every method at every training-set size (nested prefixes of
      the pool), and record eq. 59 test errors;
    + report mean and standard deviation over repeats.

    Everything is deterministic in [Config.seed]. *)

type early_fit = Omp_early | Least_squares_early

type prepared = {
  tb : Circuit.Testbench.t;
  metric : int;
  late_basis : Polybasis.Basis.t;
  early : float option array;
  early_error_pct : float;
      (** Test error of the early-stage model on held-out schematic
          samples (context for the prior quality). *)
  early_terms : int;  (** Nonzero coefficients of the early model. *)
}

val prepare :
  ?early_fit:early_fit -> Config.t -> Circuit.Testbench.t -> metric:int -> prepared
(** Builds the prior. Default [early_fit] is [Omp_early] (the paper's
    choice). *)

type cell = { mean_pct : float; std_pct : float }

type accuracy = {
  circuit : string;
  metric : string;
  sample_sizes : int list;
  methods : Methods.t list;
  cells : cell array array;  (** [row = sample size][col = method]. *)
  repeats : int;
}

val accuracy :
  ?progress:(string -> unit) ->
  ?methods:Methods.t list ->
  Config.t ->
  prepared ->
  accuracy
(** The Tables I-III / V experiment. [methods] defaults to the paper's
    four. [progress] receives one line per (repeat, size); every progress
    line is also mirrored into the observability layer (an instant trace
    event in category ["runner"] plus the [bmf_runner_progress_total]
    counter), so traces capture experiment progress even when the
    callback is the silent default. *)

type cost_entry = {
  method_ : Methods.t;
  samples : int;
  errors_pct : (string * float) list;  (** Per metric name. *)
  sim_hours : float;  (** Declared simulation cost (DESIGN.md Sec. 4). *)
  fit_seconds : float;  (** Measured wall-clock fitting time. *)
  total_hours : float;
}

val cost_comparison :
  ?progress:(string -> unit) ->
  Config.t ->
  Circuit.Testbench.t ->
  metrics:int list ->
  omp_samples:int ->
  bmf_samples:int ->
  cost_entry list
(** The Tables IV / VI experiment: OMP at its required sample count
    versus BMF-PS at its reduced one; fitting cost is summed over
    [metrics]. *)

type solver_timing = {
  samples : int;
  omp_seconds : float;
  bmf_direct_seconds : float;
  bmf_fast_seconds : float;
}

val solver_timings :
  ?progress:(string -> unit) ->
  ?with_direct:bool ->
  Config.t ->
  prepared ->
  solver_timing list
(** The Fig. 5 / Fig. 8 experiment: fitting cost versus training-set
    size for OMP, BMF-PS with the conventional Cholesky solver, and
    BMF-PS with the fast solver. [with_direct] = false skips the
    Cholesky column (paper Fig. 8: "computationally infeasible" at SRAM
    scale); its entries are then [nan]. *)
