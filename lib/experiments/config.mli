(** Experiment configuration: problem sizes, repeat counts and method
    settings for regenerating the paper's tables and figures.

    The paper's exact protocol (Sec. V): schematic model from 3000 MC
    samples; post-layout training sets of 100..900 samples; 300-sample
    test sets; errors averaged over 50 repeated runs. [default] keeps
    that protocol at reduced circuit scale and 3 repeats so the whole
    suite runs in minutes; [quick] shrinks further for smoke runs;
    [paper] restores 50 repeats and the full sample sweep (slow). *)

type t = {
  seed : int;  (** Master seed; every result is a pure function of it. *)
  repeats : int;  (** Paper: 50. *)
  sample_sizes : int list;  (** Paper: 100, 200, ..., 900. *)
  test_samples : int;  (** Paper: 300. *)
  early_samples : int;  (** Paper: 3000. *)
  cv_folds : int;  (** Folds for all cross-validation. *)
  omp_max_terms_fraction : float;
      (** OMP's CV search caps the support at this fraction of the
          training-set size. *)
  ro : Circuit.Ring_oscillator.config;
  sram : Circuit.Sram.config;
}

val default : t

val quick : t

val paper : t

val scale_names : string list
(** The canonical scale names, ["quick"; "default"; "paper"]. *)

val of_scale_name : string -> t option
(** Looks a configuration up by scale name — the single selection point
    shared by the CLI and the benchmark harness. *)

val with_repeats : t -> int -> t

val with_seed : t -> int -> t

val omp_max_terms : t -> k:int -> int
(** The OMP support cap for a training set of size [k] (at least 5). *)

val pp : Format.formatter -> t -> unit
