type early_fit = Omp_early | Least_squares_early

type prepared = {
  tb : Circuit.Testbench.t;
  metric : int;
  late_basis : Polybasis.Basis.t;
  early : float option array;
  early_error_pct : float;
  early_terms : int;
}

(* Progress sink: every runner callback lands in the observability layer
   (an instant trace event plus a counter) and is then forwarded to the
   caller's callback. The default callback is silent, but the obs leg
   still fires, so `--trace` captures experiment progress with no
   verbosity flag. *)
let m_progress =
  Obs.Metrics.counter ~help:"Runner progress events emitted"
    "bmf_runner_progress_total"

let observe_progress msg =
  Obs.Trace.instant ~cat:"runner" msg;
  Obs.Metrics.inc m_progress

let silent (_ : string) = ()

let route progress msg =
  observe_progress msg;
  progress msg

let prefix_rows g k =
  let _, m = Linalg.Mat.dims g in
  Linalg.Mat.init k m (fun i j -> Linalg.Mat.get g i j)

let prepare ?(early_fit = Omp_early) (cfg : Config.t) tb ~metric =
  let rng = Stats.Rng.create (cfg.Config.seed + (metric * 613)) in
  let stage = Circuit.Stage.Schematic in
  let xs, f = Circuit.Testbench.draw_dataset tb ~stage ~metric ~rng ~k:cfg.early_samples () in
  let basis = Circuit.Testbench.schematic_basis tb in
  let g = Polybasis.Basis.design_matrix basis xs in
  let m = Polybasis.Basis.size basis in
  let coeffs =
    match early_fit with
    | Least_squares_early ->
        if cfg.early_samples < m then
          invalid_arg "Runner.prepare: too few early samples for least squares";
        Regression.Least_squares.fit_design ~g ~f
    | Omp_early ->
        let max_terms = Stdlib.min m (cfg.early_samples / 3) in
        (Regression.Omp.fit_design ~rng ~g ~f
           (Regression.Omp.Cross_validation
              { folds = cfg.cv_folds; max_terms }))
          .Regression.Omp.coeffs
  in
  (* held-out check of the early model *)
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage ~metric ~rng ~k:cfg.test_samples ()
  in
  let g_t = Polybasis.Basis.design_matrix basis xs_t in
  let early_error_pct =
    100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t
  in
  let early_terms =
    Array.fold_left
      (fun acc c -> if Float.abs c > 1e-12 then acc + 1 else acc)
      0 coeffs
  in
  let late_basis, early =
    Circuit.Testbench.layout_basis_with_prior tb ~early_coeffs:coeffs
  in
  { tb; metric; late_basis; early; early_error_pct; early_terms }

type cell = { mean_pct : float; std_pct : float }

type accuracy = {
  circuit : string;
  metric : string;
  sample_sizes : int list;
  methods : Methods.t list;
  cells : cell array array;
  repeats : int;
}

(* One repeat: draw pool + test set, then evaluate every (K, method). *)
let run_repeat ~progress ~(cfg : Config.t) ~(prep : prepared) ~methods ~rng
    ~errors ~rep =
  let tb = prep.tb and metric = prep.metric in
  let k_max = List.fold_left Stdlib.max 1 cfg.Config.sample_sizes in
  let stage = Circuit.Stage.Layout in
  let xs_pool, f_pool =
    Circuit.Testbench.draw_dataset tb ~stage ~metric ~rng ~k:k_max ()
  in
  let g_pool = Polybasis.Basis.design_matrix prep.late_basis xs_pool in
  let xs_t, f_t =
    Circuit.Testbench.draw_dataset tb ~stage ~metric ~rng ~k:cfg.test_samples ()
  in
  let g_t = Polybasis.Basis.design_matrix prep.late_basis xs_t in
  List.iteri
    (fun ki k ->
      let g = prefix_rows g_pool k in
      let f = Array.sub f_pool 0 k in
      let problem =
        {
          Methods.g;
          f;
          early = prep.early;
          cv_folds = cfg.cv_folds;
          omp_max_terms = Config.omp_max_terms cfg ~k;
        }
      in
      List.iteri
        (fun mi method_ ->
          let coeffs = Methods.fit ~rng method_ problem in
          let err =
            100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t
          in
          errors.(ki).(mi) <- err :: errors.(ki).(mi))
        methods;
      progress
        (Printf.sprintf "%s/%s repeat %d K=%d done"
           tb.Circuit.Testbench.name
           tb.Circuit.Testbench.metrics.(metric)
           rep k))
    cfg.sample_sizes

let accuracy ?(progress = silent) ?(methods = Methods.paper_methods)
    (cfg : Config.t) (prep : prepared) =
  let progress = route progress in
  let n_sizes = List.length cfg.Config.sample_sizes in
  let n_methods = List.length methods in
  let errors = Array.init n_sizes (fun _ -> Array.make n_methods []) in
  let master = Stats.Rng.create (cfg.seed + 17 + (prep.metric * 7919)) in
  for rep = 1 to cfg.repeats do
    let rng = Stats.Rng.split master in
    run_repeat ~progress ~cfg ~prep ~methods ~rng ~errors ~rep
  done;
  let cells =
    Array.map
      (Array.map (fun samples ->
           let v = Array.of_list samples in
           {
             mean_pct = Stats.Describe.mean v;
             std_pct = Stats.Describe.std v;
           }))
      errors
  in
  {
    circuit = prep.tb.Circuit.Testbench.name;
    metric = prep.tb.Circuit.Testbench.metrics.(prep.metric);
    sample_sizes = cfg.sample_sizes;
    methods;
    cells;
    repeats = cfg.repeats;
  }

type cost_entry = {
  method_ : Methods.t;
  samples : int;
  errors_pct : (string * float) list;
  sim_hours : float;
  fit_seconds : float;
  total_hours : float;
}

let cost_comparison ?(progress = silent) (cfg : Config.t) tb ~metrics
    ~omp_samples ~bmf_samples =
  let progress = route progress in
  let entry method_ samples =
    let fit_seconds = ref 0. in
    let errors =
      List.map
        (fun metric ->
          progress
            (Printf.sprintf "cost: %s K=%d metric %s"
               (Methods.name method_) samples
               tb.Circuit.Testbench.metrics.(metric));
          let prep = prepare cfg tb ~metric in
          let rng = Stats.Rng.create (cfg.seed + 31 + metric) in
          let xs, f =
            Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
              ~metric ~rng ~k:samples ()
          in
          let g = Polybasis.Basis.design_matrix prep.late_basis xs in
          let xs_t, f_t =
            Circuit.Testbench.draw_dataset tb ~stage:Circuit.Stage.Layout
              ~metric ~rng ~k:cfg.test_samples ()
          in
          let g_t = Polybasis.Basis.design_matrix prep.late_basis xs_t in
          let problem =
            {
              Methods.g;
              f;
              early = prep.early;
              cv_folds = cfg.cv_folds;
              omp_max_terms = Config.omp_max_terms cfg ~k:samples;
            }
          in
          let coeffs, seconds = Methods.fit_timed ~rng method_ problem in
          fit_seconds := !fit_seconds +. seconds;
          ( tb.Circuit.Testbench.metrics.(metric),
            100. *. Linalg.Vec.rel_error (Linalg.Mat.gemv g_t coeffs) f_t ))
        metrics
    in
    let sim_hours =
      Circuit.Testbench.simulation_hours tb ~stage:Circuit.Stage.Layout
        ~samples
    in
    {
      method_;
      samples;
      errors_pct = errors;
      sim_hours;
      fit_seconds = !fit_seconds;
      total_hours = sim_hours +. (!fit_seconds /. 3600.);
    }
  in
  [ entry Methods.Omp omp_samples; entry Methods.Bmf_ps bmf_samples ]

type solver_timing = {
  samples : int;
  omp_seconds : float;
  bmf_direct_seconds : float;
  bmf_fast_seconds : float;
}

let solver_timings ?(progress = silent) ?(with_direct = true)
    (cfg : Config.t) (prep : prepared) =
  let progress = route progress in
  let rng = Stats.Rng.create (cfg.Config.seed + 47 + prep.metric) in
  let k_max = List.fold_left Stdlib.max 1 cfg.sample_sizes in
  let xs_pool, f_pool =
    Circuit.Testbench.draw_dataset prep.tb ~stage:Circuit.Stage.Layout
      ~metric:prep.metric ~rng ~k:k_max ()
  in
  let g_pool = Polybasis.Basis.design_matrix prep.late_basis xs_pool in
  List.map
    (fun k ->
      progress (Printf.sprintf "solver timing K=%d" k);
      let g = prefix_rows g_pool k in
      let f = Array.sub f_pool 0 k in
      let problem =
        {
          Methods.g;
          f;
          early = prep.early;
          cv_folds = cfg.cv_folds;
          omp_max_terms = Config.omp_max_terms cfg ~k;
        }
      in
      let _, omp_seconds = Methods.fit_timed ~rng Methods.Omp problem in
      let time_bmf solver =
        let t0 = Unix.gettimeofday () in
        let config = { Bmf.Fusion.default_config with
                       solver = Some solver; cv_folds = cfg.cv_folds } in
        let _ =
          Bmf.Fusion.fit_design ~rng ~config ~early:prep.early ~g ~f
            Bmf.Fusion.Bmf_ps
        in
        Unix.gettimeofday () -. t0
      in
      let bmf_fast_seconds = time_bmf Bmf.Map_solver.Fast_woodbury in
      let bmf_direct_seconds =
        if with_direct then time_bmf Bmf.Map_solver.Direct_cholesky else nan
      in
      { samples = k; omp_seconds; bmf_direct_seconds; bmf_fast_seconds })
    cfg.sample_sizes
