type t = {
  seed : int;
  repeats : int;
  sample_sizes : int list;
  test_samples : int;
  early_samples : int;
  cv_folds : int;
  omp_max_terms_fraction : float;
  ro : Circuit.Ring_oscillator.config;
  sram : Circuit.Sram.config;
}

let default =
  {
    seed = 20130602;
    (* DAC 2013 *)
    repeats = 3;
    sample_sizes = [ 100; 200; 300; 400; 500; 600; 700; 800; 900 ];
    test_samples = 300;
    early_samples = 3000;
    cv_folds = 4;
    omp_max_terms_fraction = 0.4;
    ro = Circuit.Ring_oscillator.default_config;
    sram = Circuit.Sram.default_config;
  }

let quick =
  {
    default with
    repeats = 2;
    sample_sizes = [ 100; 300; 900 ];
    test_samples = 200;
    early_samples = 1500;
    ro = { Circuit.Ring_oscillator.default_config with stages = 7 };
    sram = { Circuit.Sram.default_config with cells = 60 };
  }

let paper =
  {
    default with
    repeats = 50;
    ro = Circuit.Ring_oscillator.paper_scale_config;
    sram = Circuit.Sram.paper_scale_config;
  }

let scales = [ ("quick", quick); ("default", default); ("paper", paper) ]

let scale_names = List.map fst scales

let of_scale_name name = List.assoc_opt name scales

let with_repeats t repeats =
  if repeats < 1 then invalid_arg "Config.with_repeats: need at least 1";
  { t with repeats }

let with_seed t seed = { t with seed }

let omp_max_terms t ~k =
  Stdlib.max 5 (int_of_float (t.omp_max_terms_fraction *. float_of_int k))

let pp fmt t =
  Format.fprintf fmt
    "seed=%d repeats=%d sizes=[%s] test=%d early=%d cv_folds=%d" t.seed
    t.repeats
    (String.concat "," (List.map string_of_int t.sample_sizes))
    t.test_samples t.early_samples t.cv_folds
