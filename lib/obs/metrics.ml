type payload =
  | Counter of { mutable total : float }
  | Gauge of { mutable value : float; mutable seen : bool }
  | Hist of {
      bounds : float array; (* strictly increasing upper bounds *)
      counts : int array; (* length = Array.length bounds + 1; last = +Inf *)
      mutable sum : float;
      mutable count : int;
    }

type metric = { name : string; help : string; payload : payload }

type counter = metric

type gauge = metric

type histogram = metric

let on = ref false

let enable () = on := true

let disable () = on := false

let enabled () = !on

(* One lock serializes every mutation: recording can come from worker
   domains (the Domains pool runs instrumented kernels in parallel). The
   disabled path never touches it, so the default cost stays a single
   load-and-branch. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Registry: lookup table plus insertion order for stable exposition. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let order : metric list ref = ref [] (* newest first *)

let valid_name name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let register name help payload =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
      if kind_label m.payload <> kind_label payload then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_label m.payload));
      m
  | None ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
      let m = { name; help; payload } in
      Hashtbl.add registry name m;
      order := m :: !order;
      m

let counter ?(help = "") name = register name help (Counter { total = 0. })

let gauge ?(help = "") name = register name help (Gauge { value = 0.; seen = false })

let latency_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
    5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.;
  |]

let histogram ?(help = "") ?(buckets = latency_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  register name help
    (Hist
       {
         bounds = Array.copy buckets;
         counts = Array.make (Array.length buckets + 1) 0;
         sum = 0.;
         count = 0;
       })

let inc ?(by = 1.) m =
  if !on then
    locked @@ fun () ->
    match m.payload with Counter c -> c.total <- c.total +. by | _ -> ()

let set m v =
  if !on then
    locked @@ fun () ->
    match m.payload with
    | Gauge g ->
        g.value <- v;
        g.seen <- true
    | _ -> ()

let observe m v =
  if !on then
    locked @@ fun () ->
    match m.payload with
    | Hist h ->
        let n = Array.length h.bounds in
        let i = ref 0 in
        while !i < n && v > h.bounds.(!i) do
          incr i
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.sum <- h.sum +. v;
        h.count <- h.count + 1
    | _ -> ()

let time m f =
  if not !on then f ()
  else begin
    let t0 = Clock.now_s () in
    Fun.protect ~finally:(fun () -> observe m (Clock.now_s () -. t0)) f
  end

let counter_value m = match m.payload with Counter c -> c.total | _ -> 0.

let gauge_value m = match m.payload with Gauge g -> g.value | _ -> 0.

let gauge_is_set m = match m.payload with Gauge g -> g.seen | _ -> false

let histogram_buckets m =
  match m.payload with
  | Hist h ->
      Array.init
        (Array.length h.counts)
        (fun i ->
          let bound =
            if i < Array.length h.bounds then h.bounds.(i) else infinity
          in
          (bound, h.counts.(i)))
  | _ -> [||]

let histogram_sum m = match m.payload with Hist h -> h.sum | _ -> 0.

let histogram_count m = match m.payload with Hist h -> h.count | _ -> 0

let find_gauge name =
  match Hashtbl.find_opt registry name with
  | Some ({ payload = Gauge _; _ } as m) -> Some m
  | _ -> None

let find_counter name =
  match Hashtbl.find_opt registry name with
  | Some ({ payload = Counter _; _ } as m) -> Some m
  | _ -> None

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m.payload with
      | Counter c -> c.total <- 0.
      | Gauge g ->
          g.value <- 0.;
          g.seen <- false
      | Hist h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.count <- 0)
    registry

let all () = List.rev !order

(* ------------------------------------------------------------------ *)
(* Exposition. *)

let fmt_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_prometheus () =
  let buf = Buffer.create 2048 in
  List.iter
    (fun m ->
      if m.help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.name (kind_label m.payload));
      (match m.payload with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" m.name (fmt_float c.total))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" m.name (fmt_float g.value))
      | Hist h ->
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m.name
                   (fmt_float bound) !cum))
            h.bounds;
          cum := !cum + h.counts.(Array.length h.bounds);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m.name !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" m.name (fmt_float h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" m.name h.count)))
    (all ());
  Buffer.contents buf

let json_num f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else
    Printf.sprintf "\"%s\""
      (if Float.is_nan f then "nan" else if f > 0. then "inf" else "-inf")

let to_json () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\"," m.name
           (kind_label m.payload));
      (match m.payload with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "\"value\":%s" (json_num c.total))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "\"value\":%s" (json_num g.value))
      | Hist h ->
          Buffer.add_string buf "\"buckets\":[";
          Array.iteri
            (fun j bound ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%s,\"count\":%d}"
                   (if j < Array.length h.bounds then json_num bound
                    else "\"inf\"")
                   h.counts.(j)))
            (Array.append h.bounds [| infinity |]);
          Buffer.add_string buf
            (Printf.sprintf "],\"sum\":%s,\"count\":%d" (json_num h.sum)
               h.count));
      Buffer.add_char buf '}')
    (all ());
  Buffer.add_string buf "]}";
  Buffer.contents buf
