type payload =
  | Counter of { mutable total : float }
  | Gauge of { mutable value : float; mutable seen : bool }
  | Hist of {
      bounds : float array; (* strictly increasing upper bounds *)
      counts : int array; (* length = Array.length bounds + 1; last = +Inf *)
      mutable sum : float;
      mutable count : int;
    }

type metric = {
  name : string;
  labels : (string * string) list; (* sorted by label name *)
  help : string;
  payload : payload;
}

type counter = metric

type gauge = metric

type histogram = metric

let on = ref false

let enable () = on := true

let disable () = on := false

let enabled () = !on

(* One lock serializes every mutation: recording can come from worker
   domains (the Domains pool runs instrumented kernels in parallel). The
   disabled path never touches it, so the default cost stays a single
   load-and-branch. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let valid_name name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

(* Map an arbitrary string onto the Prometheus metric-name charset:
   every invalid byte becomes '_', and a leading digit gets an
   underscore prefix. Empty input becomes "_". *)
let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        match c with
        (* digits are kept everywhere; a leading one is prefixed below *)
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' | '0' .. '9' -> ignore i
        | _ -> Bytes.set b i '_')
      b;
    let s' = Bytes.to_string b in
    match s'.[0] with '0' .. '9' -> "_" ^ s' | _ -> s'
  end

let valid_label_name name =
  (* like metric names but without ':' (reserved for exporters) *)
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       name

(* Text-format 0.0.4 label-value escaping: backslash, double quote and
   newline must be escaped; everything else passes through verbatim. *)
let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             ls)
      ^ "}"

(* Registry: series lookup by (name + canonical labels), family kinds
   for type-mismatch detection, and insertion order for stable
   exposition. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let family_kind : (string, string) Hashtbl.t = Hashtbl.create 64

let order : metric list ref = ref [] (* newest first *)

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let series_key name labels = name ^ render_labels labels

let canonical_labels name labels =
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as tl) -> if a = b then Some a else dup tl
    | _ -> None
  in
  (match dup labels with
  | Some k ->
      invalid_arg (Printf.sprintf "Metrics: %s: duplicate label %S" name k)
  | None -> ());
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: %s: invalid label name %S" name k))
    labels;
  labels

let register name labels help payload =
  let labels = canonical_labels name labels in
  (match payload with
  | Hist _ when List.mem_assoc "le" labels ->
      invalid_arg
        (Printf.sprintf "Metrics: %s: label \"le\" is reserved on histograms"
           name)
  | _ -> ());
  locked @@ fun () ->
  let key = series_key name labels in
  match Hashtbl.find_opt registry key with
  | Some m ->
      if kind_label m.payload <> kind_label payload then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_label m.payload));
      m
  | None ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
      (match Hashtbl.find_opt family_kind name with
      | Some k when k <> kind_label payload ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name k)
      | Some _ -> ()
      | None -> Hashtbl.add family_kind name (kind_label payload));
      let m = { name; labels; help; payload } in
      Hashtbl.add registry key m;
      order := m :: !order;
      m

let counter ?(help = "") ?(labels = []) name =
  register name labels help (Counter { total = 0. })

let gauge ?(help = "") ?(labels = []) name =
  register name labels help (Gauge { value = 0.; seen = false })

let latency_buckets =
  [|
    1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
    5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.;
  |]

let histogram ?(help = "") ?(labels = []) ?(buckets = latency_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  register name labels help
    (Hist
       {
         bounds = Array.copy buckets;
         counts = Array.make (Array.length buckets + 1) 0;
         sum = 0.;
         count = 0;
       })

let inc ?(by = 1.) m =
  if !on then
    locked @@ fun () ->
    match m.payload with Counter c -> c.total <- c.total +. by | _ -> ()

let set m v =
  if !on then
    locked @@ fun () ->
    match m.payload with
    | Gauge g ->
        g.value <- v;
        g.seen <- true
    | _ -> ()

let observe m v =
  if !on then
    locked @@ fun () ->
    match m.payload with
    | Hist h ->
        let n = Array.length h.bounds in
        let i = ref 0 in
        while !i < n && v > h.bounds.(!i) do
          incr i
        done;
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.sum <- h.sum +. v;
        h.count <- h.count + 1
    | _ -> ()

let time m f =
  if not !on then f ()
  else begin
    let t0 = Clock.now_s () in
    Fun.protect ~finally:(fun () -> observe m (Clock.now_s () -. t0)) f
  end

let counter_value m = match m.payload with Counter c -> c.total | _ -> 0.

let gauge_value m = match m.payload with Gauge g -> g.value | _ -> 0.

let gauge_is_set m = match m.payload with Gauge g -> g.seen | _ -> false

let histogram_buckets m =
  match m.payload with
  | Hist h ->
      Array.init
        (Array.length h.counts)
        (fun i ->
          let bound =
            if i < Array.length h.bounds then h.bounds.(i) else infinity
          in
          (bound, h.counts.(i)))
  | _ -> [||]

let histogram_sum m = match m.payload with Hist h -> h.sum | _ -> 0.

let histogram_count m = match m.payload with Hist h -> h.count | _ -> 0

let metric_labels m = m.labels

let find ?(labels = []) name =
  Hashtbl.find_opt registry (series_key name (canonical_labels name labels))

let find_gauge ?labels name =
  match find ?labels name with
  | Some ({ payload = Gauge _; _ } as m) -> Some m
  | _ -> None

let find_counter ?labels name =
  match find ?labels name with
  | Some ({ payload = Counter _; _ } as m) -> Some m
  | _ -> None

let family ?(prefix = false) name =
  let matches m =
    m.name = name
    || prefix
       && String.length m.name > String.length name
       && String.sub m.name 0 (String.length name) = name
  in
  List.filter matches (List.rev !order)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m.payload with
      | Counter c -> c.total <- 0.
      | Gauge g ->
          g.value <- 0.;
          g.seen <- false
      | Hist h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.count <- 0)
    registry

let all () = List.rev !order

(* ------------------------------------------------------------------ *)
(* Exposition. *)

let fmt_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* HELP text: the spec only requires escaping backslash and newline. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* All series of a family must form one contiguous block under a single
   HELP/TYPE header, so the exposition walks families in
   first-registration order and series within a family in registration
   order. *)
let to_prometheus () =
  let series = all () in
  let families =
    List.fold_left
      (fun acc m -> if List.mem m.name acc then acc else m.name :: acc)
      [] series
    |> List.rev
  in
  let buf = Buffer.create 2048 in
  List.iter
    (fun fam ->
      let members = List.filter (fun m -> m.name = fam) series in
      let first = List.hd members in
      let help =
        match List.find_opt (fun m -> m.help <> "") members with
        | Some m -> m.help
        | None -> ""
      in
      if help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam (escape_help help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" fam (kind_label first.payload));
      List.iter
        (fun m ->
          match m.payload with
          | Counter c ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
                   (fmt_float c.total))
          | Gauge g ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m.name (render_labels m.labels)
                   (fmt_float g.value))
          | Hist h ->
              let bucket_labels le =
                render_labels (m.labels @ [ ("le", le) ])
              in
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.counts.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" m.name
                       (bucket_labels (fmt_float bound)) !cum))
                h.bounds;
              cum := !cum + h.counts.(Array.length h.bounds);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (bucket_labels "+Inf") !cum);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" m.name
                   (render_labels m.labels) (fmt_float h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" m.name
                   (render_labels m.labels) h.count))
        members)
    families;
  Buffer.contents buf

let json_num f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else
    Printf.sprintf "\"%s\""
      (if Float.is_nan f then "nan" else if f > 0. then "inf" else "-inf")

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"type\":\"%s\"," (json_str m.name)
           (kind_label m.payload));
      if m.labels <> [] then begin
        Buffer.add_string buf "\"labels\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "%s:%s" (json_str k) (json_str v)))
          m.labels;
        Buffer.add_string buf "},"
      end;
      (match m.payload with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "\"value\":%s" (json_num c.total))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "\"value\":%s" (json_num g.value))
      | Hist h ->
          Buffer.add_string buf "\"buckets\":[";
          Array.iteri
            (fun j bound ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%s,\"count\":%d}"
                   (if j < Array.length h.bounds then json_num bound
                    else "\"inf\"")
                   h.counts.(j)))
            (Array.append h.bounds [| infinity |]);
          Buffer.add_string buf
            (Printf.sprintf "],\"sum\":%s,\"count\":%d" (json_num h.sum)
               h.count));
      Buffer.add_char buf '}')
    (all ());
  Buffer.add_string buf "]}";
  Buffer.contents buf
