type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  trace : int; (* 0 = no distributed trace id *)
  name : string;
  cat : string;
  start_us : float;
  parent : int option;
  depth : int;
  mutable attrs : (string * value) list; (* newest first *)
  live : bool;
}

type event =
  | Complete of {
      id : int;
      trace : int;
      name : string;
      cat : string;
      start_us : float;
      dur_us : float;
      parent : int option;
      depth : int;
      attrs : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      attrs : (string * value) list;
    }

let on = ref false

let limit = ref 200_000

(* Every domain records into its own lane: a private buffer, span stack
   and drop counter, reached through domain-local storage so recording
   never takes a lock. Worker domains flush their lane into [merged]
   (tid-tagged, mutex-guarded) when a pool task or the domain itself
   finishes; the export then renders each lane as its own tid row. *)
type lane = {
  tid : int;
  mutable buf : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable stack : span list;
}

let next_tid = Atomic.make 1

let fresh_lane () =
  {
    tid = Atomic.fetch_and_add next_tid 1;
    buf = [];
    count = 0;
    dropped = 0;
    stack = [];
  }

(* Module initialization runs on the main domain, so the main lane is
   always tid 1. *)
let main_lane = fresh_lane ()

let lane_key =
  Domain.DLS.new_key (fun () ->
      if Domain.is_main_domain () then main_lane else fresh_lane ())

let lane () = Domain.DLS.get lane_key

let merge_mu = Mutex.create ()

(* Flushed worker lanes, newest flush first; each entry is
   (tid, events oldest first). *)
let merged : (int * event list) list ref = ref []

let merged_dropped = ref 0

let next_id = Atomic.make 0

(* Distributed trace ids must not collide across the processes of one
   serving fleet, so the per-process sequence is seeded from the pid and
   the wall clock rather than starting at zero. Kept in the positive
   62-bit range so the value survives the wire codec's i64 round-trip
   as an OCaml [int]. *)
let trace_seed =
  lazy
    ((Unix.getpid () * 0x9e3779b1)
     lxor int_of_float (Unix.gettimeofday () *. 1e6)
    land max_int)

let next_trace = Atomic.make 0

let fresh_trace_id () =
  let n = 1 + Atomic.fetch_and_add next_trace 1 in
  1 + ((Lazy.force trace_seed + (n * 0x100000001b3)) land (max_int lsr 1))

let alloc_id () = 1 + Atomic.fetch_and_add next_id 1

let enabled () = !on

let clear () =
  main_lane.buf <- [];
  main_lane.count <- 0;
  main_lane.dropped <- 0;
  main_lane.stack <- [];
  Mutex.lock merge_mu;
  merged := [];
  merged_dropped := 0;
  Mutex.unlock merge_mu;
  Atomic.set next_id 0

let start () =
  clear ();
  on := true

let stop () = on := false

let set_limit n = limit := Stdlib.max 1 n

let record ln ev =
  if ln.count >= !limit then ln.dropped <- ln.dropped + 1
  else begin
    ln.buf <- ev :: ln.buf;
    ln.count <- ln.count + 1
  end

let flush_lane () =
  let ln = lane () in
  if ln != main_lane && (ln.buf <> [] || ln.dropped > 0) then begin
    Mutex.lock merge_mu;
    if ln.buf <> [] then merged := (ln.tid, List.rev ln.buf) :: !merged;
    merged_dropped := !merged_dropped + ln.dropped;
    Mutex.unlock merge_mu;
    ln.buf <- [];
    ln.count <- 0;
    ln.dropped <- 0
  end

let dummy =
  {
    id = 0;
    trace = 0;
    name = "";
    cat = "";
    start_us = 0.;
    parent = None;
    depth = 0;
    attrs = [];
    live = false;
  }

let set_attr sp key v = if sp.live then sp.attrs <- (key, v) :: sp.attrs

let span_trace sp = sp.trace

let span_id sp = sp.id

(* [?trace]/[?parent] inject a remote context (a client span carried in
   a wire frame): they only apply to root spans — once a local parent is
   on the stack the child inherits its trace and links to it. A root
   span with no inherited or injected trace mints a fresh trace id, so
   every top-level operation is a joinable trace root. *)
let begin_span ?(cat = "bmf") ?(attrs = []) ?trace ?parent name =
  if not !on then dummy
  else begin
    let ln = lane () in
    let parent, depth, trace =
      match ln.stack with
      | [] ->
          let trace =
            match trace with
            | Some t when t > 0 -> t
            | _ -> fresh_trace_id ()
          in
          let parent = match parent with Some p when p > 0 -> Some p | _ -> None in
          (parent, 0, trace)
      | p :: _ -> (Some p.id, p.depth + 1, p.trace)
    in
    let sp =
      {
        id = alloc_id ();
        trace;
        name;
        cat;
        start_us = Clock.now_us ();
        parent;
        depth;
        attrs = List.rev attrs;
        live = true;
      }
    in
    ln.stack <- sp :: ln.stack;
    sp
  end

let end_span sp =
  if sp.live then begin
    let ln = lane () in
    let dur_us = Clock.now_us () -. sp.start_us in
    (match ln.stack with
    | top :: rest when top.id = sp.id -> ln.stack <- rest
    | _ -> ln.stack <- List.filter (fun s -> s.id <> sp.id) ln.stack);
    record ln
      (Complete
         {
           id = sp.id;
           trace = sp.trace;
           name = sp.name;
           cat = sp.cat;
           start_us = sp.start_us;
           dur_us;
           parent = sp.parent;
           depth = sp.depth;
           attrs = List.rev sp.attrs;
         })
  end

let with_span ?cat ?attrs ?trace ?parent name f =
  if not !on then f dummy
  else
    let sp = begin_span ?cat ?attrs ?trace ?parent name in
    Fun.protect ~finally:(fun () -> end_span sp) (fun () -> f sp)

let current () =
  if not !on then None
  else
    match (lane ()).stack with
    | [] -> None
    | sp :: _ -> Some (sp.trace, sp.id)

(* Retro-active span: the daemon measures phases (queue wait, a fused
   kernel call shared by a batch) whose extent is only known after the
   fact, and records them with explicit timestamps instead of a stack
   discipline. [?id] lets the caller pre-allocate the span id so that
   children recorded earlier can already point at it. *)
let complete ?(cat = "bmf") ?(attrs = []) ?(trace = 0) ?parent ?id
    ~start_us ~dur_us name =
  if !on then begin
    let id = match id with Some i -> i | None -> alloc_id () in
    let parent = match parent with Some p when p > 0 -> Some p | _ -> None in
    record (lane ())
      (Complete
         {
           id;
           trace;
           name;
           cat;
           start_us;
           dur_us;
           parent;
           depth = 0;
           attrs;
         })
  end

let instant ?(cat = "log") ?(attrs = []) name =
  if !on then
    record (lane ()) (Instant { name; cat; ts_us = Clock.now_us (); attrs })

let merged_lanes () =
  Mutex.lock merge_mu;
  let lanes = List.rev !merged in
  Mutex.unlock merge_mu;
  lanes

let events () =
  List.rev main_lane.buf
  @ List.concat_map (fun (_, evs) -> evs) (merged_lanes ())

let dropped () =
  let ln = lane () in
  let local = if ln == main_lane then 0 else ln.dropped in
  Mutex.lock merge_mu;
  let m = !merged_dropped in
  Mutex.unlock merge_mu;
  main_lane.dropped + m + local

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON. Hand-rolled printer: the library sits below
   everything else in the dependency order, so it cannot borrow a JSON
   module from upper layers. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else
        add_str buf
          (if Float.is_nan f then "nan" else if f > 0. then "inf" else "-inf")
  | Str s -> add_str buf s

let add_args buf attrs extra =
  Buffer.add_char buf '{';
  let first = ref true in
  let field k add =
    if !first then first := false else Buffer.add_char buf ',';
    add_str buf k;
    Buffer.add_char buf ':';
    add ()
  in
  List.iter (fun (k, v) -> field k (fun () -> add_value buf v)) attrs;
  List.iter (fun (k, v) -> field k (fun () -> add_value buf v)) extra;
  Buffer.add_char buf '}'

let add_ts buf t = Buffer.add_string buf (Printf.sprintf "%.3f" t)

let add_event buf ~tid ev =
  match ev with
  | Complete { id; trace; name; cat; start_us; dur_us; parent; depth; attrs }
    ->
      Buffer.add_string buf "{\"name\":";
      add_str buf name;
      Buffer.add_string buf ",\"cat\":";
      add_str buf cat;
      Buffer.add_string buf ",\"ph\":\"X\",\"ts\":";
      add_ts buf start_us;
      Buffer.add_string buf ",\"dur\":";
      add_ts buf dur_us;
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":" tid);
      let extra =
        [ ("span_id", Int id); ("depth", Int depth) ]
        @ (match parent with Some p -> [ ("parent_id", Int p) ] | None -> [])
        @ if trace <> 0 then [ ("trace_id", Int trace) ] else []
      in
      add_args buf attrs extra;
      Buffer.add_char buf '}'
  | Instant { name; cat; ts_us; attrs } ->
      Buffer.add_string buf "{\"name\":";
      add_str buf name;
      Buffer.add_string buf ",\"cat\":";
      add_str buf cat;
      Buffer.add_string buf ",\"ph\":\"i\",\"ts\":";
      add_ts buf ts_us;
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":" tid);
      add_args buf attrs [];
      Buffer.add_char buf '}'

let export_json () =
  let out = Buffer.create 4096 in
  Buffer.add_string out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit ~tid ev =
    if !first then first := false else Buffer.add_char out ',';
    add_event out ~tid ev
  in
  List.iter (emit ~tid:main_lane.tid) (List.rev main_lane.buf);
  List.iter
    (fun (tid, evs) -> List.iter (emit ~tid) evs)
    (merged_lanes ());
  Buffer.add_string out "]}";
  Buffer.contents out

let write_file path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (export_json ()))
