type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  name : string;
  cat : string;
  start_us : float;
  parent : int option;
  depth : int;
  mutable attrs : (string * value) list; (* newest first *)
  live : bool;
}

type event =
  | Complete of {
      id : int;
      name : string;
      cat : string;
      start_us : float;
      dur_us : float;
      parent : int option;
      depth : int;
      attrs : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      attrs : (string * value) list;
    }

let on = ref false

let buf : event list ref = ref [] (* newest first *)

let count = ref 0

let dropped_count = ref 0

let limit = ref 200_000

let stack : span list ref = ref []

let next_id = ref 0

let enabled () = !on

let clear () =
  buf := [];
  count := 0;
  dropped_count := 0;
  stack := [];
  next_id := 0

let start () =
  clear ();
  on := true

let stop () = on := false

let set_limit n = limit := Stdlib.max 1 n

let record ev =
  if !count >= !limit then incr dropped_count
  else begin
    buf := ev :: !buf;
    incr count
  end

let dummy =
  {
    id = 0;
    name = "";
    cat = "";
    start_us = 0.;
    parent = None;
    depth = 0;
    attrs = [];
    live = false;
  }

let set_attr sp key v = if sp.live then sp.attrs <- (key, v) :: sp.attrs

let begin_span ?(cat = "bmf") ?(attrs = []) name =
  if not !on then dummy
  else begin
    incr next_id;
    let parent, depth =
      match !stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.id, p.depth + 1)
    in
    let sp =
      {
        id = !next_id;
        name;
        cat;
        start_us = Clock.now_us ();
        parent;
        depth;
        attrs = List.rev attrs;
        live = true;
      }
    in
    stack := sp :: !stack;
    sp
  end

let end_span sp =
  if sp.live then begin
    let dur_us = Clock.now_us () -. sp.start_us in
    (match !stack with
    | top :: rest when top.id = sp.id -> stack := rest
    | _ -> stack := List.filter (fun s -> s.id <> sp.id) !stack);
    record
      (Complete
         {
           id = sp.id;
           name = sp.name;
           cat = sp.cat;
           start_us = sp.start_us;
           dur_us;
           parent = sp.parent;
           depth = sp.depth;
           attrs = List.rev sp.attrs;
         })
  end

let with_span ?cat ?attrs name f =
  if not !on then f dummy
  else
    let sp = begin_span ?cat ?attrs name in
    Fun.protect ~finally:(fun () -> end_span sp) (fun () -> f sp)

let instant ?(cat = "log") ?(attrs = []) name =
  if !on then record (Instant { name; cat; ts_us = Clock.now_us (); attrs })

let events () = List.rev !buf

let dropped () = !dropped_count

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON. Hand-rolled printer: the library sits below
   everything else in the dependency order, so it cannot borrow a JSON
   module from upper layers. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else
        add_str buf
          (if Float.is_nan f then "nan" else if f > 0. then "inf" else "-inf")
  | Str s -> add_str buf s

let add_args buf attrs extra =
  Buffer.add_char buf '{';
  let first = ref true in
  let field k add =
    if !first then first := false else Buffer.add_char buf ',';
    add_str buf k;
    Buffer.add_char buf ':';
    add ()
  in
  List.iter (fun (k, v) -> field k (fun () -> add_value buf v)) attrs;
  List.iter (fun (k, v) -> field k (fun () -> add_value buf v)) extra;
  Buffer.add_char buf '}'

let add_ts buf t = Buffer.add_string buf (Printf.sprintf "%.3f" t)

let add_event buf ev =
  match ev with
  | Complete { id; name; cat; start_us; dur_us; parent; depth; attrs } ->
      Buffer.add_string buf "{\"name\":";
      add_str buf name;
      Buffer.add_string buf ",\"cat\":";
      add_str buf cat;
      Buffer.add_string buf ",\"ph\":\"X\",\"ts\":";
      add_ts buf start_us;
      Buffer.add_string buf ",\"dur\":";
      add_ts buf dur_us;
      Buffer.add_string buf ",\"pid\":1,\"tid\":1,\"args\":";
      let extra =
        [ ("span_id", Int id); ("depth", Int depth) ]
        @ match parent with Some p -> [ ("parent_id", Int p) ] | None -> []
      in
      add_args buf attrs extra;
      Buffer.add_char buf '}'
  | Instant { name; cat; ts_us; attrs } ->
      Buffer.add_string buf "{\"name\":";
      add_str buf name;
      Buffer.add_string buf ",\"cat\":";
      add_str buf cat;
      Buffer.add_string buf ",\"ph\":\"i\",\"ts\":";
      add_ts buf ts_us;
      Buffer.add_string buf ",\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":";
      add_args buf attrs [];
      Buffer.add_char buf '}'

let export_json () =
  let out = Buffer.create 4096 in
  Buffer.add_string out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char out ',';
      add_event out ev)
    (events ());
  Buffer.add_string out "]}";
  Buffer.contents out

let write_file path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (export_json ()))
