(** Observability facade: span tracing ({!Trace}), the metrics registry
    ({!Metrics}), the structured event log ({!Events}) and the shared
    clock ({!Clock}).

    All sinks are off by default; instrumented code guards any extra
    work (timing reads, condition-number estimates) behind {!live} so
    the default path stays a no-op and numerical results are
    bit-identical with observability on or off. *)

module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Events = Events

let live () = Trace.enabled () || Metrics.enabled () || Events.enabled ()
