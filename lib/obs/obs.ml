(** Observability facade: span tracing ({!Trace}), the metrics registry
    ({!Metrics}) and the shared clock ({!Clock}).

    Both sinks are off by default; instrumented code guards any extra
    work (timing reads, condition-number estimates) behind {!live} so
    the default path stays a no-op and numerical results are
    bit-identical with observability on or off. *)

module Clock = Clock
module Trace = Trace
module Metrics = Metrics

let live () = Trace.enabled () || Metrics.enabled ()
