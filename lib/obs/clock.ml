let wall () = Unix.gettimeofday ()

let source = ref wall

let last = ref neg_infinity

let now_s () =
  let t = !source () in
  if t > !last then last := t;
  !last

let now_us () = 1e6 *. now_s ()

let set_source f =
  source := f;
  last := neg_infinity

let reset_source () = set_source wall
