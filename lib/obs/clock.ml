let wall () = Unix.gettimeofday ()

(* CLOCK_MONOTONIC via bechamel's zero-dependency stub: immune to NTP
   steps, which matters now that the serving daemon keys request
   deadlines and drain grace off this clock. The origin is arbitrary
   (boot time), so readings are durations, not dates. *)
let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let monotonic_raw = monotonic

let source = ref monotonic

let last = ref neg_infinity

let now_s () =
  let t = !source () in
  if t > !last then last := t;
  !last

let now_us () = 1e6 *. now_s ()

let set_source f =
  source := f;
  last := neg_infinity

let reset_source () = set_source monotonic
