(** Structured operational event log: a bounded ring buffer of
    JSON-renderable events (promotion, recovery, subscriber
    connect/drop, slow requests).

    Off by default — {!emit} is a no-op until {!enable}, so
    uninstrumented runs record nothing and pay one load and branch.
    The ring keeps the newest [capacity] events (default 512); older
    ones are dropped and only counted. *)

type event = {
  seq : int;  (** Monotonic emit counter, 0-based, survives drops. *)
  ts : float;  (** Wall-clock seconds at emit time. *)
  kind : string;
  fields : (string * Trace.value) list;
}

val enabled : unit -> bool

val enable : unit -> unit

val disable : unit -> unit

val clear : unit -> unit
(** Drop all buffered events and reset the emit counter. *)

val set_capacity : int -> unit
(** Resize the ring (clamped to >= 1); buffered events are dropped. *)

val emit : ?fields:(string * Trace.value) list -> string -> unit
(** Append one event. Field keys should avoid the reserved JSON keys
    [seq], [ts] and [kind]. Safe from any domain. *)

val snapshot : unit -> event list * int
(** Buffered events oldest-first, plus the total emitted count (which
    exceeds the list length once the ring has wrapped). *)

val emitted : unit -> int

val dropped : unit -> int

val to_json : unit -> string
(** The ring as
    [{"emitted":n,"dropped":n,"events":[{"seq":..,"ts":..,"kind":..,
    ...fields}, ...]}], oldest event first. Non-finite floats render
    as [null]. *)
