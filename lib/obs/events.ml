(* Bounded ring buffer of structured operational events (promotions,
   recovery, subscriber churn, slow requests). Off by default, like the
   other sinks; the daemon enables it at startup. *)

type event = {
  seq : int;
  ts : float; (* wall-clock seconds *)
  kind : string;
  fields : (string * Trace.value) list;
}

let on = ref false

let default_capacity = 512

let mu = Mutex.create ()

(* Ring state, all guarded by [mu]: [ring] has [capacity] slots, [head]
   is the next write position, [seq] counts every emit (so
   [seq - length] is the number of events that fell off the ring). *)
let capacity = ref default_capacity

let ring : event option array ref = ref (Array.make default_capacity None)

let head = ref 0

let seq = ref 0

let enabled () = !on

let enable () = on := true

let disable () = on := false

let clear () =
  Mutex.lock mu;
  ring := Array.make !capacity None;
  head := 0;
  seq := 0;
  Mutex.unlock mu

let set_capacity n =
  let n = Stdlib.max 1 n in
  Mutex.lock mu;
  capacity := n;
  ring := Array.make n None;
  head := 0;
  Mutex.unlock mu

let emit ?(fields = []) kind =
  if !on then begin
    let ts = Clock.wall () in
    Mutex.lock mu;
    let ev = { seq = !seq; ts; kind; fields } in
    seq := !seq + 1;
    !ring.(!head) <- Some ev;
    head := (!head + 1) mod !capacity;
    Mutex.unlock mu
  end

(* Oldest first. *)
let snapshot () =
  Mutex.lock mu;
  let cap = !capacity and r = !ring and h = !head in
  let out = ref [] in
  for i = 1 to cap do
    match r.((h + cap - i) mod cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  let total = !seq in
  Mutex.unlock mu;
  (!out, total)

let emitted () = snd (snapshot ())

let dropped () =
  let evs, total = snapshot () in
  total - List.length evs

let buf_value b = function
  | Trace.Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Trace.Int v -> Buffer.add_string b (string_of_int v)
  | Trace.Float v ->
      if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
      else Buffer.add_string b "null"
  | Trace.Str s ->
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | '\r' -> Buffer.add_string b "\\r"
          | '\t' -> Buffer.add_string b "\\t"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.add_char b '"'

let to_json () =
  let evs, total = snapshot () in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"emitted\":%d,\"dropped\":%d,\"events\":[" total
       (total - List.length evs));
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"seq\":%d,\"ts\":%.6f,\"kind\":" ev.seq ev.ts);
      buf_value b (Trace.Str ev.kind);
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ',';
          buf_value b (Trace.Str k);
          Buffer.add_char b ':';
          buf_value b v)
        ev.fields;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b
