(** Process-wide metrics registry: counters, gauges and cumulative
    histograms with Prometheus text exposition and a JSON dump.

    Metrics are registered once (typically at module initialization —
    registering an existing name returns the existing metric) and are
    always listed in the exposition, so dashboards see a stable schema
    even before a value lands. Recording is gated on {!enabled}: when
    collection is off (the default) every [inc]/[set]/[observe] is a
    single load-and-branch, and instrumented numerical code never takes
    a different computational path.

    The registry is domain-safe: enabled-path mutations take one global
    mutex, so recording from [Parallel.Pool] workers never tears a
    histogram; the disabled path stays a bare flag check. *)

type counter

type gauge

type histogram

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val counter : ?help:string -> string -> counter
(** Monotone counter. @raise Invalid_argument if the name is already
    registered as a different metric type or is not a valid Prometheus
    metric name. *)

val gauge : ?help:string -> string -> gauge

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** Cumulative histogram. [buckets] are the upper bounds (strictly
    increasing; an implicit [+Inf] bucket is always appended); the
    default is {!latency_buckets}. *)

val latency_buckets : float array
(** Log-scale latency bounds in seconds: 1-2.5-5 per decade from 1 us
    to 10 s. *)

val inc : ?by:float -> counter -> unit

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and observe its wall-clock duration in seconds; when
    collection is off, exactly the thunk. *)

(* Introspection (tests, [repro stats]). *)

val counter_value : counter -> float

val gauge_value : gauge -> float

val gauge_is_set : gauge -> bool

val histogram_buckets : histogram -> (float * int) array
(** Per-bucket (non-cumulative) counts; the final entry has bound
    [infinity]. *)

val histogram_sum : histogram -> float

val histogram_count : histogram -> int

val find_gauge : string -> gauge option

val find_counter : string -> counter option

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val to_prometheus : unit -> string
(** Prometheus text exposition format 0.0.4. *)

val to_json : unit -> string
(** [{"metrics":[...]}] with one object per metric. *)
