(** Process-wide metrics registry: counters, gauges and cumulative
    histograms with Prometheus text exposition and a JSON dump.

    Metrics are registered once (typically at module initialization —
    registering an existing name returns the existing metric) and are
    always listed in the exposition, so dashboards see a stable schema
    even before a value lands. Recording is gated on {!enabled}: when
    collection is off (the default) every [inc]/[set]/[observe] is a
    single load-and-branch, and instrumented numerical code never takes
    a different computational path.

    The registry is domain-safe: enabled-path mutations take one global
    mutex, so recording from [Parallel.Pool] workers never tears a
    histogram; the disabled path stays a bare flag check. *)

type counter

type gauge

type histogram

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Monotone counter. [labels] identify one series within the metric
    family; re-registering the same (name, labels) pair returns the
    existing series, so dynamic per-model series can be requested on
    every use. Label values may contain any bytes — they are escaped at
    exposition time. @raise Invalid_argument if the name is already
    registered as a different metric type, is not a valid Prometheus
    metric name (see {!sanitize_name}), or a label name is invalid or
    duplicated. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** Cumulative histogram. [buckets] are the upper bounds (strictly
    increasing; an implicit [+Inf] bucket is always appended); the
    default is {!latency_buckets}. The label name ["le"] is reserved.
    @raise Invalid_argument as {!counter}, or on bad buckets. *)

val sanitize_name : string -> string
(** Map an arbitrary string onto the metric-name charset
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: invalid bytes become ['_'], a leading
    digit gains a ['_'] prefix, [""] becomes ["_"]. Idempotent, and
    [valid_name (sanitize_name s)] always holds. *)

val valid_name : string -> bool
(** Whether [s] is a well-formed Prometheus metric name as-is. *)

val escape_label_value : string -> string
(** Text-format 0.0.4 label-value escaping: backslash, double quote and
    newline become two-character escapes. Applied automatically by
    {!to_prometheus}. *)

val latency_buckets : float array
(** Log-scale latency bounds in seconds: 1-2.5-5 per decade from 1 us
    to 10 s. *)

val inc : ?by:float -> counter -> unit

val set : gauge -> float -> unit

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run a thunk and observe its wall-clock duration in seconds; when
    collection is off, exactly the thunk. *)

(* Introspection (tests, [repro stats]). *)

val counter_value : counter -> float

val gauge_value : gauge -> float

val gauge_is_set : gauge -> bool

val histogram_buckets : histogram -> (float * int) array
(** Per-bucket (non-cumulative) counts; the final entry has bound
    [infinity]. *)

val histogram_sum : histogram -> float

val histogram_count : histogram -> int

val metric_labels : counter -> (string * string) list
(** The series' labels in canonical (sorted) order. [counter], [gauge]
    and [histogram] are the same underlying type, so this works on any
    of them. *)

val find_gauge : ?labels:(string * string) list -> string -> gauge option
(** Look up one series; [labels] defaults to the unlabeled series. *)

val find_counter : ?labels:(string * string) list -> string -> counter option

val family : ?prefix:bool -> string -> counter list
(** Every registered series whose metric name equals [name] (or, with
    [~prefix:true], starts with it), in registration order. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val to_prometheus : unit -> string
(** Prometheus text exposition format 0.0.4: families in
    first-registration order, each emitted as one HELP/TYPE header (the
    first non-empty help wins) followed by every series of the family;
    histograms expose cumulative [_bucket{le=...}] lines including
    [+Inf], then [_sum] and [_count]; label values are escaped per
    {!escape_label_value}. *)

val to_json : unit -> string
(** [{"metrics":[...]}] with one object per metric. *)
