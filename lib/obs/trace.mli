(** Span-based tracing with a Chrome trace-event JSON exporter.

    Disabled by default: every entry point first checks one [bool ref],
    so the no-flag path costs a couple of loads and branches and records
    nothing — numerical results are identical with tracing on or off
    (test-enforced). Enable with {!start}, drain with {!export_json} or
    {!write_file}; the output opens directly in [chrome://tracing] or
    Perfetto.

    Spans nest through an explicit stack: a span begun while another is
    open records that span as its parent, and its depth. Instant events
    ({!instant}) double as the structured log sink.

    Recording is domain-safe: every domain writes to its own lane
    (buffer + span stack) held in domain-local storage, so hot-path
    recording never takes a lock. Worker domains hand their lane over
    with {!flush_lane} (the [Parallel.Pool] does this after every task
    and at shutdown); the export renders each lane as its own [tid]
    row, so a parallel run shows one timeline per domain. *)

type value = Bool of bool | Int of int | Float of float | Str of string
(** Span / event attribute values. *)

type span
(** An open span. When tracing is disabled all operations receive an
    inert dummy span and do nothing. *)

type event =
  | Complete of {
      id : int;
      trace : int;  (** Distributed trace id; 0 when the span had none. *)
      name : string;
      cat : string;
      start_us : float;
      dur_us : float;
      parent : int option;
      depth : int;
      attrs : (string * value) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      attrs : (string * value) list;
    }

val enabled : unit -> bool

val start : unit -> unit
(** Clear the buffer and begin recording. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for export. *)

val clear : unit -> unit
(** Drop all recorded events. *)

val with_span :
  ?cat:string ->
  ?attrs:(string * value) list ->
  ?trace:int ->
  ?parent:int ->
  string ->
  (span -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a span named [name]. The span is
    closed (and recorded) even if [f] raises. When tracing is off this
    is [f dummy].

    [?trace]/[?parent] inject a remote context (e.g. a client span id
    carried in a wire frame) and apply only when the span is a root on
    this domain's stack; nested spans inherit trace and parent from the
    enclosing span. A root span with neither minted context nor an
    injection gets a fresh {!fresh_trace_id}. *)

val set_attr : span -> string -> value -> unit
(** Attach an attribute to an open span; no-op on the dummy span. *)

val span_trace : span -> int
(** The span's distributed trace id (0 on the dummy span). *)

val span_id : span -> int

val current : unit -> (int * int) option
(** [(trace_id, span_id)] of the innermost open span on the calling
    domain, for stamping outgoing wire frames. [None] when tracing is
    off or no span is open. *)

val fresh_trace_id : unit -> int
(** A new positive 62-bit trace id, unique across the processes of one
    fleet with overwhelming probability (seeded from pid + wall clock). *)

val alloc_id : unit -> int
(** Reserve a span id without opening a span — pair with {!complete}'s
    [?id] so children recorded first can point at a parent recorded
    later. *)

val complete :
  ?cat:string ->
  ?attrs:(string * value) list ->
  ?trace:int ->
  ?parent:int ->
  ?id:int ->
  start_us:float ->
  dur_us:float ->
  string ->
  unit
(** Record a finished span with explicit timestamps, bypassing the span
    stack — for phases (queue wait, a fused batch kernel) whose extent
    is only known after the fact. No-op when tracing is off. *)

val instant : ?cat:string -> ?attrs:(string * value) list -> string -> unit
(** Record a zero-duration event (log line, progress tick). *)

val flush_lane : unit -> unit
(** Move the calling domain's lane (buffered events and drop count) into
    the shared merge buffer, tagged with the lane's tid. No-op on the
    main domain and on an empty lane. Worker domains must call this
    before terminating or their events are lost with their lane. *)

val merged_lanes : unit -> (int * event list) list
(** Flushed worker lanes in flush order, each as [(tid, events)] with
    events oldest first. The main lane (tid 1) is not included — read it
    through {!events}. *)

val events : unit -> event list
(** Recorded events, oldest first: the main lane followed by every
    flushed worker lane. Complete events appear in span-close order
    (children before parents) within a lane. *)

val dropped : unit -> int
(** Events discarded after the buffer limit (default 200k) was hit. *)

val set_limit : int -> unit

val export_json : unit -> string
(** The buffer as a Chrome trace-event JSON document:
    [{"displayTimeUnit":"ms","traceEvents":[...]}] with ["X"] phase
    entries for spans (args carry the attributes plus [span_id],
    [parent_id], [depth] and, when set, [trace_id]) and ["i"] entries
    for instants. *)

val write_file : string -> unit
(** {!export_json} to a file. *)
