(** Time source for the observability layer {e and} for every serving
    deadline/timeout computation.

    The raw source is CLOCK_MONOTONIC (via bechamel's stub), so request
    admission/expiry and drain grace in the daemon cannot be unstuck or
    mass-expired by an NTP wall-clock step; its origin is arbitrary —
    treat readings as durations between two calls, never as dates (use
    {!wall} for human-facing timestamps). Readings are additionally
    clamped non-decreasing against the last value handed out, so span
    durations are never negative even under an injected test source. *)

val now_s : unit -> float
(** Monotonic time in seconds, monotone non-decreasing, arbitrary
    origin. *)

val now_us : unit -> float
(** Current time in microseconds (the unit of Chrome trace events). *)

val wall : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]) — for
    human-facing timestamps only; subject to NTP steps. *)

val monotonic_raw : unit -> float
(** The default CLOCK_MONOTONIC source read directly, bypassing any
    {!set_source} injection. For {e pacing} that must track real
    elapsed time even while a test has frozen the logical clock — the
    serving daemon's batch window uses this, so a frozen {!now_s}
    suspends deadline expiry without wedging the batch cadence. Never
    compare readings from this function with {!now_s} readings. *)

val set_source : (unit -> float) -> unit
(** Replace the raw source (seconds). Resets the monotonic clamp so a
    test clock may start from any origin. *)

val reset_source : unit -> unit
(** Restore the default monotonic source. *)
