(** Time source for the observability layer.

    Readings are guaranteed non-decreasing: the raw source (wall clock by
    default — the platform has no monotonic clock binding) is clamped
    against the last value handed out, so span durations are never
    negative even across a wall-clock step. Tests install a deterministic
    source with {!set_source}. *)

val now_s : unit -> float
(** Current time in seconds, monotone non-decreasing. *)

val now_us : unit -> float
(** Current time in microseconds (the unit of Chrome trace events). *)

val set_source : (unit -> float) -> unit
(** Replace the raw source (seconds). Resets the monotonic clamp so a
    test clock may start from any origin. *)

val reset_source : unit -> unit
(** Restore the default wall-clock source. *)
