(** Log predictive density scoring — the evidence each scored batch
    contributes to a member's running log marginal likelihood. *)

val log_density : mean:float -> std:float -> float -> float
(** [log_density ~mean ~std observed] is the Gaussian log density of
    [observed] under N(mean, std²). [neg_infinity] (never NaN) when
    [std <= 0] or any argument is non-finite. *)

val score : means:float array -> stds:float array -> float array -> float
(** [score ~means ~stds f] sums {!log_density} over one batch in fixed
    left-to-right order — the per-batch evidence increment.
    @raise Invalid_argument on length mismatch. *)
