(* The normative ensemble combination: weighted predictive mean plus a
   variance decomposed into within-model posterior and between-model
   disagreement,

     mu_bar(p)   = sum_i w_i mu_i(p)
     within(p)   = sum_i w_i sigma_i(p)^2
     between(p)  = sum_i w_i (mu_i(p) - mu_bar(p))^2

   folded left-to-right over members in state order. Members with
   weight exactly 0 are skipped outright — their predictions are never
   read (a pruned member may be unloadable, and 0 * inf would poison
   the sums) — so Occam's-window pruning also prunes the compute.

   Every consumer (the serving daemon's fan-out, the offline CLI
   reference, the tests, CI's direct two-member computation) runs this
   same fold, so bit-identity across paths reduces to bit-identity of
   the member predictions — which the predictor kernels already
   guarantee at any shard count and parallelism. *)

let combine ~weights ~means ~stds =
  let k = Array.length weights in
  if Array.length means <> k || Array.length stds <> k then
    invalid_arg "Ensemble.Predictor.combine: member arity mismatch";
  let n = ref (-1) in
  for i = 0 to k - 1 do
    if weights.(i) > 0. then begin
      if !n < 0 then n := Array.length means.(i)
      else if Array.length means.(i) <> !n then
        invalid_arg "Ensemble.Predictor.combine: member row-count mismatch";
      if Array.length stds.(i) <> Array.length means.(i) then
        invalid_arg "Ensemble.Predictor.combine: means/stds length mismatch"
    end
  done;
  if !n < 0 then invalid_arg "Ensemble.Predictor.combine: no active member";
  let n = !n in
  let mu = Array.make n 0. in
  let within = Array.make n 0. in
  for i = 0 to k - 1 do
    if weights.(i) > 0. then begin
      let w = weights.(i) in
      let mi = means.(i) and si = stds.(i) in
      for p = 0 to n - 1 do
        mu.(p) <- mu.(p) +. (w *. mi.(p));
        within.(p) <- within.(p) +. (w *. si.(p) *. si.(p))
      done
    end
  done;
  let between = Array.make n 0. in
  for i = 0 to k - 1 do
    if weights.(i) > 0. then begin
      let w = weights.(i) in
      let mi = means.(i) in
      for p = 0 to n - 1 do
        let d = mi.(p) -. mu.(p) in
        between.(p) <- between.(p) +. (w *. d *. d)
      done
    end
  done;
  (mu, within, between)

(* Direct (non-daemon) ensemble prediction over loaded member
   predictors — the offline reference path `repro ensemble predict`
   and the tests use. [predictors] aligns with [state.members]; only
   members with positive weight are consulted (and must be [Some]). *)
let predict state predictors points =
  let ws = State.weights state in
  if Array.length predictors <> Array.length ws then
    invalid_arg "Ensemble.Predictor.predict: predictor arity mismatch";
  let empty = [||] in
  let means = Array.make (Array.length ws) empty in
  let stds = Array.make (Array.length ws) empty in
  Array.iteri
    (fun i p ->
      if ws.(i) > 0. then
        match p with
        | Some pred ->
            let m, s = Serving.Predictor.predict_with_std pred points in
            means.(i) <- m;
            stds.(i) <- s
        | None ->
            invalid_arg
              "Ensemble.Predictor.predict: active member has no predictor")
    predictors;
  combine ~weights:ws ~means ~stds
