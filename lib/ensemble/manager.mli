(** Serving-side ensemble registry: single-writer mutations, lock-free
    reads via one published [Atomic] view (shards read the same state
    the writer scored, so every domain derives the identical weight
    vector), and a two-phase score/commit evidence protocol that rides
    the update commit path. *)

type t

val create : root:string -> t

val root : t -> string

val load_all : t -> (string * string) list
(** Loads and publishes every [.bmfe] under the root; returns the
    (file, error) pairs of the ones that failed to decode. *)

val list : t -> State.t list
(** The published view, sorted by name. Safe from any domain. *)

val find : t -> string -> State.t option

val containing : t -> Serving.Artifact.meta -> State.t list
(** Every published ensemble having [meta] as a member — the states to
    score when an update for [meta] commits. *)

val reload : t -> string -> (State.t, string) result
(** Re-reads one ensemble from disk and publishes it — how a live
    daemon picks up [repro ensemble create/add] run against its store
    directory. A vanished file also drops the ensemble from the view. *)

val score :
  predictor_of:(Serving.Artifact.meta -> Serving.Predictor.t option) ->
  State.t ->
  xs:Linalg.Mat.t ->
  f:float array ->
  State.t
(** Pure phase 1: every member's predictor (resolve with the
    {e pre-update} model) scores the batch's held-out predictive
    density; returns the advanced state. A member whose predictor is
    unavailable records [(0., 0)] — it neither gains nor loses. *)

val commit : t -> ?durability:Serving.Store.durability -> State.t -> unit
(** Effectful phase 2: persist the advanced state and publish it with
    refreshed [bmf_ensemble_weight{ensemble=...,member=...}],
    [bmf_ensemble_log_evidence] and [bmf_ensemble_evidence_points]
    gauges. Only call after the triggering update committed. *)
