(* Posterior model weights: softmax over log evidence with Occam's
   window.

   w_i ∝ exp(s_i - max_j s_j), then members whose relative evidence
   exp(s_i - max) falls below the window ratio [occam] are dropped
   outright (classic Occam's window: a model this much worse than the
   best gets no vote, however many mediocre siblings it has). The max
   subtraction keeps every exp in [0, 1], so the weights can neither
   overflow nor produce NaN from inf - inf. *)

let compute ?(occam = 0.) scores =
  let n = Array.length scores in
  if n = 0 then [||]
  else begin
    let best =
      Array.fold_left
        (fun acc s -> if Float.is_finite s && s > acc then s else acc)
        Float.neg_infinity scores
    in
    if not (Float.is_finite best) then
      (* no member has finite evidence (all -inf, or NaN): no data to
         discriminate on, fall back to the uniform prior *)
      Array.make n (1. /. float_of_int n)
    else begin
      let cut = if occam > 0. then Float.log occam else Float.neg_infinity in
      let raw =
        Array.map
          (fun s ->
            if Float.is_finite s && s -. best >= cut then Float.exp (s -. best)
            else 0.)
          scores
      in
      (* the best member survives any window with raw weight 1, so the
         normalizer is >= 1 and the division is always well-defined *)
      let sum = Array.fold_left ( +. ) 0. raw in
      Array.map (fun r -> r /. sum) raw
    end
  end
