(* Held-out predictive density: the evidence currency of the ensemble.

   Each member artifact carries a Gaussian posterior predictive at any
   query point (Serving.Predictor.predict_with_std), so the log
   marginal likelihood of a freshly observed batch under member i is a
   plain sum of Gaussian log densities. Accumulated across the scored
   batches that also feed calibration telemetry, the running totals are
   exactly the log model evidences that Bayesian model averaging
   softmaxes into posterior weights. *)

let log_2pi = Float.log (2. *. Float.pi)

(* log N(observed; mean, std^2). A degenerate or non-finite predictive
   distribution scores -inf: it assigned the observation no mass, and
   -inf is absorbing in the evidence sum, which is the correct verdict
   for a member whose posterior has collapsed. Never NaN. *)
let log_density ~mean ~std observed =
  if
    not
      (Float.is_finite mean && Float.is_finite std && Float.is_finite observed)
    || std <= 0.
  then Float.neg_infinity
  else begin
    let z = (observed -. mean) /. std in
    (-0.5 *. log_2pi) -. Float.log std -. (0.5 *. z *. z)
  end

(* Joint log density of one scored batch: predictive means/stds per
   point against the observed responses. Fixed left-to-right summation
   order, so the accumulated evidence is reproducible bit-for-bit on
   any replica that sees the same batches. *)
let score ~means ~stds f =
  let n = Array.length f in
  if Array.length means <> n || Array.length stds <> n then
    invalid_arg "Ensemble.Evidence.score: length mismatch";
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. log_density ~mean:means.(i) ~std:stds.(i) f.(i)
  done;
  !total
