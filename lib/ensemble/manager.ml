(* Serving-side ensemble registry: the writer domain's single mutable
   handle over every loaded ensemble, published to reader domains
   (shards) through one Atomic swap — the same single-writer discipline
   as Serving.Snapshot. Shards compute nothing weight-related: they
   read the published state, and since the weight computation is a pure
   function of it, every shard derives the identical weight vector.

   Evidence flows through a two-phase protocol shaped by the update
   commit path:

     1. [score] — pure: runs every member's *pre-update* predictor over
        the scored batch and returns the advanced state. Called before
        an update is applied, so the updated member is scored on data
        it had not seen — genuinely held-out predictive density.
     2. [commit] — effectful: persists the advanced state ([`Durable]
        under the daemon's durability) and publishes it, together with
        the per-member weight/evidence gauges.

   The daemon calls (1) while preparing an update and (2) only in the
   update's success branch; a failed update leaves ensemble state
   untouched. Followers run the same two phases around their WAL apply,
   so replicated evidence is bit-identical to the leader's. *)

type t = { root : string; view : State.t list Atomic.t }

let create ~root = { root; view = Atomic.make [] }

let root t = t.root

let m_weight_help = "Posterior ensemble weight of one member"

let set_gauges state =
  let ws = State.weights state in
  Array.iteri
    (fun i (m : State.member) ->
      let labels =
        [
          ("ensemble", state.State.name);
          ("member", Serving.Calibration.model_label m.State.meta);
        ]
      in
      Obs.Metrics.set
        (Obs.Metrics.gauge ~help:m_weight_help ~labels "bmf_ensemble_weight")
        ws.(i);
      Obs.Metrics.set
        (Obs.Metrics.gauge ~help:"Accumulated log evidence of one member"
           ~labels "bmf_ensemble_log_evidence")
        m.State.log_ev;
      Obs.Metrics.set
        (Obs.Metrics.gauge ~help:"Scored points behind a member's evidence"
           ~labels "bmf_ensemble_evidence_points")
        (float_of_int m.State.count))
    state.State.members

(* Writer-only. Readers see either the old or the new list, never a
   torn one. *)
let publish t state =
  let rest =
    List.filter
      (fun s -> not (String.equal s.State.name state.State.name))
      (Atomic.get t.view)
  in
  Atomic.set t.view
    (List.sort
       (fun a b -> String.compare a.State.name b.State.name)
       (state :: rest));
  set_gauges state

let load_all t =
  List.filter_map
    (fun (file, status) ->
      match status with
      | Ok state ->
          publish t state;
          None
      | Error msg -> Some (file, msg))
    (Store.list ~root:t.root)

let list t = Atomic.get t.view

let find t name =
  List.find_opt (fun s -> String.equal s.State.name name) (Atomic.get t.view)

let containing t meta =
  List.filter (fun s -> State.mem s meta) (Atomic.get t.view)

let reload t name =
  match Store.load ~root:t.root name with
  | Ok state ->
      publish t state;
      Ok state
  | Error _ as e ->
      (* a deleted file drops the ensemble from the view too *)
      (match find t name with
      | Some _ when Store.find ~root:t.root name = None ->
          Atomic.set t.view
            (List.filter
               (fun s -> not (String.equal s.State.name name))
               (Atomic.get t.view))
      | _ -> ());
      e

let score ~predictor_of state ~xs ~f =
  let points = Array.length f in
  let increments =
    Array.map
      (fun (m : State.member) ->
        match predictor_of m.State.meta with
        | None -> (0., 0)
        | Some pred ->
            let means, stds = Serving.Predictor.predict_with_std pred xs in
            (Evidence.score ~means ~stds f, points))
      state.State.members
  in
  State.record state increments

let commit t ?durability state =
  let (_ : string) = Store.save ?durability ~root:t.root state in
  publish t state
