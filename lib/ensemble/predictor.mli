(** Weighted ensemble prediction with decomposed variance. *)

val combine :
  weights:float array ->
  means:float array array ->
  stds:float array array ->
  float array * float array * float array
(** [combine ~weights ~means ~stds] folds per-member predictions into
    [(mean, within, between)] per query point:

    - mean: Σᵢ wᵢ·μᵢ — the BMA predictive mean;
    - within: Σᵢ wᵢ·σᵢ² — average within-model posterior variance;
    - between: Σᵢ wᵢ·(μᵢ − mean)² — between-model disagreement.

    Total predictive variance is their sum. Members with weight
    exactly 0 are skipped and their arrays never read. The fold is
    left-to-right in member order — the normative computation every
    serving path reproduces bit-for-bit.
    @raise Invalid_argument on arity/length mismatches or when no
    member has positive weight. *)

val predict :
  State.t ->
  Serving.Predictor.t option array ->
  Linalg.Mat.t ->
  float array * float array * float array
(** Direct (offline) ensemble prediction: computes the state's weights,
    runs [Serving.Predictor.predict_with_std] for each positive-weight
    member and {!combine}s. [predictors] aligns with [state.members];
    only active members need to be [Some]. *)
