(** Softmax over log evidence with an Occam's-window cutoff. *)

val compute : ?occam:float -> float array -> float array
(** [compute ?occam scores] maps per-member scores (log prior + log
    evidence) to normalized posterior weights:

    - weights are never NaN and always sum to 1 (within 1e-12) for a
      non-empty input; the empty input yields [[||]];
    - a member with [neg_infinity] (or NaN) score gets weight 0;
    - when {e no} member has a finite score the weights are uniform;
    - [occam] in (0, 1] is the window ratio: members whose relative
      evidence [exp (s_i - max_j s_j)] is below it are dropped (weight
      exactly 0.). [occam = 0.] (the default) disables the window.

    Deterministic: a pure function of the score array. *)
