(* Persistent ensemble state: the member list with per-member log
   prior, accumulated log evidence and scored-point counts — everything
   the weight computation needs, in one small checksummed record.

   Evidence semantics: whenever the membership changes, every member's
   evidence accumulator resets to zero. The log-evidence differences
   that drive the weights are then likelihood ratios over data every
   member was scored on; a freshly added canary competes on equal
   footing from its near-zero prior instead of starting with an
   unpayable deficit against incumbents with a long history. *)

type member = {
  meta : Serving.Artifact.meta;
  log_prior : float;
  log_ev : float;
  count : int;
}

type t = { name : string; occam : float; members : member array }

(* ln 1e-6: a canaried revision starts ~13.8 nats behind an incumbent
   with log prior 0 — visible in the weight vector as ~1e-6, and
   overtaken once its accumulated log-likelihood advantage over the
   incumbent exceeds the gap. *)
let canary_log_prior = Float.log 1e-6

let max_name_len = 160

let create ?(occam = 0.) name =
  if String.length name = 0 then
    invalid_arg "Ensemble.State.create: empty name";
  if String.length name > max_name_len then
    invalid_arg "Ensemble.State.create: name too long";
  if String.contains name '\x00' then
    invalid_arg "Ensemble.State.create: NUL in name";
  if not (Float.is_finite occam) || occam < 0. || occam > 1. then
    invalid_arg "Ensemble.State.create: occam must be in [0, 1]";
  { name; occam; members = [||] }

let mem t meta = Array.exists (fun m -> m.meta = meta) t.members

let find t meta = Array.find_opt (fun m -> m.meta = meta) t.members

let add t meta =
  if mem t meta then
    Error
      (Printf.sprintf "ensemble %s: %s/%s scale=%s seed=%d is already a member"
         t.name meta.Serving.Artifact.circuit meta.Serving.Artifact.metric
         meta.Serving.Artifact.scale meta.Serving.Artifact.seed)
  else begin
    let log_prior = if Array.length t.members = 0 then 0. else canary_log_prior in
    let reset = Array.map (fun m -> { m with log_ev = 0.; count = 0 }) t.members in
    Ok
      {
        t with
        members =
          Array.append reset [| { meta; log_prior; log_ev = 0.; count = 0 } |];
      }
  end

let scores t = Array.map (fun m -> m.log_prior +. m.log_ev) t.members

let weights t = Weights.compute ~occam:t.occam (scores t)

(* Fold one scored batch in: per-member evidence increments (aligned
   with [members]) and per-member point counts. A member that could not
   be scored this round carries (0., 0). *)
let record t increments =
  if Array.length increments <> Array.length t.members then
    invalid_arg "Ensemble.State.record: increment arity mismatch";
  {
    t with
    members =
      Array.mapi
        (fun i m ->
          let delta, points = increments.(i) in
          { m with log_ev = m.log_ev +. delta; count = m.count + points })
        t.members;
  }

let validate t =
  let err msg = Error ("ensemble: " ^ msg) in
  if String.length t.name = 0 then err "empty name"
  else if String.length t.name > max_name_len then err "name too long"
  else if not (Float.is_finite t.occam) || t.occam < 0. || t.occam > 1. then
    err "occam out of range"
  else begin
    let problem = ref None in
    Array.iteri
      (fun i m ->
        if !problem = None then begin
          if not (Float.is_finite m.log_prior) then
            problem := Some (Printf.sprintf "member %d: non-finite log prior" i)
          else if Float.is_nan m.log_ev then
            problem := Some (Printf.sprintf "member %d: NaN log evidence" i)
          else if m.count < 0 then
            problem := Some (Printf.sprintf "member %d: negative count" i)
          else if
            Array.exists (fun m' -> m' != m && m'.meta = m.meta) t.members
          then problem := Some (Printf.sprintf "member %d: duplicate meta" i)
        end)
      t.members;
    match !problem with None -> Ok t | Some msg -> err msg
  end

(* ------------------------------------------------------------------ *)
(* Binary codec, mirroring the Serving.Artifact conventions:

     magic "BMFENS01" | u64 fnv64 checksum of payload | payload

   with ints as little-endian i64, floats as IEEE bits and strings
   length-prefixed. *)

let magic = "BMFENS01"

let put_int buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let payload_to_binary t =
  let buf = Buffer.create (64 + (64 * Array.length t.members)) in
  put_string buf t.name;
  put_float buf t.occam;
  put_int buf (Array.length t.members);
  Array.iter
    (fun m ->
      put_string buf m.meta.Serving.Artifact.circuit;
      put_string buf m.meta.Serving.Artifact.metric;
      put_string buf m.meta.Serving.Artifact.scale;
      put_int buf m.meta.Serving.Artifact.seed;
      put_float buf m.log_prior;
      put_float buf m.log_ev;
      put_int buf m.count)
    t.members;
  Buffer.contents buf

let to_binary_string t =
  let payload = payload_to_binary t in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (Serving.Artifact.fnv64 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

exception Short of string

type reader = { data : string; mutable at : int }

let take rd n =
  if n < 0 || rd.at + n > String.length rd.data then
    raise (Short "truncated payload");
  let at = rd.at in
  rd.at <- rd.at + n;
  at

let get_int rd = Int64.to_int (String.get_int64_le rd.data (take rd 8))

let get_float rd = Int64.float_of_bits (String.get_int64_le rd.data (take rd 8))

let get_string rd =
  let n = get_int rd in
  if n < 0 then raise (Short "negative length");
  String.sub rd.data (take rd n) n

let of_binary_string s =
  if String.length s < String.length magic + 8 then
    Error "ensemble: truncated file"
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error "ensemble: bad magic"
  else begin
    let stored = String.get_int64_le s (String.length magic) in
    let payload_at = String.length magic + 8 in
    let payload = String.sub s payload_at (String.length s - payload_at) in
    if not (Int64.equal (Serving.Artifact.fnv64 payload) stored) then
      Error "ensemble: checksum mismatch (corrupt file)"
    else
      try
        let rd = { data = payload; at = 0 } in
        let name = get_string rd in
        let occam = get_float rd in
        let n = get_int rd in
        if n < 0 || n > String.length payload / 8 then
          raise (Short "implausible member count");
        let members =
          Array.init n (fun _ ->
              let circuit = get_string rd in
              let metric = get_string rd in
              let scale = get_string rd in
              let seed = get_int rd in
              let log_prior = get_float rd in
              let log_ev = get_float rd in
              let count = get_int rd in
              {
                meta = { Serving.Artifact.circuit; metric; scale; seed };
                log_prior;
                log_ev;
                count;
              })
        in
        if rd.at <> String.length payload then Error "ensemble: trailing bytes"
        else validate { name; occam; members }
      with Short msg -> Error ("ensemble: " ^ msg)
  end

(* ------------------------------------------------------------------ *)
(* JSON view (ensemble_stats, /health, repro ensemble show). [resolve]
   optionally maps a member meta to its (rev, dim) — the serving side
   resolves through its model cache, the offline CLI through the
   store. Non-finite evidence follows the artifact codec's convention
   of string-encoded specials. *)

let jf f =
  if Float.is_finite f then Serving.Json.Num f
  else if Float.is_nan f then Serving.Json.Str "nan"
  else if f > 0. then Serving.Json.Str "inf"
  else Serving.Json.Str "-inf"

let to_json ?(resolve = fun (_ : Serving.Artifact.meta) -> None) t =
  let ws = weights t in
  Serving.Json.Obj
    [
      ("name", Serving.Json.Str t.name);
      ("occam", jf t.occam);
      ( "members",
        Serving.Json.Arr
          (Array.to_list
             (Array.mapi
                (fun i m ->
                  let base =
                    [
                      ("circuit", Serving.Json.Str m.meta.Serving.Artifact.circuit);
                      ("metric", Serving.Json.Str m.meta.Serving.Artifact.metric);
                      ("scale", Serving.Json.Str m.meta.Serving.Artifact.scale);
                      ( "seed",
                        Serving.Json.Num
                          (float_of_int m.meta.Serving.Artifact.seed) );
                      ("log_prior", jf m.log_prior);
                      ("log_evidence", jf m.log_ev);
                      ("points", Serving.Json.Num (float_of_int m.count));
                      ("weight", jf ws.(i));
                    ]
                  in
                  let extra =
                    match resolve m.meta with
                    | None -> []
                    | Some (rev, dim) ->
                        [
                          ("rev", Serving.Json.Num (float_of_int rev));
                          ("dim", Serving.Json.Num (float_of_int dim));
                        ]
                  in
                  Serving.Json.Obj (base @ extra))
                t.members)) );
    ]
