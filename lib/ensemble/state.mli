(** Persistent ensemble state: member list, log priors, accumulated log
    evidence and scored-point counts, with a checksummed binary codec
    (the [.bmfe] payload).

    Evidence resets on every membership change, so the log-evidence
    differences that drive the weights are always likelihood ratios
    over data every member was scored on — the invariant that makes
    canarying by evidence well-defined. *)

type member = {
  meta : Serving.Artifact.meta;
  log_prior : float;
      (** 0. for the founding member, {!canary_log_prior} for members
          added later. *)
  log_ev : float;  (** Accumulated log predictive density. Never NaN. *)
  count : int;  (** Scored points folded into [log_ev]. *)
}

type t = { name : string; occam : float; members : member array }

val canary_log_prior : float
(** [ln 1e-6] — the near-zero prior weight a canaried revision starts
    from. *)

val create : ?occam:float -> string -> t
(** An empty ensemble. [occam] in [0, 1] is the Occam's-window ratio
    (0., the default, disables the window).
    @raise Invalid_argument on an empty/oversized name or bad occam. *)

val mem : t -> Serving.Artifact.meta -> bool

val find : t -> Serving.Artifact.meta -> member option

val add : t -> Serving.Artifact.meta -> (t, string) result
(** Appends a member — with log prior 0 when the ensemble was empty,
    {!canary_log_prior} otherwise — and resets every member's evidence.
    [Error] on a duplicate. *)

val scores : t -> float array
(** Per-member [log_prior + log_ev], aligned with [members]. *)

val weights : t -> float array
(** {!Weights.compute} over {!scores} with the state's window ratio. *)

val record : t -> (float * int) array -> t
(** [record t increments] folds one scored batch in: per-member
    [(evidence delta, points)] aligned with [members]. A member that
    could not be scored carries [(0., 0)].
    @raise Invalid_argument on arity mismatch. *)

val validate : t -> (t, string) result

val to_binary_string : t -> string
(** [magic "BMFENS01" | u64 fnv64 checksum | payload] — the [.bmfe]
    bytes. *)

val of_binary_string : string -> (t, string) result
(** Verifies magic, checksum and {!validate}. *)

val to_json :
  ?resolve:(Serving.Artifact.meta -> (int * int) option) -> t -> Serving.Json.t
(** The stats/health view: name, occam and per-member weight, log
    prior, log evidence and point count. [resolve] optionally maps a
    member meta to its (rev, dim), appended when available. *)
