(* On-disk ensemble registry: one [.bmfe] file per ensemble, living in
   the same root as the model artifacts it references, saved with the
   same temp-write + atomic-rename (+ fsync under [`Durable]) protocol
   as Serving.Store — so ensemble weight state survives a SIGKILL the
   way acknowledged model updates do, and `repro recover`'s sweep of
   [.{name}.tmp.{pid}] files covers interrupted ensemble saves too.

   The [.bmfe] suffix is invisible to Serving.Store.list (which matches
   [.bmfa]/[.bmfa.json] only), so the two registries share a directory
   without seeing each other's files. *)

let extension = ".bmfe"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c
      | _ -> '_')
    s

(* [sanitize] is lossy, so the filename carries a short digest of the
   raw name — same move as the artifact store's key digest. *)
let name_digest name =
  String.sub (Printf.sprintf "%016Lx" (Serving.Artifact.fnv64 name)) 0 8

let filename name =
  Printf.sprintf "%s__h%s%s" (sanitize name) (name_digest name) extension

let path ~root name = Filename.concat root (filename name)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

let save ?(durability = `Fast) ~root state =
  mkdir_p root;
  let file = path ~root state.State.name in
  let data = State.to_binary_string state in
  let tmp =
    Filename.concat root
      (Printf.sprintf ".%s.tmp.%d" (filename state.State.name) (Unix.getpid ()))
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         Serving.Crashpoint.step ();
         write_all fd data;
         match durability with
         | `Fast -> ()
         | `Durable ->
             Serving.Crashpoint.step ();
             Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try
     Serving.Crashpoint.step ();
     Sys.rename tmp file
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (match durability with
  | `Fast -> ()
  | `Durable ->
      Serving.Crashpoint.step ();
      fsync_dir root);
  file

let load_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error ("ensemble: " ^ file ^ ": " ^ msg)
  | contents -> State.of_binary_string contents

let find ~root name =
  let file = path ~root name in
  if Sys.file_exists file then Some file else None

let load ~root name =
  match find ~root name with
  | Some file -> load_file file
  | None ->
      Error
        (Printf.sprintf "ensemble: no ensemble %S under %s (expected %s)" name
           root (filename name))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let is_temp name =
  String.length name > 0 && name.[0] = '.' && contains_substring name ".tmp."

let list ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name ->
           (not (is_temp name)) && Filename.check_suffix name extension)
    |> List.map (fun name ->
           let file = Filename.concat root name in
           (file, load_file file))
