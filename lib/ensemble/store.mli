(** On-disk [.bmfe] registry for ensemble state, sharing the model
    root. Saves follow the Serving.Store crash-safety protocol
    (temp-write + atomic rename; fsync file and directory under
    [`Durable]), and temp files use the same [.{name}.tmp.{pid}]
    pattern so recovery's sweep covers them. *)

val extension : string
(** [".bmfe"] — never matched by [Serving.Store.list]. *)

val filename : string -> string
(** Sanitized name plus a digest of the raw name, so distinct ensemble
    names can never collide on disk. *)

val path : root:string -> string -> string

val save : ?durability:Serving.Store.durability -> root:string -> State.t -> string
(** Persists the state; returns the file path. Default durability
    [`Fast]. *)

val find : root:string -> string -> string option

val load : root:string -> string -> (State.t, string) result
(** Checksum-verified load; the not-found error names the root
    directory and the expected filename. *)

val load_file : string -> (State.t, string) result

val list : root:string -> (string * (State.t, string) result) list
(** Every [.bmfe] under [root] (sorted by filename) with its decode
    status. *)
