let probabilists n x =
  if n < 0 then invalid_arg "Hermite.probabilists: negative degree";
  if n = 0 then 1.
  else begin
    let prev = ref 1. and cur = ref x in
    for k = 1 to n - 1 do
      let next = (x *. !cur) -. (float_of_int k *. !prev) in
      prev := !cur;
      cur := next
    done;
    !cur
  end

let log_factorial n =
  if n < 0 then invalid_arg "Hermite.log_factorial: negative argument";
  let acc = ref 0. in
  for k = 2 to n do
    acc := !acc +. log (float_of_int k)
  done;
  !acc

let normalized n x = probabilists n x *. exp (-0.5 *. log_factorial n)

(* In-place variant writing [He~_0 .. He~_d] into [out.(0 .. d)] (out
   may be longer); the exact recurrence of [normalized_upto], so values
   are bit-identical, with no per-call allocation. *)
let normalized_upto_into d x out =
  if d < 0 then invalid_arg "Hermite.normalized_upto_into: negative degree";
  if Array.length out < d + 1 then
    invalid_arg "Hermite.normalized_upto_into: output too short";
  out.(0) <- 1.;
  if d >= 1 then begin
    (* carry He_k and the normalization sqrt(k!) together *)
    let prev = ref 1. and cur = ref x in
    let log_fact = ref 0. in
    out.(1) <- x;
    for k = 1 to d - 1 do
      let next = (x *. !cur) -. (float_of_int k *. !prev) in
      prev := !cur;
      cur := next;
      log_fact := !log_fact +. log (float_of_int (k + 1));
      out.(k + 1) <- next *. exp (-0.5 *. !log_fact)
    done
  end

let normalized_upto d x =
  if d < 0 then invalid_arg "Hermite.normalized_upto: negative degree";
  let out = Array.make (d + 1) 1. in
  normalized_upto_into d x out;
  out
