type t = {
  dim : int;
  terms : Multi_index.t array;
  max_degree : int; (* largest single-variable degree across terms *)
}

let max_single_degree terms =
  Array.fold_left
    (fun acc term ->
      Array.fold_left (fun acc (_, d) -> Stdlib.max acc d) acc term)
    0 terms

let of_terms ~dim terms_list =
  let terms = Array.of_list terms_list in
  Array.iter
    (fun term ->
      if Multi_index.max_variable term >= dim then
        invalid_arg "Basis.of_terms: term references variable out of range")
    terms;
  let seen = Hashtbl.create (Array.length terms) in
  Array.iter
    (fun term ->
      let key = Array.to_list term in
      if Hashtbl.mem seen key then
        invalid_arg "Basis.of_terms: duplicate term";
      Hashtbl.add seen key ())
    terms;
  { dim; terms; max_degree = max_single_degree terms }

let linear r =
  of_terms ~dim:r
    (Multi_index.constant :: List.init r (fun i -> Multi_index.linear i))

let quadratic_diagonal r =
  of_terms ~dim:r
    (Multi_index.constant
    :: (List.init r (fun i -> Multi_index.linear i)
       @ List.init r (fun i -> Multi_index.pure i 2)))

let total_degree ~r ~d = of_terms ~dim:r (Multi_index.all_up_to_degree ~r ~d)

let dim b = b.dim

let size b = Array.length b.terms

let term b m =
  if m < 0 || m >= Array.length b.terms then
    invalid_arg "Basis.term: index out of range";
  b.terms.(m)

let terms b = Array.copy b.terms

let index_of_term b t =
  let found = ref None in
  Array.iteri
    (fun i term ->
      if !found = None && Multi_index.equal term t then found := Some i)
    b.terms;
  !found

let eval_term_on term x =
  let acc = ref 1. in
  Array.iter
    (fun (v, d) -> acc := !acc *. Hermite.normalized d x.(v))
    term;
  !acc

let eval_term b m x =
  if Array.length x <> b.dim then invalid_arg "Basis.eval_term: bad point";
  eval_term_on (term b m) x

(* Evaluating a row: precompute normalized Hermite values for every
   variable up to the max degree only when degree > 1; for the common
   linear case we avoid all the machinery. *)
let eval_row b x =
  if Array.length x <> b.dim then invalid_arg "Basis.eval_row: bad point";
  if b.max_degree <= 1 then
    Array.map
      (fun term ->
        match Array.length term with
        | 0 -> 1.
        | _ ->
            let acc = ref 1. in
            Array.iter (fun (v, _) -> acc := !acc *. x.(v)) term;
            !acc)
      b.terms
  else begin
    (* cache per-variable Hermite columns lazily *)
    let cache = Hashtbl.create 64 in
    let herm v =
      match Hashtbl.find_opt cache v with
      | Some arr -> arr
      | None ->
          let arr = Hermite.normalized_upto b.max_degree x.(v) in
          Hashtbl.add cache v arr;
          arr
    in
    Array.map
      (fun term ->
        let acc = ref 1. in
        Array.iter (fun (v, d) -> acc := !acc *. (herm v).(d)) term;
        !acc)
      b.terms
  end

let m_design_seconds =
  Obs.Metrics.histogram ~help:"Design-matrix evaluation latency (seconds)"
    "bmf_design_matrix_seconds"

let m_design_rows =
  Obs.Metrics.counter ~help:"Design-matrix rows evaluated"
    "bmf_design_matrix_rows_total"

(* Span + latency wrapper shared by both evaluation strategies; the
   instrumented path runs the same loop, only bracketed by clock reads. *)
let observed name b ~rows impl =
  if not (Obs.live ()) then impl ()
  else
    Obs.Trace.with_span ~cat:"polybasis" name (fun sp ->
        Obs.Trace.set_attr sp "rows" (Obs.Trace.Int rows);
        Obs.Trace.set_attr sp "terms" (Obs.Trace.Int (size b));
        Obs.Trace.set_attr sp "max_degree" (Obs.Trace.Int b.max_degree);
        let t0 = Obs.Clock.now_s () in
        let g = impl () in
        Obs.Metrics.observe m_design_seconds (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc ~by:(float_of_int rows) m_design_rows;
        g)

(* Minimum rows per domain before sharding pays for the task handoff. *)
let parallel_grain = 32

let design_matrix b xs =
  let k, r = Linalg.Mat.dims xs in
  if r <> b.dim then invalid_arg "Basis.design_matrix: dimension mismatch";
  observed "design_matrix" b ~rows:k (fun () ->
      let m = size b in
      let g = Linalg.Mat.create k m in
      (* Rows are independent and land in disjoint slices of the output,
         so sharding the row range across domains is bit-identical to
         the sequential loop. *)
      Parallel.Pool.parallel_chunks ~grain:parallel_grain ~n:k
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            Linalg.Mat.set_row g i (eval_row b (Linalg.Mat.row xs i))
          done);
      g)

(* Batch evaluation that amortizes the Hermite recurrences: the per-
   variable tables are computed once for the whole sample block instead
   of once per row (eval_row re-derives them behind a hashtable on every
   call). Values are identical to [design_matrix] — the same recurrence
   runs in the same order — only the bookkeeping differs. *)
let design_matrix_blocked b xs =
  let k, r = Linalg.Mat.dims xs in
  if r <> b.dim then
    invalid_arg "Basis.design_matrix_blocked: dimension mismatch";
  observed "design_matrix_blocked" b ~rows:k @@ fun () ->
  let m = size b in
  let g = Linalg.Mat.create k m in
  if b.max_degree <= 1 then
    Parallel.Pool.parallel_chunks ~grain:parallel_grain ~n:k (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          for j = 0 to m - 1 do
            let term = b.terms.(j) in
            let acc = ref 1. in
            Array.iter
              (fun (v, _) -> acc := !acc *. Linalg.Mat.get xs i v)
              term;
            Linalg.Mat.set g i j !acc
          done
        done)
  else begin
    (* highest degree needed per variable, across all terms *)
    let need = Array.make b.dim 0 in
    Array.iter
      (fun term ->
        Array.iter (fun (v, d) -> need.(v) <- Stdlib.max need.(v) d) term)
      b.terms;
    (* Hermite tables for variables used beyond degree 1; degree-1-only
       variables read the sample matrix directly. Both the table fill
       and the assembly shard by rows: every domain writes its own row
       range only, so parallel output is bit-identical. *)
    let tables =
      Array.init b.dim (fun v ->
          if need.(v) >= 2 then Some (Array.make k [||]) else None)
    in
    Parallel.Pool.parallel_chunks ~grain:parallel_grain ~n:k (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          Array.iteri
            (fun v table ->
              match table with
              | Some rows ->
                  rows.(i) <-
                    Hermite.normalized_upto need.(v) (Linalg.Mat.get xs i v)
              | None -> ())
            tables
        done);
    Parallel.Pool.parallel_chunks ~grain:parallel_grain ~n:k (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          for j = 0 to m - 1 do
            let term = b.terms.(j) in
            let acc = ref 1. in
            Array.iter
              (fun (v, d) ->
                let value =
                  match tables.(v) with
                  | Some rows -> rows.(i).(d)
                  | None -> Linalg.Mat.get xs i v
                in
                acc := !acc *. value)
              term;
            Linalg.Mat.set g i j !acc
          done
        done)
  end;
  g

(* Preallocated per-evaluator state for [design_matrix_into]: the
   per-variable degree requirements and one Hermite table per variable
   that needs degree >= 2. The tables are refilled row by row, so one
   scratch serves any number of rows. *)
module Scratch = struct
  type basis = t

  type t = {
    basis : basis; (* physical identity guards against stale reuse *)
    need : int array;
    herm : float array option array;
  }

  let create b =
    let need = Array.make b.dim 0 in
    Array.iter
      (fun term ->
        Array.iter (fun (v, d) -> need.(v) <- Stdlib.max need.(v) d) term)
      b.terms;
    let herm =
      Array.init b.dim (fun v ->
          if need.(v) >= 2 then Some (Array.make (need.(v) + 1) 1.) else None)
    in
    { basis = b; need; herm }

  let basis s = s.basis
end

(* Allocation-free twin of [design_matrix_blocked]: evaluates the basis
   on [xs] straight into the preallocated [dst]. Runs sequentially in
   the calling domain (the serving plane already shards across worker
   domains) and refills the scratch Hermite tables per row; every term
   is the same left-to-right product of the same table entries the
   blocked evaluator computes, so the output is bit-identical. *)
let design_matrix_into b ~scratch xs ~dst =
  if not (scratch.Scratch.basis == b) then
    invalid_arg "Basis.design_matrix_into: scratch built for another basis";
  let k, r = Linalg.Mat.dims xs in
  if r <> b.dim then
    invalid_arg "Basis.design_matrix_into: dimension mismatch";
  let m = size b in
  let dk, dm = Linalg.Mat.dims dst in
  if dk <> k || dm <> m then
    invalid_arg "Basis.design_matrix_into: destination shape mismatch";
  observed "design_matrix_into" b ~rows:k @@ fun () ->
  (* Work straight on the Bigarray storage with unboxed loads/stores,
     accumulating each term's product in its destination cell — under
     vanilla ocamlopt a [float ref] accumulator (and any cross-module
     get/set) would box a float per factor. Bounds were checked above;
     the product order is exactly the blocked evaluator's. *)
  let module A = Bigarray.Array1 in
  let xd = Linalg.Mat.data xs in
  let dd = Linalg.Mat.data dst in
  if b.max_degree <= 1 then
    for i = 0 to k - 1 do
      let xbase = i * r and dbase = i * m in
      for j = 0 to m - 1 do
        let term = Array.unsafe_get b.terms j in
        let nt = Array.length term in
        A.unsafe_set dd (dbase + j) 1.;
        for p = 0 to nt - 1 do
          let v, _ = Array.unsafe_get term p in
          A.unsafe_set dd (dbase + j)
            (A.unsafe_get dd (dbase + j) *. A.unsafe_get xd (xbase + v))
        done
      done
    done
  else begin
    let need = scratch.Scratch.need in
    let herm = scratch.Scratch.herm in
    for i = 0 to k - 1 do
      let xbase = i * r and dbase = i * m in
      for v = 0 to b.dim - 1 do
        match Array.unsafe_get herm v with
        | Some table ->
            Hermite.normalized_upto_into need.(v)
              (A.unsafe_get xd (xbase + v))
              table
        | None -> ()
      done;
      for j = 0 to m - 1 do
        let term = Array.unsafe_get b.terms j in
        let nt = Array.length term in
        A.unsafe_set dd (dbase + j) 1.;
        for p = 0 to nt - 1 do
          let v, d = Array.unsafe_get term p in
          let value =
            match Array.unsafe_get herm v with
            | Some table -> Array.unsafe_get table d
            | None -> A.unsafe_get xd (xbase + v)
          in
          A.unsafe_set dd (dbase + j) (A.unsafe_get dd (dbase + j) *. value)
        done
      done
    done
  end

let predict b ~coeffs x =
  if Array.length coeffs <> size b then
    invalid_arg "Basis.predict: coefficient length mismatch";
  Linalg.Vec.dot coeffs (eval_row b x)

let predict_many b ~coeffs xs =
  let k = Linalg.Mat.rows xs in
  Array.init k (fun i -> predict b ~coeffs (Linalg.Mat.row xs i))

let extend b new_terms =
  let existing = Array.to_list b.terms in
  List.iter
    (fun t ->
      if List.exists (Multi_index.equal t) existing then
        invalid_arg "Basis.extend: term already present")
    new_terms;
  let all = existing @ new_terms in
  let dim =
    List.fold_left
      (fun acc t -> Stdlib.max acc (Multi_index.max_variable t + 1))
      b.dim all
  in
  of_terms ~dim all
