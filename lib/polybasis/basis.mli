(** Orthonormal polynomial bases over the variation space (paper eq. 2-5).

    A basis is an ordered set of multivariate orthonormal Hermite terms
    [{g_m}]; evaluating it on a sample matrix yields the design matrix [G]
    of eq. 9. By construction E[g_i(X) g_j(X)] = delta_ij for
    X ~ N(0, I), which tests verify by Monte Carlo. *)

type t

val of_terms : dim:int -> Multi_index.t list -> t
(** A basis over [dim] variables with the given terms in the given order.
    @raise Invalid_argument if a term references a variable [>= dim] or
    if two terms are equal. *)

val linear : int -> t
(** The paper's main basis: [1; x_1; ...; x_r] ([M = r + 1] terms, the
    constant first). *)

val quadratic_diagonal : int -> t
(** [1; x_i ...; (x_i^2 - 1)/sqrt 2 ...] — adds pure quadratics
    ([M = 2r + 1]). *)

val total_degree : r:int -> d:int -> t
(** Full total-degree basis (small [r] only); see
    {!Multi_index.all_up_to_degree}. *)

val dim : t -> int
(** Number of variables [r]. *)

val size : t -> int
(** Number of basis functions [M]. *)

val term : t -> int -> Multi_index.t

val terms : t -> Multi_index.t array

val index_of_term : t -> Multi_index.t -> int option
(** Position of a term in this basis, if present. *)

val eval_term : t -> int -> Linalg.Vec.t -> float
(** [eval_term b m x] is [g_m(x)]. *)

val eval_row : t -> Linalg.Vec.t -> Linalg.Vec.t
(** All [M] basis functions at one point — one row of [G]. *)

val design_matrix : t -> Linalg.Mat.t -> Linalg.Mat.t
(** [design_matrix b xs] maps a [k] x [r] sample matrix to the [k] x [M]
    matrix [G] with [G_km = g_m(x^(k))] (eq. 9). *)

val design_matrix_blocked : t -> Linalg.Mat.t -> Linalg.Mat.t
(** Same result as {!design_matrix}, computed with the Hermite
    recurrences amortized across the whole sample block instead of
    re-derived per row. Preferred on the batch-serving path where one
    basis is evaluated on many query points at once. *)

(** Reusable evaluation state for {!design_matrix_into}: per-variable
    degree requirements plus one Hermite table per variable needing
    degree [>= 2]. Build once per (basis, evaluator) pair and reuse
    across calls; a scratch is valid only for the exact basis value it
    was created from. *)
module Scratch : sig
  type basis := t

  type t

  val create : basis -> t

  val basis : t -> basis
  (** The basis this scratch was built for. *)
end

val design_matrix_into : t -> scratch:Scratch.t -> Linalg.Mat.t -> dst:Linalg.Mat.t -> unit
(** [design_matrix_into b ~scratch xs ~dst] evaluates the basis on the
    [k] x [r] sample matrix [xs] into the preallocated [k] x [M]
    destination. Output is bit-identical to {!design_matrix_blocked}
    (same recurrences and product order), with zero float-array
    allocation in steady state. Runs sequentially in the calling domain.
    @raise Invalid_argument on shape mismatch or if [scratch] was built
    for a different basis value. *)

val predict : t -> coeffs:Linalg.Vec.t -> Linalg.Vec.t -> float
(** [predict b ~coeffs x = sum_m coeffs.(m) * g_m(x)] (eq. 2). *)

val predict_many : t -> coeffs:Linalg.Vec.t -> Linalg.Mat.t -> Linalg.Vec.t
(** Vectorized {!predict} over sample rows. *)

val extend : t -> Multi_index.t list -> t
(** Appends new (distinct) terms, keeping existing positions stable; the
    dimension grows to cover any new variables. Used to build late-stage
    bases from early-stage ones (paper Sec. IV-A/IV-B). *)
