(** Probabilists' Hermite polynomials He_n, and their orthonormal
    normalization with respect to the standard normal weight.

    These are the paper's orthonormal basis functions (eq. 3-5): the
    normalized polynomial [normalized n x = He_n(x) / sqrt(n!)] satisfies
    E[g_i(X) g_j(X)] = delta_ij for X ~ N(0, 1). In particular
    [normalized 0 x = 1], [normalized 1 x = x],
    [normalized 2 x = (x^2 - 1) / sqrt 2] — exactly eq. 4. *)

val probabilists : int -> float -> float
(** [probabilists n x] is He_n(x) via the stable three-term recurrence
    He_{n+1} = x He_n - n He_{n-1}.
    @raise Invalid_argument for negative [n]. *)

val normalized : int -> float -> float
(** [normalized n x] is [He_n(x) / sqrt(n!)]. *)

val normalized_upto : int -> float -> float array
(** [normalized_upto d x] is [| g_0 x; ...; g_d x |] computed in one
    recurrence sweep (cheaper than [d] separate calls). *)

val normalized_upto_into : int -> float -> float array -> unit
(** [normalized_upto_into d x out] writes [g_0 x .. g_d x] into
    [out.(0 .. d)] ([out] may be longer; entries past [d] are untouched).
    Runs the exact recurrence of {!normalized_upto}, so the values are
    bit-identical — with no per-call allocation.
    @raise Invalid_argument if [d < 0] or [out] is shorter than [d+1]. *)

val log_factorial : int -> float
(** [log n!], exact for the small degrees used here. *)
