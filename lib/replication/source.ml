(* Subscriber registry for the leader. Connections are opaque and
   compared physically: the daemon owns the sockets, we own the acks. *)

let m_subscribers =
  Obs.Metrics.gauge ~help:"Connected replication subscribers"
    "bmf_repl_subscribers"

let m_lag =
  Obs.Metrics.gauge
    ~help:"Entries committed on the leader but not yet acked by the slowest subscriber"
    "bmf_repl_lag_entries"

let m_shipped =
  Obs.Metrics.counter ~help:"Journal entries shipped to subscribers"
    "bmf_repl_shipped_total"

let m_snapshots =
  Obs.Metrics.counter ~help:"Catch-up snapshots sent"
    "bmf_repl_snapshots_sent_total"

let m_snapshot_bytes =
  Obs.Metrics.counter ~help:"Catch-up snapshot bytes sent"
    "bmf_repl_snapshot_bytes_total"

type 'conn sub = { conn : 'conn; mutable acked : int }

type 'conn t = { mutable subs : 'conn sub list }

let create () = { subs = [] }

let meta_equal (a : Serving.Artifact.meta) (b : Serving.Artifact.meta) =
  String.equal a.circuit b.circuit
  && String.equal a.metric b.metric
  && String.equal a.scale b.scale
  && a.seed = b.seed

let plan_catchup ~have ~vector =
  List.filter_map
    (fun (a : Serving.Artifact.t) ->
      let follower_rev =
        List.find_map
          (fun (m, rev) -> if meta_equal m a.meta then Some rev else None)
          vector
      in
      match follower_rev with
      | Some rev when rev >= a.rev -> None
      | _ -> Some (a.meta, a.rev, Serving.Artifact.to_string Binary a))
    have

let find t conn = List.find_opt (fun s -> s.conn == conn) t.subs

let register t conn ~acked =
  match find t conn with
  | Some s -> s.acked <- acked
  | None ->
      t.subs <- t.subs @ [ { conn; acked } ];
      Obs.Metrics.set m_subscribers (float_of_int (List.length t.subs))

let drop t conn =
  let before = List.length t.subs in
  t.subs <- List.filter (fun s -> not (s.conn == conn)) t.subs;
  if List.length t.subs <> before then
    Obs.Metrics.set m_subscribers (float_of_int (List.length t.subs))

let ack t conn ~seq =
  match find t conn with
  | Some s -> if seq > s.acked then s.acked <- seq
  | None -> ()

let subscribers t = List.map (fun s -> s.conn) t.subs

let count t = List.length t.subs

let min_acked t =
  List.fold_left
    (fun acc s ->
      match acc with None -> Some s.acked | Some m -> Some (min m s.acked))
    None t.subs

let note_lag t ~seq =
  let lag = match min_acked t with None -> 0 | Some a -> max 0 (seq - a) in
  Obs.Metrics.set m_lag (float_of_int lag)

let note_shipped ~entries =
  Obs.Metrics.inc ~by:(float_of_int entries) m_shipped

let note_snapshot ~bytes =
  Obs.Metrics.inc m_snapshots;
  Obs.Metrics.inc ~by:(float_of_int bytes) m_snapshot_bytes
