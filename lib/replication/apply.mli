(** Follower-side application of replicated state, under the same
    durability contract as a leader update.

    {!entry} applies one streamed WAL record with the exact rank-1
    incremental update: the entry is appended to the {e follower's own}
    journal (fsynced under [`Durable]) {e before} the posterior is
    recomputed, so a follower killed between append and artifact save
    recovers by the ordinary {!Serving.Recovery} replay at restart —
    no replication-specific recovery path exists. After the updated
    artifact is durably saved the journal is truncated, exactly like
    the leader's commit sequence. Because the incremental update is
    exact and deterministic, a follower that applies the same entries
    in the same order ends bit-identical to the leader.

    {!snapshot} installs a full-artifact catch-up transfer: the bytes
    are decoded (checksum-verified) and durably saved. Snapshots never
    touch the journal — they are idempotent whole-state writes. *)

type outcome =
  | Applied of Serving.Artifact.t
      (** The store now holds the updated artifact (rev = base_rev + 1). *)
  | Stale of int
      (** The local artifact is already past [base_rev] (its revision is
          returned) — a duplicate delivery after a snapshot or replay.
          Safe to ack. *)
  | Gap of string
      (** The entry cannot apply here: no local artifact, a revision
          hole, or the apply failed. The link must be dropped and the
          subscription restarted so snapshot catch-up can repair it. *)

val entry :
  ?durability:Serving.Store.durability ->
  root:string ->
  journal:Serving.Journal.t ->
  Serving.Journal.entry ->
  outcome
(** Journal-append, apply, durably save, truncate — in that order.
    Default durability: [`Durable]. *)

val snapshot :
  ?durability:Serving.Store.durability ->
  root:string ->
  string ->
  (Serving.Artifact.t, string) result
(** Decodes and installs one snapshot (any codec {!Serving.Artifact}
    accepts); skips the save when the local artifact is already at or
    past the snapshot's revision and returns the newer local one. *)
