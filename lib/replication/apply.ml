let m_applied =
  Obs.Metrics.counter ~help:"Replicated journal entries applied"
    "bmf_repl_applied_total"

let m_stale =
  Obs.Metrics.counter ~help:"Replicated entries skipped as already applied"
    "bmf_repl_stale_total"

let m_snapshots =
  Obs.Metrics.counter ~help:"Catch-up snapshots installed"
    "bmf_repl_snapshots_applied_total"

let m_apply_seconds =
  Obs.Metrics.histogram ~help:"Per-entry replication apply latency"
    "bmf_repl_apply_seconds"

type outcome =
  | Applied of Serving.Artifact.t
  | Stale of int
  | Gap of string

let entry ?(durability = `Durable) ~root ~journal (e : Serving.Journal.entry) =
  match Serving.Store.load ~root e.meta with
  | Error msg -> Gap (Printf.sprintf "no base artifact (%s)" msg)
  | Ok art ->
      if art.Serving.Artifact.rev > e.base_rev then begin
        Obs.Metrics.inc m_stale;
        Stale art.rev
      end
      else if art.rev < e.base_rev then
        Gap
          (Printf.sprintf "artifact rev %d behind entry base %d" art.rev
             e.base_rev)
      else begin
        (* Calibration telemetry scores the shipped observations against
           the PRE-update posterior — the same signal the leader
           records, so a follower's scrape page shows posterior quality
           even when no client ever queries it. [record_update] is a
           no-op unless metrics are on, keeping the apply path
           bit-identical for uninstrumented runs. *)
        if Obs.Metrics.enabled () then
          Serving.Calibration.record_update
            ~predictor:(Serving.Predictor.of_artifact art) ~meta:e.meta
            ~xs:e.xs ~f:e.f;
        (* The durable commit point: once the append returns, a crash
           anywhere below is repaired by Recovery's replay at restart. *)
        Serving.Journal.append journal e;
        match
          Obs.Metrics.time m_apply_seconds (fun () ->
              let inc = Serving.Incremental.of_artifact art in
              Serving.Incremental.add_batch inc ~xs:e.xs ~f:e.f;
              let updated = Serving.Incremental.to_artifact inc in
              ignore (Serving.Store.save ~durability ~root updated);
              updated)
        with
        | updated ->
            Serving.Journal.truncate journal;
            Obs.Metrics.inc m_applied;
            Applied updated
        | exception exn ->
            (* a rejected apply must not replay at the next restart *)
            Serving.Journal.truncate journal;
            Gap (Printexc.to_string exn)
      end

let snapshot ?(durability = `Durable) ~root data =
  match Serving.Artifact.of_string data with
  | Error msg -> Error ("bad snapshot: " ^ msg)
  | Ok a -> (
      match Serving.Store.load ~root a.meta with
      | Ok local when local.Serving.Artifact.rev >= a.rev ->
          Ok local (* already there or ahead: idempotent no-op *)
      | Ok _ | Error _ ->
          ignore (Serving.Store.save ~durability ~root a);
          Obs.Metrics.inc m_snapshots;
          Ok a)
