(** Leader-side replication source: subscriber bookkeeping, catch-up
    planning, and lag accounting.

    The daemon's journal is truncated after every durable artifact save,
    so there is no long-lived file to tail on the leader — instead the
    source receives each committed update {e at commit time} (the moment
    the journal entry became durable and the artifact save completed)
    and the daemon fans the already-framed WAL record out to every
    subscriber connection inside its existing select loop. This module
    is deliberately socket-agnostic: ['conn] is whatever handle the
    daemon uses to write to a subscriber, compared by physical equality.

    Catch-up: a subscriber announces a per-model revision vector when it
    subscribes; {!plan_catchup} compares it against the leader's live
    artifacts and returns full-artifact snapshots (existing binary
    codec) for every model the follower is missing or behind on. Models
    the follower is ahead on are skipped — promotion races resolve by
    the follower resubscribing to whoever wins. After the snapshots the
    daemon sends a status marker carrying the leader's commit sequence
    number; from then on the subscriber only needs the entry stream. *)

type 'conn t

val create : unit -> 'conn t

val plan_catchup :
  have:Serving.Artifact.t list ->
  vector:(Serving.Artifact.meta * int) list ->
  (Serving.Artifact.meta * int * string) list
(** [(meta, rev, bytes)] for every artifact in [have] whose revision is
    ahead of (or absent from) the follower's [vector]; [bytes] is the
    binary codec rendering. Pure — callable without a [t]. *)

val register : 'conn t -> 'conn -> acked:int -> unit
(** Adds a subscriber whose last-known-applied sequence is [acked]
    (the commit seq sent with the status marker). Re-registering an
    existing connection just resets its ack. *)

val drop : 'conn t -> 'conn -> unit
(** Removes a subscriber (connection closed or overflowed). Unknown
    connections are ignored. *)

val ack : 'conn t -> 'conn -> seq:int -> unit
(** Records a [repl_ack]: the subscriber has durably applied every entry
    up to [seq]. Acks never move backwards. *)

val subscribers : 'conn t -> 'conn list
(** Current subscriber connections, oldest first. *)

val count : _ t -> int

val min_acked : _ t -> int option
(** The slowest subscriber's ack, or [None] with no subscribers. *)

val note_lag : _ t -> seq:int -> unit
(** Refreshes the lag gauge: [seq - min_acked] entries (0 when there are
    no subscribers). Call after commits and acks. *)

val note_shipped : entries:int -> unit
(** Counts entries fanned out to subscribers. *)

val note_snapshot : bytes:int -> unit
(** Counts one catch-up snapshot of [bytes] bytes sent. *)
