type policy = {
  base_s : float;
  multiplier : float;
  max_s : float;
  jitter : float;
  max_attempts : int;
}

let default_policy =
  { base_s = 0.05; multiplier = 2.0; max_s = 2.0; jitter = 0.2; max_attempts = 8 }

type t = { policy : policy; rng : Stats.Rng.t; mutable attempts : int }

let create ?(policy = default_policy) ?(seed = 0x6261636b) () =
  if policy.base_s <= 0. || policy.multiplier < 1. || policy.max_s < policy.base_s
  then invalid_arg "Backoff.create: degenerate policy";
  if policy.jitter < 0. || policy.jitter >= 1. then
    invalid_arg "Backoff.create: jitter must be in [0, 1)";
  { policy; rng = Stats.Rng.create seed; attempts = 0 }

let next_delay_s t =
  t.attempts <- t.attempts + 1;
  let p = t.policy in
  (* exponentiate by repeated multiplication, stopping at the cap so a
     long outage cannot overflow the float *)
  let rec grow d k = if k <= 0 || d >= p.max_s then d else grow (d *. p.multiplier) (k - 1) in
  let d = Float.min p.max_s (grow p.base_s (t.attempts - 1)) in
  if p.jitter = 0. then d
  else d *. Stats.Rng.uniform t.rng ~lo:(1. -. p.jitter) ~hi:(1. +. p.jitter)

let attempts t = t.attempts

let exhausted t = t.attempts >= t.policy.max_attempts

let reset t = t.attempts <- 0
