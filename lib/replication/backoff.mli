(** Capped exponential backoff with multiplicative jitter.

    Shared by every transient-failure retry loop in the replication
    stack: the follower's leader link (reconnect after [ECONNREFUSED] /
    [EPIPE] without hammering a restarting leader) and {!Client}'s
    automatic reconnect. The policy is deterministic given a seed —
    jitter comes from a {!Stats.Rng} stream, never from wall-clock
    entropy — so tests can assert exact delay sequences.

    The module computes delays; it never sleeps. Callers that block
    ([Client]) sleep for the returned delay; callers inside an event
    loop (the daemon's follower link) schedule the next attempt at
    [now + delay]. *)

type policy = {
  base_s : float;  (** First delay. *)
  multiplier : float;  (** Growth factor per failed attempt. *)
  max_s : float;  (** Delays are capped here (before jitter). *)
  jitter : float;
      (** Fractional spread: a delay [d] becomes uniform in
          [[d (1 - jitter), d (1 + jitter)]]. *)
  max_attempts : int;
      (** Attempts before {!exhausted}; the delay sequence itself never
          stops growing toward the cap, so unbounded retriers (the
          follower link) can keep polling {!next_delay_s} forever. *)
}

val default_policy : policy
(** 50 ms base, x2 growth, 2 s cap, 20% jitter, 8 attempts. *)

type t

val create : ?policy:policy -> ?seed:int -> unit -> t

val next_delay_s : t -> float
(** Records one failed attempt and returns how long to wait before the
    next try: jittered [min max_s (base_s * multiplier^(attempts-1))]. *)

val attempts : t -> int
(** Failed attempts recorded since the last {!reset}. *)

val exhausted : t -> bool
(** [attempts >= max_attempts] — bounded retriers give up here. *)

val reset : t -> unit
(** Call on success: the next failure starts again from [base_s]. *)
