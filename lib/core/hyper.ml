type grid = float list

let m_cv_candidates =
  Obs.Metrics.counter ~help:"Hyperparameter candidates evaluated in CV"
    "bmf_cv_candidates_total"

let m_cv_folds =
  Obs.Metrics.counter ~help:"Cross-validation folds evaluated"
    "bmf_cv_folds_total"

let m_cv_best_error =
  Obs.Metrics.gauge ~help:"CV error of the last selected hyperparameter"
    "bmf_cv_best_error"

let m_cv_selected =
  Obs.Metrics.gauge ~help:"Last selected hyperparameter value"
    "bmf_cv_selected_hyper"

let m_cv_residual =
  Obs.Metrics.gauge
    ~help:"Prior-residual norm of the last cross-validated training set"
    "bmf_cv_residual_norm"

let prior_residual ~g ~f ~(prior : Prior.t) =
  if Array.for_all (fun x -> x = 0.) prior.means then f
  else Linalg.Vec.sub f (Linalg.Mat.gemv g prior.means)

let auto_grid ?(decades_below = 5) ?(decades_above = 3) ?(per_decade = 1) ~g
    ~f ~prior () =
  if per_decade <= 0 then invalid_arg "Hyper.auto_grid: per_decade <= 0";
  let k = Linalg.Mat.rows g in
  let r = prior_residual ~g ~f ~prior in
  (* Center on the residual *variance*: with a zero-mean prior the
     residual is f itself, and its mean would otherwise swamp the scale
     (the noise level sits far below mean^2). *)
  let kf = float_of_int (Stdlib.max 1 k) in
  let mean = Linalg.Vec.sum r /. kf in
  let var = (Linalg.Vec.dot r r /. kf) -. (mean *. mean) in
  let scale =
    if var > 0. then var
    else Float.max 1e-300 (Linalg.Vec.dot r r /. kf)
  in
  let points = (decades_below + decades_above) * per_decade in
  List.init (points + 1) (fun i ->
      let decade =
        (float_of_int i /. float_of_int per_decade) -. float_of_int decades_below
      in
      scale *. (10. ** decade))

let submatrix_rows g idx =
  let _, m = Linalg.Mat.dims g in
  Linalg.Mat.init (Array.length idx) m (fun i j -> Linalg.Mat.get g idx.(i) j)

let subvector f idx = Array.map (fun i -> f.(i)) idx

(* Held-out error denominator: relative error normalizes by |f_v|, but a
   validation group of near-zero responses (late-stage samples centered
   on zero) would inflate every candidate's score towards inf/NaN. Below
   the floor we fall back to the absolute error (denominator 1). *)
let rel_denom_floor = 1e-12

let error_denom fv =
  let n = Linalg.Vec.nrm2 fv in
  if n >= rel_denom_floor then n else 1.

(* Evaluate all candidates on one fold, adding each candidate's held-out
   relative error into [err_acc]. Shared-work scheme: the fold matrix
   B = G W^-1 G^T and residual r are computed once; each candidate then
   costs one K x K Cholesky of (t I + B) plus two matrix-vector products,
   using the stable dual MAP form
     alpha = mu + W^-1 G^T (t I + B)^-1 r. *)
let fold_errors ~(prior : Prior.t) ~gt ~ft ~gv ~fv ~candidates ~err_acc =
  let kt = Linalg.Mat.rows gt and m = Linalg.Mat.cols gt in
  let w_inv = Array.map (fun w -> 1. /. w) prior.weights in
  let r = prior_residual ~g:gt ~f:ft ~prior in
  let b = Linalg.Mat.weighted_outer_gram gt w_inv in
  let fv_norm = error_denom fv in
  List.iteri
    (fun ci t ->
      let shifted = Linalg.Mat.add_diag b (Array.make kt t) in
      let v = Linalg.Cholesky.solve_system shifted r in
      let gtv = Linalg.Mat.gemv_t gt v in
      let alpha =
        Array.init m (fun i -> prior.means.(i) +. (w_inv.(i) *. gtv.(i)))
      in
      let pred = Linalg.Mat.gemv gv alpha in
      err_acc.(ci) <-
        err_acc.(ci) +. (Linalg.Vec.dist2 pred fv /. fv_norm))
    candidates

(* Naive per-candidate fold evaluation through the requested solver —
   used to reproduce the conventional-solver fitting cost of Fig. 5. *)
let fold_errors_direct ~solver ~(prior : Prior.t) ~gt ~ft ~gv ~fv ~candidates
    ~err_acc =
  let fv_norm = error_denom fv in
  List.iteri
    (fun ci t ->
      let alpha =
        Map_solver.solve_raw ~solver ~g:gt ~f:ft ~weights:prior.weights
          ~means:prior.means ~hyper:t
      in
      let pred = Linalg.Mat.gemv gv alpha in
      err_acc.(ci) <-
        err_acc.(ci) +. (Linalg.Vec.dist2 pred fv /. fv_norm))
    candidates

let cv_errors ?rng ?(solver = Map_solver.Fast_woodbury) ~folds ~g ~f ~prior
    ~candidates () =
  if folds < 2 then invalid_arg "Hyper.cv_errors: need at least 2 folds";
  if candidates = [] then invalid_arg "Hyper.cv_errors: no candidates";
  List.iter
    (fun t ->
      if t <= 0. || not (Float.is_finite t) then
        invalid_arg "Hyper.cv_errors: candidates must be positive")
    candidates;
  let k = Linalg.Mat.rows g in
  if Prior.size prior <> Linalg.Mat.cols g then
    invalid_arg "Hyper.cv_errors: prior size mismatch";
  let folds = Stdlib.min folds k in
  let fold_list = Stats.Crossval.folds ?shuffle:rng ~n:folds ~size:k () in
  let n_folds = List.length fold_list in
  let n_cand = List.length candidates in
  Obs.Trace.with_span ~cat:"core" "hyper_cv" @@ fun cv_sp ->
  Obs.Trace.set_attr cv_sp "folds" (Obs.Trace.Int n_folds);
  Obs.Trace.set_attr cv_sp "candidates" (Obs.Trace.Int n_cand);
  Obs.Trace.set_attr cv_sp "samples" (Obs.Trace.Int k);
  if Obs.live () then
    Obs.Metrics.set m_cv_residual
      (Linalg.Vec.nrm2 (prior_residual ~g ~f ~prior));
  (* Each fold is one pool task — submatrix build plus Woodbury sweep on
     its own domain, writing a private error vector. The vectors are
     merged below in fold order, so the floating-point accumulation
     order (and hence the selected hyper) is bit-identical to the
     sequential sweep at any -j. *)
  let eval_fold (fi, { Stats.Crossval.train; test }) =
    Obs.Trace.with_span ~cat:"core" "cv_fold" @@ fun sp ->
    Obs.Trace.set_attr sp "fold" (Obs.Trace.Int fi);
    Obs.Trace.set_attr sp "train" (Obs.Trace.Int (Array.length train));
    Obs.Trace.set_attr sp "test" (Obs.Trace.Int (Array.length test));
    Obs.Metrics.inc m_cv_folds;
    Obs.Metrics.inc ~by:(float_of_int n_cand) m_cv_candidates;
    let gt = submatrix_rows g train and ft = subvector f train in
    let gv = submatrix_rows g test and fv = subvector f test in
    let err_acc = Array.make n_cand 0. in
    (match solver with
    | Map_solver.Fast_woodbury ->
        fold_errors ~prior ~gt ~ft ~gv ~fv ~candidates ~err_acc
    | Map_solver.Direct_cholesky ->
        fold_errors_direct ~solver ~prior ~gt ~ft ~gv ~fv ~candidates
          ~err_acc);
    err_acc
  in
  let per_fold =
    Parallel.Pool.map eval_fold
      (Array.of_list (List.mapi (fun fi fold -> (fi, fold)) fold_list))
  in
  let err_acc = Array.make n_cand 0. in
  Array.iter
    (fun fold_err ->
      for ci = 0 to n_cand - 1 do
        err_acc.(ci) <- err_acc.(ci) +. fold_err.(ci)
      done)
    per_fold;
  List.mapi
    (fun i t -> (t, err_acc.(i) /. float_of_int n_folds))
    candidates

let select ?rng ?solver ?(folds = 4) ?candidates ~g ~f ~prior () =
  let candidates =
    match candidates with
    | Some c -> c
    | None -> auto_grid ~g ~f ~prior ()
  in
  let scored = cv_errors ?rng ?solver ~folds ~g ~f ~prior ~candidates () in
  (* Rank finite scores only: a candidate whose sweep degenerated to
     inf/NaN must not win by vacuous comparison. *)
  match List.filter (fun (_, e) -> Float.is_finite e) scored with
  | [] -> invalid_arg "Hyper.select: every candidate scored non-finite"
  | first :: rest ->
      let ((hyper, err) as best) =
        List.fold_left
          (fun ((_, be) as best) ((_, e) as cur) ->
            if e < be then cur else best)
          first rest
      in
      Obs.Metrics.set m_cv_selected hyper;
      Obs.Metrics.set m_cv_best_error err;
      best

(* ------------------------------------------------------------------ *)
(* Marginal-likelihood (evidence) selection — see the .mli note.       *)

let log_evidence_with ~b ~r ~noise ~scale =
  let k = Array.length r in
  (* C = noise I + scale B *)
  let c =
    Linalg.Mat.add_diag (Linalg.Mat.scale scale b) (Array.make k noise)
  in
  let chol = Linalg.Cholesky.factorize c in
  let alpha = Linalg.Cholesky.solve chol r in
  let quad = Linalg.Vec.dot r alpha in
  -0.5
  *. (quad +. Linalg.Cholesky.log_det chol
     +. (float_of_int k *. log (2. *. Float.pi)))

let log_evidence ?(scale = 1.) ~g ~f ~prior ~noise () =
  if noise <= 0. || not (Float.is_finite noise) then
    invalid_arg "Hyper.log_evidence: noise must be positive";
  if scale <= 0. || not (Float.is_finite scale) then
    invalid_arg "Hyper.log_evidence: scale must be positive";
  if Prior.size prior <> Linalg.Mat.cols g then
    invalid_arg "Hyper.log_evidence: prior size mismatch";
  let w_inv = Array.map (fun w -> 1. /. w) prior.Prior.weights in
  let b = Linalg.Mat.weighted_outer_gram g w_inv in
  let r = prior_residual ~g ~f ~prior in
  log_evidence_with ~b ~r ~noise ~scale

(* Data-scaled default grids: noise spans decades below the residual
   variance, scale spans around 1. *)
let default_noise_grid ~g ~f ~prior =
  auto_grid ~decades_below:6 ~decades_above:1 ~g ~f ~prior ()

let default_scale_grid = [ 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10. ]

let select_evidence ?noise_candidates ?scale_candidates ~g ~f ~prior () =
  let noise_candidates =
    match noise_candidates with
    | Some c -> c
    | None -> default_noise_grid ~g ~f ~prior
  in
  let scale_candidates =
    match (prior.Prior.kind, scale_candidates) with
    | Prior.Zero_mean, _ -> [ 1. ]
    | Prior.Nonzero_mean, Some c -> c
    | Prior.Nonzero_mean, None -> default_scale_grid
  in
  let w_inv = Array.map (fun w -> 1. /. w) prior.Prior.weights in
  let b = Linalg.Mat.weighted_outer_gram g w_inv in
  let r = prior_residual ~g ~f ~prior in
  let best = ref None in
  List.iter
    (fun noise ->
      List.iter
        (fun scale ->
          let le = log_evidence_with ~b ~r ~noise ~scale in
          match !best with
          | Some (_, _, best_le) when le <= best_le -> ()
          | _ -> best := Some (noise, scale, le))
        scale_candidates)
    noise_candidates;
  match !best with
  | None -> invalid_arg "Hyper.select_evidence: empty candidate grids"
  | Some (noise, scale, le) ->
      let hyper =
        match prior.Prior.kind with
        | Prior.Zero_mean -> noise
        | Prior.Nonzero_mean -> noise /. scale
      in
      (hyper, le)
