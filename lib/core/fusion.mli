(** Bayesian model fusion, end to end (Algorithm 1 of the paper).

    Given the early-stage coefficients (already mapped onto the late-stage
    basis, with [None] marking missing priors) and [K] late-stage samples,
    [fit_design]:

    + builds the requested prior(s) (Sec. III-A, IV-A, IV-B);
    + selects the hyper-parameter — and for [Bmf_ps] also the prior
      family — by N-fold cross-validation (Sec. IV-D);
    + solves the MAP estimation with the fast solver (Sec. IV-C).

    [Bmf_zm] and [Bmf_nzm] fix the prior family, matching the paper's
    BMF-ZM / BMF-NZM columns; [Bmf_ps] is the full method with prior
    selection (BMF-PS). *)

type method_ = Bmf_zm | Bmf_nzm | Bmf_ps

val method_name : method_ -> string

type config = {
  solver : Map_solver.solver option;
      (** [None] picks the fast solver when K < M. *)
  cv_folds : int;  (** Folds for hyper/prior selection (default 4). *)
  candidates : Hyper.grid option;  (** [None] = data-scaled auto grid. *)
}

val default_config : config

type fitted = {
  coeffs : Linalg.Vec.t;
  prior : Prior.t;
      (** The selected prior itself — needed to persist the fit (model
          artifacts) or continue it (incremental updates). *)
  prior_kind : Prior.kind;  (** The family actually used. *)
  hyper : float;  (** The selected hyper-parameter value. *)
  cv_error : float;  (** Cross-validation error of the selection. *)
}

val fit_design :
  ?rng:Stats.Rng.t ->
  ?config:config ->
  early:float option array ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  method_ ->
  fitted
(** [early] must have length [cols g].
    @raise Invalid_argument on dimension mismatches. *)

val fit :
  ?rng:Stats.Rng.t ->
  ?config:config ->
  early:float option array ->
  basis:Polybasis.Basis.t ->
  xs:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  method_ ->
  Regression.Model.t * fitted
(** Convenience wrapper producing a predictable [Model.t]. *)

val chain :
  ?rng:Stats.Rng.t ->
  ?config:config ->
  early:float option array ->
  (Linalg.Mat.t * Linalg.Vec.t) list ->
  method_ ->
  fitted list
(** Multi-stage fusion across the full design flow (the paper's Sec. I
    names three core stages: schematic, layout, manufacturing/test).
    Each (design matrix, responses) pair is fused with the previous
    stage's fitted coefficients as its prior — the first with [early].
    All stages must share one basis (same column count). Returns the
    per-stage fits, last = final.
    @raise Invalid_argument on an empty stage list or mismatched
    dimensions. *)
