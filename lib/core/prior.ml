type kind = Zero_mean | Nonzero_mean

type t = {
  kind : kind;
  means : Linalg.Vec.t;
  weights : Linalg.Vec.t;
  informed : bool array;
}

let kind_name = function Zero_mean -> "BMF-ZM" | Nonzero_mean -> "BMF-NZM"

(* Effective magnitude of each informed early coefficient, floored so a
   literal zero yields a very tight but non-degenerate prior. *)
let effective_magnitudes ~mag_floor_rel early =
  let max_mag =
    Array.fold_left
      (fun acc e ->
        match e with Some v -> Float.max acc (Float.abs v) | None -> acc)
      0. early
  in
  let floor_mag = if max_mag > 0. then mag_floor_rel *. max_mag else 1. in
  Array.map
    (function
      | Some v -> Some (Float.max (Float.abs v) floor_mag)
      | None -> None)
    early

(* The weight standing in for "infinite variance" on missing priors:
   much smaller than the informed weights (prior std 100x the median
   coefficient scale — effectively flat), but bounded so the MAP system
   keeps a workable condition number (see .mli). *)
let uninformed_weight informed_weights =
  let positives = List.filter (fun w -> w > 0.) informed_weights in
  match positives with
  | [] -> 1e-4
  | ws ->
      let sorted = Array.of_list ws in
      Array.sort Float.compare sorted;
      let median = sorted.(Array.length sorted / 2) in
      1e-4 *. median

let build kind ?(mag_floor_rel = 1e-4) early =
  let m = Array.length early in
  if m = 0 then invalid_arg "Prior: empty coefficient array";
  let mags = effective_magnitudes ~mag_floor_rel early in
  let informed_weights =
    Array.to_list mags
    |> List.filter_map (Option.map (fun mag -> 1. /. (mag *. mag)))
  in
  let w0 = uninformed_weight informed_weights in
  let weights =
    Array.map
      (function Some mag -> 1. /. (mag *. mag) | None -> w0)
      mags
  in
  let means =
    match kind with
    | Zero_mean -> Array.make m 0.
    | Nonzero_mean ->
        Array.map (function Some v -> v | None -> 0.) early
  in
  let informed = Array.map Option.is_some early in
  { kind; means; weights; informed }

let zero_mean ?mag_floor_rel early = build Zero_mean ?mag_floor_rel early

let nonzero_mean ?mag_floor_rel early = build Nonzero_mean ?mag_floor_rel early

let make kind early = build kind early

let size t = Array.length t.weights

let of_raw ~kind ~means ~weights ~informed =
  let m = Array.length weights in
  if m = 0 then invalid_arg "Prior.of_raw: empty weight array";
  if Array.length means <> m || Array.length informed <> m then
    invalid_arg "Prior.of_raw: length mismatch";
  Array.iter
    (fun w ->
      if w <= 0. || not (Float.is_finite w) then
        invalid_arg "Prior.of_raw: weights must be positive and finite")
    weights;
  Array.iter
    (fun mu ->
      if not (Float.is_finite mu) then
        invalid_arg "Prior.of_raw: means must be finite")
    means;
  { kind; means = Array.copy means; weights = Array.copy weights;
    informed = Array.copy informed }

let log_pdf t ~hyper alpha =
  if Array.length alpha <> size t then
    invalid_arg "Prior.log_pdf: length mismatch";
  let lambda2 = match t.kind with Zero_mean -> 1. | Nonzero_mean -> hyper in
  if lambda2 <= 0. then invalid_arg "Prior.log_pdf: hyper must be positive";
  let acc = ref 0. in
  for i = 0 to size t - 1 do
    if t.informed.(i) then begin
      let variance = lambda2 /. t.weights.(i) in
      let d = alpha.(i) -. t.means.(i) in
      acc :=
        !acc
        -. (0.5 *. d *. d /. variance)
        -. (0.5 *. log (2. *. Float.pi *. variance))
    end
  done;
  !acc
