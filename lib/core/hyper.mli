(** Hyper-parameter selection by N-fold cross-validation (paper
    Sec. IV-D).

    The hyper-parameter [t] is [sigma_0^2] for the zero-mean prior and
    [eta = sigma_0^2 / lambda^2] for the nonzero-mean prior; it controls
    the weight of the prior against the data. Candidates are swept on a
    log grid scaled to the data, and the candidate minimizing the mean
    held-out relative error wins.

    The sweep shares work aggressively: per fold, the matrix
    [B = G W^-1 G^T] and the vectors entering the Woodbury solve are
    computed once, so each additional candidate costs only one K x K
    Cholesky plus two matrix-vector products. This is what makes
    cross-validating BMF cheap even at the largest sample counts.

    The fold sweep runs on the shared [Parallel.Pool]: each fold's
    submatrix build and Woodbury sweep is one pool task with a private
    error vector, and the vectors are merged in fold order — the
    selected hyper-parameter is bit-identical at any [-j].

    Held-out errors are relative (normalized by the validation group's
    |f_v|) unless that norm sits below 1e-12, where the denominator
    degenerates; such folds fall back to the absolute error instead of
    inflating every candidate's score to inf/NaN. *)

type grid = float list

val auto_grid :
  ?decades_below:int ->
  ?decades_above:int ->
  ?per_decade:int ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  unit ->
  grid
(** Log-spaced candidates centered on the empirical variance of the
    prior-mean residual [f - G mu] (its mean is removed so a large
    response offset cannot swamp the scale). Defaults: 5 decades below,
    3 above, 1 point per decade. *)

val cv_errors :
  ?rng:Stats.Rng.t ->
  ?solver:Map_solver.solver ->
  folds:int ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  candidates:grid ->
  unit ->
  (float * float) list
(** Mean held-out relative error (eq. 59) for every candidate, in input
    order. [solver] defaults to [Fast_woodbury] (the shared-work sweep);
    [Direct_cholesky] re-solves the full M x M system per fold and
    candidate — the "conventional solver" cost the paper benchmarks
    against in Fig. 5.
    @raise Invalid_argument when [folds < 2] or [candidates = []]. *)

val select :
  ?rng:Stats.Rng.t ->
  ?solver:Map_solver.solver ->
  ?folds:int ->
  ?candidates:grid ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  unit ->
  float * float
(** Best (hyper, cv-error) pair over the candidates with finite CV
    error. [folds] defaults to 4; [candidates] defaults to {!auto_grid}.
    @raise Invalid_argument when every candidate scores non-finite. *)

(** {2 Marginal-likelihood (evidence) selection}

    An empirical-Bayes alternative to cross-validation, beyond the
    paper: because prior and likelihood are Gaussian, the marginal
    likelihood of the data is available in closed form,

    [f - G mu ~ N(0, noise * I + scale * G W^-1 G^T)]

    with [noise = sigma_0^2] and [scale = lambda^2] (fixed to 1 for the
    zero-mean prior, whose variances eq. 16 fully determines). Maximizing
    it selects the hyper-parameters without sacrificing any training
    data, at one K x K Cholesky per candidate — the same cost profile as
    the shared-work CV sweep. *)

val log_evidence :
  ?scale:float ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  noise:float ->
  unit ->
  float
(** Log marginal likelihood of the observations under the prior, with
    observation-noise variance [noise] and prior-variance multiplier
    [scale] (default 1).
    @raise Invalid_argument unless [noise > 0] and [scale > 0]. *)

val select_evidence :
  ?noise_candidates:grid ->
  ?scale_candidates:grid ->
  g:Linalg.Mat.t ->
  f:Linalg.Vec.t ->
  prior:Prior.t ->
  unit ->
  float * float
(** Maximizes {!log_evidence} over a (noise, scale) grid — scale is
    swept only for the nonzero-mean prior — and returns
    [(hyper, log_evidence)] where [hyper] is directly usable with
    [Map_solver.solve]: [sigma_0^2] for zero-mean,
    [eta = sigma_0^2 / lambda^2] for nonzero-mean. Grids default to
    {!auto_grid}-style data-scaled log ranges. *)
